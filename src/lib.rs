//! # cellular-flows
//!
//! A Rust implementation of *"Safe and Stabilizing Distributed Cellular Flows"*
//! (Taylor Johnson, Sayan Mitra, Karthik Manamcheri; ICDCS 2010): a distributed
//! traffic-control protocol on a partitioned plane that keeps entities safely
//! separated at all times — even under crash failures — and, once failures
//! cease, self-stabilizes so that every entity with a feasible path reaches the
//! target cell.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`geom`] — exact fixed-point planar geometry;
//! * [`grid`] — cell identifiers, paths (with turn counting), connectivity;
//! * [`dts`] — discrete transition systems and an explicit-state model checker;
//! * [`routing`] — the self-stabilizing distance-vector routing substrate;
//! * [`core`] — the cell automaton (`Route` / `Signal` / `Move`) and composed
//!   `System`: the paper's contribution;
//! * [`sim`] — simulation engine, failure models, metrics, and every experiment
//!   scenario from the paper's evaluation;
//! * [`cube`] — the three-dimensional extension named in the paper's
//!   conclusion (§V);
//! * [`multiflow`] — the multi-type flows extension named in the paper's
//!   conclusion (§V);
//! * [`net`] — a true message-passing deployment (one thread per cell,
//!   channels along edges), proven bit-equivalent to the shared-variable
//!   model;
//! * [`tess`] — the protocol over arbitrary rectangular tessellations
//!   (heterogeneous cell sizes), bit-equivalent to [`core`] on unit cells;
//! * [`telemetry`] — the unified observability layer: metric registry,
//!   phase-span timing, schema-versioned JSONL event streams, a bounded
//!   flight recorder, and Prometheus text exposition.
//!
//! # Quickstart
//!
//! ```
//! use cellular_flows::core::{Params, SystemConfig};
//! use cellular_flows::grid::{CellId, GridDims};
//! use cellular_flows::sim::Simulation;
//!
//! // An 8×8 grid: source at ⟨1,0⟩, target at ⟨1,7⟩ — the paper's Figure 7 setup.
//! let params = Params::from_milli(250, 50, 200)?; // l = 0.25, rs = 0.05, v = 0.2
//! let config = SystemConfig::new(GridDims::square(8), CellId::new(1, 7), params)?
//!     .with_source(CellId::new(1, 0));
//! let mut sim = Simulation::new(config, 42);
//! sim.run(2_500);
//! let throughput = sim.metrics().throughput();
//! assert!(throughput > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cellflow_core as core;
pub use cellflow_cube as cube;
pub use cellflow_dts as dts;
pub use cellflow_geom as geom;
pub use cellflow_grid as grid;
pub use cellflow_multiflow as multiflow;
pub use cellflow_net as net;
pub use cellflow_routing as routing;
pub use cellflow_sim as sim;
pub use cellflow_telemetry as telemetry;
pub use cellflow_tess as tess;
