//! Highway scenario: the paper's §I motivation. A dense single-lane flow at
//! high velocity, showing how the blocking signal prevents the "abrupt phase
//! transition" of uncontrolled traffic: upstream cells are throttled exactly
//! when the downstream boundary strip is occupied.
//!
//! ```sh
//! cargo run --example highway
//! ```
//!
//! Prints a time series of throughput and blocked-signal counts for two
//! velocity regimes, then the steady-state comparison.

use cellular_flows::core::{Params, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::sim::{Metrics, Simulation};

/// An 8-cell "highway": a 1×8 corridor, source at the west end, exit (target)
/// at the east end.
fn highway(v_milli: i64) -> Result<SystemConfig, Box<dyn std::error::Error>> {
    let params = Params::from_milli(250, 50, v_milli)?;
    Ok(
        SystemConfig::new(GridDims::new(8, 1), CellId::new(7, 0), params)?
            .with_source(CellId::new(0, 0)),
    )
}

fn drive(v_milli: i64, rounds: u64) -> Result<Metrics, Box<dyn std::error::Error>> {
    let mut sim = Simulation::new(highway(v_milli)?, 1);
    println!("— highway at v = {} —", v_milli as f64 / 1000.0);
    let window = 200;
    for chunk in 0..(rounds / window) {
        sim.run(window);
        println!(
            "  rounds {:5}: throughput so far {:.4}, blocked/round {:.2}, cars on road {}",
            (chunk + 1) * window,
            sim.metrics().throughput(),
            sim.metrics().mean_blocked(),
            sim.system().state().entity_count(),
        );
    }
    Ok(sim.metrics().clone())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slow = drive(50, 1_000)?;
    let fast = drive(250, 1_000)?;

    println!("\nsteady-state (last 500 rounds):");
    println!("  v=0.05: {:.4} vehicles/round", slow.tail_throughput(500));
    println!("  v=0.25: {:.4} vehicles/round", fast.tail_throughput(500));
    println!(
        "\nFaster cells move more vehicles ({}x here), but the protocol throttles\n\
         upstream cells whenever the downstream gap closes — blocked signals per\n\
         round: {:.2} (slow) vs {:.2} (fast) — so separation never breaks.",
        (fast.tail_throughput(500) / slow.tail_throughput(500)).round(),
        slow.mean_blocked(),
        fast.mean_blocked(),
    );
    Ok(())
}
