//! The verification workflow: how this repository *checks* the paper's
//! theorems rather than trusting them — exhaustive model checking, liveness
//! (`AG EF`), and Monte-Carlo walks, from the public API.
//!
//! ```sh
//! cargo run --release --example verify
//! ```

use cellular_flows::core::mc::BoundedSystem;
use cellular_flows::core::{safety, Params, SystemConfig};
use cellular_flows::dts::{
    check_invariant, check_possibly, random_walks, ExploreConfig, WalkConfig,
};
use cellular_flows::grid::{CellId, GridDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::from_milli(250, 50, 200)?;

    // A 4-cell corridor with a budget of two entities; the two interior cells
    // may crash and recover nondeterministically between any rounds.
    let config = SystemConfig::new(GridDims::new(4, 1), CellId::new(3, 0), params)?
        .with_source(CellId::new(0, 0))
        .with_entity_budget(2);
    let fallible = [CellId::new(1, 0), CellId::new(2, 0)];
    let bounded = BoundedSystem::new(config.clone()).with_fallible(fallible, true);
    let bounds = ExploreConfig {
        max_states: 5_000_000,
        max_depth: usize::MAX,
    };

    // 1. Theorem 5, exhaustively: Safe + Invariants 1–2 over every reachable
    //    state, every crash/recovery interleaving.
    let started = std::time::Instant::now();
    let safety_report = check_invariant(
        &bounded,
        |s| {
            safety::check_safe(&config, s).is_ok()
                && safety::check_invariant1(&config, s).is_ok()
                && safety::check_invariant2(&config, s).is_ok()
        },
        &bounds,
    )
    .map_err(|v| format!("safety violated: {v:?}"))?;
    println!(
        "Theorem 5   EXHAUSTIVE  {} states, {} transitions, {:.2?}{}",
        safety_report.states_explored,
        safety_report.transitions,
        started.elapsed(),
        if safety_report.exhaustive {
            " (complete)"
        } else {
            ""
        },
    );

    // 2. Theorem 10 at the model level: from every reachable state — however
    //    crashed — full consumption remains possible (AG EF goal).
    let started = std::time::Instant::now();
    let liveness = check_possibly(
        &bounded,
        |s| s.next_entity_id == 2 && s.entity_count() == 0,
        &bounds,
    )
    .map_err(|t| format!("trapped state found: {t:?}"))?;
    println!(
        "Theorem 10  AG EF       {} states, {} already-consumed states, {:.2?}",
        liveness.states,
        liveness.goal_states,
        started.elapsed(),
    );

    // 3. Beyond enumeration: Monte-Carlo walks over the paper's own 8×8 grid.
    let big = SystemConfig::new(GridDims::square(8), CellId::new(1, 7), params)?
        .with_source(CellId::new(1, 0))
        .with_entity_budget(6);
    let big_fallible: Vec<CellId> = (1..7).map(|j| CellId::new(1, j)).collect();
    let big_bounded = BoundedSystem::new(big.clone()).with_fallible(big_fallible, true);
    let started = std::time::Instant::now();
    let walks = random_walks(
        &big_bounded,
        |s| safety::check_safe(&big, s).is_ok(),
        &WalkConfig {
            walks: 32,
            depth: 300,
            seed: 0xD15C0,
        },
    )
    .map_err(|trace| format!("violation after {} steps", trace.len()))?;
    println!(
        "Theorem 5   MONTE-CARLO {} sampled states on the 8×8 grid, {:.2?}",
        walks.states_checked,
        started.elapsed(),
    );

    println!("\nall checks passed — see docs/PAPER_MAP.md for the full obligation table");
    Ok(())
}
