//! Crossing commodities: the multi-type extension (paper §V). Two flows cross
//! at the center of the grid; a third runs against the first. Head-of-line
//! service plus head-on yielding keeps all three moving, and the type-agnostic
//! separation guarantee holds throughout.
//!
//! ```sh
//! cargo run --example crossing_flows
//! ```

use cellular_flows::core::Params;
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::multiflow::safety::check_safe_multi;
use cellular_flows::multiflow::{FlowType, MultiConfig, MultiSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::from_milli(200, 50, 150)?;
    let config = MultiConfig::new(GridDims::square(7), params)?
        // τ0: west → east across the middle row.
        .with_flow(FlowType(0), CellId::new(0, 3), CellId::new(6, 3))?
        // τ1: south → north across the middle column (crosses τ0 at ⟨3,3⟩).
        .with_flow(FlowType(1), CellId::new(3, 0), CellId::new(3, 6))?
        // τ2: east → west along the row above — *against* τ0's direction and
        // across τ1: the hardest pattern (head-on + double crossing).
        .with_flow(FlowType(2), CellId::new(6, 4), CellId::new(0, 4))?;
    let mut system = MultiSystem::new(config);

    for checkpoint in 1..=5u64 {
        system.run(400);
        check_safe_multi(system.config(), system.state())
            .map_err(|(c, a, b)| format!("separation violated on {c}: {a} vs {b}"))?;
        println!(
            "after {:4} rounds: τ0 delivered {:3}, τ1 delivered {:3}, τ2 delivered {:3} (in flight: {})",
            checkpoint * 400,
            system.consumed(FlowType(0)),
            system.consumed(FlowType(1)),
            system.consumed(FlowType(2)),
            system.state().entity_count(),
        );
    }

    for ty in [FlowType(0), FlowType(1), FlowType(2)] {
        assert!(
            system.consumed(ty) > 0,
            "{ty} starved — the crossing arbitration failed"
        );
        // Per-type conservation.
        assert_eq!(
            system.inserted(ty),
            system.consumed(ty) + system.state().entity_count_of(ty) as u64
        );
    }
    println!("\nall three commodities flowed through shared cells, never closer than d");
    Ok(())
}
