//! Conveyor-grid scenario: the paper's second motivating domain — packages
//! routed on a grid of multi-directional conveyors (§I cites omni-wheel
//! conveyor hardware). Multiple sources feed one sink; flows merge, and the
//! token rotation arbitrates the merge fairly.
//!
//! ```sh
//! cargo run --example conveyor
//! ```

use cellular_flows::core::{analysis, Params, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::sim::{render, Simulation, TraceEvent, TraceRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Packages are small (l = 0.15) and conveyors fast (v = 0.15).
    let params = Params::from_milli(150, 50, 150)?;
    // A 6×6 floor with the packing station in the middle of the east wall and
    // three intake chutes on the west wall.
    let config = SystemConfig::new(GridDims::square(6), CellId::new(5, 3), params)?.with_sources([
        CellId::new(0, 0),
        CellId::new(0, 3),
        CellId::new(0, 5),
    ]);
    let mut sim = Simulation::new(config, 7).with_trace(TraceRecorder::new());

    sim.run(600);

    println!("Floor after 600 rounds:\n");
    println!(
        "{}",
        render::render(sim.system().config(), sim.system().state())
    );

    let m = sim.metrics();
    println!("packages inserted:  {}", m.inserted_total());
    println!("packages delivered: {}", m.consumed_total());
    println!("throughput:         {:.4} packages/round", m.throughput());

    // Per-chute delivery accounting from the trace: follow each package's
    // insert event to its consume event.
    let trace = sim.trace().expect("trace attached");
    trace
        .validate()
        .map_err(|e| format!("inconsistent trace: {e}"))?;
    let mut per_chute = std::collections::BTreeMap::new();
    let mut delivered = std::collections::HashSet::new();
    for (_, ev) in trace.events() {
        if let TraceEvent::Consume { entity } = ev {
            delivered.insert(*entity);
        }
    }
    for (_, ev) in trace.events() {
        if let TraceEvent::Insert { cell, entity } = ev {
            if delivered.contains(entity) {
                *per_chute.entry(*cell).or_insert(0u64) += 1;
            }
        }
    }
    println!("\ndeliveries by intake chute (fair merge via token rotation):");
    for (chute, count) in &per_chute {
        println!("  {chute}: {count}");
    }
    assert!(
        per_chute.len() == 3,
        "every chute should have delivered at least one package"
    );

    // All remaining packages are en route on target-connected conveyors.
    let connected = analysis::entities_on_tc(sim.system().config(), sim.system().state());
    assert_eq!(connected, sim.system().state().entity_count());
    println!("\nall {connected} in-flight packages are on live routes to the station");
    Ok(())
}
