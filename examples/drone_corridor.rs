//! Drone corridor: the 3-D extension (paper §V) in the air-traffic setting
//! the paper opens with. A 4×4×3 block of airspace cells; drones launch from
//! two ground pads, climb to the transit layer, cross the block, and descend
//! into a rooftop vertiport that consumes them.
//!
//! ```sh
//! cargo run --example drone_corridor
//! ```

use cellular_flows::core::Params;
use cellular_flows::cube::safety::{check_h3, check_margins3, check_safe3};
use cellular_flows::cube::{route_phase3, signal_phase3, CellId3, Dims3, System3, SystemConfig3};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Drones are 0.2-cell cubes keeping a 0.05 gap, moving 0.15 per round.
    let params = Params::from_milli(200, 50, 150)?;
    let airspace = Dims3::new(4, 4, 3);
    let vertiport = CellId3::new(3, 3, 2);
    let config = SystemConfig3::new(airspace, vertiport, params)?
        .with_source(CellId3::new(0, 0, 0))
        .with_source(CellId3::new(3, 0, 0));
    let mut sky = System3::new(config);

    println!(
        "airspace: {} cells, vertiport at {vertiport}",
        airspace.cell_count()
    );

    // A mid-air cell goes dark (equipment failure) part-way through.
    for round in 1..=600u64 {
        if round == 150 {
            println!("round 150: cell ⟨2, 2, 2⟩ lost — traffic reroutes");
            sky.fail(CellId3::new(2, 2, 2));
        }
        if round == 350 {
            println!("round 350: cell ⟨2, 2, 2⟩ restored");
            sky.recover(CellId3::new(2, 2, 2));
        }
        let (consumed, _) = sky.step();
        if consumed > 0 && round % 50 < 2 {
            println!("round {round:3}: {consumed} drone(s) landed");
        }
        // The 3-D safety predicate is checked continuously.
        check_safe3(sky.config(), sky.state()).map_err(|v| format!("separation violated: {v}"))?;
        check_margins3(sky.config(), sky.state())
            .map_err(|(c, e)| format!("{e} overflew cell {c}"))?;
    }

    // And the 3-D H predicate holds at signal time.
    let signaled = signal_phase3(sky.config(), &route_phase3(sky.config(), sky.state()));
    assert!(check_h3(sky.config(), &signaled).is_ok());

    println!("\nlaunched:  {}", sky.inserted_total());
    println!("landed:    {}", sky.consumed_total());
    println!("airborne:  {}", sky.state().entity_count());
    println!("min-separation maintained every round (3-D Theorem 5 analogue)");
    Ok(())
}
