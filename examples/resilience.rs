//! Resilience scenario: crash cells mid-flow, watch routing stabilize around
//! the hole (Lemma 6 / Corollary 7), recover them, and verify that every
//! entity with a live route is eventually delivered (Theorem 10) — while the
//! safety predicate is checked every single round.
//!
//! ```sh
//! cargo run --example resilience
//! ```

use cellular_flows::core::{analysis, Params, SourcePolicy, System, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::sim::{render, Simulation};

fn config() -> Result<SystemConfig, Box<dyn std::error::Error>> {
    let params = Params::from_milli(250, 50, 200)?;
    Ok(
        SystemConfig::new(GridDims::square(8), CellId::new(1, 7), params)?
            .with_source(CellId::new(1, 0)),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulation::new(config()?, 1).with_safety_checks(true);

    println!("Phase 1 — normal operation (straight route up column 1):");
    sim.run(60);
    println!(
        "  60 rounds: {} delivered, routing stabilized: {}",
        sim.metrics().consumed_total(),
        analysis::routing_stabilized(sim.system().config(), sim.system().state()),
    );

    println!("\nPhase 2 — crash ⟨1,3⟩ and ⟨1,4⟩ (cutting the straight route):");
    sim.system_mut().fail(CellId::new(1, 3));
    sim.system_mut().fail(CellId::new(1, 4));
    let consumed_before = sim.metrics().consumed_total();
    sim.run(160);
    println!(
        "{}",
        render::render(sim.system().config(), sim.system().state())
    );
    println!(
        "  traffic rerouted around the hole: {} more deliveries, stabilized: {}",
        sim.metrics().consumed_total() - consumed_before,
        analysis::routing_stabilized(sim.system().config(), sim.system().state()),
    );

    println!("\nPhase 3 — recover both cells; routes snap back within O(N²) rounds:");
    sim.system_mut().recover(CellId::new(1, 3));
    sim.system_mut().recover(CellId::new(1, 4));
    let bound = 2 * 64 + 2;
    sim.run(bound);
    assert!(analysis::routing_stabilized(
        sim.system().config(),
        sim.system().state()
    ));
    println!("  stabilized again after at most {bound} rounds (Corollary 7)");

    println!("\nPhase 4 — stop the source and drain (Theorem 10):");
    let drain_config = config()?.with_source_policy(SourcePolicy::Disabled);
    let mut drain = System::new(drain_config);
    drain.set_state(sim.system().state().clone());
    let mut rounds = 0u64;
    while analysis::entities_on_tc(drain.config(), drain.state()) > 0 {
        drain.step();
        rounds += 1;
        assert!(rounds < 5_000, "progress violated?!");
    }
    println!("  all in-flight entities delivered after {rounds} drain rounds");
    println!("\nEvery round of all phases passed the Safe/Invariant checks.");
    Ok(())
}
