//! Variable-length highway segments: the rectangular-tessellation extension
//! (toward the paper's §V "arbitrary tessellations"). A 6-segment highway
//! where the middle segments are 2–3× longer — think rural stretches between
//! short urban blocks — carrying the same protocol unchanged.
//!
//! ```sh
//! cargo run --release --example highway_segments
//! ```

use cellular_flows::core::Params;
use cellular_flows::geom::Fixed;
use cellular_flows::grid::CellId;
use cellular_flows::tess::safety::{check_margins_tess, check_safe_tess};
use cellular_flows::tess::{TessSystem, Tessellation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::from_milli(250, 50, 200)?;
    // Segment lengths in cell-side units: short on-ramps, long middle.
    let widths = vec![
        Fixed::ONE,
        Fixed::from_milli(2_500),
        Fixed::from_milli(3_000),
        Fixed::from_milli(2_500),
        Fixed::ONE,
        Fixed::ONE,
    ];
    let total = widths.iter().fold(Fixed::ZERO, |a, &w| a + w);
    let tess = Tessellation::new(widths, vec![Fixed::ONE], params)?;
    let mut highway =
        TessSystem::new(tess.clone(), CellId::new(5, 0), params)?.with_source(CellId::new(0, 0));

    println!("highway of 6 segments, total length {total} cells\n");

    let mut first_delivery = None;
    for round in 1..=1_500u64 {
        let out = highway.step();
        if first_delivery.is_none() && !out.consumed.is_empty() {
            first_delivery = Some(round);
        }
        // The tessellation analogues of Theorem 5 / Invariant 1, every round.
        check_safe_tess(&tess, params, highway.state())
            .map_err(|(c, a, b)| format!("separation violated on {c}: {a} vs {b}"))?;
        check_margins_tess(&tess, params, highway.state())
            .map_err(|(c, e)| format!("{e} overran segment {c}"))?;
    }

    let first = first_delivery.expect("highway delivered nothing");
    println!("first car through after {first} rounds (long segments add latency)");
    println!("cars entered:   {}", highway.inserted_total());
    println!("cars delivered: {}", highway.consumed_total());
    println!(
        "throughput:     {:.4} cars/round — within noise of the unit-cell highway:",
        highway.consumed_total() as f64 / 1_500.0
    );
    println!("segment *size* costs latency, not steady-state throughput (see EXPERIMENTS.md)");

    // Show the per-segment occupancy: long segments hold whole trains.
    println!("\ncars per segment right now:");
    for i in 0..6u16 {
        let id = CellId::new(i, 0);
        println!("  segment {i}: {:2} cars", highway.cell(id).members.len());
    }
    Ok(())
}
