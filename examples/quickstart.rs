//! Quickstart: build the paper's Figure 1 world, run it, watch entities flow.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! A 4×4 grid with a source at ⟨1,0⟩, the target at ⟨2,2⟩, and cell ⟨2,1⟩
//! crashed — exactly the schematic the paper opens with. The protocol routes
//! around the failure, keeps every pair of entities separated by `d = rs + l`,
//! and delivers everything to the target.

use cellular_flows::core::{safety, Params, System, SystemConfig};
use cellular_flows::grid::{CellId, GridDims};
use cellular_flows::sim::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // l = 0.2, rs = 0.05, v = 0.1 (all in cell-side units).
    let params = Params::from_milli(200, 50, 100)?;
    let config = SystemConfig::new(GridDims::square(4), CellId::new(2, 2), params)?
        .with_source(CellId::new(1, 0));
    let mut system = System::new(config);

    // Crash the cell from the schematic.
    system.fail(CellId::new(2, 1));

    println!("Initial state (T target, S source, x failed):\n");
    println!("{}", render::render(system.config(), system.state()));

    for round in 1..=120u64 {
        let events = system.step();
        for entity in &events.consumed {
            println!("round {round:3}: target consumed {entity}");
        }
        if round % 40 == 0 {
            println!("\nAfter {round} rounds:\n");
            println!("{}", render::render(system.config(), system.state()));
        }
    }

    println!("inserted: {}", system.inserted_total());
    println!("consumed: {}", system.consumed_total());
    println!("in flight: {}", system.state().entity_count());

    // The protocol's headline guarantee, checked mechanically:
    safety::check_safe(system.config(), system.state())?;
    println!("safety: OK — every entity pair is d-separated (Theorem 5)");
    Ok(())
}
