//! `cellflow` — command-line driver for the distributed cellular flows
//! system: run simulations, watch them as ASCII animations, regenerate the
//! paper's figures, and model-check small instances.

use std::process::ExitCode;

mod args;
mod commands;
mod record;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
