//! Deterministic flight recordings: `record`, `replay`, `diff`, `bisect`.
//!
//! A `.rec` file (see [`cellflow_telemetry::Recording`] for the container
//! and `cellflow_core::snapshot` for the state codec) carries everything
//! needed to re-derive the run it captured: the seed, the keyframe
//! cadence, a checksum of the full [`SystemConfig`], and a *scenario
//! line* — a canonical `kind key=value …` rendering of the campaign
//! parameters that [`RecScenario`] parses back. Because every runtime in
//! the workspace is deterministic per seed, `replay` re-drives the same
//! scenario with a fresh recorder and byte-compares the two recordings;
//! any mismatch is pinned to its first divergent round, cell, and
//! register, and the rounds leading up to it are dumped through the
//! bounded telemetry flight ring as a schema-valid JSONL artifact.

use std::collections::BTreeMap;

use cellflow_core::monitor::stabilization_bound;
use cellflow_core::snapshot::{
    self, diff_states, state_at, Recorder, RegisterDiff,
};
use cellflow_core::{CampaignSpec, FaultPlan, Params, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::Simulation;
use cellflow_telemetry::{Event, FlightRecorder, FrameKind, Recording};

use crate::args::Flags;

/// Default full-keyframe cadence: a keyframe every this many rounds, deltas
/// between. Seeks cost at most `interval - 1` delta applications.
pub const DEFAULT_KEYFRAME_INTERVAL: u64 = 16;

/// Rounds of history the divergence dump retains (the flight ring bound).
const DIVERGENCE_TAIL_ROUNDS: usize = 32;

/// A recordable scenario: the campaign parameters a `.rec` header's
/// scenario line round-trips through [`RecScenario::render`] /
/// [`RecScenario::parse`]. The seed and keyframe cadence live in the
/// header itself, not here.
#[derive(Clone, Debug, PartialEq)]
pub enum RecScenario {
    /// The shared-variable reference simulation, fault-free.
    Plain {
        /// Grid side.
        n: u16,
        /// Rounds to run.
        rounds: u64,
        /// Cell side length (milli-cells).
        l: i64,
        /// Safety radius (milli-cells).
        rs: i64,
        /// Per-round speed (milli-cells).
        v: i64,
    },
    /// The cascading-failure campaign (reference side), as
    /// `cellflow chaos --cascade`.
    Cascade {
        /// Grid side.
        n: u16,
        /// Campaign rounds (settle rounds are derived from the bound).
        rounds: u64,
        /// Per-cell occupancy capacity.
        capacity: u32,
        /// Overload trigger threshold.
        threshold: u32,
        /// Rounds the overload must sustain to trip.
        sustain: u32,
        /// Randomized admission backoff instead of overload crashes.
        backoff: bool,
        /// Backoff base pause.
        base: u64,
        /// Backoff max pause.
        max: u64,
        /// Optimistic restart delay (0 = crashes are permanent).
        restart: u64,
    },
    /// The scripted link-fault campaign (reference side), as
    /// `cellflow chaos --partition SPEC`.
    Partition {
        /// Grid side.
        n: u16,
        /// Campaign rounds.
        rounds: u64,
        /// The partition spec (`split@col=2`, `island@…`, `flaky@…`).
        spec: String,
        /// First cut round.
        start: u64,
        /// Heal round (`None` = never heals).
        heal: Option<u64>,
        /// Settle rounds appended after the campaign.
        settle: u64,
    },
    /// The seeded fault-injection campaign against the message-passing
    /// deployment, as `cellflow chaos`.
    Chaos {
        /// Grid side.
        n: u16,
        /// Rounds to run.
        rounds: u64,
        /// Faults and chaos are active for the first this-many rounds.
        active: u64,
        /// Message drop rate.
        drop: f64,
        /// Message delay rate.
        delay: f64,
        /// Message duplication rate.
        dup: f64,
        /// Message reorder rate.
        reorder: f64,
        /// Burst crashes.
        bursts: u32,
        /// Region blackouts.
        blackouts: u32,
        /// Flapping cells.
        flappers: u32,
        /// Hard thread crashes with re-spawn.
        hard: u32,
        /// Unrecoverable kills (the run degrades; no recording survives).
        kills: u32,
    },
    /// The adversarial state-corruption campaign's deployment phase, as
    /// `cellflow stabilize` (corruptions + a hard crash + a dirty tear
    /// over a durable snapshot store).
    Stabilize {
        /// Grid side.
        n: u16,
        /// Scripted corruptions.
        corruptions: u32,
        /// Corruption window.
        active: u64,
    },
}

impl RecScenario {
    /// The canonical scenario line stored in the `.rec` header.
    pub fn render(&self) -> String {
        match self {
            RecScenario::Plain { n, rounds, l, rs, v } => {
                format!("plain n={n} rounds={rounds} l={l} rs={rs} v={v}")
            }
            RecScenario::Cascade {
                n,
                rounds,
                capacity,
                threshold,
                sustain,
                backoff,
                base,
                max,
                restart,
            } => format!(
                "cascade n={n} rounds={rounds} capacity={capacity} threshold={threshold} \
                 sustain={sustain} backoff={} base={base} max={max} restart={restart}",
                u8::from(*backoff)
            ),
            RecScenario::Partition {
                n,
                rounds,
                spec,
                start,
                heal,
                settle,
            } => {
                let heal = match heal {
                    Some(h) => h.to_string(),
                    None => "none".to_string(),
                };
                format!(
                    "partition n={n} rounds={rounds} spec={spec} start={start} \
                     heal={heal} settle={settle}"
                )
            }
            RecScenario::Chaos {
                n,
                rounds,
                active,
                drop,
                delay,
                dup,
                reorder,
                bursts,
                blackouts,
                flappers,
                hard,
                kills,
            } => format!(
                "chaos n={n} rounds={rounds} active={active} drop={drop} delay={delay} \
                 dup={dup} reorder={reorder} bursts={bursts} blackouts={blackouts} \
                 flappers={flappers} hard={hard} kills={kills}"
            ),
            RecScenario::Stabilize {
                n,
                corruptions,
                active,
            } => format!("stabilize n={n} corruptions={corruptions} active={active}"),
        }
    }

    /// Parses a scenario line back. Inverse of [`RecScenario::render`].
    ///
    /// # Errors
    ///
    /// A malformed line, unknown kind, or missing/invalid field.
    pub fn parse(line: &str) -> Result<RecScenario, String> {
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().ok_or("empty scenario line")?;
        let mut kv: BTreeMap<&str, &str> = BTreeMap::new();
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("bad scenario token `{token}` (expected key=value)"))?;
            kv.insert(key, value);
        }
        let get = |key: &str| -> Result<&str, String> {
            kv.get(key)
                .copied()
                .ok_or_else(|| format!("scenario line missing `{key}`"))
        };
        fn num<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("bad scenario value `{raw}` for `{key}`"))
        }
        let scenario = match kind {
            "plain" => RecScenario::Plain {
                n: num("n", get("n")?)?,
                rounds: num("rounds", get("rounds")?)?,
                l: num("l", get("l")?)?,
                rs: num("rs", get("rs")?)?,
                v: num("v", get("v")?)?,
            },
            "cascade" => RecScenario::Cascade {
                n: num("n", get("n")?)?,
                rounds: num("rounds", get("rounds")?)?,
                capacity: num("capacity", get("capacity")?)?,
                threshold: num("threshold", get("threshold")?)?,
                sustain: num("sustain", get("sustain")?)?,
                backoff: num::<u8>("backoff", get("backoff")?)? != 0,
                base: num("base", get("base")?)?,
                max: num("max", get("max")?)?,
                restart: num("restart", get("restart")?)?,
            },
            "partition" => RecScenario::Partition {
                n: num("n", get("n")?)?,
                rounds: num("rounds", get("rounds")?)?,
                spec: get("spec")?.to_string(),
                start: num("start", get("start")?)?,
                heal: match get("heal")? {
                    "none" => None,
                    raw => Some(num("heal", raw)?),
                },
                settle: num("settle", get("settle")?)?,
            },
            "chaos" => RecScenario::Chaos {
                n: num("n", get("n")?)?,
                rounds: num("rounds", get("rounds")?)?,
                active: num("active", get("active")?)?,
                drop: num("drop", get("drop")?)?,
                delay: num("delay", get("delay")?)?,
                dup: num("dup", get("dup")?)?,
                reorder: num("reorder", get("reorder")?)?,
                bursts: num("bursts", get("bursts")?)?,
                blackouts: num("blackouts", get("blackouts")?)?,
                flappers: num("flappers", get("flappers")?)?,
                hard: num("hard", get("hard")?)?,
                kills: num("kills", get("kills")?)?,
            },
            "stabilize" => RecScenario::Stabilize {
                n: num("n", get("n")?)?,
                corruptions: num("corruptions", get("corruptions")?)?,
                active: num("active", get("active")?)?,
            },
            other => return Err(format!("unknown scenario kind `{other}`")),
        };
        Ok(scenario)
    }

    /// The system configuration the scenario runs — rebuilt identically by
    /// record and replay, and pinned by the header's config checksum.
    pub fn config(&self) -> Result<SystemConfig, String> {
        let standard = |n: u16| -> Result<SystemConfig, String> {
            if n < 3 {
                return Err("scenario grid must be at least 3×3".into());
            }
            let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
            Ok(SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
                .map_err(|e| e.to_string())?
                .with_source(CellId::new(1, 0)))
        };
        match self {
            RecScenario::Plain { n, l, rs, v, .. } => {
                if *n < 2 {
                    return Err("scenario grid must be at least 2×2".into());
                }
                let params = Params::from_milli(*l, *rs, *v).map_err(|e| e.to_string())?;
                Ok(
                    SystemConfig::new(GridDims::square(*n), CellId::new(1, n - 1), params)
                        .map_err(|e| e.to_string())?
                        .with_source(CellId::new(1, 0)),
                )
            }
            RecScenario::Cascade { n, capacity, .. } => {
                if *n < 4 {
                    return Err("cascade grids must be at least 4×4".into());
                }
                if *capacity == 0 {
                    return Err("cascade capacity must be positive".into());
                }
                Ok(standard(*n)?.with_capacity(*capacity))
            }
            RecScenario::Partition { n, .. }
            | RecScenario::Chaos { n, .. }
            | RecScenario::Stabilize { n, .. } => standard(*n),
        }
    }

    /// A recorder whose header pins this scenario, its config, `seed`, and
    /// the keyframe cadence. Record-time and replay-time recorders built
    /// here are identical by construction, so byte-comparing their output
    /// is a sound run-equality test.
    ///
    /// # Errors
    ///
    /// An invalid scenario (bad grid, zero capacity, …).
    pub fn recorder(&self, seed: u64, keyframe_interval: u64) -> Result<Box<Recorder>, String> {
        if keyframe_interval == 0 {
            return Err("--keyframe-interval must be positive".into());
        }
        let config = self.config()?;
        Ok(Box::new(Recorder::for_config(
            &config,
            seed,
            keyframe_interval,
            &self.render(),
        )))
    }

    /// Runs the scenario with a recorder attached and returns the finished
    /// recording bytes. This is the single drive path shared by `record`
    /// and `replay` — both produce bytes through this function, so a
    /// replay mismatch is a real divergence, not a harness artifact.
    ///
    /// # Errors
    ///
    /// An invalid scenario, or a run that degraded (e.g. a chaos kill
    /// timed a round out) and therefore produced no complete recording.
    pub fn drive(&self, seed: u64, keyframe_interval: u64) -> Result<Vec<u8>, String> {
        let config = self.config()?;
        let recorder = self.recorder(seed, keyframe_interval)?;
        match self {
            RecScenario::Plain { rounds, .. } => {
                let mut sim = Simulation::new(config, seed).with_recorder(recorder);
                sim.run(*rounds);
                let recorder = sim.take_recorder().expect("the recorder stays attached");
                Ok(recorder.finish())
            }
            RecScenario::Cascade {
                n,
                rounds,
                threshold,
                sustain,
                backoff,
                base,
                max,
                restart,
                ..
            } => {
                use cellflow_core::overload::{BackoffPolicy, OverloadTrigger};
                use cellflow_sim::cascade::{run_cascade_recorded, CascadeScenario};
                let bound = stabilization_bound(&config);
                let scenario = CascadeScenario {
                    config,
                    base: FaultPlan::new().crash_at(8, CellId::new(1, n / 2)),
                    trigger: OverloadTrigger::new(*threshold, *sustain),
                    backoff: backoff.then_some(BackoffPolicy {
                        base: (*base).max(1),
                        max: (*max).max((*base).max(1)),
                        seed,
                    }),
                    restart_after: (*restart > 0).then_some(*restart),
                    rounds: *rounds,
                    settle: bound + 2,
                    workers: 1,
                };
                let (_, recording) = run_cascade_recorded(&scenario, None, Some(recorder));
                recording.ok_or_else(|| "cascade run produced no recording".into())
            }
            RecScenario::Partition {
                rounds,
                spec,
                start,
                heal,
                settle,
                ..
            } => {
                use cellflow_sim::partition::{run_partition_recorded, PartitionScenario};
                let plan =
                    crate::commands::parse_partition_spec(spec, config.dims(), *start, *heal, seed)?;
                let scenario = PartitionScenario {
                    config,
                    plan,
                    base: FaultPlan::new(),
                    rounds: *rounds,
                    settle: *settle,
                    workers: 1,
                };
                let (_, recording) = run_partition_recorded(&scenario, None, Some(recorder));
                recording.ok_or_else(|| "partition run produced no recording".into())
            }
            RecScenario::Chaos {
                rounds,
                active,
                drop,
                delay,
                dup,
                reorder,
                bursts,
                blackouts,
                flappers,
                hard,
                kills,
                ..
            } => {
                use cellflow_net::{ChaosConfig, NetSystem};
                for (name, rate) in
                    [("drop", drop), ("delay", delay), ("dup", dup), ("reorder", reorder)]
                {
                    if !(0.0..=1.0).contains(rate) {
                        return Err(format!("chaos {name} rate {rate} is not a probability"));
                    }
                }
                let spec = CampaignSpec {
                    active_rounds: *active,
                    bursts: *bursts,
                    blackouts: *blackouts,
                    flappers: *flappers,
                    hard_crashes: *hard,
                    kills: *kills,
                    ..CampaignSpec::default()
                };
                let plan = FaultPlan::random_campaign(&config, &spec, seed);
                let net = NetSystem::new(config)
                    .map_err(|e| e.to_string())?
                    .with_plan(plan)
                    .with_chaos(ChaosConfig {
                        seed,
                        drop_rate: *drop,
                        delay_rate: *delay,
                        dup_rate: *dup,
                        reorder_rate: *reorder,
                        until_round: Some(*active),
                    });
                let (_, recording) = net
                    .run_monitored_recorded(*rounds, Vec::new(), Some(recorder))
                    .map_err(|e| format!("chaos run degraded ({e}); no recording survives"))?;
                recording.ok_or_else(|| "chaos run produced no recording".into())
            }
            RecScenario::Stabilize {
                corruptions,
                active,
                ..
            } => {
                use cellflow_net::{DurableStore, NetSystem, TearSpec};
                if *active < 6 {
                    return Err("stabilize active window must be at least 6 rounds".into());
                }
                let bound = stabilization_bound(&config);
                let spec = CampaignSpec {
                    active_rounds: *active,
                    bursts: 0,
                    blackouts: 0,
                    flappers: 0,
                    hard_crashes: 0,
                    kills: 0,
                    corruptions: *corruptions,
                    ..CampaignSpec::default()
                };
                // The same deployment campaign `cellflow stabilize` runs:
                // seeded corruptions plus a hard crash and a dirty tear
                // over a durable snapshot store.
                let hard_victim = CellId::new(2, 1);
                let tear_victim = CellId::new(2, 2);
                let (hard_at, hard_respawn) = (active / 3, 2 * active / 3);
                let (tear_at, tear_respawn) = (active / 2, active / 2 + 10);
                let rounds = (*active).max(tear_respawn) + bound + 2;
                let plan = FaultPlan::random_campaign(&config, &spec, seed)
                    .hard_crash_at(hard_at, hard_victim)
                    .recover_at(hard_respawn, hard_victim);
                let store_dir = std::env::temp_dir().join(format!(
                    "cellflow-rec-stabilize-{seed}-{}",
                    std::process::id()
                ));
                let store = DurableStore::create(&store_dir).map_err(|e| e.to_string())?;
                let net = NetSystem::new(config)
                    .map_err(|e| e.to_string())?
                    .with_plan(plan)
                    .with_store(std::sync::Arc::new(store))
                    .with_tear(TearSpec {
                        cell: tear_victim,
                        round: tear_at,
                        respawn: tear_respawn,
                    });
                let outcome = net.run_monitored_recorded(rounds, Vec::new(), Some(recorder));
                std::fs::remove_dir_all(&store_dir).ok();
                let (_, recording) = outcome.map_err(|e| e.to_string())?;
                recording.ok_or_else(|| "stabilize run produced no recording".into())
            }
        }
    }
}

/// The `--record FILE` / `--keyframe-interval` pair the campaign commands
/// (`chaos`, `stabilize`) accept: `Some((path, interval))` when a
/// recording was requested.
pub fn record_flags(flags: &Flags) -> Result<Option<(String, u64)>, String> {
    let out: String = flags.get("record", String::new())?;
    if out.is_empty() {
        return Ok(None);
    }
    let interval: u64 = flags.get("keyframe-interval", DEFAULT_KEYFRAME_INTERVAL)?;
    if interval == 0 {
        return Err("--keyframe-interval must be positive".into());
    }
    Ok(Some((out, interval)))
}

/// Writes a campaign run's recording bytes and prints the confirmation
/// line (byte-count only — no wall-clock, so campaign reports stay
/// byte-identical per seed).
pub fn save_recording(out: &str, bytes: Option<Vec<u8>>) -> Result<(), String> {
    let bytes = bytes.ok_or("internal: the attached recorder returned no recording")?;
    let rec = Recording::parse(&bytes)
        .map_err(|e| format!("internal: fresh recording failed to parse: {e}"))?;
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "recording:      {} frames -> {out} ({} bytes)",
        rec.frames.len(),
        bytes.len()
    );
    Ok(())
}

/// Builds the scenario `cellflow record` was asked for from its flags
/// (shared with the `--record` flag on `chaos`). Flag names and defaults
/// mirror the sibling commands.
fn scenario_from_flags(flags: &Flags) -> Result<RecScenario, String> {
    let kind: String = flags.get("scenario", "plain".to_string())?;
    match kind.as_str() {
        "plain" => Ok(RecScenario::Plain {
            n: flags.get("n", 8)?,
            rounds: flags.get("rounds", 500)?,
            l: flags.get("l", 250)?,
            rs: flags.get("rs", 50)?,
            v: flags.get("v", 200)?,
        }),
        "cascade" => {
            let capacity: u32 = flags.get("capacity", 2)?;
            Ok(RecScenario::Cascade {
                n: flags.get("n", 5)?,
                rounds: flags.get("rounds", 160)?,
                capacity,
                threshold: flags.get("threshold", capacity)?,
                sustain: flags.get("sustain", 2)?,
                backoff: flags.has("backoff"),
                base: flags.get("backoff-base", 4)?,
                max: flags.get("backoff-max", 32)?,
                restart: flags.get("restart", 0)?,
            })
        }
        "partition" => {
            let rounds: u64 = flags.get("rounds", 120)?;
            let start: u64 = flags.get("start", 10)?;
            let heal = if flags.has("no-heal") {
                None
            } else {
                Some(flags.get("heal", (rounds * 2) / 3)?)
            };
            let n: u16 = flags.get("n", 5)?;
            if n < 3 {
                return Err("--n must be at least 3".into());
            }
            let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
            let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
                .map_err(|e| e.to_string())?;
            let bound = stabilization_bound(&config);
            Ok(RecScenario::Partition {
                n,
                rounds,
                spec: flags.get("partition", "split@col=2".to_string())?,
                start,
                heal,
                settle: flags.get("settle", bound + 2)?,
            })
        }
        "chaos" => {
            let rounds: u64 = flags.get("rounds", 300)?;
            Ok(RecScenario::Chaos {
                n: flags.get("n", 6)?,
                rounds,
                active: flags.get("active", 100.min(rounds))?,
                drop: flags.get("drop", 0.05)?,
                delay: flags.get("delay", 0.05)?,
                dup: flags.get("dup", 0.1)?,
                reorder: flags.get("reorder", 0.1)?,
                bursts: flags.get("bursts", 2)?,
                blackouts: flags.get("blackouts", 1)?,
                flappers: flags.get("flappers", 1)?,
                hard: flags.get("hard", 1)?,
                kills: flags.get("kills", 0)?,
            })
        }
        "stabilize" => Ok(RecScenario::Stabilize {
            n: flags.get("n", 6)?,
            corruptions: flags.get("corruptions", 3)?,
            active: flags.get("active", 30)?,
        }),
        other => Err(format!(
            "unknown --scenario `{other}` (expected plain, cascade, partition, chaos, \
             or stabilize)"
        )),
    }
}

/// `cellflow record`: run a scenario with the recorder attached and write
/// the `.rec` file.
pub fn record(flags: &Flags) -> Result<(), String> {
    let scenario = scenario_from_flags(flags)?;
    let seed: u64 = flags.get("seed", 1)?;
    let interval: u64 = flags.get("keyframe-interval", DEFAULT_KEYFRAME_INTERVAL)?;
    let out: String = flags.get("record-out", "run.rec".to_string())?;

    println!("recording: {}", scenario.render());
    let bytes = scenario.drive(seed, interval)?;
    let rec = Recording::parse(&bytes)
        .map_err(|e| format!("internal: fresh recording failed to parse: {e}"))?;
    std::fs::write(&out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    let (first, last) = rec.round_span().ok_or("internal: empty recording")?;
    println!(
        "wrote {out}: rounds {first}..{last} in {} frames ({} bytes), seed {seed}, \
         keyframe every {interval}",
        rec.frames.len(),
        bytes.len()
    );
    println!("content id: {:016x}", rec.header.content_id);
    Ok(())
}

/// Reads and parses a `.rec` file, mapping parse errors to the
/// `{path}:{offset}: {message}` shape the other artifact validators use.
fn load(path: &str) -> Result<(Vec<u8>, Recording), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let rec = Recording::parse(&bytes).map_err(|e| format!("{path}:{e}"))?;
    Ok((bytes, rec))
}

/// `cellflow replay FILE.rec`: validate every frame checksum, re-drive the
/// header's scenario with the header's seed, and byte-compare. Exits
/// nonzero naming the first divergent round (and the disagreeing cell and
/// register) on any mismatch, dumping the preceding rounds through the
/// flight ring.
pub fn replay(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("replay needs a file: cellflow replay <run.rec>".into());
    };
    let (bytes, rec) = load(path)?;
    let scenario = RecScenario::parse(&rec.header.scenario)
        .map_err(|e| format!("{path}: bad scenario line: {e}"))?;
    let config = scenario.config().map_err(|e| format!("{path}: {e}"))?;
    let checksum = snapshot::config_checksum(&config);
    if checksum != rec.header.config_checksum {
        return Err(format!(
            "{path}: config checksum mismatch (header {:016x}, rebuilt {checksum:016x}) — \
             the recording was made by an incompatible build",
            rec.header.config_checksum
        ));
    }
    println!(
        "replaying {path}: {} ({} frames, seed {})",
        rec.header.scenario, rec.header.rounds, rec.header.seed
    );
    let fresh_bytes = scenario.drive(rec.header.seed, rec.header.keyframe_interval)?;
    if fresh_bytes == bytes {
        println!(
            "replay OK: {} frames byte-identical (content id {:016x})",
            rec.frames.len(),
            rec.header.content_id
        );
        return Ok(());
    }
    let fresh = Recording::parse(&fresh_bytes)
        .map_err(|e| format!("internal: fresh recording failed to parse: {e}"))?;
    match snapshot::bisect(&rec, &fresh).map_err(|e| format!("{path}: {e}"))? {
        Some(d) => {
            let dims = snapshot::header_dims(&rec.header).map_err(|e| format!("{path}: {e}"))?;
            let diffs = diverging_registers(&rec, &fresh, dims, d.round)?;
            print!("{}", render_diff_table(&diffs));
            let dump = dump_path(path);
            let rounds = write_divergence_dump(&rec, d.round, &diffs, &dump)?;
            println!("flight tail: last {rounds} round(s) -> {}", dump.display());
            Err(format!(
                "{path}: replay DIVERGED at round {} ({} at {}) — recorded {} vs replayed {}",
                d.round,
                d.register,
                cell_label(d.cell),
                d.a,
                d.b
            ))
        }
        // Same states, different bytes: the framing itself was altered.
        None => Err(format!(
            "{path}: replay bytes differ but every decoded state matches — \
             the recording's framing was tampered with"
        )),
    }
}

/// The decoded per-register differences between two recordings at `round`.
fn diverging_registers(
    a: &Recording,
    b: &Recording,
    dims: GridDims,
    round: u64,
) -> Result<Vec<RegisterDiff>, String> {
    let sa = state_at(a, round)?;
    let sb = state_at(b, round)?;
    Ok(diff_states(dims, &sa, &sb))
}

/// `<file>.divergence.jsonl` next to the recording.
fn dump_path(rec_path: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(format!("{rec_path}.divergence.jsonl"))
}

/// `(global)` for the run-wide register row, the cell id otherwise.
fn cell_label(cell: Option<CellId>) -> String {
    match cell {
        Some(c) => c.to_string(),
        None => "(global)".to_string(),
    }
}

/// Renders register differences as an aligned plain-text table, one row
/// per disagreeing register.
fn render_diff_table(diffs: &[RegisterDiff]) -> String {
    let header = ["cell", "register", "A", "B"];
    let rows: Vec<[String; 4]> = diffs
        .iter()
        .map(|d| {
            [
                cell_label(d.cell),
                d.register.to_string(),
                d.a.clone(),
                d.b.clone(),
            ]
        })
        .collect();
    let mut widths = header.map(|h| h.chars().count());
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: [&str; 4]| -> String {
        let mut line = String::new();
        for (k, (col, w)) in cols.iter().zip(widths.iter()).enumerate() {
            if k > 0 {
                line.push_str("  ");
            }
            line.push_str(col);
            for _ in col.chars().count()..*w {
                line.push(' ');
            }
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row([&row[0], &row[1], &row[2], &row[3]]));
        out.push('\n');
    }
    out
}

/// Feeds the rounds leading up to `round` through the bounded telemetry
/// flight ring and writes the rendered dump: per-round `round_summary`
/// lines reconstructed from the recording's decoded states, then one
/// `violation` line per diverging register at the divergence round. The
/// artifact is a schema-valid JSONL stream (`cellflow inspect` reads it).
/// Returns the number of rounds the tail retained.
fn write_divergence_dump(
    rec: &Recording,
    round: u64,
    diffs: &[RegisterDiff],
    out: &std::path::Path,
) -> Result<usize, String> {
    let mut ring = FlightRecorder::new(DIVERGENCE_TAIL_ROUNDS);
    let (first, last) = rec.round_span().ok_or("recording holds no frames")?;
    let round = round.clamp(first, last);
    let from = round
        .saturating_sub(DIVERGENCE_TAIL_ROUNDS as u64 - 1)
        .max(first);
    let mut prev = state_at(rec, from.saturating_sub(1).max(first))?;
    for r in from..=round {
        let state = state_at(rec, r)?;
        // Insertions advance the run-wide entity counter; deliveries are
        // the insertions that did not stay in flight.
        let inserted = state.next_entity_id.saturating_sub(prev.next_entity_id);
        let held_before = prev.entity_count() as u64;
        let held_after = state.entity_count() as u64;
        let consumed = (held_before + inserted).saturating_sub(held_after);
        ring.push(
            r,
            Event::RoundSummary {
                consumed,
                inserted,
                blocked: 0,
                moved: 0,
            },
        );
        prev = state;
    }
    for d in diffs {
        ring.push(
            round,
            Event::Violation {
                monitor: "divergence".to_string(),
                detail: format!("{} at {}: {} ≠ {}", d.register, cell_label(d.cell), d.a, d.b),
            },
        );
    }
    let rounds = ring.rounds_held();
    std::fs::write(out, ring.render_dump("divergence", round))
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(rounds)
}

/// Checks that two recordings are comparable (same grid, same config).
fn check_comparable(
    path_a: &str,
    a: &Recording,
    path_b: &str,
    b: &Recording,
) -> Result<GridDims, String> {
    if (a.header.nx, a.header.ny) != (b.header.nx, b.header.ny) {
        return Err(format!(
            "{path_a} is a {}×{} grid but {path_b} is {}×{} — nothing to compare",
            a.header.nx, a.header.ny, b.header.nx, b.header.ny
        ));
    }
    if a.header.config_checksum != b.header.config_checksum {
        return Err(format!(
            "{path_a} and {path_b} were recorded under different configs \
             ({:016x} vs {:016x})",
            a.header.config_checksum, b.header.config_checksum
        ));
    }
    snapshot::header_dims(&a.header).map_err(|e| format!("{path_a}: {e}"))
}

/// Two positional `.rec` paths followed by optional flags.
fn two_paths<'a>(args: &'a [String], usage: &str) -> Result<(&'a str, &'a str, Flags), String> {
    let mut paths = args.iter().take_while(|a| !a.starts_with("--"));
    let (Some(a), Some(b)) = (paths.next(), paths.next()) else {
        return Err(usage.to_string());
    };
    let flags = Flags::parse(&args[2..])?;
    Ok((a, b, flags))
}

/// `cellflow diff A.rec B.rec [--round R]`: render the per-cell register
/// differences at `--round` (default: the first divergent round). Exits
/// nonzero when any register differs.
pub fn diff(args: &[String]) -> Result<(), String> {
    let (path_a, path_b, flags) =
        two_paths(args, "diff needs two files: cellflow diff <a.rec> <b.rec> [--round R]")?;
    let (_, a) = load(path_a)?;
    let (_, b) = load(path_b)?;
    let dims = check_comparable(path_a, &a, path_b, &b)?;
    let round: u64 = flags.get("round", u64::MAX)?;

    let at = if round != u64::MAX {
        round
    } else {
        match snapshot::bisect(&a, &b).map_err(|e| e.to_string())? {
            Some(d) => d.round,
            None => {
                let span_a = a.round_span().ok_or("empty recording")?;
                let span_b = b.round_span().ok_or("empty recording")?;
                println!(
                    "identical: rounds {}..{} agree in every register",
                    span_a.0.max(span_b.0),
                    span_a.1.min(span_b.1)
                );
                return Ok(());
            }
        }
    };
    let diffs = diverging_registers(&a, &b, dims, at)
        .map_err(|e| format!("round {at}: {e} (use --round within both recordings)"))?;
    if diffs.is_empty() {
        println!("identical at round {at}: every register agrees");
        return Ok(());
    }
    println!("round {at}: {} register(s) differ (A = {path_a}, B = {path_b})\n", diffs.len());
    print!("{}", render_diff_table(&diffs));
    Err(format!("{} register difference(s) at round {at}", diffs.len()))
}

/// `cellflow bisect A.rec B.rec`: seek the first divergent round via the
/// keyframe index (O(log R) seek + one delta walk), then report the exact
/// round, cell, and register, render the full register diff there, and
/// dump the preceding rounds through the flight ring.
pub fn bisect(args: &[String]) -> Result<(), String> {
    let (path_a, path_b, _) =
        two_paths(args, "bisect needs two files: cellflow bisect <a.rec> <b.rec>")?;
    let (_, a) = load(path_a)?;
    let (_, b) = load(path_b)?;
    let dims = check_comparable(path_a, &a, path_b, &b)?;
    match snapshot::bisect(&a, &b).map_err(|e| e.to_string())? {
        None => {
            println!("identical: no divergence over the common round span");
            Ok(())
        }
        Some(d) => {
            println!("first divergence: round {}", d.round);
            println!("  cell:     {}", cell_label(d.cell));
            println!("  register: {}", d.register);
            println!("  A: {}   B: {}", d.a, d.b);
            let diffs = diverging_registers(&a, &b, dims, d.round)?;
            println!();
            print!("{}", render_diff_table(&diffs));
            let dump = dump_path(path_a);
            let rounds = write_divergence_dump(&a, d.round, &diffs, &dump)?;
            println!("flight tail: last {rounds} round(s) -> {}", dump.display());
            Ok(())
        }
    }
}

/// `cellflow inspect FILE.rec`: print the header, census the frames, and
/// validate every checksum (parse already did). Errors carry
/// `{path}:{offset}:` like the JSONL validators carry `{path}:{line}:`.
pub fn inspect_rec(path: &str) -> Result<(), String> {
    let (bytes, rec) = load(path)?;
    let h = &rec.header;
    let keyframes = rec
        .frames
        .iter()
        .filter(|f| f.kind == FrameKind::Keyframe)
        .count();
    println!(
        "{path}: recording schema v{}, {} bytes, every frame checksum valid",
        h.schema,
        bytes.len()
    );
    println!("  scenario:          {}", h.scenario);
    println!("  grid:              {}×{}", h.nx, h.ny);
    println!("  seed:              {}", h.seed);
    println!("  keyframe interval: {}", h.keyframe_interval);
    println!(
        "  rounds:            {} ({} frames: {keyframes} keyframes, {} deltas)",
        h.rounds,
        rec.frames.len(),
        rec.frames.len() - keyframes
    );
    println!("  config checksum:   {:016x}", h.config_checksum);
    println!("  content id:        {:016x}", h.content_id);
    println!("  config:            {}", h.config);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_lines_round_trip() {
        let scenarios = [
            RecScenario::Plain { n: 6, rounds: 40, l: 250, rs: 50, v: 200 },
            RecScenario::Cascade {
                n: 5,
                rounds: 120,
                capacity: 2,
                threshold: 2,
                sustain: 2,
                backoff: true,
                base: 4,
                max: 32,
                restart: 0,
            },
            RecScenario::Partition {
                n: 5,
                rounds: 100,
                spec: "split@col=2".to_string(),
                start: 10,
                heal: Some(70),
                settle: 52,
            },
            RecScenario::Partition {
                n: 5,
                rounds: 100,
                spec: "flaky@200".to_string(),
                start: 10,
                heal: None,
                settle: 52,
            },
            RecScenario::Chaos {
                n: 4,
                rounds: 80,
                active: 40,
                drop: 0.05,
                delay: 0.0,
                dup: 0.1,
                reorder: 0.1,
                bursts: 2,
                blackouts: 1,
                flappers: 1,
                hard: 1,
                kills: 0,
            },
            RecScenario::Stabilize { n: 4, corruptions: 3, active: 20 },
        ];
        for sc in scenarios {
            let line = sc.render();
            let back = RecScenario::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, sc, "{line}");
        }
    }

    #[test]
    fn scenario_parse_rejects_garbage() {
        assert!(RecScenario::parse("").is_err());
        assert!(RecScenario::parse("warp n=4").is_err());
        assert!(RecScenario::parse("plain n=4").is_err(), "missing fields");
        assert!(RecScenario::parse("plain n=four rounds=1 l=1 rs=1 v=1").is_err());
        assert!(RecScenario::parse("plain n 4").is_err(), "not key=value");
    }

    #[test]
    fn plain_drive_is_reproducible_and_parses() {
        let sc = RecScenario::Plain { n: 4, rounds: 25, l: 250, rs: 50, v: 200 };
        let a = sc.drive(7, 8).expect("drive");
        let b = sc.drive(7, 8).expect("drive");
        assert_eq!(a, b, "same seed, same bytes");
        let rec = Recording::parse(&a).expect("parse");
        // 25 engine rounds plus the opening keyframe at round 0.
        assert_eq!(rec.header.rounds, 26);
        assert_eq!(rec.round_span(), Some((0, 25)));
        assert_eq!(rec.header.scenario, sc.render());
        assert_eq!(
            rec.header.config_checksum,
            snapshot::config_checksum(&sc.config().unwrap())
        );
    }

    #[test]
    fn diff_table_alignment_is_stable() {
        let diffs = vec![
            RegisterDiff {
                cell: None,
                register: "next_entity_id",
                a: "3".to_string(),
                b: "4".to_string(),
            },
            RegisterDiff {
                cell: Some(CellId::new(1, 2)),
                register: "dist",
                a: "∞".to_string(),
                b: "2".to_string(),
            },
        ];
        let table = render_diff_table(&diffs);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("cell"));
        assert!(lines[1].contains("next_entity_id"));
        assert!(lines[2].contains("⟨1, 2⟩"));
    }
}
