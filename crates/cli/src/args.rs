//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed flags: `--key value` pairs plus bare boolean switches.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses everything after the subcommand. Flags look like `--key value`;
    /// a flag followed by another flag (or end of input) is a boolean switch.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut k = 0;
        while k < args.len() {
            let arg = &args[k];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}` (flags start with --)"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let next_is_value = args
                .get(k + 1)
                .map(|n| !n.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                flags.values.insert(key.to_string(), args[k + 1].clone());
                k += 2;
            } else {
                flags.switches.push(key.to_string());
                k += 1;
            }
        }
        Ok(flags)
    }

    /// A numeric or string value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --{key}")),
        }
    }

    /// `true` if the boolean switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(&argv("--n 8 --watch --rounds 100")).unwrap();
        assert_eq!(f.get("n", 0u16).unwrap(), 8);
        assert_eq!(f.get("rounds", 0u64).unwrap(), 100);
        assert!(f.has("watch"));
        assert!(!f.has("quiet"));
        assert_eq!(f.get("missing", 42u32).unwrap(), 42);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Flags::parse(&argv("positional")).is_err());
        assert!(Flags::parse(&argv("--")).is_err());
        let f = Flags::parse(&argv("--n eight")).unwrap();
        assert!(f.get("n", 0u16).is_err());
    }
}
