//! placeholder
