//! Subcommand implementations.

use cellflow_core::mc::BoundedSystem;
use cellflow_core::{safety, Params, System, SystemConfig};
use cellflow_dts::{check_invariant, ExploreConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::failure::RandomFailRecover;
use cellflow_sim::scenario;
use cellflow_sim::sweep::default_threads;
use cellflow_sim::table::format_table;
use cellflow_sim::{render, Simulation};

use crate::args::Flags;

/// Top-level usage text.
pub const USAGE: &str = "\
cellflow — safe and stabilizing distributed cellular flows (ICDCS 2010)

USAGE:
  cellflow run   [--n 8] [--rounds 500] [--l 250] [--rs 50] [--v 200]
                 [--pf 0.0] [--pr 0.0] [--seed 1] [--watch] [--heatmap]
  cellflow run3d [--n 4] [--nz 3] [--rounds 500]    the 3-D extension
  cellflow multi [--n 7] [--rounds 2000] [--capacity 1]
                                     crossing multi-commodity flows
  cellflow demo                      ASCII rendering of the paper's Figure 1
  cellflow fig7  [--rounds 2500]     regenerate Figure 7 (throughput vs rs)
  cellflow fig8  [--rounds 2500]     regenerate Figure 8 (throughput vs turns)
  cellflow fig9  [--rounds 20000]    regenerate Figure 9 (throughput vs pf)
  cellflow paths [--rounds 2500]     throughput vs path length
  cellflow mc    [--budget 2] [--fallible 1] [--recovery] [--capacity 0]
                 [--cut]             exhaustively model-check safety
                                     (--capacity C additionally checks
                                     occupancy ≤ C in every state; --cut
                                     severs the corridor mid-way with a
                                     permanent link partition and checks
                                     safety on the split topology)
  cellflow chaos [--n 6] [--rounds 300] [--seed 1] [--active 100]
                 [--drop 0.05] [--delay 0.05] [--dup 0.1] [--reorder 0.1]
                 [--bursts 2] [--blackouts 1] [--flappers 1] [--hard 1]
                 [--kills 0] [--timeout-ms 5000] [--shard-workers 1]
                                     seeded fault-injection campaign against
                                     the message-passing runtime, judged by
                                     online invariant monitors
  cellflow chaos --cascade [--n 5] [--rounds 160] [--seed 1] [--capacity 2]
                 [--threshold 2] [--sustain 2] [--backoff]
                 [--backoff-base 4] [--backoff-max 32] [--restart 0]
                 [--budget 4294967295] [--timeout-ms 5000]
                 [--shard-workers 1]
                                     cascading-failure campaign on a
                                     finite-capacity grid: overloaded cells
                                     crash endogenously and shed load onto
                                     neighbors (--backoff swaps crashes for
                                     randomized Feldmann-style pauses;
                                     --restart N optimistically restarts
                                     crashed cells, disciplined by the
                                     supervisor's restart --budget);
                                     byte-identical report per seed
  cellflow chaos --partition SPEC [--n 5] [--rounds 120] [--start 10]
                 [--heal 80] [--no-heal] [--settle B+2] [--seed 1]
                 [--timeout-ms 5000] [--shard-workers 1]
                                     scripted link-fault / split-brain
                                     campaign: SPEC is split@col=C,
                                     split@row=R, island@i0,j0,i1,j1, or
                                     flaky@MILLI (seeded intermittent cuts,
                                     MILLI/1000 per directed edge per
                                     round). Cuts run rounds [start, heal);
                                     the report certifies safety through
                                     the split and re-stabilization within
                                     2N²+2 of the heal, is sealed with a
                                     checksum, and is byte-identical per
                                     seed; the same schedule then replays
                                     on the message-passing deployment and
                                     must match the reference bit for bit
  cellflow stabilize [--n 6] [--seed 1] [--corruptions 3] [--active 30]
                 [--timeout-ms 5000]
                                     adversarial state-corruption campaign:
                                     certify re-stabilization within the
                                     2N²+2 bound (Theorem 10) on both the
                                     shared-variable reference and the
                                     deployment with durable-snapshot
                                     crash recovery; byte-identical report
                                     per seed, minimal counterexample on
                                     failure
  cellflow record [--scenario plain|cascade|partition|chaos|stabilize]
                 [--seed 1] [--keyframe-interval 16] [--record-out run.rec]
                 [scenario params as in the sibling command]
                                     run a scenario with the deterministic
                                     flight recorder attached and write a
                                     checksummed .rec recording: one full
                                     keyframe every --keyframe-interval
                                     rounds, compact state deltas between
                                     (chaos / cascade / partition /
                                     stabilize also accept --record FILE
                                     to capture their own run directly)
  cellflow replay FILE.rec           re-drive the recording's scenario from
                                     its header (seed, config, campaign)
                                     and verify the rerun is byte-identical
                                     frame by frame; on divergence, exits
                                     nonzero naming the first divergent
                                     round, cell, and register, and dumps
                                     the preceding rounds through the
                                     flight ring as FILE.divergence.jsonl
  cellflow diff A.rec B.rec [--round R]
                                     per-cell register diff (dist, next,
                                     token, signal, occupancy, …) between
                                     two recordings at --round (default:
                                     their first divergent round); exits
                                     nonzero when any register differs
  cellflow bisect A.rec B.rec        binary-search the first divergent
                                     round via the keyframe index and
                                     report the exact round, cell, and
                                     register, plus the flight-ring dump
                                     of the rounds leading up to it
  cellflow bench [--quick] [--out BENCH_PR3.json]
                 [--telemetry-out BENCH_PR5.json]
                 [--mega-out BENCH_PR8.json]
                 [--trace-overhead-out BENCH_PR9.json]
                 [--recording-overhead-out BENCH_PR10.json]
                                     machine-readable engine-vs-legacy perf
                                     baseline over the fixed scenario matrix
                                     (asserts equal semantics and zero
                                     steady-state allocations first), the
                                     telemetry-off vs telemetry-on overhead
                                     baseline, the mega-grid matrix
                                     (sparse active-set vs dense, sharded
                                     1/2/4/8-worker scaling, 64\u{b2} up to
                                     1024\u{b2}; --quick caps it at 128\u{b2}),
                                     the causal-tracing overhead baseline,
                                     and the flight-recording overhead
                                     baseline — all five back-to-back
  cellflow bench --check [--baseline-dir DIR]
                                     perf-regression harness: rerun every
                                     matrix in quick mode and compare
                                     against the committed BENCH_PR*.json
                                     baselines inside tolerance bands
                                     (speedups must not collapse, overhead
                                     ratios must not blow up, steady-state
                                     allocations must stay zero); exits
                                     nonzero on any regression
  cellflow metrics [--n 6] [--rounds 200] [--seed 1] [--prom] [--out FILE]
                 [--trace-out FILE]  run an instrumented reference sim and
                                     deployment, render per-phase latency
                                     tables (--prom additionally prints the
                                     Prometheus text exposition; --out
                                     writes it to FILE; --trace-out streams
                                     the sim's causal span trees as JSONL)
  cellflow inspect FILE [--rows 40]  validate a telemetry artifact and
                                     render it: JSONL event streams get a
                                     round timeline, Prometheus expositions
                                     a conformance summary, and .rec
                                     recordings a header report with every
                                     frame checksum verified
  cellflow trace FILE [--top 10] [--round R] [--wall]
                                     analyze the causal spans in a JSONL
                                     event stream: validate causality, then
                                     render per-round critical-path chains,
                                     the slowest-cell table, and the span
                                     profile; names the last-arriving cells
                                     of every timed-out round (--wall adds
                                     the measured-nanosecond sections)
  cellflow help                      this text

chaos and stabilize accept --telemetry [--trace-out F] [--flight-out F]
[--metrics-out F]: stream round events as schema-versioned JSONL, dump the
flight recorder on any monitor violation or timeout, and write the metric
registry as a Prometheus exposition. Adding --trace (which implies
--telemetry) stamps every message with its sender's deterministic
cell-round id and emits per-round causal span trees — round root, fault /
recover / corrupt leaves, the barrier's critical path, and per-cell work —
into the same stream, ready for `cellflow trace`.

--shard-workers W runs the shared-variable reference's sparse engine on W
row-band shard threads. Reports are byte-identical at every W — the CI
smoke job diffs W=1 against W=4 to pin that.

All lengths (--l, --rs, --v) are in milli-cells: 250 = 0.25 cell sides.";

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    // `inspect`, `trace`, `replay`, `diff`, and `bisect` take positional
    // file paths, which the flag parser rejects.
    if cmd == "inspect" {
        return inspect(&argv[1..]);
    }
    if cmd == "trace" {
        return trace(&argv[1..]);
    }
    if cmd == "replay" {
        return crate::record::replay(&argv[1..]);
    }
    if cmd == "diff" {
        return crate::record::diff(&argv[1..]);
    }
    if cmd == "bisect" {
        return crate::record::bisect(&argv[1..]);
    }
    let flags = Flags::parse(&argv[1..])?;
    match cmd.as_str() {
        "run" => run(&flags),
        "run3d" => run3d(&flags),
        "multi" => multi(&flags),
        "demo" => demo(),
        "fig7" => fig(&flags, Fig::Seven),
        "fig8" => fig(&flags, Fig::Eight),
        "fig9" => fig(&flags, Fig::Nine),
        "paths" => paths(&flags),
        "mc" => mc(&flags),
        "chaos" => chaos(&flags),
        "stabilize" => stabilize(&flags),
        "record" => crate::record::record(&flags),
        "bench" => bench(&flags),
        "metrics" => metrics(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn run(flags: &Flags) -> Result<(), String> {
    let n: u16 = flags.get("n", 8)?;
    if n < 2 {
        return Err("--n must be at least 2".into());
    }
    let rounds: u64 = flags.get("rounds", 500)?;
    let l: i64 = flags.get("l", 250)?;
    let rs: i64 = flags.get("rs", 50)?;
    let v: i64 = flags.get("v", 200)?;
    let pf: f64 = flags.get("pf", 0.0)?;
    let pr: f64 = flags.get("pr", 0.0)?;
    let seed: u64 = flags.get("seed", 1)?;
    let every: u64 = flags.get("every", 10)?;
    let watch = flags.has("watch");
    let show_heatmap = flags.has("heatmap");

    let params = Params::from_milli(l, rs, v).map_err(|e| e.to_string())?;
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0));
    let mut sim = Simulation::new(config, seed);
    if pf > 0.0 || pr > 0.0 {
        sim = sim.with_failure_model(RandomFailRecover::new(pf, pr, seed));
    }

    let mut heat = cellflow_sim::heatmap::OccupancyGrid::new(sim.system().config().dims());
    for round in 0..rounds {
        sim.step();
        if show_heatmap {
            heat.record(sim.system().config(), sim.system().state());
        }
        if watch && round % every.max(1) == 0 {
            println!("\x1B[2J\x1B[H-- round {round} --");
            println!(
                "{}",
                render::render(sim.system().config(), sim.system().state())
            );
            std::thread::sleep(std::time::Duration::from_millis(60));
        }
    }

    let m = sim.metrics();
    println!("rounds:            {}", m.rounds());
    println!("inserted:          {}", m.inserted_total());
    println!("consumed:          {}", m.consumed_total());
    println!("in flight:         {}", sim.system().state().entity_count());
    println!("throughput:        {:.4}", m.throughput());
    println!("blocked per round: {:.2}", m.mean_blocked());
    match safety::check_safe(sim.system().config(), sim.system().state()) {
        Ok(()) => println!("safety:            OK (Theorem 5 predicate holds)"),
        Err(v) => println!("safety:            VIOLATED — {v}"),
    }
    if show_heatmap {
        println!(
            "\noccupancy heat map (9 = hottest cell {}):",
            heat.hottest()
        );
        println!("{}", heat.render());
    }
    Ok(())
}

fn run3d(flags: &Flags) -> Result<(), String> {
    use cellflow_cube::{safety, CellId3, Dims3, System3, SystemConfig3};
    let n: u16 = flags.get("n", 4)?;
    let nz: u16 = flags.get("nz", 3)?;
    if n < 2 || nz < 1 {
        return Err("--n must be ≥ 2 and --nz ≥ 1".into());
    }
    let rounds: u64 = flags.get("rounds", 500)?;
    let l: i64 = flags.get("l", 200)?;
    let rs: i64 = flags.get("rs", 50)?;
    let v: i64 = flags.get("v", 150)?;
    let params = Params::from_milli(l, rs, v).map_err(|e| e.to_string())?;
    let config = SystemConfig3::new(
        Dims3::new(n, n, nz),
        CellId3::new(n - 1, n - 1, nz - 1),
        params,
    )
    .map_err(|e| e.to_string())?
    .with_source(CellId3::new(0, 0, 0));
    let mut sky = System3::new(config);
    sky.run(rounds);
    println!("rounds:     {rounds}");
    println!("launched:   {}", sky.inserted_total());
    println!("landed:     {}", sky.consumed_total());
    println!("airborne:   {}", sky.state().entity_count());
    println!(
        "throughput: {:.4}",
        sky.consumed_total() as f64 / rounds.max(1) as f64
    );
    match safety::check_safe3(sky.config(), sky.state()) {
        Ok(()) => println!("safety:     OK (3-D separation predicate holds)"),
        Err(viol) => println!("safety:     VIOLATED — {viol}"),
    }
    Ok(())
}

fn multi(flags: &Flags) -> Result<(), String> {
    use cellflow_multiflow::{safety, FlowType, MultiConfig, MultiSystem};
    let n: u16 = flags.get("n", 7)?;
    if n < 5 {
        return Err("--n must be at least 5 for the crossing pattern".into());
    }
    let rounds: u64 = flags.get("rounds", 2_000)?;
    let capacity: usize = flags.get("capacity", 1)?;
    let params = Params::from_milli(200, 50, 150).expect("static parameters are valid");
    let mid = n / 2;
    let config = MultiConfig::new(GridDims::square(n), params)
        .map_err(|e| e.to_string())?
        .with_flow(FlowType(0), CellId::new(0, mid), CellId::new(n - 1, mid))
        .map_err(|e| e.to_string())?
        .with_flow(FlowType(1), CellId::new(mid, 0), CellId::new(mid, n - 1))
        .map_err(|e| e.to_string())?
        .with_flow(
            FlowType(2),
            CellId::new(n - 1, mid + 1),
            CellId::new(0, mid + 1),
        )
        .map_err(|e| e.to_string())?
        .with_cell_capacity(capacity);
    let mut sys = MultiSystem::new(config);
    sys.run(rounds);
    println!("rounds: {rounds}, cell capacity: {capacity}");
    for t in 0..3u8 {
        let ty = FlowType(t);
        println!(
            "  τ{t}: inserted {:4}  delivered {:4}  in flight {:3}",
            sys.inserted(ty),
            sys.consumed(ty),
            sys.state().entity_count_of(ty)
        );
    }
    match safety::check_safe_multi(sys.config(), sys.state()) {
        Ok(()) => println!("safety: OK (type-agnostic separation holds)"),
        Err((c, a, b)) => println!("safety: VIOLATED on {c}: {a} vs {b}"),
    }
    Ok(())
}

fn demo() -> Result<(), String> {
    let sys = scenario::fig1_demo();
    println!("The paper's Figure 1 schematic (4×4, target ⟨2,2⟩, source ⟨1,0⟩, ⟨2,1⟩ failed):\n");
    println!("{}", render::render(sys.config(), sys.state()));
    println!("T = target, S = source, x = failed, o = entity, arrows = next pointers");
    Ok(())
}

enum Fig {
    Seven,
    Eight,
    Nine,
}

fn fig(flags: &Flags, which: Fig) -> Result<(), String> {
    let threads = default_threads();
    match which {
        Fig::Seven => {
            let k: u64 = flags.get("rounds", 2_500)?;
            let series = cellflow_bench::fig7(k, threads);
            println!("Figure 7: throughput vs rs (8×8, l=0.25, K={k})\n");
            println!("{}", format_table("rs", &series));
        }
        Fig::Eight => {
            let k: u64 = flags.get("rounds", 2_500)?;
            let series = cellflow_bench::fig8(k, threads);
            println!("Figure 8: throughput vs turns (8×8, rs=0.05, K={k})\n");
            println!("{}", format_table("turns", &series));
        }
        Fig::Nine => {
            let k: u64 = flags.get("rounds", 20_000)?;
            let seeds: u64 = flags.get("seeds", 3)?;
            let series = cellflow_bench::fig9(k, threads, seeds);
            println!("Figure 9: throughput vs pf (8×8, rs=0.05, l=0.2, v=0.2, K={k})\n");
            println!("{}", format_table("pf", &series));
        }
    }
    Ok(())
}

fn paths(flags: &Flags) -> Result<(), String> {
    let k: u64 = flags.get("rounds", 2_500)?;
    let series = cellflow_bench::path_length(k, default_threads());
    println!("Throughput vs straight path length (8×8, l=0.25, rs=0.05, v=0.2, K={k})\n");
    println!("{}", format_table("len", &[series]));
    Ok(())
}

fn mc(flags: &Flags) -> Result<(), String> {
    let budget: u64 = flags.get("budget", 2)?;
    let fallible: usize = flags.get("fallible", 1)?;
    let recovery = flags.has("recovery");
    let capacity: u32 = flags.get("capacity", 0)?;
    let cut = flags.has("cut");

    let mut config = SystemConfig::new(
        GridDims::new(3, 1),
        CellId::new(2, 0),
        Params::from_milli(250, 50, 200).expect("static parameters are valid"),
    )
    .expect("static target is valid")
    .with_source(CellId::new(0, 0))
    .with_entity_budget(budget);
    if capacity > 0 {
        config = config.with_capacity(capacity);
    }

    let fallible_cells: Vec<CellId> = [CellId::new(1, 0), CellId::new(2, 0)]
        .into_iter()
        .take(fallible)
        .collect();
    println!(
        "Model checking a 3×1 corridor: budget={budget}, fallible={fallible_cells:?}, \
         recovery={recovery}, capacity={}, partition={}",
        if capacity > 0 {
            capacity.to_string()
        } else {
            "unbounded".to_string()
        },
        if cut {
            "⟨1,0⟩ ↮ ⟨2,0⟩ (permanent)"
        } else {
            "none"
        }
    );
    let cfg_for_check = config.clone();
    let mut sys = BoundedSystem::new(config).with_fallible(fallible_cells, recovery);
    if cut {
        // A permanent mid-corridor severance: both directions of the
        // ⟨1,0⟩ ↔ ⟨2,0⟩ edge read footnote-1 silence in every explored round.
        let masks = cellflow_core::PartitionPlan::for_grid(GridDims::new(3, 1))
            .cut_both(CellId::new(1, 0), CellId::new(2, 0), 0, None)
            .expand(1)
            .mask_row(0)
            .to_vec();
        sys = sys.with_link_cuts(masks);
    }
    let started = std::time::Instant::now();
    let result = check_invariant(
        &sys,
        |s| {
            safety::check_safe(&cfg_for_check, s).is_ok()
                && safety::check_invariant1(&cfg_for_check, s).is_ok()
                && safety::check_invariant2(&cfg_for_check, s).is_ok()
                && cellflow_core::overload::check_capacity(&cfg_for_check, s).is_ok()
        },
        &ExploreConfig {
            max_states: 5_000_000,
            max_depth: usize::MAX,
        },
    );
    match result {
        Ok(report) => {
            println!(
                "SAFE: {} states, {} transitions, exhaustive={}, {:.2?}",
                report.states_explored,
                report.transitions,
                report.exhaustive,
                started.elapsed()
            );
        }
        Err(violation) => {
            return Err(format!(
                "safety violated after {} steps: {:?}",
                violation.trace.len(),
                violation.state
            ))
        }
    }
    // Liveness (AG EF all-consumed) is only meaningful when crashed cells can
    // recover; a permanent mid-corridor crash legitimately traps entities,
    // and a permanent cut starves the corridor (dist saturates to ∞ across
    // the split, so the source stops inserting — safe degradation, not
    // delivery).
    if cut {
        println!("LIVE: skipped (a permanent partition legitimately starves delivery)");
    } else if recovery || fallible == 0 {
        let started = std::time::Instant::now();
        match cellflow_dts::check_possibly(
            &sys,
            |s| s.next_entity_id == budget && s.entity_count() == 0,
            &ExploreConfig {
                max_states: 5_000_000,
                max_depth: usize::MAX,
            },
        ) {
            Ok(live) => println!(
                "LIVE: AG EF all-consumed over {} states ({} goal states), {:.2?}",
                live.states,
                live.goal_states,
                started.elapsed()
            ),
            Err(trap) => {
                return Err(format!(
                    "trapped state found after {} steps",
                    trap.trace.len()
                ))
            }
        }
    } else {
        println!("LIVE: skipped (permanent failures can trap entities; pass --recovery)");
    }
    Ok(())
}

/// A seeded chaos campaign against the message-passing runtime: scripted
/// faults (bursts, blackouts, flapping, hard thread crashes, kills) plus
/// message-level chaos, judged by the online invariant monitors, with a
/// differential check against the shared-variable reference whenever the
/// campaign is one the reference can mirror (lossless fabric, no kills).
///
/// The report is **byte-identical across runs for the same seed**: it
/// contains no wall-clock timing, and a timeout names only the wedged round
/// (the detecting cell is a thread-scheduling race).
fn chaos(flags: &Flags) -> Result<(), String> {
    use cellflow_core::{standard_monitors, CampaignSpec, FaultPlan};
    use cellflow_net::{ChaosConfig, NetError, NetSystem};
    use cellflow_sim::FailureModel;

    if flags.has("cascade") {
        return cascade(flags);
    }
    let spec: String = flags.get("partition", String::new())?;
    if !spec.is_empty() {
        return partition(flags, &spec);
    }

    let n: u16 = flags.get("n", 6)?;
    if n < 3 {
        return Err("--n must be at least 3".into());
    }
    let rounds: u64 = flags.get("rounds", 300)?;
    let seed: u64 = flags.get("seed", 1)?;
    let active: u64 = flags.get("active", 100.min(rounds))?;
    let drop: f64 = flags.get("drop", 0.05)?;
    let delay: f64 = flags.get("delay", 0.05)?;
    let dup: f64 = flags.get("dup", 0.1)?;
    let reorder: f64 = flags.get("reorder", 0.1)?;
    let timeout_ms: u64 = flags.get("timeout-ms", 5_000)?;
    let shard_workers: usize = flags.get("shard-workers", 1)?;
    for (name, rate) in [
        ("drop", drop),
        ("delay", delay),
        ("dup", dup),
        ("reorder", reorder),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--{name} must be a probability, got {rate}"));
        }
    }

    let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0));
    let spec = CampaignSpec {
        active_rounds: active,
        bursts: flags.get("bursts", 2)?,
        blackouts: flags.get("blackouts", 1)?,
        flappers: flags.get("flappers", 1)?,
        hard_crashes: flags.get("hard", 1)?,
        kills: flags.get("kills", 0)?,
        ..CampaignSpec::default()
    };
    let plan = FaultPlan::random_campaign(&config, &spec, seed);
    let recording_to = crate::record::record_flags(flags)?;
    let recorder = match &recording_to {
        Some((_, interval)) => {
            let sc = crate::record::RecScenario::Chaos {
                n,
                rounds,
                active,
                drop,
                delay,
                dup,
                reorder,
                bursts: spec.bursts,
                blackouts: spec.blackouts,
                flappers: spec.flappers,
                hard: spec.hard_crashes,
                kills: spec.kills,
            };
            Some(sc.recorder(seed, *interval)?)
        }
        None => None,
    };
    let chaos_cfg = ChaosConfig {
        seed,
        drop_rate: drop,
        delay_rate: delay,
        dup_rate: dup,
        reorder_rate: reorder,
        until_round: Some(active),
    };

    let census = plan.census();
    let (crashes, recoveries, hard, kills) = (
        census.crashes,
        census.recoveries,
        census.hard_crashes,
        census.kills,
    );
    println!("chaos campaign: {n}×{n} grid, {rounds} rounds, seed {seed}");
    println!(
        "fault plan:     {crashes} crashes, {recoveries} recoveries, {hard} hard, {kills} kills \
         (active first {active} rounds)"
    );
    println!(
        "message chaos:  drop {drop}, delay {delay}, dup {dup}, reorder {reorder} \
         (quiet after round {active})"
    );

    let campaign = campaign_telemetry(flags, "chaos")?;
    let monitors = standard_monitors(&config);
    let mut net = NetSystem::new(config.clone())
        .map_err(|e| e.to_string())?
        .with_plan(plan.clone())
        .with_chaos(chaos_cfg)
        .with_round_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
    if let Some(ct) = &campaign {
        net = net.with_telemetry(std::sync::Arc::clone(&ct.telemetry));
    }
    if flags.has("trace") {
        net = net.with_tracer(cellflow_telemetry::Tracer::new(seed));
    }
    let (report, recording) = match net.run_monitored_recorded(rounds, monitors, recorder) {
        Ok(pair) => pair,
        Err(NetError::Timeout { round, silent, .. }) => {
            // Deterministic by construction: the wedged round and the silent
            // set are properties of the plan, while the detecting cell is a
            // scheduling race — so the detector is not printed.
            println!("\nrun degraded:   round {round} timed out (a cell went silent and");
            println!("                never handed its barrier seat over — no deadlock)");
            println!("                silent: {}", fmt_silent(&silent));
            if recording_to.is_some() {
                println!("recording:      none written (a degraded run has no complete frames)");
            }
            if let Some(ct) = &campaign {
                ct.finish()?;
            }
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    if let Some(ct) = &campaign {
        ct.finish()?;
    }
    if let Some((out, _)) = &recording_to {
        crate::record::save_recording(out, recording)?;
    }

    println!(
        "\ninjected:       {} dropped, {} delayed, {} duplicated, {} reordered",
        report.chaos.dropped, report.chaos.delayed, report.chaos.duplicated, report.chaos.reordered
    );
    println!(
        "traffic:        {} inserted, {} consumed, {} in flight",
        report.inserted,
        report.consumed,
        report.state.entity_count()
    );
    println!("\nmonitors:");
    for summary in &report.monitor_summaries {
        println!("  {summary}");
    }
    if report.violations.is_empty() {
        println!("violations:     none");
    } else {
        println!("violations:     {}", report.violations.len());
        for v in &report.violations {
            println!("  {v}");
        }
    }

    // The reference can mirror the campaign exactly only when the fabric
    // loses nothing (dup/reorder are absorbed by the drains) and every
    // faulty cell keeps participating in the rounds (no kills).
    if drop == 0.0 && delay == 0.0 && kills == 0 {
        let mut reference = System::new(config);
        if shard_workers > 1 {
            // Not printed: the report must stay byte-identical across
            // worker counts, which is exactly what the CI smoke job diffs.
            reference.set_workers(shard_workers);
            reference.set_shard_min(1);
        }
        let mut model = plan;
        for round in 0..rounds {
            model.apply(&mut reference, round);
            reference.step();
        }
        let agree = report.state.cells == reference.state().cells
            && report.consumed == reference.consumed_total()
            && report.inserted == reference.inserted_total();
        if agree {
            println!("differential:   deployment ≡ shared-variable reference (bit-identical)");
        } else {
            return Err("differential: deployment DIVERGED from the reference".into());
        }
    } else {
        println!("differential:   skipped (lossy fabric or kills: the reference cannot mirror)");
    }
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} monitor violation(s) — see report above",
            report.violations.len()
        ))
    }
}

/// A cascading-failure campaign on a finite-capacity grid
/// (`cellflow chaos --cascade`): a scripted corridor crash piles traffic up
/// beneath the block, sustained overload crashes cells endogenously, and
/// the cascade propagates as shed load re-overloads neighbors. The
/// campaign is precomputed into an ordinary fault plan, judged by the full
/// monitor suite (including occupancy ≤ capacity) on the shared-variable
/// reference, then replayed on the message-passing deployment — with the
/// restart supervisor disciplining any optimistic `--restart` re-spawns
/// (flapping cells exhaust `--budget` and are quarantined).
///
/// `--backoff` swaps overload crashes for randomized, seeded
/// Feldmann-style admission pauses; the report then also shows the
/// unmitigated baseline so the two modes compare directly.
///
/// The report is **byte-identical across runs for the same seed**: no
/// wall-clock values are printed, and the reference block is sealed with
/// an FNV-1a checksum.
fn cascade(flags: &Flags) -> Result<(), String> {
    use cellflow_core::monitor::stabilization_bound;
    use cellflow_core::overload::{BackoffPolicy, OverloadTrigger};
    use cellflow_core::{expand_overload, standard_monitors, FaultPlan};
    use cellflow_net::{NetError, NetSystem, RestartPolicy};
    use cellflow_sim::cascade::{run_cascade_recorded, CascadeScenario};
    use cellflow_sim::{FailureModel, SimTelemetry};

    let n: u16 = flags.get("n", 5)?;
    if n < 4 {
        return Err("--n must be at least 4".into());
    }
    let rounds: u64 = flags.get("rounds", 160)?;
    let seed: u64 = flags.get("seed", 1)?;
    let capacity: u32 = flags.get("capacity", 2)?;
    if capacity == 0 {
        return Err("--capacity must be positive".into());
    }
    let threshold: u32 = flags.get("threshold", capacity)?;
    let sustain: u32 = flags.get("sustain", 2)?;
    if threshold == 0 || sustain == 0 {
        return Err("--threshold and --sustain must be positive".into());
    }
    let backoff_on = flags.has("backoff");
    let backoff_base: u64 = flags.get("backoff-base", 4)?;
    let backoff_max: u64 = flags.get("backoff-max", 32)?;
    let restart: u64 = flags.get("restart", 0)?;
    let budget: u32 = flags.get("budget", u32::MAX)?;
    let timeout_ms: u64 = flags.get("timeout-ms", 5_000)?;
    let shard_workers: usize = flags.get("shard-workers", 1)?;
    if backoff_on && restart > 0 {
        return Err("--backoff and --restart are exclusive mitigation modes".into());
    }

    let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0))
        .with_capacity(capacity);
    let bound = stabilization_bound(&config);
    // The congestion seed: block the corridor mid-way so traffic piles up
    // beneath the crash — the overload trigger does the rest.
    let base = FaultPlan::new().crash_at(8, CellId::new(1, n / 2));
    let trigger = OverloadTrigger::new(threshold, sustain);
    let backoff = backoff_on.then_some(BackoffPolicy {
        base: backoff_base.max(1),
        max: backoff_max.max(backoff_base.max(1)),
        seed,
    });
    let restart_after = (restart > 0).then_some(restart);

    let mitigation = if backoff_on {
        format!("backoff (base {backoff_base}, max {backoff_max}, seed {seed})")
    } else if restart > 0 {
        format!("optimistic restart after {restart} rounds (supervisor budget {budget})")
    } else {
        "none (overload crashes are permanent)".to_string()
    };
    println!("cascade campaign: {n}×{n} grid, capacity {capacity}, {rounds} rounds, seed {seed}");
    println!("trigger:          occupancy ≥ {threshold} sustained {sustain} rounds");
    println!("mitigation:       {mitigation}");

    let scenario = CascadeScenario {
        config: config.clone(),
        base: base.clone(),
        trigger,
        backoff,
        restart_after,
        rounds,
        settle: bound + 2,
        workers: shard_workers.max(1),
    };
    let recording_to = crate::record::record_flags(flags)?;
    let recorder = match &recording_to {
        Some((_, interval)) => {
            let sc = crate::record::RecScenario::Cascade {
                n,
                rounds,
                capacity,
                threshold,
                sustain,
                backoff: backoff_on,
                base: backoff_base,
                max: backoff_max,
                restart,
            };
            Some(sc.recorder(seed, *interval)?)
        }
        None => None,
    };
    let registry = cellflow_telemetry::Registry::new();
    let (report, recording) =
        run_cascade_recorded(&scenario, Some(SimTelemetry::new(&registry)), recorder);
    if let Some((out, _)) = &recording_to {
        crate::record::save_recording(out, recording)?;
    }

    println!("\n== shared-variable reference ==\n");
    print!("{}", report.render());
    if backoff_on {
        // The unmitigated baseline the backoff run is judged against.
        let baseline = expand_overload(&config, &base, trigger, None, None, rounds);
        println!(
            "\nbackoff vs unmitigated: {} overload crashes -> {}, {} backoff pauses",
            baseline.stats.overload_crashes,
            report.outcome.stats.overload_crashes,
            report.outcome.stats.backoff_activations
        );
    }

    println!("\n== message-passing deployment ==\n");
    let policy = RestartPolicy {
        restart_budget: budget,
        ..RestartPolicy::default()
    };
    let net = NetSystem::new(config.clone())
        .map_err(|e| e.to_string())?
        .with_plan(report.outcome.plan.clone())
        .with_restart_policy(policy)
        .with_round_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
    let total_rounds = rounds + bound + 2;
    let net_report = match net.run_monitored(total_rounds, standard_monitors(&config)) {
        Ok(r) => r,
        Err(NetError::Timeout { round, silent, .. }) => {
            println!(
                "run degraded:   round {round} timed out; silent: {}",
                fmt_silent(&silent)
            );
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    if net_report.supervisor.is_empty() {
        println!("supervisor:     no interventions");
    } else {
        println!("supervisor:     {} interventions", net_report.supervisor.len());
        for d in &net_report.supervisor {
            println!("  {d:?}");
        }
    }
    println!(
        "traffic:        {} inserted, {} consumed, {} in flight",
        net_report.inserted,
        net_report.consumed,
        net_report.state.entity_count()
    );

    // Differential: the deployment must mirror the reference running the
    // same *effective* (supervisor-rewritten) plan.
    let (effective, _) = policy.rewrite(&report.outcome.plan);
    let mut reference = System::new(config);
    if shard_workers > 1 {
        reference.set_workers(shard_workers);
        reference.set_shard_min(1);
    }
    let mut model = effective;
    for round in 0..total_rounds {
        model.apply(&mut reference, round);
        reference.step();
    }
    if net_report.state.cells == reference.state().cells
        && net_report.consumed == reference.consumed_total()
        && net_report.inserted == reference.inserted_total()
    {
        println!("differential:   deployment ≡ shared-variable reference (bit-identical)");
    } else {
        return Err("differential: deployment DIVERGED from the reference".into());
    }

    // The telemetry the reference run recorded (counters only; values are
    // campaign properties, so the block stays byte-identical per seed).
    println!("\ntelemetry:");
    let mut counters: Vec<(String, u64)> = registry
        .snapshot()
        .into_iter()
        .filter_map(|m| match m {
            cellflow_telemetry::MetricSnapshot::Counter { name, value } => Some((name, value)),
            _ => None,
        })
        .filter(|(name, _)| {
            name.contains("overload") || name.contains("shed") || name.contains("backoff")
        })
        .collect();
    counters.sort();
    for (name, value) in counters {
        println!("  {name} {value}");
    }

    if report.stabilized_in_bound() {
        Ok(())
    } else {
        Err(format!(
            "cascade failed to re-stabilize within the {bound}-round bound \
             (rounds_to_stabilize: {:?})",
            report.rounds_to_stabilize
        ))
    }
}

/// Formats a timeout's silent-cell attribution for the degraded-run
/// messages. The list is a property of the fault plan (deterministic), so
/// printing it keeps reports byte-identical per seed.
fn fmt_silent(silent: &[CellId]) -> String {
    if silent.is_empty() {
        return "unattributed (every member checked in or cleanly left)".to_string();
    }
    silent
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses a whitespace-free `--partition` SPEC into a [`PartitionPlan`]
/// over `dims`, with the cut window `[start, heal)` and `seed` feeding any
/// flaky-link spec. Validates bounds up front so a bad SPEC is a CLI error,
/// not a builder panic.
pub(crate) fn parse_partition_spec(
    spec: &str,
    dims: GridDims,
    start: u64,
    heal: Option<u64>,
    seed: u64,
) -> Result<cellflow_core::PartitionPlan, String> {
    use cellflow_core::PartitionPlan;
    let usage = || {
        format!(
            "bad --partition spec `{spec}` (expected split@col=C, split@row=R, \
             island@i0,j0,i1,j1, or flaky@MILLI)"
        )
    };
    let plan = PartitionPlan::for_grid(dims);
    let (kind, rest) = spec.split_once('@').ok_or_else(usage)?;
    match kind {
        "split" => {
            let (axis, idx) = rest.split_once('=').ok_or_else(usage)?;
            let k: u16 = idx.parse().map_err(|_| usage())?;
            match axis {
                "col" => {
                    if k < 1 || k >= dims.nx() {
                        return Err(format!(
                            "split column {k} out of range 1..{} for the {}×{} grid",
                            dims.nx(),
                            dims.nx(),
                            dims.ny()
                        ));
                    }
                    Ok(plan.split_col(k, start, heal))
                }
                "row" => {
                    if k < 1 || k >= dims.ny() {
                        return Err(format!(
                            "split row {k} out of range 1..{} for the {}×{} grid",
                            dims.ny(),
                            dims.nx(),
                            dims.ny()
                        ));
                    }
                    Ok(plan.split_row(k, start, heal))
                }
                _ => Err(usage()),
            }
        }
        "island" => {
            let coords: Vec<u16> = rest
                .split(',')
                .map(|p| p.parse().map_err(|_| usage()))
                .collect::<Result<_, _>>()?;
            let [i0, j0, i1, j1] = coords[..] else {
                return Err(usage());
            };
            let (a, b) = (CellId::new(i0, j0), CellId::new(i1, j1));
            if !dims.contains(a) || !dims.contains(b) {
                return Err(format!(
                    "island corners {a} / {b} out of the {}×{} grid",
                    dims.nx(),
                    dims.ny()
                ));
            }
            Ok(plan.island(a, b, start, heal))
        }
        "flaky" => {
            let milli: u32 = rest.parse().map_err(|_| usage())?;
            if milli > 1000 {
                return Err(format!("flaky rate {milli} exceeds 1000 (parts per thousand)"));
            }
            Ok(plan.flaky_links(seed, milli, start, heal))
        }
        _ => Err(usage()),
    }
}

/// A scripted link-fault / split-brain campaign (`cellflow chaos
/// --partition SPEC`): the plan expands once into a per-round edge mask,
/// the shared-variable reference runs the campaign under the full monitor
/// suite (including the split-brain [`ReachabilityMonitor`]
/// (cellflow_core::monitor::ReachabilityMonitor)) and certifies post-heal
/// re-stabilization within the 2N²+2 bound, and the same schedule then
/// replays on the message-passing deployment over a
/// [`LinkFaultTransport`](cellflow_net::LinkFaultTransport), which must
/// match the reference bit for bit.
///
/// The report is **byte-identical across runs for the same seed**: no
/// wall-clock values are printed, the reference block is sealed with an
/// FNV-1a checksum, and every deployment-side line is a property of the
/// plan (suppression counts, traffic, the silent set of any timeout).
fn partition(flags: &Flags, spec: &str) -> Result<(), String> {
    use cellflow_core::monitor::stabilization_bound;
    use cellflow_core::{standard_monitors, FaultPlan};
    use cellflow_net::{NetError, NetSystem};
    use cellflow_sim::partition::{run_partition_recorded, PartitionScenario};

    let n: u16 = flags.get("n", 5)?;
    if n < 3 {
        return Err("--n must be at least 3".into());
    }
    let rounds: u64 = flags.get("rounds", 120)?;
    let start: u64 = flags.get("start", 10)?;
    let seed: u64 = flags.get("seed", 1)?;
    let timeout_ms: u64 = flags.get("timeout-ms", 5_000)?;
    let shard_workers: usize = flags.get("shard-workers", 1)?;
    let heal = if flags.has("no-heal") {
        None
    } else {
        Some(flags.get("heal", (rounds * 2) / 3)?)
    };
    if let Some(h) = heal {
        if h <= start || h > rounds {
            return Err(format!(
                "--heal must lie in ({start}, {rounds}] (after --start, within --rounds)"
            ));
        }
    }

    let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0));
    let bound = stabilization_bound(&config);
    let settle: u64 = flags.get("settle", bound + 2)?;
    let plan = parse_partition_spec(spec, GridDims::square(n), start, heal, seed)?;

    let heal_text = match heal {
        Some(h) => format!("heal at round {h}"),
        None => "never heals".to_string(),
    };
    println!("partition campaign: {n}×{n} grid, seed {seed}, spec {spec}");
    println!("cut window:         rounds [{start}, …), {heal_text}");
    println!("horizon:            {rounds} campaign + {settle} settle rounds (bound {bound})");

    println!("\n== shared-variable reference ==\n");
    let scenario = PartitionScenario {
        config: config.clone(),
        plan: plan.clone(),
        base: FaultPlan::new(),
        rounds,
        settle,
        workers: shard_workers.max(1),
    };
    let recording_to = crate::record::record_flags(flags)?;
    let recorder = match &recording_to {
        Some((_, interval)) => {
            let sc = crate::record::RecScenario::Partition {
                n,
                rounds,
                spec: spec.to_string(),
                start,
                heal,
                settle,
            };
            Some(sc.recorder(seed, *interval)?)
        }
        None => None,
    };
    let (report, recording) = run_partition_recorded(&scenario, None, recorder);
    if let Some((out, _)) = &recording_to {
        crate::record::save_recording(out, recording)?;
    }
    print!("{}", report.render());

    println!("\n== message-passing deployment ==\n");
    let total_rounds = rounds + settle;
    let net = NetSystem::new(config.clone())
        .map_err(|e| e.to_string())?
        .with_partition(plan.clone())
        .with_round_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
    let net_report = match net.run_monitored(total_rounds, standard_monitors(&config)) {
        Ok(r) => r,
        Err(NetError::Timeout { round, silent, .. }) => {
            println!(
                "run degraded:   round {round} timed out; silent: {}",
                fmt_silent(&silent)
            );
            return Err("partitioned deployment wedged instead of degrading".into());
        }
        Err(e) => return Err(e.to_string()),
    };
    println!(
        "suppressed:     {} announcements on cut edges",
        net_report.links.suppressed
    );
    println!(
        "traffic:        {} inserted, {} consumed, {} in flight",
        net_report.inserted,
        net_report.consumed,
        net_report.state.entity_count()
    );
    if net_report.violations.is_empty() {
        println!("violations:     none");
    } else {
        println!("violations:     {}", net_report.violations.len());
        for v in &net_report.violations {
            println!("  {v}");
        }
    }

    // Differential: the deployment must mirror the reference driving the
    // same per-round cut masks through the engine.
    let schedule = plan.expand(total_rounds);
    let mut reference = System::new(config);
    if shard_workers > 1 {
        reference.set_workers(shard_workers);
        reference.set_shard_min(1);
    }
    for round in 0..total_rounds {
        reference.set_link_cuts(schedule.mask_row(round));
        reference.step();
    }
    if net_report.state.cells == reference.state().cells
        && net_report.consumed == reference.consumed_total()
        && net_report.inserted == reference.inserted_total()
    {
        println!("differential:   deployment ≡ shared-variable reference (bit-identical)");
    } else {
        return Err("differential: deployment DIVERGED from the reference".into());
    }

    if report.certified() && net_report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "partition campaign FAILED certification \
             (reference certified: {}, deployment violations: {})",
            report.certified(),
            net_report.violations.len()
        ))
    }
}

/// An adversarial state-corruption campaign with a mechanical stabilization
/// certificate (Theorem 10 / Corollary 7): seeded corruptions are driven
/// through the shared-variable reference by the certifier, then the same
/// campaign — plus a hard crash and a *dirty* crash that tears the
/// write-ahead record — runs against the message-passing deployment with a
/// durable snapshot store, so the re-spawn restores a deliberately stale
/// sealed snapshot the protocol must absorb.
///
/// The full report is **byte-identical across runs for the same seed** (no
/// wall-clock, no filesystem paths) and each block is sealed with an FNV-1a
/// checksum. A failed certificate is shrunk to a minimal counterexample and
/// the command exits nonzero.
fn stabilize(flags: &Flags) -> Result<(), String> {
    use cellflow_core::certify::{certify, corruption_events, fnv1a, shrink, CertifyOptions};
    use cellflow_core::monitor::{
        stabilization_bound, ConservationMonitor, Monitor, RoutingMonitor, SafetyMonitor,
        StabilizationMonitor, StabilizationProbe,
    };
    use cellflow_core::{CampaignSpec, FaultPlan};
    use cellflow_net::{DurableStore, NetError, NetSystem, TearSpec};
    use std::sync::Arc;

    let n: u16 = flags.get("n", 6)?;
    if n < 3 {
        return Err("--n must be at least 3".into());
    }
    let seed: u64 = flags.get("seed", 1)?;
    let corruptions: u32 = flags.get("corruptions", 3)?;
    let active: u64 = flags.get("active", 30)?;
    if active < 6 {
        return Err("--active must be at least 6".into());
    }
    let timeout_ms: u64 = flags.get("timeout-ms", 5_000)?;

    let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0));
    let bound = stabilization_bound(&config);

    // Seeded corruption-only campaign, shared by both phases.
    let spec = CampaignSpec {
        active_rounds: active,
        bursts: 0,
        blackouts: 0,
        flappers: 0,
        hard_crashes: 0,
        kills: 0,
        corruptions,
        ..CampaignSpec::default()
    };
    let plan = FaultPlan::random_campaign(&config, &spec, seed);
    let ops = corruption_events(&plan);

    println!("stabilization campaign: {n}×{n} grid, seed {seed}, bound {bound} rounds (2N²+2)");
    println!("\n== shared-variable certifier ==\n");
    let cert = certify(&config, &ops, &CertifyOptions::default());
    println!("{}", cert.render());
    if !cert.holds() {
        let minimal = shrink(&config, &ops, &CertifyOptions::default());
        println!("\nminimal counterexample ({} of {} corruptions):", minimal.len(), ops.len());
        for op in &minimal {
            println!(
                "  round {:>4}  cell ({},{})  {:?}",
                op.round,
                op.cell.i(),
                op.cell.j(),
                op.corruption
            );
        }
        return Err("stabilization certificate FAILED on the reference".into());
    }

    // Phase 2: the same corruptions against the deployment, plus a hard
    // crash (re-spawn from the sealed frozen-failed snapshot) and a dirty
    // tear (re-spawn from a deliberately *stale* sealed snapshot).
    let hard_victim = CellId::new(2, 1);
    let tear_victim = CellId::new(2, 2);
    let (hard_at, hard_respawn) = (active / 3, 2 * active / 3);
    let (tear_at, tear_respawn) = (active / 2, active / 2 + 10);
    let rounds = active.max(tear_respawn) + bound + 2;
    let net_plan = plan
        .hard_crash_at(hard_at, hard_victim)
        .recover_at(hard_respawn, hard_victim);

    let store_dir = std::env::temp_dir().join(format!(
        "cellflow-stabilize-{seed}-{}",
        std::process::id()
    ));
    let store = DurableStore::create(&store_dir).map_err(|e| e.to_string())?;
    let probe = StabilizationProbe::new();
    let monitors: Vec<Box<dyn Monitor>> = vec![
        Box::new(SafetyMonitor::new()),
        Box::new(RoutingMonitor::new()),
        Box::new(ConservationMonitor::new()),
        Box::new(StabilizationMonitor::new(&config).with_probe(&probe)),
    ];
    let campaign = campaign_telemetry(flags, "stabilize")?;
    let mut net = NetSystem::new(config)
        .map_err(|e| e.to_string())?
        .with_plan(net_plan)
        .with_store(Arc::new(store))
        .with_tear(TearSpec {
            cell: tear_victim,
            round: tear_at,
            respawn: tear_respawn,
        })
        .with_round_timeout(std::time::Duration::from_millis(timeout_ms.max(1)));
    if let Some(ct) = &campaign {
        net = net.with_telemetry(Arc::clone(&ct.telemetry));
    }
    if flags.has("trace") {
        net = net.with_tracer(cellflow_telemetry::Tracer::new(seed));
    }
    let recording_to = crate::record::record_flags(flags)?;
    let recorder = match &recording_to {
        Some((_, interval)) => {
            let sc = crate::record::RecScenario::Stabilize {
                n,
                corruptions,
                active,
            };
            Some(sc.recorder(seed, *interval)?)
        }
        None => None,
    };
    let outcome = net.run_monitored_recorded(rounds, monitors, recorder);
    std::fs::remove_dir_all(&store_dir).ok();
    if let Some(ct) = &campaign {
        ct.finish()?;
    }
    let (report, recording) = match outcome {
        Ok(pair) => pair,
        Err(NetError::Timeout { round, silent, .. }) => {
            return Err(format!(
                "deployment wedged: round {round} timed out; silent: {}",
                fmt_silent(&silent)
            ));
        }
        Err(e) => return Err(e.to_string()),
    };
    if let Some((out, _)) = &recording_to {
        crate::record::save_recording(out, recording)?;
    }

    let mut block = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(block, "deployment campaign: {rounds} rounds");
    let _ = writeln!(
        block,
        "  corruptions: {}, hard crash: ({},{}) at round {hard_at} (re-spawn {hard_respawn})",
        ops.len(),
        hard_victim.i(),
        hard_victim.j(),
    );
    let _ = writeln!(
        block,
        "  dirty tear:  ({},{}) at round {tear_at} (stale re-spawn {tear_respawn})",
        tear_victim.i(),
        tear_victim.j(),
    );
    let _ = writeln!(
        block,
        "  durable snapshots: write-ahead intent + per-round seal (torn tail repaired)"
    );
    let _ = writeln!(
        block,
        "  traffic: {} inserted, {} consumed, {} in flight",
        report.inserted,
        report.consumed,
        report.state.entity_count()
    );
    let _ = writeln!(block, "  last disturbance: round {}", probe.last_disturbance());
    let restab = match probe.rounds_to_stabilize() {
        Some(r) => format!("after {r} rounds (bound {bound})"),
        None => "NEVER within the run".to_string(),
    };
    let _ = writeln!(block, "  re-stabilized: {restab}");
    let _ = writeln!(block, "  violations: {}", report.violations.len());
    for v in &report.violations {
        let _ = writeln!(block, "    {v}");
    }
    let net_holds = report.violations.is_empty()
        && probe
            .rounds_to_stabilize()
            .is_some_and(|r| r <= bound);
    let _ = writeln!(
        block,
        "  verdict: {}",
        if net_holds { "CERTIFIED" } else { "FAILED" }
    );
    let _ = write!(block, "  checksum: {:016x}", fnv1a(block.as_bytes()));
    println!("\n== message-passing deployment ==\n");
    println!("{block}");
    if net_holds {
        Ok(())
    } else {
        Err("stabilization certificate FAILED on the deployment".into())
    }
}

/// The `--telemetry` bundle for a campaign command (`chaos`, `stabilize`):
/// a metric registry plus a [`cellflow_net::NetTelemetry`] streaming JSONL
/// events to disk with a flight recorder armed behind it.
struct CampaignTelemetry {
    registry: cellflow_telemetry::Registry,
    telemetry: std::sync::Arc<cellflow_net::NetTelemetry>,
    trace_out: String,
    flight_out: String,
    metrics_out: String,
}

/// Builds the bundle when `--telemetry` was given; `prefix` names the
/// default artifact files (`<prefix>.trace.jsonl` etc.).
fn campaign_telemetry(flags: &Flags, prefix: &str) -> Result<Option<CampaignTelemetry>, String> {
    use cellflow_telemetry::{EventLog, Registry};
    // `--trace` implies the telemetry bundle: causal spans ride the same
    // JSONL stream, so there is nowhere to put them without it.
    if !flags.has("telemetry") && !flags.has("trace") {
        return Ok(None);
    }
    let trace_out: String = flags.get("trace-out", format!("{prefix}.trace.jsonl"))?;
    let flight_out: String = flags.get("flight-out", format!("{prefix}.flight.jsonl"))?;
    let metrics_out: String = flags.get("metrics-out", format!("{prefix}.metrics.prom"))?;
    let registry = Registry::new();
    let log = EventLog::new()
        .with_stream_file(std::path::Path::new(&trace_out))
        .map_err(|e| format!("creating {trace_out}: {e}"))?
        .with_flight_path(std::path::PathBuf::from(&flight_out));
    let telemetry =
        std::sync::Arc::new(cellflow_net::NetTelemetry::new(&registry).with_event_log(log));
    Ok(Some(CampaignTelemetry {
        registry,
        telemetry,
        trace_out,
        flight_out,
        metrics_out,
    }))
}

impl CampaignTelemetry {
    /// Flushes the stream, writes the Prometheus exposition, and prints a
    /// summary. Only counts and paths go to stdout — no timing values — so
    /// a fixed seed still produces byte-identical output.
    fn finish(&self) -> Result<(), String> {
        self.telemetry.flush();
        let exposition = cellflow_telemetry::prometheus::render(&self.registry.snapshot());
        std::fs::write(&self.metrics_out, exposition)
            .map_err(|e| format!("writing {}: {e}", self.metrics_out))?;
        let (events, dumps) = self.telemetry.log_stats();
        println!("\ntelemetry:      {events} events -> {}", self.trace_out);
        println!("                exposition -> {}", self.metrics_out);
        if dumps > 0 {
            println!("                flight dump -> {}", self.flight_out);
        }
        Ok(())
    }
}

/// Runs a short instrumented campaign — the reference simulation (with the
/// engine's Route/Signal/Move phase timers) and the message-passing
/// deployment — into one registry, then renders the per-phase latency
/// tables. `--prom` additionally prints the Prometheus text exposition;
/// `--out FILE` writes the exposition to a file.
fn metrics(flags: &Flags) -> Result<(), String> {
    use cellflow_net::{NetSystem, NetTelemetry};
    use cellflow_sim::SimTelemetry;
    use cellflow_telemetry::{prometheus, report, Registry};

    let n: u16 = flags.get("n", 6)?;
    if n < 3 {
        return Err("--n must be at least 3".into());
    }
    let rounds: u64 = flags.get("rounds", 200)?;
    let seed: u64 = flags.get("seed", 1)?;
    let out: String = flags.get("out", String::new())?;
    let trace_out: String = flags.get("trace-out", String::new())?;

    let params = Params::from_milli(250, 50, 200).expect("static parameters are valid");
    let config = SystemConfig::new(GridDims::square(n), CellId::new(1, n - 1), params)
        .map_err(|e| e.to_string())?
        .with_source(CellId::new(1, 0));

    let registry = Registry::new();
    let mut sim_telemetry = SimTelemetry::new(&registry);
    if !trace_out.is_empty() {
        sim_telemetry = sim_telemetry.with_event_log(
            cellflow_telemetry::EventLog::new()
                .with_stream_file(std::path::Path::new(&trace_out))
                .map_err(|e| format!("creating {trace_out}: {e}"))?,
        );
    }
    let mut sim = Simulation::new(config.clone(), seed).with_telemetry(sim_telemetry);
    if !trace_out.is_empty() {
        // The reference sim's causal span trees (round → phase → shard,
        // plus event-bearing-cell leaves) ride the event stream.
        sim = sim.with_tracer(cellflow_telemetry::Tracer::new(seed));
    }
    sim.system_mut()
        .attach_scheduler_metrics(cellflow_telemetry::SchedulerMetrics::register(&registry));
    sim.run(rounds);
    if let Some(tel) = sim.telemetry_mut() {
        tel.flush();
    }
    let active = sim.system().active_cells();
    let total = usize::from(n) * usize::from(n);

    // Monitored run: the collector thread is what feeds the per-round
    // counters (`cellflow_net_rounds_total`), so the plain `run` would
    // leave them at zero.
    let telemetry = std::sync::Arc::new(NetTelemetry::new(&registry));
    NetSystem::new(config.clone())
        .map_err(|e| e.to_string())?
        .with_telemetry(std::sync::Arc::clone(&telemetry))
        .run_monitored(rounds, cellflow_core::standard_monitors(&config))
        .map_err(|e| e.to_string())?;

    let snapshot = registry.snapshot();
    println!("instrumented {n}x{n} grid, {rounds} rounds (reference sim + deployment)\n");
    println!(
        "active set: {active}/{total} cells ({:.1}% occupancy) in the final round\n",
        100.0 * active as f64 / total as f64
    );
    println!("{}", report::render_tables(&snapshot));
    if flags.has("prom") {
        println!("{}", prometheus::render(&snapshot));
    }
    if !out.is_empty() {
        std::fs::write(&out, prometheus::render(&snapshot))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    if !trace_out.is_empty() {
        println!("wrote {trace_out} (render it with `cellflow trace {trace_out}`)");
    }
    Ok(())
}

/// Validates a telemetry artifact and renders it. JSONL event streams get
/// the per-kind census and a round timeline; Prometheus expositions get a
/// conformance summary. Exits nonzero on any schema violation.
fn inspect(args: &[String]) -> Result<(), String> {
    use cellflow_telemetry::{prometheus, report, validate_stream};

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("inspect needs a file: cellflow inspect <trace.jsonl> [--rows 40]".into());
    };
    let flags = Flags::parse(&args[1..])?;
    let rows: usize = flags.get("rows", 40)?;
    // Recordings are binary — route them before the text read.
    if path.ends_with(".rec") {
        return crate::record::inspect_rec(path);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.trim().is_empty() {
        return Err(format!("{path}:1: empty file (expected a JSONL event stream or a Prometheus exposition)"));
    }

    // Route by extension first — a schema-invalid JSONL line must be
    // reported as a JSONL error with its line number, not silently fed to
    // the Prometheus validator because it happens not to start with '{'.
    let is_jsonl = path.ends_with(".jsonl")
        || (!path.ends_with(".prom") && text.trim_start().starts_with('{'));
    if is_jsonl {
        let stats =
            validate_stream(&text).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
        println!(
            "{path}: {} events, rounds {}..{}, {} violation(s), {} timeout(s)",
            stats.events, stats.first_round, stats.last_round, stats.violations, stats.timeouts
        );
        for (kind, count) in &stats.by_kind {
            println!("  {kind:<15} {count}");
        }
        println!();
        let timeline =
            report::render_timeline(&text, rows).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
        println!("{timeline}");
    } else {
        let stats =
            prometheus::validate(&text).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
        println!(
            "{path}: valid Prometheus exposition — {} metric families, {} samples",
            stats.families, stats.samples
        );
    }
    Ok(())
}

/// Analyzes the causal spans in a JSONL event stream (`--trace` output):
/// validates the span tree's causality (parents exist, close after their
/// children open), then renders per-round critical-path chains, the
/// slowest-cell attribution table, and the per-label span profile. For
/// every timed-out round the report names the last-arriving (silent)
/// cells. The default output derives only from deterministic span fields,
/// so two traces of the same seeded run render byte-identically; `--wall`
/// opts into the measured nanosecond sections.
fn trace(args: &[String]) -> Result<(), String> {
    use cellflow_telemetry::Trace;

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "trace needs a file: cellflow trace <trace.jsonl> [--top 10] [--round R] [--wall]"
                .into(),
        );
    };
    let flags = Flags::parse(&args[1..])?;
    let top: usize = flags.get("top", 10)?;
    // Round tags are 1-based in the stream, so 0 doubles as "no filter".
    let round: u64 = flags.get("round", 0)?;
    let wall = flags.has("wall");
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let parsed = Trace::parse(&text).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
    if parsed.spans.is_empty() {
        return Err(format!(
            "{path}: stream has no span events (rerun the producing command with --trace)"
        ));
    }
    parsed
        .check_causality()
        .map_err(|msg| format!("{path}: causality violated: {msg}"))?;
    print!("{}", parsed.render(top, (round > 0).then_some(round), wall));
    Ok(())
}

fn bench(flags: &Flags) -> Result<(), String> {
    let quick = flags.has("quick");
    if flags.has("check") {
        // Regression mode: rerun every matrix in quick mode and compare
        // against the committed baselines inside the tolerance bands.
        let dir: String = flags.get("baseline-dir", ".".to_string())?;
        eprintln!("bench --check: comparing fresh quick runs against baselines in {dir}/ ...");
        let report = cellflow_bench::check::run(std::path::Path::new(&dir))?;
        print!("{}", report.render());
        return if report.passed() {
            Ok(())
        } else {
            Err(format!(
                "{} perf-regression check(s) failed against the committed baselines",
                report.failures().len()
            ))
        };
    }
    let out: String = flags.get("out", "BENCH_PR3.json".to_string())?;
    eprintln!(
        "running {} bench matrix (grids {:?})...",
        if quick { "quick" } else { "full" },
        cellflow_bench::perf::GRID_SIZES
    );
    let report = cellflow_bench::perf::run(quick);
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>9} {:>8}",
        "scenario", "legacy ns/rd", "engine ns/rd", "system ns/rd", "speedup", "peak"
    );
    for sc in &report.scenarios {
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>8.2}x {:>8}",
            sc.name,
            sc.legacy_ns_per_round,
            sc.engine_ns_per_round,
            sc.system_ns_per_round,
            sc.speedup_engine_vs_legacy,
            sc.peak_entities
        );
    }
    std::fs::write(&out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");

    let tel_out: String = flags.get("telemetry-out", "BENCH_PR5.json".to_string())?;
    eprintln!("running telemetry overhead matrix...");
    let overhead = cellflow_bench::telemetry_overhead::run(quick);
    println!(
        "\n{:<8} {:>12} {:>12} {:>9}",
        "scenario", "off ns/rd", "on ns/rd", "overhead"
    );
    for sc in &overhead.scenarios {
        println!(
            "{:<8} {:>12} {:>12} {:>8.3}x",
            sc.name, sc.telemetry_off_ns_per_round, sc.telemetry_on_ns_per_round, sc.overhead_ratio
        );
    }
    std::fs::write(&tel_out, overhead.to_json())
        .map_err(|e| format!("writing {tel_out}: {e}"))?;
    println!("wrote {tel_out}");

    let mega_out: String = flags.get("mega-out", "BENCH_PR8.json".to_string())?;
    eprintln!(
        "running {} mega-grid matrix (sparse vs dense, sharded scaling)...",
        if quick { "quick (128\u{b2} cap)" } else { "full (up to 1024\u{b2})" }
    );
    let mega = cellflow_bench::mega::run(quick);
    println!(
        "\n{:<10} {:>14} {:>14} {:>9} {:>11}  sharded ns/rd (workers)",
        "scenario", "dense ns/rd", "sparse ns/rd", "speedup", "occupancy"
    );
    for sc in &mega.scenarios {
        let curve: Vec<String> = sc
            .sharded_ns_per_round
            .iter()
            .map(|(w, ns)| format!("{w}:{ns}"))
            .collect();
        println!(
            "{:<10} {:>14} {:>14} {:>8.2}x {:>10.2}%  {}",
            sc.name,
            sc.dense_ns_per_round,
            sc.sparse_ns_per_round,
            sc.speedup_sparse_vs_dense,
            sc.occupancy * 100.0,
            curve.join(" ")
        );
    }
    std::fs::write(&mega_out, mega.to_json())
        .map_err(|e| format!("writing {mega_out}: {e}"))?;
    println!("wrote {mega_out}");

    let trace_out: String = flags.get("trace-overhead-out", "BENCH_PR9.json".to_string())?;
    eprintln!("running causal-tracing overhead matrix...");
    let trace = cellflow_bench::trace_overhead::run(quick);
    println!(
        "\n{:<8} {:>12} {:>12} {:>9}",
        "scenario", "off ns/rd", "on ns/rd", "overhead"
    );
    for sc in &trace.scenarios {
        println!(
            "{:<8} {:>12} {:>12} {:>8.3}x",
            sc.name, sc.trace_off_ns_per_round, sc.trace_on_ns_per_round, sc.overhead_ratio
        );
    }
    std::fs::write(&trace_out, trace.to_json())
        .map_err(|e| format!("writing {trace_out}: {e}"))?;
    println!("wrote {trace_out}");

    let rec_out: String = flags.get("recording-overhead-out", "BENCH_PR10.json".to_string())?;
    eprintln!("running flight-recording overhead matrix...");
    let recording = cellflow_bench::recording_overhead::run(quick);
    println!(
        "\n{:<8} {:>12} {:>12} {:>9} {:>9}",
        "scenario", "off ns/rd", "on ns/rd", "overhead", "bytes/rd"
    );
    for sc in &recording.scenarios {
        println!(
            "{:<8} {:>12} {:>12} {:>8.3}x {:>9}",
            sc.name,
            sc.recording_off_ns_per_round,
            sc.recording_on_ns_per_round,
            sc.overhead_ratio,
            sc.bytes_per_round
        );
    }
    std::fs::write(&rec_out, recording.to_json())
        .map_err(|e| format!("writing {rec_out}: {e}"))?;
    println!("wrote {rec_out}");
    Ok(())
}

/// Demo helper used by tests: a tiny system everyone can step.
#[allow(dead_code)]
pub fn tiny_system() -> System {
    System::new(
        SystemConfig::new(
            GridDims::square(3),
            CellId::new(2, 2),
            Params::from_milli(250, 50, 200).expect("valid"),
        )
        .expect("valid")
        .with_source(CellId::new(0, 0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_empty_succeed() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&argv("help")).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        let err = dispatch(&argv("frobnicate")).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn run_small() {
        assert!(dispatch(&argv("run --n 4 --rounds 50")).is_ok());
    }

    #[test]
    fn run_validates_params() {
        let err = dispatch(&argv("run --n 4 --v 900")).unwrap_err();
        assert!(err.contains("exceed"), "{err}");
        assert!(dispatch(&argv("run --n 1")).is_err());
    }

    #[test]
    fn demo_renders() {
        assert!(dispatch(&argv("demo")).is_ok());
    }

    #[test]
    fn figures_run_at_tiny_k() {
        assert!(dispatch(&argv("fig7 --rounds 40")).is_ok());
        assert!(dispatch(&argv("fig8 --rounds 40")).is_ok());
        assert!(dispatch(&argv("fig9 --rounds 40 --seeds 1")).is_ok());
        assert!(dispatch(&argv("paths --rounds 40")).is_ok());
    }

    #[test]
    fn mc_small_instance() {
        assert!(dispatch(&argv("mc --budget 1 --fallible 1")).is_ok());
    }

    #[test]
    fn chaos_campaign_small() {
        assert!(dispatch(&argv("chaos --n 4 --rounds 80 --active 40 --seed 3")).is_ok());
    }

    #[test]
    fn mc_with_capacity_invariant() {
        assert!(dispatch(&argv("mc --budget 2 --fallible 1 --capacity 2")).is_ok());
    }

    #[test]
    fn cascade_campaign_runs_in_every_mode() {
        assert!(dispatch(&argv("chaos --cascade --n 5 --rounds 120 --seed 2")).is_ok());
        assert!(dispatch(&argv("chaos --cascade --n 5 --rounds 120 --seed 2 --backoff")).is_ok());
        assert!(dispatch(&argv(
            "chaos --cascade --n 5 --rounds 120 --seed 2 --restart 12 --budget 1"
        ))
        .is_ok());
    }

    #[test]
    fn cascade_rejects_conflicting_mitigations() {
        let err = dispatch(&argv("chaos --cascade --backoff --restart 5")).unwrap_err();
        assert!(err.contains("exclusive"), "{err}");
        assert!(dispatch(&argv("chaos --cascade --capacity 0")).is_err());
    }

    #[test]
    fn chaos_lossless_campaign_is_differential() {
        assert!(dispatch(&argv(
            "chaos --n 4 --rounds 80 --active 40 --drop 0 --delay 0 --seed 5"
        ))
        .is_ok());
    }

    #[test]
    fn chaos_with_kill_degrades_cleanly() {
        // A kill wedges a round; the command reports the typed degradation
        // (not a deadlock, not a panic) and still exits successfully.
        assert!(dispatch(&argv(
            "chaos --n 4 --rounds 60 --active 30 --kills 1 --hard 0 --timeout-ms 300 --seed 2"
        ))
        .is_ok());
    }

    #[test]
    fn partition_split_campaign_certifies() {
        assert!(dispatch(&argv(
            "chaos --n 5 --partition split@col=2 --rounds 100 --start 10 --heal 70"
        ))
        .is_ok());
    }

    #[test]
    fn partition_island_and_flaky_campaigns_certify() {
        assert!(dispatch(&argv(
            "chaos --n 5 --partition island@3,3,4,4 --rounds 100 --heal 60"
        ))
        .is_ok());
        assert!(dispatch(&argv(
            "chaos --n 5 --partition flaky@200 --seed 9 --rounds 100 --heal 60"
        ))
        .is_ok());
    }

    #[test]
    fn partition_without_heal_fails_certification() {
        let err =
            dispatch(&argv("chaos --n 5 --partition split@row=2 --no-heal")).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
    }

    #[test]
    fn partition_rejects_bad_specs() {
        assert!(dispatch(&argv("chaos --partition nonsense")).is_err());
        assert!(dispatch(&argv("chaos --partition split@col=9")).is_err());
        assert!(dispatch(&argv("chaos --partition split@diag=2")).is_err());
        assert!(dispatch(&argv("chaos --partition island@1,1")).is_err());
        assert!(dispatch(&argv("chaos --partition flaky@2000")).is_err());
        assert!(dispatch(&argv("chaos --partition split@col=2 --heal 5 --start 10")).is_err());
    }

    #[test]
    fn mc_checks_the_partitioned_corridor() {
        assert!(dispatch(&argv("mc --budget 1 --fallible 0 --cut")).is_ok());
    }

    #[test]
    fn stabilize_certifies_small_campaign() {
        assert!(dispatch(&argv("stabilize --n 4 --seed 3")).is_ok());
    }

    #[test]
    fn stabilize_certifies_with_more_corruptions() {
        assert!(dispatch(&argv("stabilize --n 4 --seed 7 --corruptions 5 --active 20")).is_ok());
    }

    #[test]
    fn stabilize_rejects_bad_grids() {
        assert!(dispatch(&argv("stabilize --n 2")).is_err());
        assert!(dispatch(&argv("stabilize --active 2")).is_err());
    }

    #[test]
    fn chaos_rejects_bad_rates() {
        assert!(dispatch(&argv("chaos --drop 1.5")).is_err());
        assert!(dispatch(&argv("chaos --n 2")).is_err());
    }

    /// Scratch dir for telemetry-artifact tests, removed on drop.
    struct Scratch(std::path::PathBuf);
    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "cellflow-cli-{tag}-{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }
        fn path(&self, name: &str) -> String {
            self.0.join(name).to_string_lossy().into_owned()
        }
    }
    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn metrics_renders_and_exports() {
        let scratch = Scratch::new("metrics");
        let prom = scratch.path("metrics.prom");
        assert!(dispatch(&argv(&format!(
            "metrics --n 4 --rounds 60 --prom --out {prom}"
        )))
        .is_ok());
        let text = std::fs::read_to_string(&prom).expect("exposition written");
        let stats = cellflow_telemetry::prometheus::validate(&text).expect("valid exposition");
        assert!(stats.families >= 8, "engine + sim + net metrics present");
        // The inspect command accepts the exposition it just wrote.
        assert!(dispatch(&argv(&format!("inspect {prom}"))).is_ok());
    }

    #[test]
    fn chaos_telemetry_artifacts_validate_and_inspect() {
        let scratch = Scratch::new("chaos-tel");
        let (trace, flight, prom) = (
            scratch.path("chaos.trace.jsonl"),
            scratch.path("chaos.flight.jsonl"),
            scratch.path("chaos.metrics.prom"),
        );
        assert!(dispatch(&argv(&format!(
            "chaos --n 4 --rounds 80 --active 40 --seed 3 --telemetry \
             --trace-out {trace} --flight-out {flight} --metrics-out {prom}"
        )))
        .is_ok());
        let stream = std::fs::read_to_string(&trace).expect("trace written");
        let stats = cellflow_telemetry::validate_stream(&stream).expect("schema-valid stream");
        assert_eq!(stats.last_round, 80);
        let text = std::fs::read_to_string(&prom).expect("exposition written");
        cellflow_telemetry::prometheus::validate(&text).expect("valid exposition");
        // A clean campaign never trips the flight recorder.
        assert!(!std::path::Path::new(&flight).exists());
        // And the inspect command renders the stream it produced.
        assert!(dispatch(&argv(&format!("inspect {trace} --rows 10"))).is_ok());
    }

    #[test]
    fn chaos_timeout_with_telemetry_dumps_the_flight_recorder() {
        let scratch = Scratch::new("chaos-dump");
        let (trace, flight, prom) = (
            scratch.path("wedge.trace.jsonl"),
            scratch.path("wedge.flight.jsonl"),
            scratch.path("wedge.metrics.prom"),
        );
        assert!(dispatch(&argv(&format!(
            "chaos --n 4 --rounds 60 --active 30 --kills 1 --hard 0 --timeout-ms 300 \
             --seed 2 --telemetry --trace-out {trace} --flight-out {flight} \
             --metrics-out {prom}"
        )))
        .is_ok());
        let dump = std::fs::read_to_string(&flight).expect("flight dump written on timeout");
        let stats = cellflow_telemetry::validate_stream(&dump).expect("dump is schema-valid");
        assert_eq!(stats.timeouts, 1);
        assert!(dispatch(&argv(&format!("inspect {flight}"))).is_ok());
    }

    #[test]
    fn stabilize_telemetry_produces_valid_artifacts() {
        let scratch = Scratch::new("stab-tel");
        let (trace, flight, prom) = (
            scratch.path("stab.trace.jsonl"),
            scratch.path("stab.flight.jsonl"),
            scratch.path("stab.metrics.prom"),
        );
        assert!(dispatch(&argv(&format!(
            "stabilize --n 4 --seed 3 --telemetry --trace-out {trace} \
             --flight-out {flight} --metrics-out {prom}"
        )))
        .is_ok());
        let stream = std::fs::read_to_string(&trace).expect("trace written");
        let stats = cellflow_telemetry::validate_stream(&stream).expect("schema-valid stream");
        assert!(stats.events > 0);
        cellflow_telemetry::prometheus::validate(
            &std::fs::read_to_string(&prom).expect("exposition written"),
        )
        .expect("valid exposition");
    }

    #[test]
    fn inspect_rejects_garbage_and_missing_files() {
        let scratch = Scratch::new("inspect-bad");
        assert!(dispatch(&argv("inspect")).is_err());
        assert!(dispatch(&argv(&format!("inspect {}", scratch.path("absent.jsonl")))).is_err());
        let bad = scratch.path("bad.jsonl");
        std::fs::write(&bad, "{\"v\":1,\"round\":0}\n").expect("write");
        let err = dispatch(&argv(&format!("inspect {bad}"))).unwrap_err();
        assert!(err.contains(":1:"), "error cites the line: {err}");
    }

    #[test]
    fn inspect_routes_by_extension_and_rejects_empty_files() {
        let scratch = Scratch::new("inspect-route");
        let empty = scratch.path("empty.jsonl");
        std::fs::write(&empty, "").expect("write");
        let err = dispatch(&argv(&format!("inspect {empty}"))).unwrap_err();
        assert!(err.contains(":1: empty file"), "{err}");
        // A .jsonl file whose first line is not an object must still be
        // reported as a JSONL error with its line number, not handed to
        // the Prometheus validator.
        let bad = scratch.path("garbage.jsonl");
        std::fs::write(&bad, "not json at all\n").expect("write");
        let err = dispatch(&argv(&format!("inspect {bad}"))).unwrap_err();
        assert!(err.contains(":1:"), "error cites the line: {err}");
    }

    #[test]
    fn chaos_trace_artifacts_validate_and_render() {
        let scratch = Scratch::new("chaos-trace");
        let out = scratch.path("chaos.trace.jsonl");
        // `--trace` implies the telemetry bundle.
        assert!(dispatch(&argv(&format!(
            "chaos --n 4 --rounds 60 --active 30 --seed 3 --trace --trace-out {out} \
             --flight-out {} --metrics-out {}",
            scratch.path("f.jsonl"),
            scratch.path("m.prom"),
        )))
        .is_ok());
        let stream = std::fs::read_to_string(&out).expect("trace written");
        cellflow_telemetry::validate_stream(&stream).expect("schema-valid stream");
        let parsed = cellflow_telemetry::Trace::parse(&stream).expect("span events parse");
        assert!(!parsed.spans.is_empty(), "causal spans were emitted");
        parsed.check_causality().expect("span tree is causal");
        // The analysis command accepts the stream it just produced.
        assert!(dispatch(&argv(&format!("trace {out}"))).is_ok());
        assert!(dispatch(&argv(&format!("trace {out} --top 3 --round 5 --wall"))).is_ok());
    }

    #[test]
    fn trace_command_rejects_bad_streams() {
        let scratch = Scratch::new("trace-bad");
        assert!(dispatch(&argv("trace")).is_err());
        assert!(dispatch(&argv(&format!("trace {}", scratch.path("absent.jsonl")))).is_err());
        let bad = scratch.path("bad.jsonl");
        std::fs::write(&bad, "not json\n").expect("write");
        let err = dispatch(&argv(&format!("trace {bad}"))).unwrap_err();
        assert!(err.contains(":1:"), "error cites the line: {err}");
        // A schema-valid stream with no span events is useless to the
        // analyzer; say so instead of printing an empty report.
        let spanless = scratch.path("spanless.jsonl");
        std::fs::write(
            &spanless,
            "{\"v\":1,\"round\":1,\"kind\":\"round_summary\",\"consumed\":0,\
             \"inserted\":0,\"blocked\":0,\"moved\":0}\n",
        )
        .expect("write");
        let err = dispatch(&argv(&format!("trace {spanless}"))).unwrap_err();
        assert!(err.contains("no span events"), "{err}");
    }

    #[test]
    fn metrics_trace_out_streams_a_causal_trace() {
        let scratch = Scratch::new("metrics-trace");
        let out = scratch.path("sim.trace.jsonl");
        assert!(dispatch(&argv(&format!(
            "metrics --n 4 --rounds 60 --trace-out {out}"
        )))
        .is_ok());
        let stream = std::fs::read_to_string(&out).expect("trace written");
        let parsed = cellflow_telemetry::Trace::parse(&stream).expect("span events parse");
        assert!(!parsed.spans.is_empty());
        parsed.check_causality().expect("span tree is causal");
        assert!(dispatch(&argv(&format!("trace {out}"))).is_ok());
    }

    #[test]
    fn record_replay_round_trips_byte_identically() {
        let scratch = Scratch::new("record-replay");
        let rec = scratch.path("plain.rec");
        assert!(dispatch(&argv(&format!(
            "record --scenario plain --n 4 --rounds 30 --seed 7 --record-out {rec}"
        )))
        .is_ok());
        assert!(dispatch(&argv(&format!("replay {rec}"))).is_ok());
        assert!(dispatch(&argv(&format!("inspect {rec}"))).is_ok());
    }

    #[test]
    fn corrupt_recording_is_rejected_with_an_offset() {
        let scratch = Scratch::new("record-corrupt");
        let rec = scratch.path("plain.rec");
        assert!(dispatch(&argv(&format!(
            "record --scenario plain --n 4 --rounds 20 --seed 7 --record-out {rec}"
        )))
        .is_ok());
        let mut bytes = std::fs::read(&rec).expect("recording written");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&rec, &bytes).expect("tamper");
        for cmd in ["inspect", "replay"] {
            let err = dispatch(&argv(&format!("{cmd} {rec}"))).unwrap_err();
            assert!(err.contains(&format!("{rec}:")), "{cmd}: {err}");
            assert!(err.contains("corrupt") || err.contains("checksum"), "{cmd}: {err}");
        }
        // Truncation is caught too, with the offset of the torn frame.
        bytes[mid] ^= 0xff;
        bytes.truncate(bytes.len() - 5);
        std::fs::write(&rec, &bytes).expect("truncate");
        let err = dispatch(&argv(&format!("inspect {rec}"))).unwrap_err();
        assert!(err.contains(&format!("{rec}:")), "{err}");
    }

    #[test]
    fn diff_and_bisect_pin_seed_divergence() {
        let scratch = Scratch::new("record-diff");
        let (a, b) = (scratch.path("a.rec"), scratch.path("b.rec"));
        for (seed, path) in [(1, &a), (2, &b)] {
            assert!(dispatch(&argv(&format!(
                "record --scenario chaos --n 4 --rounds 30 --active 15 --hard 0 \
                 --seed {seed} --record-out {path}"
            )))
            .is_ok());
        }
        // Same recording: no differences, exit zero.
        assert!(dispatch(&argv(&format!("diff {a} {a}"))).is_ok());
        assert!(dispatch(&argv(&format!("bisect {a} {a}"))).is_ok());
        // Different seeds: diff exits nonzero naming the round, bisect
        // reports the divergence and writes the flight dump.
        let err = dispatch(&argv(&format!("diff {a} {b}"))).unwrap_err();
        assert!(err.contains("difference"), "{err}");
        assert!(dispatch(&argv(&format!("bisect {a} {b}"))).is_ok());
        let dump = format!("{a}.divergence.jsonl");
        let stream = std::fs::read_to_string(&dump).expect("divergence dump written");
        assert!(cellflow_telemetry::validate_stream(&stream).is_ok());
        assert!(stream.contains("divergence"));
    }

    #[test]
    fn campaign_record_flag_produces_replayable_recordings() {
        let scratch = Scratch::new("record-campaign");
        let rec = scratch.path("chaos.rec");
        assert!(dispatch(&argv(&format!(
            "chaos --n 4 --rounds 40 --active 20 --hard 0 --seed 3 --record {rec}"
        )))
        .is_ok());
        assert!(dispatch(&argv(&format!("replay {rec}"))).is_ok());
        let cascade = scratch.path("cascade.rec");
        assert!(dispatch(&argv(&format!(
            "chaos --cascade --n 4 --rounds 50 --seed 2 --record {cascade}"
        )))
        .is_ok());
        assert!(dispatch(&argv(&format!("replay {cascade}"))).is_ok());
    }

    #[test]
    fn bench_check_fails_cleanly_without_baselines() {
        let scratch = Scratch::new("bench-check");
        // An empty baseline dir is an error (the harness guards committed
        // files), reported without running any benchmark.
        let err = dispatch(&argv(&format!(
            "bench --check --baseline-dir {}",
            scratch.path("")
        )))
        .unwrap_err();
        assert!(err.contains("BENCH_PR3.json"), "{err}");
    }
}
