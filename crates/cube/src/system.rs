//! Configuration, state, and facade for the 3-D system.

use core::fmt;
use std::collections::BTreeSet;

use cellflow_core::{EntityId, Params};
use cellflow_routing::Dist;

use crate::phases::update3;
use crate::{CellId3, CellState3, Dims3, Point3};

/// Static configuration of a 3-D system.
///
/// The token policy is the fair cyclic rotation (the 2-D default); the source
/// policy is the 3-D far-face placement. See the 2-D `SystemConfig` for the
/// richer policy surface — this extension keeps the paper's defaults.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemConfig3 {
    dims: Dims3,
    target: CellId3,
    sources: BTreeSet<CellId3>,
    params: Params,
    dist_cap: u32,
    entity_budget: Option<u64>,
}

impl SystemConfig3 {
    /// Creates a configuration with no sources.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError3::TargetOutOfBounds`] if `target` is outside the
    /// box.
    pub fn new(
        dims: Dims3,
        target: CellId3,
        params: Params,
    ) -> Result<SystemConfig3, ConfigError3> {
        if !dims.contains(target) {
            return Err(ConfigError3::TargetOutOfBounds { target, dims });
        }
        Ok(SystemConfig3 {
            dims,
            target,
            sources: BTreeSet::new(),
            params,
            dist_cap: dims.cell_count() as u32 + 1,
            entity_budget: None,
        })
    }

    /// Adds a source cell.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or equals the target.
    pub fn with_source(mut self, source: CellId3) -> SystemConfig3 {
        assert!(self.dims.contains(source), "source {source} out of bounds");
        assert!(source != self.target, "source must differ from target");
        self.sources.insert(source);
        self
    }

    /// Caps total entity creation (for bounded model checking).
    pub fn with_entity_budget(mut self, budget: u64) -> SystemConfig3 {
        self.entity_budget = Some(budget);
        self
    }

    /// Box dimensions.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// The target cell.
    pub fn target(&self) -> CellId3 {
        self.target
    }

    /// The source cells.
    pub fn sources(&self) -> &BTreeSet<CellId3> {
        &self.sources
    }

    /// Physical parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// `∞`-saturation cap.
    pub fn dist_cap(&self) -> u32 {
        self.dist_cap
    }

    /// Entity creation budget.
    pub fn entity_budget(&self) -> Option<u64> {
        self.entity_budget
    }

    /// The initial state: empty cells, target `dist = 0`.
    pub fn initial_state(&self) -> SystemState3 {
        let mut cells = vec![CellState3::initial(); self.dims.cell_count()];
        cells[self.dims.index(self.target)] = CellState3::initial_target();
        SystemState3 {
            cells,
            next_entity_id: 0,
        }
    }
}

/// Error building a [`SystemConfig3`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError3 {
    /// The target lies outside the box.
    TargetOutOfBounds {
        /// Offending target.
        target: CellId3,
        /// The box.
        dims: Dims3,
    },
}

impl fmt::Display for ConfigError3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError3::TargetOutOfBounds { target, dims } => {
                write!(f, "target {target} is outside the {dims} box")
            }
        }
    }
}

impl std::error::Error for ConfigError3 {}

/// A complete state of the 3-D system (hashable for model checking).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemState3 {
    /// Per-cell states indexed by [`Dims3::index`].
    pub cells: Vec<CellState3>,
    /// Next fresh entity identifier.
    pub next_entity_id: u64,
}

impl SystemState3 {
    /// One cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell(&self, dims: Dims3, id: CellId3) -> &CellState3 {
        &self.cells[dims.index(id)]
    }

    /// Mutable access to one cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell_mut(&mut self, dims: Dims3, id: CellId3) -> &mut CellState3 {
        &mut self.cells[dims.index(id)]
    }

    /// Total entities in the system.
    pub fn entity_count(&self) -> usize {
        self.cells.iter().map(|c| c.members.len()).sum()
    }

    /// The `fail` transition (3-D): crash `id`, pin `dist = ∞`, clear
    /// pointers.
    pub fn fail(&mut self, dims: Dims3, id: CellId3) {
        let c = self.cell_mut(dims, id);
        c.failed = true;
        c.dist = Dist::Infinity;
        c.next = None;
        c.signal = None;
    }

    /// The recovery transition: clear the flag; target recovers `dist = 0`.
    pub fn recover(&mut self, dims: Dims3, id: CellId3, target: CellId3) {
        let c = self.cell_mut(dims, id);
        c.failed = false;
        if id == target {
            c.dist = Dist::Finite(0);
        }
    }
}

/// The 3-D system facade: config + state + counters.
#[derive(Clone, Debug)]
pub struct System3 {
    config: SystemConfig3,
    state: SystemState3,
    round: u64,
    consumed_total: u64,
    inserted_total: u64,
}

impl System3 {
    /// Creates a system in the initial state.
    pub fn new(config: SystemConfig3) -> System3 {
        let state = config.initial_state();
        System3 {
            config,
            state,
            round: 0,
            consumed_total: 0,
            inserted_total: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig3 {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> &SystemState3 {
        &self.state
    }

    /// One cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell(&self, id: CellId3) -> &CellState3 {
        self.state.cell(self.config.dims(), id)
    }

    /// Rounds executed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Entities consumed so far.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }

    /// Entities created so far.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// One synchronous round; returns `(consumed, inserted)` counts.
    pub fn step(&mut self) -> (usize, usize) {
        let outcome = update3(&self.config, &self.state);
        self.state = outcome.state;
        self.round += 1;
        self.consumed_total += outcome.consumed.len() as u64;
        self.inserted_total += outcome.inserted.len() as u64;
        (outcome.consumed.len(), outcome.inserted.len())
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Crashes a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn fail(&mut self, id: CellId3) {
        self.state.fail(self.config.dims(), id);
    }

    /// Recovers a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn recover(&mut self, id: CellId3) {
        let t = self.config.target();
        self.state.recover(self.config.dims(), id, t);
    }

    /// Places an entity with a fresh id at `pos` on `id` (test/example setup).
    ///
    /// # Panics
    ///
    /// Panics if the position violates the cell margins or spacing — callers
    /// seed deliberately-valid states.
    pub fn seed_entity(&mut self, id: CellId3, pos: Point3) -> EntityId {
        let params = self.config.params();
        let h = params.half_l();
        for axis in [crate::Axis3::X, crate::Axis3::Y, crate::Axis3::Z] {
            let base = match axis {
                crate::Axis3::X => id.i(),
                crate::Axis3::Y => id.j(),
                crate::Axis3::Z => id.k(),
            } as i64;
            let c = pos.along(axis);
            assert!(
                c >= cellflow_geom::Fixed::from_int(base) + h
                    && c <= cellflow_geom::Fixed::from_int(base + 1) - h,
                "entity would protrude from {id} along {axis:?}"
            );
        }
        let dims = self.config.dims();
        assert!(
            self.state
                .cell(dims, id)
                .members
                .values()
                .all(|&q| crate::sep_ok3(pos, q, params.d())),
            "seed violates spacing"
        );
        let eid = EntityId(self.state.next_entity_id);
        self.state.next_entity_id += 1;
        self.state.cell_mut(dims, id).members.insert(eid, pos);
        eid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig3 {
        SystemConfig3::new(
            Dims3::new(3, 3, 3),
            CellId3::new(2, 2, 2),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId3::new(0, 0, 0))
    }

    #[test]
    fn config_validates() {
        assert!(SystemConfig3::new(
            Dims3::new(2, 2, 2),
            CellId3::new(2, 0, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .is_err());
        let cfg = config();
        assert_eq!(cfg.dims().cell_count(), 27);
        assert_eq!(cfg.dist_cap(), 28);
    }

    #[test]
    #[should_panic(expected = "differ from target")]
    fn source_equals_target_panics() {
        let _ = config().with_source(CellId3::new(2, 2, 2));
    }

    #[test]
    fn initial_state_and_fail_recover() {
        let cfg = config();
        let mut s = cfg.initial_state();
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Finite(0));
        let v = CellId3::new(1, 1, 1);
        s.fail(cfg.dims(), v);
        assert!(s.cell(cfg.dims(), v).failed);
        s.recover(cfg.dims(), v, cfg.target());
        assert!(!s.cell(cfg.dims(), v).failed);
        s.fail(cfg.dims(), cfg.target());
        s.recover(cfg.dims(), cfg.target(), cfg.target());
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Finite(0));
    }

    #[test]
    fn seeding_validates() {
        let mut sys = System3::new(config());
        let c = CellId3::new(1, 1, 1);
        sys.seed_entity(c, c.center());
        assert_eq!(sys.state().entity_count(), 1);
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn double_seed_panics() {
        let mut sys = System3::new(config());
        let c = CellId3::new(1, 1, 1);
        sys.seed_entity(c, c.center());
        sys.seed_entity(c, c.center());
    }
}
