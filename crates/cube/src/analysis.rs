//! 3-D analysis helpers: path distance, target connectivity, stabilization.

use std::collections::{HashMap, HashSet, VecDeque};

use cellflow_routing::{route_update, Dist};

use crate::{CellId3, SystemConfig3, SystemState3};

/// The set of currently failed cells.
pub fn failed_set3(config: &SystemConfig3, state: &SystemState3) -> HashSet<CellId3> {
    let dims = config.dims();
    dims.iter()
        .filter(|&id| state.cell(dims, id).failed)
        .collect()
}

/// The 3-D path distance `ρ`: hop distance to the target through non-faulty
/// cells, `None` for `∞`.
pub fn rho3(config: &SystemConfig3, state: &SystemState3) -> HashMap<CellId3, u32> {
    let dims = config.dims();
    let failed = failed_set3(config, state);
    let mut out = HashMap::new();
    if !failed.contains(&config.target()) {
        out.insert(config.target(), 0u32);
        let mut queue = VecDeque::from([config.target()]);
        while let Some(cur) = queue.pop_front() {
            let next_d = out[&cur] + 1;
            for nbr in dims.neighbors3(cur) {
                if !out.contains_key(&nbr) && !failed.contains(&nbr) {
                    out.insert(nbr, next_d);
                    queue.push_back(nbr);
                }
            }
        }
    }
    out
}

/// The target-connected set `TC` in 3-D.
pub fn tc3(config: &SystemConfig3, state: &SystemState3) -> HashSet<CellId3> {
    rho3(config, state).into_keys().collect()
}

/// `true` if the 3-D routing layer has stabilized: every live cell's `dist`
/// equals `ρ` (or `∞`), and its `next` is the `(dist, id)`-argmin neighbor.
pub fn routing_stabilized3(config: &SystemConfig3, state: &SystemState3) -> bool {
    let dims = config.dims();
    let rho = rho3(config, state);
    let expected = |id: CellId3| -> Dist {
        match rho.get(&id) {
            Some(&d) => Dist::Finite(d),
            None => Dist::Infinity,
        }
    };
    dims.iter().all(|id| {
        let cell = state.cell(dims, id);
        if cell.failed {
            return true;
        }
        if cell.dist != expected(id) {
            return false;
        }
        if id == config.target() {
            return true;
        }
        let (_, want_next) = route_update(
            dims.neighbors3(id).map(|n| (n, expected(n))),
            config.dist_cap(),
        );
        cell.next == want_next
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dims3, System3};
    use cellflow_core::Params;

    fn system() -> System3 {
        System3::new(
            SystemConfig3::new(
                Dims3::new(3, 3, 2),
                CellId3::new(2, 2, 1),
                Params::from_milli(250, 50, 200).unwrap(),
            )
            .unwrap()
            .with_source(CellId3::new(0, 0, 0)),
        )
    }

    #[test]
    fn rho_matches_manhattan_without_failures() {
        let sys = system();
        let rho = rho3(sys.config(), sys.state());
        for id in sys.config().dims().iter() {
            assert_eq!(rho[&id], id.manhattan(sys.config().target()), "{id}");
        }
        assert_eq!(tc3(sys.config(), sys.state()).len(), 18);
    }

    #[test]
    fn walls_disconnect_in_3d() {
        let mut sys = system();
        // Wall off the z = 1 layer except the target itself: the z = 0 layer
        // can only connect through the remaining openings.
        for i in 0..3 {
            for j in 0..3 {
                let c = CellId3::new(i, j, 1);
                if c != sys.config().target() {
                    sys.fail(c);
                }
            }
        }
        // Target ⟨2,2,1⟩ now connects to z=0 only via ⟨2,2,0⟩.
        let rho = rho3(sys.config(), sys.state());
        assert_eq!(rho[&CellId3::new(2, 2, 0)], 1);
        assert_eq!(rho[&CellId3::new(0, 0, 0)], 5);
        assert_eq!(failed_set3(sys.config(), sys.state()).len(), 8);
    }

    #[test]
    fn stabilization_observer_in_3d() {
        let mut sys = system();
        assert!(!routing_stabilized3(sys.config(), sys.state()));
        sys.run(8); // eccentricity ≤ 5
        assert!(routing_stabilized3(sys.config(), sys.state()));
        sys.fail(CellId3::new(1, 1, 0));
        sys.run(2 * 18 + 2);
        assert!(routing_stabilized3(sys.config(), sys.state()));
    }
}
