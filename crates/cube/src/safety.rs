//! Safety predicates for the 3-D system — Theorem 5 lifted to cubes.

use core::fmt;

use cellflow_core::EntityId;

use crate::{gap_free_toward3, sep_ok3, Axis3, CellId3, SystemConfig3, SystemState3};

/// A violation of the 3-D `Safe` predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafetyViolation3 {
    /// The cell holding both entities.
    pub cell: CellId3,
    /// One entity.
    pub first: EntityId,
    /// The other.
    pub second: EntityId,
}

impl fmt::Display for SafetyViolation3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entities {} and {} on {} are within d on all three axes",
            self.first, self.second, self.cell
        )
    }
}

impl std::error::Error for SafetyViolation3 {}

/// Checks the 3-D safety property: any two entities on one cell differ by at
/// least `d = rs + l` along some axis.
///
/// # Errors
///
/// Returns the first violating pair.
pub fn check_safe3(config: &SystemConfig3, state: &SystemState3) -> Result<(), SafetyViolation3> {
    let dims = config.dims();
    let d = config.params().d();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        let entities: Vec<_> = cell.members.iter().collect();
        for (ai, (&a_id, &a_pos)) in entities.iter().enumerate() {
            for (&b_id, &b_pos) in &entities[ai + 1..] {
                if !sep_ok3(a_pos, b_pos, d) {
                    return Err(SafetyViolation3 {
                        cell: id,
                        first: a_id,
                        second: b_id,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks 3-D Invariant 1: every entity's cube footprint stays within its
/// cell's margins on all three axes.
///
/// # Errors
///
/// Returns `(cell, entity)` for the first protruding entity.
pub fn check_margins3(
    config: &SystemConfig3,
    state: &SystemState3,
) -> Result<(), (CellId3, EntityId)> {
    let dims = config.dims();
    let h = config.params().half_l();
    for id in dims.iter() {
        for (&eid, &pos) in &state.cell(dims, id).members {
            for axis in [Axis3::X, Axis3::Y, Axis3::Z] {
                let base = match axis {
                    Axis3::X => id.i(),
                    Axis3::Y => id.j(),
                    Axis3::Z => id.k(),
                } as i64;
                let c = pos.along(axis);
                if c < cellflow_geom::Fixed::from_int(base) + h
                    || c > cellflow_geom::Fixed::from_int(base + 1) - h
                {
                    return Err((id, eid));
                }
            }
        }
    }
    Ok(())
}

/// Checks the 3-D `H` predicate: every granted face has an empty `d`-slab.
///
/// # Errors
///
/// Returns `(cell, witness)` for the first occupied promised slab.
pub fn check_h3(config: &SystemConfig3, state: &SystemState3) -> Result<(), (CellId3, EntityId)> {
    let dims = config.dims();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        let Some(granted) = cell.signal else { continue };
        let Some(dir) = id.dir_to(granted) else {
            continue;
        };
        for (&eid, pos) in &cell.members {
            if !gap_free_toward3(config.params(), id, dir, [pos]) {
                return Err((id, eid));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dims3, Dir3, System3};
    use cellflow_core::Params;

    fn system() -> System3 {
        System3::new(
            SystemConfig3::new(
                Dims3::new(3, 3, 3),
                CellId3::new(2, 2, 2),
                Params::from_milli(250, 50, 100).unwrap(),
            )
            .unwrap()
            .with_source(CellId3::new(0, 0, 0)),
        )
    }

    #[test]
    fn safe_accepts_axis_separation_and_rejects_closeness() {
        let mut sys = system();
        let c = CellId3::new(1, 1, 1);
        let p0 = c.center();
        sys.seed_entity(c, p0);
        // Separated only along z: still safe.
        sys.seed_entity(c, p0.translate(Dir3::Up, sys.config().params().d()));
        assert_eq!(check_safe3(sys.config(), sys.state()), Ok(()));
        assert_eq!(check_margins3(sys.config(), sys.state()), Ok(()));
    }

    #[test]
    fn violation_is_reported() {
        let mut sys = system();
        let c = CellId3::new(1, 1, 1);
        sys.seed_entity(c, c.center());
        // Bypass seeding validation with direct state surgery.
        let dims = sys.config().dims();
        let mut state = sys.state().clone();
        let eps = cellflow_geom::Fixed::from_milli(100);
        state
            .cell_mut(dims, c)
            .members
            .insert(EntityId(99), c.center().translate(Dir3::East, eps));
        let cfg = sys.config().clone();
        let v = check_safe3(&cfg, &state).unwrap_err();
        assert_eq!(v.cell, c);
        assert!(v.to_string().contains("within d"));
    }

    #[test]
    fn h3_detects_occupied_slab() {
        let sys = system();
        let dims = sys.config().dims();
        let mut state = sys.state().clone();
        let c = CellId3::new(1, 1, 1);
        state.cell_mut(dims, c).signal = Some(CellId3::new(0, 1, 1)); // grant west
                                                                      // Entity flush at the west face.
        let h = sys.config().params().half_l();
        state.cell_mut(dims, c).members.insert(
            EntityId(0),
            c.center()
                .with_along(Axis3::X, cellflow_geom::Fixed::from_int(1) + h),
        );
        assert_eq!(check_h3(sys.config(), &state), Err((c, EntityId(0))));
    }
}
