//! Per-cube-cell protocol state (3-D analogue of `cellflow_core::CellState`).

use std::collections::{BTreeMap, BTreeSet};

use cellflow_core::EntityId;
use cellflow_routing::Dist;

use crate::{CellId3, Point3};

/// The state variables of one cube cell — identical in shape to the 2-D
/// [`cellflow_core::CellState`], with 3-D identifiers and positions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellState3 {
    /// Entities on this cell with their center positions.
    pub members: BTreeMap<EntityId, Point3>,
    /// Estimated hop distance to the target.
    pub dist: Dist,
    /// The neighbor this cell moves entities toward (`None` = `⊥`).
    pub next: Option<CellId3>,
    /// Nonempty neighbors routing through this cell (recomputed per round).
    pub ne_prev: BTreeSet<CellId3>,
    /// Current token holder.
    pub token: Option<CellId3>,
    /// Currently granted neighbor.
    pub signal: Option<CellId3>,
    /// Crash flag.
    pub failed: bool,
}

impl CellState3 {
    /// The initial ordinary-cell state.
    pub fn initial() -> CellState3 {
        CellState3 {
            members: BTreeMap::new(),
            dist: Dist::Infinity,
            next: None,
            ne_prev: BTreeSet::new(),
            token: None,
            signal: None,
            failed: false,
        }
    }

    /// The initial target state (`dist = 0`).
    pub fn initial_target() -> CellState3 {
        CellState3 {
            dist: Dist::Finite(0),
            ..CellState3::initial()
        }
    }

    /// `true` if the cell holds no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of entities on the cell.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }
}

impl Default for CellState3 {
    fn default() -> CellState3 {
        CellState3::initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_matches_2d_shape() {
        let c = CellState3::initial();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.dist, Dist::Infinity);
        assert_eq!(c.next, None);
        assert!(!c.failed);
        assert_eq!(CellState3::default(), c);
        assert_eq!(CellState3::initial_target().dist, Dist::Finite(0));
    }
}
