//! The three protocol phases in 3-D: `Route`, `Signal`, `Move`.

use std::collections::BTreeSet;

use cellflow_core::EntityId;
use cellflow_routing::route_update;

use crate::{CellId3, Dir3, Point3, SystemConfig3, SystemState3};

/// `Route` in 3-D — byte-for-byte the paper's rule over the 6-neighbor
/// topology, via the shared [`route_update`] kernel.
pub fn route_phase3(config: &SystemConfig3, state: &SystemState3) -> SystemState3 {
    let dims = config.dims();
    let mut out = state.clone();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || id == config.target() {
            continue;
        }
        let (dist, next) = route_update(
            dims.neighbors3(id).map(|n| (n, state.cell(dims, n).dist)),
            config.dist_cap(),
        );
        let c = out.cell_mut(dims, id);
        c.dist = dist;
        c.next = next;
    }
    out
}

/// The 3-D gap check: `true` if the slab of thickness `d = rs + l` along the
/// face of `id` toward `dir` is free of entity footprints.
pub fn gap_free_toward3<'a, I>(
    params: cellflow_core::Params,
    id: CellId3,
    dir: Dir3,
    members: I,
) -> bool
where
    I: IntoIterator<Item = &'a Point3>,
{
    let boundary = id.boundary(dir);
    let d = params.d();
    let h = params.half_l();
    members.into_iter().all(|p| {
        let edge = p.along(dir.axis()) + h * dir.sign();
        if dir.sign() > 0 {
            edge <= boundary - d
        } else {
            edge >= boundary + d
        }
    })
}

/// Cyclic-successor token rotation over 3-D identifiers (the 2-D crate's
/// `RoundRobin` policy; the only policy this extension ships).
fn rotate_token(ne_prev: &BTreeSet<CellId3>, current: CellId3) -> Option<CellId3> {
    match ne_prev.len() {
        0 => None,
        1 => ne_prev.first().copied(),
        _ => ne_prev
            .range((
                std::ops::Bound::Excluded(current),
                std::ops::Bound::Unbounded,
            ))
            .next()
            .or_else(|| ne_prev.iter().find(|&&c| c != current))
            .copied(),
    }
}

/// `Signal` in 3-D: same token/grant/block structure as Figure 5, with the
/// slab check replacing the strip check.
pub fn signal_phase3(config: &SystemConfig3, state: &SystemState3) -> SystemState3 {
    let dims = config.dims();
    let mut out = state.clone();
    for id in dims.iter() {
        if state.cell(dims, id).failed {
            continue;
        }
        let ne_prev: BTreeSet<CellId3> = dims
            .neighbors3(id)
            .filter(|&m| {
                let nbr = state.cell(dims, m);
                nbr.next == Some(id) && !nbr.members.is_empty()
            })
            .collect();
        let mut token = state.cell(dims, id).token;
        if token.is_none() {
            token = ne_prev.first().copied();
        }
        let (signal, new_token) = match token {
            None => (None, None),
            Some(tok) => {
                let dir = id.dir_to(tok).expect("token is a neighbor");
                let members = state.cell(dims, id).members.values();
                if gap_free_toward3(config.params(), id, dir, members) {
                    (Some(tok), rotate_token(&ne_prev, tok))
                } else {
                    (None, Some(tok))
                }
            }
        };
        let c = out.cell_mut(dims, id);
        c.ne_prev = ne_prev;
        c.token = new_token;
        c.signal = signal;
    }
    out
}

/// What the 3-D `Move` phase did.
#[derive(Clone, Debug)]
pub struct MoveOutcome3 {
    /// Post-move state.
    pub state: SystemState3,
    /// Entities consumed by the target.
    pub consumed: Vec<EntityId>,
    /// `(entity, from, to)` transfers.
    pub transfers: Vec<(EntityId, CellId3, CellId3)>,
    /// Entities created by sources.
    pub inserted: Vec<(CellId3, EntityId)>,
}

/// `Move` in 3-D: permitted cells translate entities by `v` along the granted
/// axis; entities strictly crossing a face transfer (snapped flush to the
/// receiving face) or are consumed by the target; then sources insert at the
/// face opposite their `next` direction.
pub fn move_phase3(config: &SystemConfig3, state: &SystemState3) -> MoveOutcome3 {
    let dims = config.dims();
    let params = config.params();
    let v = params.v();
    let h = params.half_l();

    let mut out = state.clone();
    let mut consumed = Vec::new();
    let mut transfers = Vec::new();
    let mut inserted = Vec::new();
    let mut incoming: Vec<(CellId3, EntityId, Point3)> = Vec::new();

    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || cell.members.is_empty() {
            continue;
        }
        let Some(nx) = cell.next else { continue };
        let nx_cell = state.cell(dims, nx);
        if nx_cell.failed || nx_cell.signal != Some(id) {
            continue;
        }
        let dir = id.dir_to(nx).expect("next is a neighbor");
        let boundary = id.boundary(dir);
        for (&eid, &pos) in &cell.members {
            let new_pos = pos.translate(dir, v);
            let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
            let crossed = if dir.sign() > 0 {
                far_edge > boundary
            } else {
                far_edge < boundary
            };
            let members = &mut out.cell_mut(dims, id).members;
            if crossed {
                members.remove(&eid);
                if nx == config.target() {
                    consumed.push(eid);
                } else {
                    let entry = nx.boundary(dir.opposite());
                    let snapped = new_pos.with_along(dir.axis(), entry + h * dir.sign());
                    incoming.push((nx, eid, snapped));
                    transfers.push((eid, id, nx));
                }
            } else {
                members.insert(eid, new_pos);
            }
        }
    }

    for (to, eid, pos) in incoming {
        out.cell_mut(dims, to).members.insert(eid, pos);
    }

    // Far-face source insertion.
    for &s in config.sources() {
        if state.cell(dims, s).failed {
            continue;
        }
        if let Some(budget) = config.entity_budget() {
            if out.next_entity_id >= budget {
                continue;
            }
        }
        let cell = out.cell(dims, s);
        let pos = match cell.next.and_then(|n| s.dir_to(n)) {
            Some(dir) => {
                let back = dir.opposite();
                let flush = s.boundary(back) - h * back.sign();
                s.center().with_along(back.axis(), flush)
            }
            None => s.center(),
        };
        if cell
            .members
            .values()
            .all(|&q| crate::sep_ok3(pos, q, params.d()))
        {
            let eid = EntityId(out.next_entity_id);
            out.next_entity_id += 1;
            out.cell_mut(dims, s).members.insert(eid, pos);
            inserted.push((s, eid));
        }
    }

    MoveOutcome3 {
        state: out,
        consumed,
        transfers,
        inserted,
    }
}

/// The atomic 3-D `update` transition: `Route; Signal; Move`.
pub fn update3(config: &SystemConfig3, state: &SystemState3) -> MoveOutcome3 {
    let routed = route_phase3(config, state);
    let signaled = signal_phase3(config, &routed);
    move_phase3(config, &signaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dims3, System3, SystemConfig3};
    use cellflow_core::Params;
    use cellflow_geom::Fixed;
    use cellflow_routing::Dist;

    fn params() -> Params {
        Params::from_milli(250, 50, 100).unwrap()
    }

    fn tower() -> SystemConfig3 {
        // A 1×1×4 vertical shaft: source at the bottom, target at the top.
        SystemConfig3::new(Dims3::new(1, 1, 4), CellId3::new(0, 0, 3), params())
            .unwrap()
            .with_source(CellId3::new(0, 0, 0))
    }

    #[test]
    fn route_converges_in_3d() {
        let cfg = SystemConfig3::new(Dims3::new(3, 3, 3), CellId3::new(1, 1, 1), params()).unwrap();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase3(&cfg, &s);
        }
        for id in cfg.dims().iter() {
            assert_eq!(
                s.cell(cfg.dims(), id).dist,
                Dist::Finite(id.manhattan(cfg.target())),
                "{id}"
            );
        }
        // The corner has three equal-distance neighbors; the smallest id wins.
        let corner = CellId3::new(2, 2, 2);
        assert_eq!(s.cell(cfg.dims(), corner).next, Some(CellId3::new(1, 2, 2)));
    }

    #[test]
    fn gap_check_all_six_faces() {
        let p = params(); // h = 0.125, d = 0.3
        let id = CellId3::new(1, 1, 1);
        let center = [id.center()];
        for dir in Dir3::ALL {
            assert!(gap_free_toward3(p, id, dir, &center), "{dir}");
        }
        // Flush at the top face blocks Up only.
        let top = [id
            .center()
            .with_along(crate::Axis3::Z, Fixed::from_int(2) - p.half_l())];
        for dir in Dir3::ALL {
            assert_eq!(gap_free_toward3(p, id, dir, &top), dir != Dir3::Up, "{dir}");
        }
    }

    #[test]
    fn entities_climb_the_tower_and_are_consumed() {
        let mut sys = System3::new(tower());
        for _ in 0..200 {
            sys.step();
        }
        assert!(sys.consumed_total() > 0, "nothing reached the top");
        assert_eq!(
            sys.inserted_total(),
            sys.consumed_total() + sys.state().entity_count() as u64
        );
    }

    #[test]
    fn vertical_transfer_snaps_flush() {
        let cfg = tower();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let low = CellId3::new(0, 0, 0);
        let mid = CellId3::new(0, 0, 1);
        s.cell_mut(dims, low).next = Some(mid);
        s.cell_mut(dims, low).members.insert(
            EntityId(0),
            low.center()
                .with_along(crate::Axis3::Z, Fixed::from_milli(850)),
        );
        s.cell_mut(dims, mid).signal = Some(low);
        let out = move_phase3(&cfg, &s);
        assert_eq!(out.transfers.len(), 1);
        let new_pos = out.state.cell(dims, mid).members[&EntityId(0)];
        assert_eq!(new_pos.z, Fixed::from_int(1) + params().half_l());
        assert_eq!(new_pos.x, Fixed::HALF);
    }

    #[test]
    fn blocked_when_slab_occupied() {
        let cfg = tower();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase3(&cfg, &s);
        }
        let low = CellId3::new(0, 0, 0);
        let mid = CellId3::new(0, 0, 1);
        s.cell_mut(dims, low)
            .members
            .insert(EntityId(0), low.center());
        // Occupy mid's bottom slab.
        s.cell_mut(dims, mid).members.insert(
            EntityId(1),
            mid.center()
                .with_along(crate::Axis3::Z, Fixed::from_int(1) + params().half_l()),
        );
        let s2 = signal_phase3(&cfg, &route_phase3(&cfg, &s));
        assert_eq!(s2.cell(dims, mid).signal, None);
        assert_eq!(s2.cell(dims, mid).token, Some(low));
    }

    #[test]
    fn failed_cells_neither_move_nor_grant() {
        let cfg = tower();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId3::new(0, 0, 0))
            .members
            .insert(EntityId(0), CellId3::new(0, 0, 0).center());
        s.fail(dims, CellId3::new(0, 0, 1));
        let out = update3(&cfg, &s);
        assert!(out.transfers.is_empty());
        // Frozen entity stayed exactly put.
        assert_eq!(
            out.state.cell(dims, CellId3::new(0, 0, 0)).members[&EntityId(0)],
            CellId3::new(0, 0, 0).center()
        );
    }

    #[test]
    fn token_rotates_among_3d_contenders() {
        let set: BTreeSet<CellId3> = [
            CellId3::new(0, 1, 1),
            CellId3::new(1, 0, 1),
            CellId3::new(1, 1, 0),
        ]
        .into_iter()
        .collect();
        let mut cur = *set.first().unwrap();
        let mut seen = BTreeSet::from([cur]);
        for _ in 0..2 {
            cur = rotate_token(&set, cur).unwrap();
            assert!(seen.insert(cur));
        }
        assert_eq!(seen, set);
        assert_eq!(rotate_token(&set, cur), Some(*set.first().unwrap()));
        assert_eq!(rotate_token(&BTreeSet::new(), cur), None);
    }
}
