//! Three-dimensional distributed cellular flows.
//!
//! The paper's conclusion (§V) states that *"an extension to three dimensional
//! rectangular partitions follows in an obvious way"*. This crate is that
//! extension, built for the air-traffic setting the paper opens with: the
//! space is partitioned into unit **cubes**, entities are `l × l × l` cubes,
//! and each cell may move its entities along any of the six axis directions.
//!
//! Everything transfers from the 2-D protocol:
//!
//! * `Route` is unchanged — it was already geometry-free, and this crate
//!   reuses [`cellflow_routing::route_update`] verbatim over the 6-neighbor
//!   topology;
//! * `Signal` checks an empty `d`-slab (instead of a `d`-strip) at the face
//!   shared with the token holder;
//! * `Move` translates entities along the granted axis, transferring across
//!   faces with the same flush-snap rule;
//! * Safety becomes: two entities on one cell are separated by `d = rs + l`
//!   along **some** axis — verified by the same style of randomized tests and
//!   bounded model checking as the 2-D crate.
//!
//! # Example
//!
//! ```
//! use cellflow_core::Params;
//! use cellflow_cube::{CellId3, Dims3, System3, SystemConfig3};
//!
//! // A 3×3×3 airspace: launch pad at ground level, vertiport at the top.
//! let params = Params::from_milli(250, 50, 200)?;
//! let config = SystemConfig3::new(Dims3::new(3, 3, 3), CellId3::new(1, 1, 2), params)?
//!     .with_source(CellId3::new(1, 1, 0));
//! let mut system = System3::new(config);
//! for _ in 0..200 {
//!     system.step();
//! }
//! assert!(system.consumed_total() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cell;
mod geometry;
mod phases;
pub mod safety;
mod system;

pub use cell::CellState3;
pub use geometry::{sep_ok3, Axis3, CellId3, Dims3, Dir3, Point3};
pub use phases::{gap_free_toward3, move_phase3, route_phase3, signal_phase3, MoveOutcome3};
pub use system::{ConfigError3, System3, SystemConfig3, SystemState3};
