//! 3-D geometry: axes, directions, points, cube-cell identifiers, dimensions.

use core::fmt;

use cellflow_geom::Fixed;
use cellflow_routing::Topology;

/// One of the three coordinate axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Axis3 {
    /// Horizontal `x`.
    X,
    /// Horizontal `y`.
    Y,
    /// Vertical `z` (altitude).
    Z,
}

/// One of the six face directions of a cube cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dir3 {
    /// `+x` (neighbor `⟨i+1, j, k⟩`).
    East,
    /// `−x`.
    West,
    /// `+y`.
    North,
    /// `−y`.
    South,
    /// `+z` (climb).
    Up,
    /// `−z` (descend).
    Down,
}

impl Dir3 {
    /// All six directions in a fixed deterministic order.
    pub const ALL: [Dir3; 6] = [
        Dir3::East,
        Dir3::West,
        Dir3::North,
        Dir3::South,
        Dir3::Up,
        Dir3::Down,
    ];

    /// The `(Δi, Δj, Δk)` neighbor offset.
    #[inline]
    pub const fn offset(self) -> (i32, i32, i32) {
        match self {
            Dir3::East => (1, 0, 0),
            Dir3::West => (-1, 0, 0),
            Dir3::North => (0, 1, 0),
            Dir3::South => (0, -1, 0),
            Dir3::Up => (0, 0, 1),
            Dir3::Down => (0, 0, -1),
        }
    }

    /// The reverse direction.
    #[inline]
    pub const fn opposite(self) -> Dir3 {
        match self {
            Dir3::East => Dir3::West,
            Dir3::West => Dir3::East,
            Dir3::North => Dir3::South,
            Dir3::South => Dir3::North,
            Dir3::Up => Dir3::Down,
            Dir3::Down => Dir3::Up,
        }
    }

    /// The axis this direction moves along.
    #[inline]
    pub const fn axis(self) -> Axis3 {
        match self {
            Dir3::East | Dir3::West => Axis3::X,
            Dir3::North | Dir3::South => Axis3::Y,
            Dir3::Up | Dir3::Down => Axis3::Z,
        }
    }

    /// `+1` for the increasing direction of the axis, `−1` otherwise.
    #[inline]
    pub const fn sign(self) -> i64 {
        match self {
            Dir3::East | Dir3::North | Dir3::Up => 1,
            _ => -1,
        }
    }
}

impl fmt::Display for Dir3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir3::East => "east",
            Dir3::West => "west",
            Dir3::North => "north",
            Dir3::South => "south",
            Dir3::Up => "up",
            Dir3::Down => "down",
        };
        f.write_str(s)
    }
}

/// An exact position in 3-space, in cell-side units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point3 {
    /// `x` coordinate.
    pub x: Fixed,
    /// `y` coordinate.
    pub y: Fixed,
    /// `z` coordinate (altitude).
    pub z: Fixed,
}

impl Point3 {
    /// Creates a point.
    #[inline]
    pub const fn new(x: Fixed, y: Fixed, z: Fixed) -> Point3 {
        Point3 { x, y, z }
    }

    /// The coordinate along `axis`.
    #[inline]
    pub fn along(self, axis: Axis3) -> Fixed {
        match axis {
            Axis3::X => self.x,
            Axis3::Y => self.y,
            Axis3::Z => self.z,
        }
    }

    /// Replaces the coordinate along `axis`.
    #[inline]
    pub fn with_along(self, axis: Axis3, value: Fixed) -> Point3 {
        match axis {
            Axis3::X => Point3 { x: value, ..self },
            Axis3::Y => Point3 { y: value, ..self },
            Axis3::Z => Point3 { z: value, ..self },
        }
    }

    /// The point moved by `distance` along `dir`.
    #[inline]
    pub fn translate(self, dir: Dir3, distance: Fixed) -> Point3 {
        let axis = dir.axis();
        self.with_along(axis, self.along(axis) + distance * dir.sign())
    }

    /// Component-wise absolute differences.
    #[inline]
    pub fn abs_diff(self, other: Point3) -> (Fixed, Fixed, Fixed) {
        (
            (self.x - other.x).abs(),
            (self.y - other.y).abs(),
            (self.z - other.z).abs(),
        )
    }

    /// Manhattan (L1) distance.
    #[inline]
    pub fn manhattan(self, other: Point3) -> Fixed {
        let (dx, dy, dz) = self.abs_diff(other);
        dx + dy + dz
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// The 3-D separation predicate: centers differ by at least `d` along **some**
/// axis — the direct generalization of the paper's `Safe` clause.
#[inline]
pub fn sep_ok3(p: Point3, q: Point3, d: Fixed) -> bool {
    let (dx, dy, dz) = p.abs_diff(q);
    dx >= d || dy >= d || dz >= d
}

/// The identifier `⟨i, j, k⟩` of a unit-cube cell whose lowest corner is
/// `(i, j, k)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellId3 {
    i: u16,
    j: u16,
    k: u16,
}

impl CellId3 {
    /// Creates the identifier `⟨i, j, k⟩`.
    #[inline]
    pub const fn new(i: u16, j: u16, k: u16) -> CellId3 {
        CellId3 { i, j, k }
    }

    /// Column (x) index.
    #[inline]
    pub const fn i(self) -> u16 {
        self.i
    }

    /// Row (y) index.
    #[inline]
    pub const fn j(self) -> u16 {
        self.j
    }

    /// Layer (z) index.
    #[inline]
    pub const fn k(self) -> u16 {
        self.k
    }

    /// The neighbor one step along `dir`, or `None` on index underflow.
    #[inline]
    pub fn step(self, dir: Dir3) -> Option<CellId3> {
        let (di, dj, dk) = dir.offset();
        Some(CellId3::new(
            self.i.checked_add_signed(di as i16)?,
            self.j.checked_add_signed(dj as i16)?,
            self.k.checked_add_signed(dk as i16)?,
        ))
    }

    /// The direction from `self` to the adjacent cell `other`, if adjacent.
    pub fn dir_to(self, other: CellId3) -> Option<Dir3> {
        Dir3::ALL.into_iter().find(|&d| self.step(d) == Some(other))
    }

    /// Manhattan distance between identifiers.
    #[inline]
    pub fn manhattan(self, other: CellId3) -> u32 {
        self.i.abs_diff(other.i) as u32
            + self.j.abs_diff(other.j) as u32
            + self.k.abs_diff(other.k) as u32
    }

    /// The center `(i + ½, j + ½, k + ½)` of the cube.
    pub fn center(self) -> Point3 {
        Point3::new(
            Fixed::from_int(self.i as i64) + Fixed::HALF,
            Fixed::from_int(self.j as i64) + Fixed::HALF,
            Fixed::from_int(self.k as i64) + Fixed::HALF,
        )
    }

    /// The coordinate of the face of this cube toward `dir`.
    pub fn boundary(self, dir: Dir3) -> Fixed {
        let base = match dir.axis() {
            Axis3::X => self.i,
            Axis3::Y => self.j,
            Axis3::Z => self.k,
        } as i64;
        if dir.sign() > 0 {
            Fixed::from_int(base + 1)
        } else {
            Fixed::from_int(base)
        }
    }
}

impl fmt::Debug for CellId3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.i, self.j, self.k)
    }
}

impl fmt::Display for CellId3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.i, self.j, self.k)
    }
}

/// Dimensions of a rectangular box of unit-cube cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dims3 {
    nx: u16,
    ny: u16,
    nz: u16,
}

impl Dims3 {
    /// An `nx × ny × nz` box.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: u16, ny: u16, nz: u16) -> Dims3 {
        assert!(nx > 0 && ny > 0 && nz > 0, "dimensions must be positive");
        Dims3 { nx, ny, nz }
    }

    /// Extent along x.
    #[inline]
    pub const fn nx(self) -> u16 {
        self.nx
    }

    /// Extent along y.
    #[inline]
    pub const fn ny(self) -> u16 {
        self.ny
    }

    /// Extent along z.
    #[inline]
    pub const fn nz(self) -> u16 {
        self.nz
    }

    /// Total number of cells.
    #[inline]
    pub const fn cell_count(self) -> usize {
        self.nx as usize * self.ny as usize * self.nz as usize
    }

    /// `true` if `id` is inside the box.
    #[inline]
    pub const fn contains(self, id: CellId3) -> bool {
        id.i() < self.nx && id.j() < self.ny && id.k() < self.nz
    }

    /// Dense linear index (x-major within y within z).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn index(self, id: CellId3) -> usize {
        assert!(self.contains(id), "cell {id} out of bounds");
        (id.k() as usize * self.ny as usize + id.j() as usize) * self.nx as usize + id.i() as usize
    }

    /// Inverse of [`Dims3::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn id_at(self, index: usize) -> CellId3 {
        assert!(index < self.cell_count(), "index {index} out of bounds");
        let i = (index % self.nx as usize) as u16;
        let rest = index / self.nx as usize;
        let j = (rest % self.ny as usize) as u16;
        let k = (rest / self.ny as usize) as u16;
        CellId3::new(i, j, k)
    }

    /// Iterates all cells in index order.
    pub fn iter(self) -> impl Iterator<Item = CellId3> {
        (0..self.cell_count()).map(move |x| self.id_at(x))
    }

    /// The in-bounds neighbors of `id` (up to six).
    pub fn neighbors3(self, id: CellId3) -> impl Iterator<Item = CellId3> {
        Dir3::ALL
            .into_iter()
            .filter_map(move |d| id.step(d))
            .filter(move |&n| self.contains(n))
    }
}

impl fmt::Display for Dims3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.nx, self.ny, self.nz)
    }
}

impl Topology for Dims3 {
    type Node = CellId3;

    fn nodes(&self) -> Vec<CellId3> {
        self.iter().collect()
    }

    fn neighbors(&self, node: CellId3) -> Vec<CellId3> {
        self.neighbors3(node).collect()
    }

    fn node_count(&self) -> usize {
        self.cell_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_involutive_unit_steps() {
        for d in Dir3::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (di, dj, dk) = d.offset();
            assert_eq!(di.abs() + dj.abs() + dk.abs(), 1);
        }
    }

    #[test]
    fn point_translate_round_trip() {
        let p = Point3::new(Fixed::HALF, Fixed::ONE, Fixed::from_milli(2_500));
        let step = Fixed::from_milli(123);
        for d in Dir3::ALL {
            assert_eq!(p.translate(d, step).translate(d.opposite(), step), p);
            assert_eq!(p.manhattan(p.translate(d, step)), step);
        }
    }

    #[test]
    fn sep3_requires_one_axis() {
        let d = Fixed::from_milli(300);
        let p = Point3::default();
        assert!(sep_ok3(p, Point3::new(d, Fixed::ZERO, Fixed::ZERO), d));
        assert!(sep_ok3(p, Point3::new(Fixed::ZERO, Fixed::ZERO, d), d));
        let eps = Fixed::from_raw(1);
        assert!(!sep_ok3(p, Point3::new(d - eps, d - eps, d - eps), d));
    }

    #[test]
    fn id_step_and_dir_to() {
        let c = CellId3::new(1, 1, 1);
        for d in Dir3::ALL {
            let n = c.step(d).unwrap();
            assert_eq!(c.dir_to(n), Some(d));
            assert_eq!(n.dir_to(c), Some(d.opposite()));
            assert_eq!(c.manhattan(n), 1);
        }
        assert_eq!(CellId3::new(0, 0, 0).step(Dir3::Down), None);
        assert_eq!(c.dir_to(CellId3::new(2, 2, 1)), None);
    }

    #[test]
    fn boundaries() {
        let c = CellId3::new(2, 3, 4);
        assert_eq!(c.boundary(Dir3::East), Fixed::from_int(3));
        assert_eq!(c.boundary(Dir3::West), Fixed::from_int(2));
        assert_eq!(c.boundary(Dir3::Up), Fixed::from_int(5));
        assert_eq!(c.boundary(Dir3::Down), Fixed::from_int(4));
        assert_eq!(c.center().z, Fixed::from_milli(4_500));
    }

    #[test]
    fn dims_index_bijection() {
        let d = Dims3::new(3, 4, 2);
        assert_eq!(d.cell_count(), 24);
        for (x, id) in d.iter().enumerate() {
            assert_eq!(d.index(id), x);
            assert_eq!(d.id_at(x), id);
        }
    }

    #[test]
    fn neighbor_counts() {
        let d = Dims3::new(3, 3, 3);
        assert_eq!(d.neighbors3(CellId3::new(0, 0, 0)).count(), 3); // corner
        assert_eq!(d.neighbors3(CellId3::new(1, 0, 0)).count(), 4); // edge
        assert_eq!(d.neighbors3(CellId3::new(1, 1, 0)).count(), 5); // face
        assert_eq!(d.neighbors3(CellId3::new(1, 1, 1)).count(), 6); // interior
    }

    #[test]
    fn routing_over_3d_topology() {
        // The routing substrate works unchanged over Dims3.
        use cellflow_routing::{Dist, RoutingTable};
        let dims = Dims3::new(3, 3, 3);
        let target = CellId3::new(1, 1, 1);
        let mut t = RoutingTable::new(dims, target);
        t.run_to_fixpoint(100).unwrap();
        for c in dims.iter() {
            assert_eq!(t.dist(c), Dist::Finite(c.manhattan(target)), "{c}");
        }
        assert!(t.is_stabilized());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Dims3::new(0, 1, 1);
    }
}
