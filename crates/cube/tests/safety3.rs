//! Randomized and exhaustive safety checking of the 3-D extension — the same
//! obligations the 2-D crate discharges, lifted to cubes.

use cellflow_core::Params;
use cellflow_cube::safety::{check_h3, check_margins3, check_safe3};
use cellflow_cube::{
    route_phase3, signal_phase3, CellId3, Dims3, System3, SystemConfig3, SystemState3,
};
use cellflow_dts::{check_invariant, Dts, ExploreConfig};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = Params> {
    (100i64..=300, 0i64..=200).prop_flat_map(|(l, rs)| {
        let rs = rs.min(950 - l).max(0);
        (Just(l), Just(rs), 10i64..=l)
            .prop_map(|(l, rs, v)| Params::from_milli(l, rs, v).expect("valid"))
    })
}

#[allow(clippy::type_complexity)]
fn scenario() -> impl Strategy<Value = (SystemConfig3, Vec<(u64, CellId3, bool)>)> {
    (2u16..=4, 2u16..=4, 1u16..=3, params()).prop_flat_map(|(nx, ny, nz, params)| {
        let dims = Dims3::new(nx, ny, nz);
        let cell = move || (0..nx, 0..ny, 0..nz).prop_map(|(i, j, k)| CellId3::new(i, j, k));
        (
            Just(dims),
            cell(),
            proptest::collection::vec(cell(), 1..=2),
            Just(params),
            proptest::collection::vec((0u64..40, cell(), prop::bool::ANY), 0..6),
        )
            .prop_map(|(dims, target, sources, params, schedule)| {
                let mut cfg = SystemConfig3::new(dims, target, params).expect("in bounds");
                for s in sources {
                    if s != target {
                        cfg = cfg.with_source(s);
                    }
                }
                (cfg, schedule)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn safety3_holds_every_round((cfg, schedule) in scenario()) {
        let mut sys = System3::new(cfg);
        for round in 0..40u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { sys.recover(*cell); } else { sys.fail(*cell); }
                }
            }
            sys.step();
            prop_assert!(check_safe3(sys.config(), sys.state()).is_ok(),
                "round {}: {:?}", round, check_safe3(sys.config(), sys.state()));
            prop_assert!(check_margins3(sys.config(), sys.state()).is_ok(),
                "round {}: {:?}", round, check_margins3(sys.config(), sys.state()));
        }
    }

    #[test]
    fn h3_holds_at_signal_time((cfg, schedule) in scenario()) {
        let mut sys = System3::new(cfg);
        for round in 0..30u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { sys.recover(*cell); } else { sys.fail(*cell); }
                }
            }
            let signaled = signal_phase3(sys.config(), &route_phase3(sys.config(), sys.state()));
            prop_assert!(check_h3(sys.config(), &signaled).is_ok());
            sys.step();
        }
    }

    #[test]
    fn conservation3((cfg, _) in scenario()) {
        let mut sys = System3::new(cfg);
        for _ in 0..40 {
            sys.step();
            prop_assert_eq!(
                sys.inserted_total(),
                sys.consumed_total() + sys.state().entity_count() as u64
            );
        }
    }
}

/// A bounded 3-D instance as a DTS for exhaustive checking.
struct Bounded3 {
    cfg: SystemConfig3,
    fallible: Vec<CellId3>,
}

#[derive(Clone, Debug)]
enum Act {
    Update,
    Fail(CellId3),
    Recover(CellId3),
}

impl Dts for Bounded3 {
    type State = SystemState3;
    type Action = Act;

    fn initial_states(&self) -> Vec<SystemState3> {
        vec![self.cfg.initial_state()]
    }

    fn enabled(&self, state: &SystemState3) -> Vec<Act> {
        let mut acts = vec![Act::Update];
        for &c in &self.fallible {
            if state.cell(self.cfg.dims(), c).failed {
                acts.push(Act::Recover(c));
            } else {
                acts.push(Act::Fail(c));
            }
        }
        acts
    }

    fn apply(&self, state: &SystemState3, action: &Act) -> SystemState3 {
        match action {
            Act::Update => {
                cellflow_cube::move_phase3(
                    &self.cfg,
                    &signal_phase3(&self.cfg, &route_phase3(&self.cfg, state)),
                )
                .state
            }
            Act::Fail(c) => {
                let mut s = state.clone();
                s.fail(self.cfg.dims(), *c);
                s
            }
            Act::Recover(c) => {
                let mut s = state.clone();
                s.recover(self.cfg.dims(), *c, self.cfg.target());
                s
            }
        }
    }
}

#[test]
fn exhaustive_3d_shaft_safety() {
    // A 1×1×3 shaft with one fallible mid cell and an entity budget of 2:
    // full reachable-state verification of the 3-D Theorem 5 analogue.
    let cfg = SystemConfig3::new(
        Dims3::new(1, 1, 3),
        CellId3::new(0, 0, 2),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId3::new(0, 0, 0))
    .with_entity_budget(2);
    let sys = Bounded3 {
        cfg: cfg.clone(),
        fallible: vec![CellId3::new(0, 0, 1)],
    };
    let report = check_invariant(
        &sys,
        |s| check_safe3(&cfg, s).is_ok() && check_margins3(&cfg, s).is_ok(),
        &ExploreConfig {
            max_states: 2_000_000,
            max_depth: usize::MAX,
        },
    )
    .expect("3-D safety on the shaft");
    assert!(report.exhaustive);
    assert!(report.states_explored > 50);
}

#[test]
fn progress_through_a_3d_dogleg() {
    // Entities must climb, jog sideways, and climb again.
    let dims = Dims3::new(2, 1, 3);
    let cfg = SystemConfig3::new(
        dims,
        CellId3::new(1, 0, 2),
        Params::from_milli(200, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId3::new(0, 0, 0));
    let mut sys = System3::new(cfg);
    // Block the column above the source so the flow must jog east.
    sys.fail(CellId3::new(0, 0, 2));
    for _ in 0..400 {
        sys.step();
    }
    assert!(
        sys.consumed_total() > 3,
        "only {} delivered",
        sys.consumed_total()
    );
    assert!(check_safe3(sys.config(), sys.state()).is_ok());
}
