//! Safety predicates for the multi-type system.
//!
//! Safety is **type-agnostic**: the separation requirement is between entity
//! footprints regardless of commodity, so the predicates mirror the
//! single-flow ones exactly.

use cellflow_core::EntityId;
use cellflow_geom::sep_ok;
use cellflow_grid::CellId;

use crate::{MultiConfig, MultiState};

/// Checks `Safe` over all cells: any two entities on one cell differ by at
/// least `d` along some axis.
///
/// # Errors
///
/// Returns `(cell, a, b)` for the first violating pair.
pub fn check_safe_multi(
    config: &MultiConfig,
    state: &MultiState,
) -> Result<(), (CellId, EntityId, EntityId)> {
    let dims = config.dims();
    let d = config.params().d();
    for id in dims.iter() {
        let entities: Vec<_> = state.cell(dims, id).members.iter().collect();
        for (ai, (&a_id, a)) in entities.iter().enumerate() {
            for (&b_id, b) in &entities[ai + 1..] {
                if !sep_ok(a.pos, b.pos, d) {
                    return Err((id, a_id, b_id));
                }
            }
        }
    }
    Ok(())
}

/// Checks Invariant 1: footprints stay within their cell's margins.
///
/// # Errors
///
/// Returns `(cell, entity)` for the first protruding footprint.
pub fn check_margins_multi(
    config: &MultiConfig,
    state: &MultiState,
) -> Result<(), (CellId, EntityId)> {
    let dims = config.dims();
    let h = config.params().half_l();
    for id in dims.iter() {
        for (&eid, e) in &state.cell(dims, id).members {
            let lo_x = cellflow_geom::Fixed::from_int(id.i() as i64) + h;
            let hi_x = cellflow_geom::Fixed::from_int(id.i() as i64 + 1) - h;
            let lo_y = cellflow_geom::Fixed::from_int(id.j() as i64) + h;
            let hi_y = cellflow_geom::Fixed::from_int(id.j() as i64 + 1) - h;
            if e.pos.x < lo_x || e.pos.x > hi_x || e.pos.y < lo_y || e.pos.y > hi_y {
                return Err((id, eid));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowType, MultiSystem, TypedEntity};
    use cellflow_core::Params;
    use cellflow_grid::GridDims;

    fn system() -> MultiSystem {
        MultiSystem::new(
            MultiConfig::new(
                GridDims::square(4),
                Params::from_milli(200, 50, 100).unwrap(),
            )
            .unwrap()
            .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(3, 3))
            .unwrap(),
        )
    }

    #[test]
    fn accepts_valid_rejects_close() {
        let mut sys = system();
        let c = CellId::new(1, 1);
        sys.seed_entity(c, c.center(), FlowType(0));
        assert!(check_safe_multi(sys.config(), sys.state()).is_ok());
        assert!(check_margins_multi(sys.config(), sys.state()).is_ok());
        // Direct surgery to make a violation.
        let dims = sys.config().dims();
        let mut bad = sys.state().clone();
        bad.cell_mut(dims, c).members.insert(
            EntityId(9),
            TypedEntity::new(
                c.center().translate(
                    cellflow_geom::Dir::East,
                    cellflow_geom::Fixed::from_milli(100),
                ),
                FlowType(0),
            ),
        );
        let cfg = sys.config().clone();
        assert_eq!(check_safe_multi(&cfg, &bad).unwrap_err().0, c);
    }
}
