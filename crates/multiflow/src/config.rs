//! Configuration, state, and facade of the multi-type system.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use cellflow_core::{EntityId, Params};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;

use crate::phases::update_multi;
use crate::{FlowType, MultiCellState};

/// Static configuration: the grid, the physical parameters, and one
/// `(source, target)` pair per flow type.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiConfig {
    dims: GridDims,
    params: Params,
    targets: BTreeMap<FlowType, CellId>,
    sources: BTreeMap<FlowType, CellId>,
    dist_cap: u32,
    entity_budget: Option<u64>,
    cell_capacity: usize,
}

impl MultiConfig {
    /// Creates a configuration with no flows.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid `dims`; returns `Result` for forward
    /// compatibility with cross-flow validation.
    pub fn new(dims: GridDims, params: Params) -> Result<MultiConfig, MultiConfigError> {
        Ok(MultiConfig {
            dims,
            params,
            targets: BTreeMap::new(),
            sources: BTreeMap::new(),
            dist_cap: dims.cell_count() as u32 + 1,
            entity_budget: None,
            cell_capacity: 1,
        })
    }

    /// Declares a flow: entities of `ty` are produced at `source` and
    /// consumed at `target`.
    ///
    /// # Errors
    ///
    /// * [`MultiConfigError::OutOfBounds`] if either cell is outside the grid;
    /// * [`MultiConfigError::SourceIsTarget`] if the two coincide;
    /// * [`MultiConfigError::DuplicateType`] if `ty` was already declared.
    pub fn with_flow(
        mut self,
        ty: FlowType,
        source: CellId,
        target: CellId,
    ) -> Result<MultiConfig, MultiConfigError> {
        if !self.dims.contains(source) || !self.dims.contains(target) {
            return Err(MultiConfigError::OutOfBounds { ty });
        }
        if source == target {
            return Err(MultiConfigError::SourceIsTarget { ty });
        }
        if self.targets.contains_key(&ty) {
            return Err(MultiConfigError::DuplicateType { ty });
        }
        self.targets.insert(ty, target);
        self.sources.insert(ty, source);
        Ok(self)
    }

    /// Caps total entity creation across all sources.
    pub fn with_entity_budget(mut self, budget: u64) -> MultiConfig {
        self.entity_budget = Some(budget);
        self
    }

    /// Sets the per-cell occupancy cap (default 1): a cell never grants an
    /// incoming transfer while holding this many entities.
    ///
    /// With coupled rigid motion, a cell whose members span its full interior
    /// along an axis can never free the strips on that axis by translation —
    /// it is permanently immobile, and a crossing hotspot eventually clots
    /// (and with finite caps ≥ 2, cycles of *full* cells can still deadlock,
    /// the classic store-and-forward mode). The default cap of 1 — a cell
    /// accepts entities only while empty, the buffer-reservation idea from
    /// network-on-chip routing — empirically keeps even antagonistic
    /// crossing patterns fluid indefinitely (see the `ablation_capacity`
    /// bench). Higher caps pipeline better on lane-separated patterns but
    /// risk gridlock under sustained crossing contention; safety is
    /// unaffected either way.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_cell_capacity(mut self, cap: usize) -> MultiConfig {
        assert!(cap > 0, "capacity must be positive");
        self.cell_capacity = cap;
        self
    }

    /// The per-cell occupancy cap.
    pub fn cell_capacity(&self) -> usize {
        self.cell_capacity
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Physical parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Per-type targets.
    pub fn targets(&self) -> &BTreeMap<FlowType, CellId> {
        &self.targets
    }

    /// Per-type sources.
    pub fn sources(&self) -> &BTreeMap<FlowType, CellId> {
        &self.sources
    }

    /// All declared flow types.
    pub fn types(&self) -> impl Iterator<Item = FlowType> + '_ {
        self.targets.keys().copied()
    }

    /// `∞`-saturation cap.
    pub fn dist_cap(&self) -> u32 {
        self.dist_cap
    }

    /// Entity creation budget, if any.
    pub fn entity_budget(&self) -> Option<u64> {
        self.entity_budget
    }

    /// The target cell of `ty`, if declared.
    pub fn target_of(&self, ty: FlowType) -> Option<CellId> {
        self.targets.get(&ty).copied()
    }

    /// The initial state: per-type layers with each target's own layer at 0.
    pub fn initial_state(&self) -> MultiState {
        let types: Vec<FlowType> = self.types().collect();
        let cells = self
            .dims
            .iter()
            .map(|id| {
                let zero_for: BTreeSet<FlowType> = self
                    .targets
                    .iter()
                    .filter(|&(_, &t)| t == id)
                    .map(|(&ty, _)| ty)
                    .collect();
                MultiCellState::initial(types.iter(), &zero_for)
            })
            .collect();
        MultiState {
            cells,
            next_entity_id: 0,
        }
    }
}

/// Error declaring a flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiConfigError {
    /// Source or target outside the grid.
    OutOfBounds {
        /// The flow type being declared.
        ty: FlowType,
    },
    /// Source equals target.
    SourceIsTarget {
        /// The flow type being declared.
        ty: FlowType,
    },
    /// The type already has a flow.
    DuplicateType {
        /// The flow type being declared.
        ty: FlowType,
    },
}

impl fmt::Display for MultiConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiConfigError::OutOfBounds { ty } => {
                write!(f, "flow {ty}: source or target outside the grid")
            }
            MultiConfigError::SourceIsTarget { ty } => {
                write!(f, "flow {ty}: source equals target")
            }
            MultiConfigError::DuplicateType { ty } => {
                write!(f, "flow {ty} declared twice")
            }
        }
    }
}

impl std::error::Error for MultiConfigError {}

/// A full state of the multi-type system.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiState {
    /// Per-cell states, indexed by [`GridDims::index`].
    pub cells: Vec<MultiCellState>,
    /// Next fresh entity identifier.
    pub next_entity_id: u64,
}

impl MultiState {
    /// One cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell(&self, dims: GridDims, id: CellId) -> &MultiCellState {
        &self.cells[dims.index(id)]
    }

    /// Mutable access to one cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell_mut(&mut self, dims: GridDims, id: CellId) -> &mut MultiCellState {
        &mut self.cells[dims.index(id)]
    }

    /// Total entities in the system.
    pub fn entity_count(&self) -> usize {
        self.cells.iter().map(|c| c.members.len()).sum()
    }

    /// Entities of a given type currently in the system.
    pub fn entity_count_of(&self, ty: FlowType) -> usize {
        self.cells
            .iter()
            .flat_map(|c| c.members.values())
            .filter(|e| e.ty == ty)
            .count()
    }

    /// The `fail` transition: crash `id`, all layers to `∞`.
    pub fn fail(&mut self, dims: GridDims, id: CellId) {
        let c = self.cell_mut(dims, id);
        c.failed = true;
        for d in c.dist.values_mut() {
            *d = Dist::Infinity;
        }
        for n in c.next.values_mut() {
            *n = None;
        }
        c.signal = None;
    }

    /// Recovery: clear the flag; layers this cell anchors reset to 0.
    pub fn recover(&mut self, dims: GridDims, id: CellId, config: &MultiConfig) {
        let zero_for: Vec<FlowType> = config
            .targets()
            .iter()
            .filter(|&(_, &t)| t == id)
            .map(|(&ty, _)| ty)
            .collect();
        let c = self.cell_mut(dims, id);
        c.failed = false;
        for ty in zero_for {
            c.dist.insert(ty, Dist::Finite(0));
        }
    }
}

/// The multi-type system facade.
#[derive(Clone, Debug)]
pub struct MultiSystem {
    config: MultiConfig,
    state: MultiState,
    round: u64,
    consumed: BTreeMap<FlowType, u64>,
    inserted: BTreeMap<FlowType, u64>,
}

impl MultiSystem {
    /// Creates a system in the initial state.
    pub fn new(config: MultiConfig) -> MultiSystem {
        let state = config.initial_state();
        let zeroes: BTreeMap<FlowType, u64> = config.types().map(|t| (t, 0)).collect();
        MultiSystem {
            config,
            state,
            round: 0,
            consumed: zeroes.clone(),
            inserted: zeroes,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> &MultiState {
        &self.state
    }

    /// Rounds executed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Entities of `ty` consumed so far.
    pub fn consumed(&self, ty: FlowType) -> u64 {
        self.consumed.get(&ty).copied().unwrap_or(0)
    }

    /// Entities of `ty` created so far.
    pub fn inserted(&self, ty: FlowType) -> u64 {
        self.inserted.get(&ty).copied().unwrap_or(0)
    }

    /// One synchronous round.
    pub fn step(&mut self) -> crate::MultiOutcome {
        let outcome = update_multi(&self.config, &self.state);
        self.state = outcome.state.clone();
        self.round += 1;
        for &(_, ty) in &outcome.consumed {
            *self.consumed.entry(ty).or_insert(0) += 1;
        }
        for &(_, _, ty) in &outcome.inserted {
            *self.inserted.entry(ty).or_insert(0) += 1;
        }
        outcome
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Crashes a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn fail(&mut self, id: CellId) {
        self.state.fail(self.config.dims(), id);
    }

    /// Recovers a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn recover(&mut self, id: CellId) {
        let config = self.config.clone();
        self.state.recover(config.dims(), id, &config);
    }

    /// Seeds a typed entity directly (test/example setup).
    ///
    /// # Panics
    ///
    /// Panics if the position violates margins or spacing, or `ty` is not a
    /// declared flow.
    pub fn seed_entity(&mut self, id: CellId, pos: cellflow_geom::Point, ty: FlowType) -> EntityId {
        assert!(self.config.target_of(ty).is_some(), "unknown flow {ty}");
        let params = self.config.params();
        let h = params.half_l();
        let lo_x = cellflow_geom::Fixed::from_int(id.i() as i64) + h;
        let hi_x = cellflow_geom::Fixed::from_int(id.i() as i64 + 1) - h;
        let lo_y = cellflow_geom::Fixed::from_int(id.j() as i64) + h;
        let hi_y = cellflow_geom::Fixed::from_int(id.j() as i64 + 1) - h;
        assert!(
            lo_x <= pos.x && pos.x <= hi_x && lo_y <= pos.y && pos.y <= hi_y,
            "entity would protrude from {id}"
        );
        let dims = self.config.dims();
        assert!(
            self.state
                .cell(dims, id)
                .members
                .values()
                .all(|e| cellflow_geom::sep_ok(pos, e.pos, params.d())),
            "seed violates spacing"
        );
        let eid = EntityId(self.state.next_entity_id);
        self.state.next_entity_id += 1;
        self.state
            .cell_mut(dims, id)
            .members
            .insert(eid, crate::TypedEntity::new(pos, ty));
        eid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MultiConfig {
        MultiConfig::new(
            GridDims::square(5),
            Params::from_milli(200, 50, 150).unwrap(),
        )
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 2), CellId::new(4, 2))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(2, 0), CellId::new(2, 4))
        .unwrap()
    }

    #[test]
    fn flow_declaration_validates() {
        let base = MultiConfig::new(
            GridDims::square(3),
            Params::from_milli(200, 50, 100).unwrap(),
        )
        .unwrap();
        assert_eq!(
            base.clone()
                .with_flow(FlowType(0), CellId::new(9, 9), CellId::new(0, 0))
                .unwrap_err(),
            MultiConfigError::OutOfBounds { ty: FlowType(0) }
        );
        assert_eq!(
            base.clone()
                .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(0, 0))
                .unwrap_err(),
            MultiConfigError::SourceIsTarget { ty: FlowType(0) }
        );
        let one = base
            .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(2, 2))
            .unwrap();
        assert_eq!(
            one.with_flow(FlowType(0), CellId::new(1, 0), CellId::new(2, 0))
                .unwrap_err(),
            MultiConfigError::DuplicateType { ty: FlowType(0) }
        );
    }

    #[test]
    fn initial_state_pins_each_target_layer() {
        let cfg = config();
        let s = cfg.initial_state();
        let dims = cfg.dims();
        assert_eq!(
            s.cell(dims, CellId::new(4, 2)).dist[&FlowType(0)],
            Dist::Finite(0)
        );
        assert_eq!(
            s.cell(dims, CellId::new(4, 2)).dist[&FlowType(1)],
            Dist::Infinity
        );
        assert_eq!(
            s.cell(dims, CellId::new(2, 4)).dist[&FlowType(1)],
            Dist::Finite(0)
        );
        assert_eq!(s.entity_count(), 0);
    }

    #[test]
    fn fail_recover_handles_layers() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let t0 = CellId::new(4, 2);
        s.fail(dims, t0);
        assert_eq!(s.cell(dims, t0).dist[&FlowType(0)], Dist::Infinity);
        s.recover(dims, t0, &cfg);
        assert_eq!(s.cell(dims, t0).dist[&FlowType(0)], Dist::Finite(0));
        assert_eq!(s.cell(dims, t0).dist[&FlowType(1)], Dist::Infinity);
    }

    #[test]
    fn seeding_and_counting() {
        let mut sys = MultiSystem::new(config());
        let c = CellId::new(1, 1);
        sys.seed_entity(c, c.center(), FlowType(0));
        assert_eq!(sys.state().entity_count_of(FlowType(0)), 1);
        assert_eq!(sys.state().entity_count_of(FlowType(1)), 0);
    }

    #[test]
    #[should_panic(expected = "unknown flow")]
    fn seeding_unknown_type_panics() {
        let mut sys = MultiSystem::new(config());
        sys.seed_entity(CellId::new(1, 1), CellId::new(1, 1).center(), FlowType(9));
    }
}
