//! Per-cell state with one routing layer per flow type.

use std::collections::{BTreeMap, BTreeSet};

use cellflow_core::EntityId;
use cellflow_grid::CellId;
use cellflow_routing::Dist;

use crate::{FlowType, TypedEntity};

/// The state of one cell in the multi-type system.
///
/// Identical to the single-flow `CellState` except that `dist`/`next` are
/// maps keyed by [`FlowType`] (one distance-vector layer per commodity), and
/// members carry their type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiCellState {
    /// Entities on this cell.
    pub members: BTreeMap<EntityId, TypedEntity>,
    /// Per-type estimated hop distance to that type's target.
    pub dist: BTreeMap<FlowType, Dist>,
    /// Per-type next pointer.
    pub next: BTreeMap<FlowType, Option<CellId>>,
    /// Nonempty neighbors whose *served* direction routes through this cell.
    pub ne_prev: BTreeSet<CellId>,
    /// Token holder.
    pub token: Option<CellId>,
    /// Granted neighbor.
    pub signal: Option<CellId>,
    /// Crash flag.
    pub failed: bool,
}

impl MultiCellState {
    /// The initial state for a cell given the set of flow types: all layers
    /// at `∞` except `zero_for` (the types this cell is the target of).
    pub fn initial<'a, I>(types: I, zero_for: &BTreeSet<FlowType>) -> MultiCellState
    where
        I: IntoIterator<Item = &'a FlowType>,
    {
        let mut dist = BTreeMap::new();
        let mut next = BTreeMap::new();
        for &t in types {
            dist.insert(
                t,
                if zero_for.contains(&t) {
                    Dist::Finite(0)
                } else {
                    Dist::Infinity
                },
            );
            next.insert(t, None);
        }
        MultiCellState {
            members: BTreeMap::new(),
            dist,
            next,
            ne_prev: BTreeSet::new(),
            token: None,
            signal: None,
            failed: false,
        }
    }

    /// The head-of-line service discipline: the type of the oldest entity on
    /// the cell (minimum [`EntityId`]), or `None` if the cell is empty.
    pub fn serve_type(&self) -> Option<FlowType> {
        self.members.values().next().map(|e| e.ty)
    }

    /// The direction this cell currently attempts to move: the `next` pointer
    /// of its served type.
    pub fn effective_next(&self) -> Option<CellId> {
        self.serve_type()
            .and_then(|t| self.next.get(&t).copied().flatten())
    }

    /// `true` if the cell holds no entities.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::{Fixed, Point};

    fn pt(m: i64) -> Point {
        Point::new(Fixed::from_milli(m), Fixed::HALF)
    }

    #[test]
    fn initial_layers() {
        let types = [FlowType(0), FlowType(1)];
        let zero: BTreeSet<_> = [FlowType(1)].into();
        let c = MultiCellState::initial(types.iter(), &zero);
        assert_eq!(c.dist[&FlowType(0)], Dist::Infinity);
        assert_eq!(c.dist[&FlowType(1)], Dist::Finite(0));
        assert!(c.is_empty());
        assert_eq!(c.serve_type(), None);
        assert_eq!(c.effective_next(), None);
    }

    #[test]
    fn serves_oldest_entity_type() {
        let types = [FlowType(0), FlowType(1)];
        let mut c = MultiCellState::initial(types.iter(), &BTreeSet::new());
        c.members
            .insert(EntityId(5), TypedEntity::new(pt(500), FlowType(0)));
        c.members
            .insert(EntityId(2), TypedEntity::new(pt(200), FlowType(1)));
        assert_eq!(c.serve_type(), Some(FlowType(1)), "oldest entity is id 2");
        c.next.insert(FlowType(1), Some(CellId::new(1, 0)));
        assert_eq!(c.effective_next(), Some(CellId::new(1, 0)));
        // Remove the oldest: service switches to the other type.
        c.members.remove(&EntityId(2));
        assert_eq!(c.serve_type(), Some(FlowType(0)));
        assert_eq!(c.effective_next(), None, "type 0 has no route yet");
    }
}
