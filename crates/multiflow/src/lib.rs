//! Multi-type distributed cellular flows.
//!
//! The paper's conclusion (§V) calls for *"algorithms for flow control of
//! multiple types of entities with arbitrary flow patterns … specified for
//! each type"*. This crate implements that extension for source–destination
//! flows: every entity carries a [`FlowType`], every type has its own target
//! cell, and cells maintain a **routing layer per type** (the unchanged
//! `Route` rule, once per type).
//!
//! The interesting constraint is the paper's coupling: *all entities on a cell
//! move identically*. With mixed types wanting different directions, a cell
//! must pick whom to serve. This implementation serves the type of the
//! **oldest entity on the cell** (minimum [`EntityId`](cellflow_core::EntityId)), a FIFO head-of-line
//! discipline: deterministic, starvation-resistant in practice, and — crucial
//! for safety — entirely inside the existing `Signal`/`Move` envelope, so the
//! paper's safety argument is untouched (the gap check is type-agnostic).
//! Entities of other types ride along (coupled motion) and are re-routed by
//! later cells; progress for mixed flows is a heuristic, validated empirically
//! by this crate's drain tests, not proved — exactly the open problem the
//! paper states.
//!
//! # Example
//!
//! ```
//! use cellflow_core::Params;
//! use cellflow_grid::{CellId, GridDims};
//! use cellflow_multiflow::{FlowType, MultiConfig, MultiSystem};
//!
//! // Two crossing flows on a 5×5 grid: type 0 west→east, type 1 south→north.
//! let params = Params::from_milli(200, 50, 150)?;
//! let config = MultiConfig::new(GridDims::square(5), params)?
//!     .with_flow(FlowType(0), CellId::new(0, 2), CellId::new(4, 2))?
//!     .with_flow(FlowType(1), CellId::new(2, 0), CellId::new(2, 4))?;
//! let mut system = MultiSystem::new(config);
//! for _ in 0..400 {
//!     system.step();
//! }
//! assert!(system.consumed(FlowType(0)) > 0);
//! assert!(system.consumed(FlowType(1)) > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod config;
mod phases;
pub mod safety;
mod types;

pub use cell::MultiCellState;
pub use config::{MultiConfig, MultiConfigError, MultiState, MultiSystem};
pub use phases::{
    move_phase_multi, route_phase_multi, served_dir, signal_phase_multi, update_multi, MultiOutcome,
};
pub use types::{FlowType, TypedEntity};
