//! Flow types and typed entities.

use core::fmt;

use cellflow_geom::Point;

/// The commodity type of a flow: each type has its own source(s) and target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowType(pub u8);

impl fmt::Display for FlowType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// An entity's per-cell record: its center position and its commodity type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TypedEntity {
    /// Center of the `l × l` footprint.
    pub pos: Point,
    /// Commodity type (determines the routing layer and consuming target).
    pub ty: FlowType,
}

impl TypedEntity {
    /// Creates a typed entity record.
    pub const fn new(pos: Point, ty: FlowType) -> TypedEntity {
        TypedEntity { pos, ty }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::Fixed;

    #[test]
    fn ordering_and_display() {
        assert!(FlowType(0) < FlowType(1));
        assert_eq!(FlowType(3).to_string(), "τ3");
        let e = TypedEntity::new(Point::new(Fixed::HALF, Fixed::HALF), FlowType(1));
        assert_eq!(e.ty, FlowType(1));
    }
}
