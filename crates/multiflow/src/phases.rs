//! The protocol phases with per-type routing layers and head-of-line service.

use std::collections::BTreeSet;

use cellflow_core::{gap_free_toward, EntityId};
use cellflow_grid::CellId;
use cellflow_routing::route_update;

use crate::{FlowType, MultiConfig, MultiState, TypedEntity};

/// `Route`, once per flow type: each layer runs the unchanged rule over the
/// same topology (a failed cell is `∞` in every layer; each target anchors
/// its own layer at 0 and participates as an ordinary router in the others).
pub fn route_phase_multi(config: &MultiConfig, state: &MultiState) -> MultiState {
    let dims = config.dims();
    let mut out = state.clone();
    let types: Vec<FlowType> = config.types().collect();
    for id in dims.iter() {
        if state.cell(dims, id).failed {
            continue;
        }
        for &ty in &types {
            if config.target_of(ty) == Some(id) {
                continue; // this layer's anchor
            }
            let (dist, next) = route_update(
                dims.neighbors(id)
                    .map(|n| (n, state.cell(dims, n).dist[&ty])),
                config.dist_cap(),
            );
            let c = out.cell_mut(dims, id);
            c.dist.insert(ty, dist);
            c.next.insert(ty, next);
        }
    }
    out
}

/// The direction cell `id` actually attempts this round: its effective next,
/// with **head-on yielding**.
///
/// With one routing layer per type, two adjacent cells can want to move into
/// each other (eastbound meets westbound). Unlike the single-flow protocol —
/// where stabilized routing is a DAG, so mutual `next` pointers cannot
/// persist — this is a steady state for crossing commodities, and it
/// deadlocks: each cell's resident occupies the strip the other needs free.
///
/// Resolution: in a mutual pair, the **larger identifier yields** — it
/// redirects toward its best alternative live neighbor (minimizing its served
/// type's `dist`, ties by identifier), pulling its entities out of the lane;
/// the opposing flow then passes through the vacated cell. In a width-1
/// corridor there is no alternative neighbor and the deadlock is inherent
/// (two opposing flows genuinely cannot swap) — the pair stays blocked, which
/// is safe. Yielding is stateless and deterministic, computed fresh from the
/// snapshot each round, and it only changes *where* a cell moves — the
/// `Signal` gap check still guards every transfer, so safety is untouched.
pub fn served_dir(config: &MultiConfig, state: &MultiState, id: CellId) -> Option<CellId> {
    let dims = config.dims();
    let cell = state.cell(dims, id);
    let nx = cell.effective_next()?;
    let partner = state.cell(dims, nx);
    let head_on = !partner.failed && partner.effective_next() == Some(id);
    if !head_on || id < nx {
        return Some(nx);
    }
    // We are the yielding side: detour toward the best other live neighbor.
    let ty = cell.serve_type()?;
    dims.neighbors(id)
        .filter(|&n| n != nx && !state.cell(dims, n).failed)
        .min_by_key(|&n| (state.cell(dims, n).dist[&ty], n))
        .or(Some(nx))
}

/// `Signal` with the served direction: `NEPrev` collects nonempty neighbors
/// whose **served direction** ([`served_dir`], i.e. the `next` of their
/// head-of-line type after head-on yielding) points here. Token rotation and
/// the gap check are exactly the single-flow rule — the gap check is
/// type-agnostic, so the safety argument is unchanged.
pub fn signal_phase_multi(config: &MultiConfig, state: &MultiState) -> MultiState {
    let dims = config.dims();
    let mut out = state.clone();
    for id in dims.iter() {
        if state.cell(dims, id).failed {
            continue;
        }
        let ne_prev: BTreeSet<CellId> = dims
            .neighbors(id)
            .filter(|&m| {
                let nbr = state.cell(dims, m);
                !nbr.failed && !nbr.members.is_empty() && served_dir(config, state, m) == Some(id)
            })
            .collect();
        let mut token = state.cell(dims, id).token;
        if token.is_none() {
            token = ne_prev.first().copied();
        }
        let (signal, new_token) = match token {
            None => (None, None),
            Some(tok) => {
                let dir = id.dir_to(tok).expect("token is a neighbor");
                let positions: Vec<cellflow_geom::Point> = state
                    .cell(dims, id)
                    .members
                    .values()
                    .map(|e| e.pos)
                    .collect();
                // Deviation from Figure 5 line 14: the token rotates on a
                // *blocked* grant too. The single-flow protocol retains it so
                // the blocked neighbor cannot be starved by fresh arrivals
                // from other directions (Lemma 9's argument). With multiple
                // commodities, retention is worse than starvation: the token
                // can fixate on a neighbor whose entry strip is occupied by
                // an entity that is itself waiting on a *different* neighbor
                // of this cell — a circular wait that deadlocks whole flows.
                // Rotating on block breaks the cycle; every contender's strip
                // is re-examined infinitely often.
                let rotated = rotate(&ne_prev, tok);
                // Capacity admission (see MultiConfig::with_cell_capacity):
                // a full cell never grants, so member footprints can never
                // grow to span the interior and immobilize the cell.
                let has_room = state.cell(dims, id).members.len() < config.cell_capacity();
                if has_room && gap_free_toward(config.params(), id, dir, positions.iter()) {
                    (Some(tok), rotated)
                } else {
                    (None, rotated)
                }
            }
        };
        let c = out.cell_mut(dims, id);
        c.ne_prev = ne_prev;
        c.token = new_token;
        c.signal = signal;
    }
    out
}

/// Cyclic-successor rotation over the contender set.
fn rotate(ne_prev: &BTreeSet<CellId>, current: CellId) -> Option<CellId> {
    match ne_prev.len() {
        0 => None,
        1 => ne_prev.first().copied(),
        _ => ne_prev
            .range((
                std::ops::Bound::Excluded(current),
                std::ops::Bound::Unbounded,
            ))
            .next()
            .or_else(|| ne_prev.iter().find(|&&c| c != current))
            .copied(),
    }
}

/// What one multi-type round did.
#[derive(Clone, Debug, Default)]
pub struct MultiOutcome {
    /// Post-round state.
    pub state: MultiState,
    /// `(entity, type)` consumed by their targets.
    pub consumed: Vec<(EntityId, FlowType)>,
    /// `(entity, from → to)` transfers.
    pub transfers: Vec<(EntityId, CellId, CellId)>,
    /// `(cell, entity, type)` created by sources.
    pub inserted: Vec<(CellId, EntityId, FlowType)>,
}

/// `Move` with coupled mixed types: a permitted cell translates **all** its
/// entities toward its effective next; a crossing entity is consumed iff the
/// receiving cell is the target *of that entity's type*, and transferred
/// otherwise (so a type-A target forwards type-B entities like any other
/// cell). Sources then insert at the far edge of their type's route.
///
/// # The back-off maneuver
///
/// A cell that is **blocked both ways** — it holds a token but withheld its
/// signal because its *own* members occupy the promised strip, and it
/// received no grant itself — performs a grant-free *back-off*: it translates
/// all members `v` **away from the token boundary**, provided every footprint
/// stays inside the cell.
///
/// This departs from the paper (which only ever moves under a grant), but it
/// is safe without one: (i) no entity crosses any boundary, so no transfer
/// happens and Invariants 1–2 are untouched; (ii) no entity can enter this
/// cell this round, because entering requires *this cell's* grant, which was
/// withheld; (iii) internal pairwise distances are preserved by rigid
/// translation. It exists because multi-commodity wait graphs have cycles: a
/// resident can sit in its own cell's entry strip while waiting, circularly,
/// for the neighbors it blocks — the gridlock single-flow routing (a DAG
/// anchored at an always-granting target) can never form.
pub fn move_phase_multi(config: &MultiConfig, state: &MultiState) -> MultiOutcome {
    let dims = config.dims();
    let params = config.params();
    let v = params.v();
    let h = params.half_l();

    let mut out = state.clone();
    let mut consumed = Vec::new();
    let mut transfers = Vec::new();
    let mut inserted = Vec::new();
    let mut incoming: Vec<(CellId, EntityId, TypedEntity)> = Vec::new();

    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || cell.members.is_empty() {
            continue;
        }
        let granted = served_dir(config, state, id).filter(|&nx| {
            let nx_cell = state.cell(dims, nx);
            !nx_cell.failed && nx_cell.signal == Some(id)
        });
        let Some(nx) = granted else {
            // Blocked: if we are also blocking (token held, signal withheld
            // because our own members sit in the strip), back off.
            if cell.signal.is_none() {
                if let Some(holder) = cell.token {
                    if let Some(toward) = id.dir_to(holder) {
                        let away = toward.opposite();
                        // Every footprint must stay inside the cell: the edge
                        // facing `away` must not pass that boundary.
                        let wall = id.boundary(away);
                        let fits = cell.members.values().all(|e| {
                            let moved = e.pos.translate(away, v);
                            let edge = moved.along(away.axis()) + h * away.sign();
                            if away.sign() > 0 {
                                edge <= wall
                            } else {
                                edge >= wall
                            }
                        });
                        if fits {
                            let members = &mut out.cell_mut(dims, id).members;
                            let snapshot: Vec<(EntityId, TypedEntity)> =
                                cell.members.iter().map(|(&k, &e)| (k, e)).collect();
                            for (eid, e) in snapshot {
                                members
                                    .insert(eid, TypedEntity::new(e.pos.translate(away, v), e.ty));
                            }
                        }
                    }
                }
            }
            continue;
        };
        let dir = id.dir_to(nx).expect("next is a neighbor");
        let boundary = id.boundary(dir);
        for (&eid, &entity) in &cell.members {
            let new_pos = entity.pos.translate(dir, v);
            let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
            let crossed = if dir.sign() > 0 {
                far_edge > boundary
            } else {
                far_edge < boundary
            };
            let members = &mut out.cell_mut(dims, id).members;
            if crossed {
                members.remove(&eid);
                if config.target_of(entity.ty) == Some(nx) {
                    consumed.push((eid, entity.ty));
                } else {
                    let entry = nx.boundary(dir.opposite());
                    let snapped = new_pos.with_along(dir.axis(), entry + h * dir.sign());
                    incoming.push((nx, eid, TypedEntity::new(snapped, entity.ty)));
                    transfers.push((eid, id, nx));
                }
            } else {
                members.insert(eid, TypedEntity::new(new_pos, entity.ty));
            }
        }
    }

    for (to, eid, entity) in incoming {
        out.cell_mut(dims, to).members.insert(eid, entity);
    }

    // Per-type far-edge source insertion, with admission control: a source
    // only injects into an *empty* source cell. Unmetered injection keeps
    // pumping entities into a contended region until cells are physically
    // full (no internal translation can free any strip) — the multi-commodity
    // analogue of highway on-ramps causing gridlock, solved the same way
    // (ramp metering). The single-flow protocol needs no meter because its
    // DAG routing drains congestion toward an always-granting target.
    for (&ty, &s) in config.sources() {
        if state.cell(dims, s).failed {
            continue;
        }
        if !out.cell(dims, s).members.is_empty() {
            continue;
        }
        if let Some(budget) = config.entity_budget() {
            if out.next_entity_id >= budget {
                continue;
            }
        }
        let cell = out.cell(dims, s);
        let pos = match cell
            .next
            .get(&ty)
            .copied()
            .flatten()
            .and_then(|n| s.dir_to(n))
        {
            Some(dir) => {
                let back = dir.opposite();
                let flush = s.boundary(back) - h * back.sign();
                s.center().with_along(back.axis(), flush)
            }
            None => s.center(),
        };
        if cell
            .members
            .values()
            .all(|e| cellflow_geom::sep_ok(pos, e.pos, params.d()))
        {
            let eid = EntityId(out.next_entity_id);
            out.next_entity_id += 1;
            out.cell_mut(dims, s)
                .members
                .insert(eid, TypedEntity::new(pos, ty));
            inserted.push((s, eid, ty));
        }
    }

    MultiOutcome {
        state: out,
        consumed,
        transfers,
        inserted,
    }
}

/// The atomic multi-type `update`: `Route; Signal; Move`.
pub fn update_multi(config: &MultiConfig, state: &MultiState) -> MultiOutcome {
    let routed = route_phase_multi(config, state);
    let signaled = signal_phase_multi(config, &routed);
    move_phase_multi(config, &signaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiSystem;
    use cellflow_core::Params;
    use cellflow_grid::GridDims;
    use cellflow_routing::Dist;

    fn crossing() -> MultiConfig {
        MultiConfig::new(
            GridDims::square(5),
            Params::from_milli(200, 50, 150).unwrap(),
        )
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 2), CellId::new(4, 2))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(2, 0), CellId::new(2, 4))
        .unwrap()
    }

    #[test]
    fn each_layer_routes_to_its_own_target() {
        let cfg = crossing();
        let mut s = cfg.initial_state();
        for _ in 0..12 {
            s = route_phase_multi(&cfg, &s);
        }
        let dims = cfg.dims();
        for id in dims.iter() {
            assert_eq!(
                s.cell(dims, id).dist[&FlowType(0)],
                Dist::Finite(id.manhattan(CellId::new(4, 2))),
                "{id} layer 0"
            );
            assert_eq!(
                s.cell(dims, id).dist[&FlowType(1)],
                Dist::Finite(id.manhattan(CellId::new(2, 4))),
                "{id} layer 1"
            );
        }
        // A type-0 target routes type 1 normally: both ⟨3,2⟩ and ⟨4,3⟩ are at
        // layer-1 distance 3; the identifier tie-break picks ⟨3,2⟩.
        assert_eq!(
            s.cell(dims, CellId::new(4, 2)).next[&FlowType(1)],
            Some(CellId::new(3, 2))
        );
    }

    #[test]
    fn crossing_flows_both_deliver() {
        let mut sys = MultiSystem::new(crossing());
        sys.run(600);
        assert!(sys.consumed(FlowType(0)) > 3, "type 0 starved");
        assert!(sys.consumed(FlowType(1)) > 3, "type 1 starved");
        // Conservation per type.
        for ty in [FlowType(0), FlowType(1)] {
            assert_eq!(
                sys.inserted(ty),
                sys.consumed(ty) + sys.state().entity_count_of(ty) as u64
            );
        }
    }

    #[test]
    fn wrong_type_passes_through_a_target() {
        // Drop a type-1 entity right on type 0's target: it must be forwarded,
        // not consumed.
        let cfg = crossing();
        let mut sys = MultiSystem::new(cfg);
        sys.run(12); // stabilize routing
        let t0 = CellId::new(4, 2);
        let stray = sys.seed_entity(t0, t0.center(), FlowType(1));
        let mut consumed_by_own_target = false;
        for _ in 0..400 {
            let out = sys.step();
            assert!(
                !out.consumed.contains(&(stray, FlowType(0))),
                "the stray was eaten by the wrong target"
            );
            if out.consumed.contains(&(stray, FlowType(1))) {
                consumed_by_own_target = true;
                break;
            }
        }
        assert!(
            consumed_by_own_target,
            "the stray entity never reached τ1's target"
        );
    }

    #[test]
    fn coupled_motion_drags_mixed_types_together() {
        // Two types on one cell: a grant moves both identically.
        let cfg = crossing();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        for _ in 0..12 {
            s = route_phase_multi(&cfg, &s);
        }
        let c = CellId::new(1, 2); // routes east for type 0
        let p0 = c.center();
        let p1 = p0.translate(cellflow_geom::Dir::North, cfg.params().d());
        s.cell_mut(dims, c)
            .members
            .insert(EntityId(0), TypedEntity::new(p0, FlowType(0)));
        s.cell_mut(dims, c)
            .members
            .insert(EntityId(1), TypedEntity::new(p1, FlowType(1)));
        // Grant from the east neighbor (type 0's direction — entity 0 is oldest).
        assert_eq!(s.cell(dims, c).effective_next(), Some(CellId::new(2, 2)));
        s.cell_mut(dims, CellId::new(2, 2)).signal = Some(c);
        let out = move_phase_multi(&cfg, &s);
        let m = &out.state.cell(dims, c).members;
        let v = cfg.params().v();
        assert_eq!(
            m[&EntityId(0)].pos,
            p0.translate(cellflow_geom::Dir::East, v)
        );
        assert_eq!(
            m[&EntityId(1)].pos,
            p1.translate(cellflow_geom::Dir::East, v)
        );
    }

    #[test]
    fn budget_limits_all_sources_jointly() {
        let cfg = crossing().with_entity_budget(3);
        let mut sys = MultiSystem::new(cfg);
        sys.run(200);
        assert_eq!(sys.inserted(FlowType(0)) + sys.inserted(FlowType(1)), 3);
    }
}
