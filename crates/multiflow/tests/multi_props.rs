//! Property-based safety and progress tests for the multi-type extension.

use cellflow_core::Params;
use cellflow_grid::{CellId, GridDims};
use cellflow_multiflow::safety::{check_margins_multi, check_safe_multi};
use cellflow_multiflow::{FlowType, MultiConfig, MultiSystem};
use proptest::prelude::*;

#[allow(clippy::type_complexity)]
fn scenario() -> impl Strategy<Value = (MultiConfig, Vec<(u64, CellId, bool)>)> {
    (3u16..=6, 3u16..=6, 1usize..=3).prop_flat_map(|(nx, ny, n_types)| {
        let dims = GridDims::new(nx, ny);
        let cell = move || (0..nx, 0..ny).prop_map(|(i, j)| CellId::new(i, j));
        (
            Just(dims),
            proptest::collection::vec((cell(), cell()), n_types..=n_types),
            (100i64..=250, 0i64..=150, prop::bool::ANY),
            proptest::collection::vec((0u64..50, cell(), prop::bool::ANY), 0..6),
        )
            .prop_filter_map(
                "flows must have distinct endpoints",
                |(dims, flows, (l, rs, v_eq_l), schedule)| {
                    let v = if v_eq_l { l } else { l / 2 + 5 };
                    let params = Params::from_milli(l, rs.min(900 - l).max(0), v).ok()?;
                    let mut cfg = MultiConfig::new(dims, params).ok()?;
                    for (k, &(src, tgt)) in flows.iter().enumerate() {
                        if src == tgt {
                            return None;
                        }
                        cfg = cfg.with_flow(FlowType(k as u8), src, tgt).ok()?;
                    }
                    Some((cfg, schedule))
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The type-agnostic Safe predicate holds every round, across types,
    /// yields, head-on encounters, failures, and recoveries.
    #[test]
    fn multi_safety_every_round((cfg, schedule) in scenario()) {
        let mut sys = MultiSystem::new(cfg);
        for round in 0..60u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { sys.recover(*cell); } else { sys.fail(*cell); }
                }
            }
            sys.step();
            prop_assert!(check_safe_multi(sys.config(), sys.state()).is_ok(),
                "round {}: {:?}", round, check_safe_multi(sys.config(), sys.state()));
            prop_assert!(check_margins_multi(sys.config(), sys.state()).is_ok(),
                "round {}: {:?}", round, check_margins_multi(sys.config(), sys.state()));
        }
    }

    /// Per-type conservation: inserted = consumed + in-flight, for each type.
    #[test]
    fn multi_conservation((cfg, _) in scenario()) {
        let types: Vec<FlowType> = cfg.types().collect();
        let mut sys = MultiSystem::new(cfg);
        for _ in 0..60 {
            sys.step();
            for &ty in &types {
                prop_assert_eq!(
                    sys.inserted(ty),
                    sys.consumed(ty) + sys.state().entity_count_of(ty) as u64
                );
            }
        }
    }

    /// Determinism: identical runs produce identical states.
    #[test]
    fn multi_determinism((cfg, schedule) in scenario()) {
        let mut a = MultiSystem::new(cfg.clone());
        let mut b = MultiSystem::new(cfg);
        for round in 0..30u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { a.recover(*cell); b.recover(*cell); }
                    else { a.fail(*cell); b.fail(*cell); }
                }
            }
            a.step();
            b.step();
            prop_assert_eq!(a.state(), b.state());
        }
    }
}

/// Deterministic regression: opposing flows on a wide corridor make progress
/// in both directions thanks to head-on yielding.
#[test]
fn opposing_flows_on_wide_corridor_both_progress() {
    // 6×2 corridor: type 0 goes west→east on the grid, type 1 east→west.
    let params = Params::from_milli(200, 50, 150).unwrap();
    let cfg = MultiConfig::new(GridDims::new(6, 2), params)
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(5, 0))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(5, 1), CellId::new(0, 1))
        .unwrap();
    let mut sys = MultiSystem::new(cfg);
    sys.run(1_500);
    assert!(
        sys.consumed(FlowType(0)) > 5,
        "eastbound starved: {}",
        sys.consumed(FlowType(0))
    );
    assert!(
        sys.consumed(FlowType(1)) > 5,
        "westbound starved: {}",
        sys.consumed(FlowType(1))
    );
    assert!(check_safe_multi(sys.config(), sys.state()).is_ok());
}

/// Deterministic regression: the head-on deadlock that motivated yielding —
/// two single entities aimed at each other on a 2-wide board resolve.
#[test]
fn head_on_pair_resolves_via_yield() {
    let params = Params::from_milli(200, 50, 150).unwrap();
    let cfg = MultiConfig::new(GridDims::new(4, 2), params)
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(3, 0))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(3, 0), CellId::new(0, 0))
        .unwrap()
        .with_entity_budget(2);
    let mut sys = MultiSystem::new(cfg);
    let mut rounds = 0;
    while sys.consumed(FlowType(0)) + sys.consumed(FlowType(1)) < 2 {
        sys.step();
        rounds += 1;
        assert!(
            rounds < 2_000,
            "head-on pair deadlocked: consumed {}/{}",
            sys.consumed(FlowType(0)),
            sys.consumed(FlowType(1))
        );
    }
}

/// Documented limitation: a width-1 corridor with opposing flows genuinely
/// deadlocks (no passing place) — but stays safe forever.
#[test]
fn width_one_opposing_corridor_deadlocks_safely() {
    let params = Params::from_milli(200, 50, 150).unwrap();
    let cfg = MultiConfig::new(GridDims::new(5, 1), params)
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 0), CellId::new(4, 0))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(4, 0), CellId::new(0, 0))
        .unwrap();
    let mut sys = MultiSystem::new(cfg);
    sys.run(1_000);
    // Nothing ever breaks, even though the two columns can't pass each other.
    assert!(check_safe_multi(sys.config(), sys.state()).is_ok());
    assert!(check_margins_multi(sys.config(), sys.state()).is_ok());
}

/// Long-run fluidity regression: the antagonistic 3-flow pattern (head-on +
/// double crossing) keeps delivering linearly under the default capacity-1
/// admission — the configuration that motivated the anti-deadlock design
/// (yield, rotate-on-block, back-off, occupancy cap).
#[test]
fn antagonistic_three_flows_sustain_progress() {
    let params = Params::from_milli(200, 50, 150).unwrap();
    let cfg = MultiConfig::new(GridDims::square(7), params)
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 3), CellId::new(6, 3))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(3, 0), CellId::new(3, 6))
        .unwrap()
        .with_flow(FlowType(2), CellId::new(6, 4), CellId::new(0, 4))
        .unwrap();
    let mut sys = MultiSystem::new(cfg);
    sys.run(2_000);
    let at_2k: Vec<u64> = (0..3).map(|t| sys.consumed(FlowType(t))).collect();
    sys.run(2_000);
    let at_4k: Vec<u64> = (0..3).map(|t| sys.consumed(FlowType(t))).collect();
    for t in 0..3 {
        assert!(at_2k[t] > 30, "τ{t} too slow by 2k rounds: {:?}", at_2k);
        // Still delivering in the second half — no creeping gridlock.
        assert!(
            at_4k[t] as f64 > at_2k[t] as f64 * 1.7,
            "τ{t} stalled: {:?} → {:?}",
            at_2k,
            at_4k
        );
    }
    assert!(check_safe_multi(sys.config(), sys.state()).is_ok());
}

/// The capacity ablation in miniature: with an occupancy cap of 8 the same
/// pattern clots (store-and-forward / span-immobility deadlocks), while
/// staying safe — the trade documented on `with_cell_capacity`.
#[test]
fn high_capacity_clots_but_stays_safe() {
    let params = Params::from_milli(200, 50, 150).unwrap();
    let cfg = MultiConfig::new(GridDims::square(7), params)
        .unwrap()
        .with_flow(FlowType(0), CellId::new(0, 3), CellId::new(6, 3))
        .unwrap()
        .with_flow(FlowType(1), CellId::new(3, 0), CellId::new(3, 6))
        .unwrap()
        .with_flow(FlowType(2), CellId::new(6, 4), CellId::new(0, 4))
        .unwrap()
        .with_cell_capacity(8);
    let mut sys = MultiSystem::new(cfg);
    sys.run(3_000);
    let mid: Vec<u64> = (0..3).map(|t| sys.consumed(FlowType(t))).collect();
    sys.run(1_000);
    let end: Vec<u64> = (0..3).map(|t| sys.consumed(FlowType(t))).collect();
    assert_eq!(mid, end, "expected the uncapped pattern to clot");
    assert!(check_safe_multi(sys.config(), sys.state()).is_ok());
    assert!(check_margins_multi(sys.config(), sys.state()).is_ok());
}
