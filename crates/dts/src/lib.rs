//! Discrete transition systems and an explicit-state model checker.
//!
//! The paper *"Safe and Stabilizing Distributed Cellular Flows"* (ICDCS 2010)
//! formalizes its system as a **discrete transition system**
//! `A = ⟨X, Q₀, A, →⟩` (Section II) and proves its properties by assertional
//! reasoning: an *invariant* holds in every reachable state; a system
//! *stabilizes to* a stable set `S` if every execution fragment reaches `S`.
//!
//! This crate mechanizes that formalism so the proofs can be *checked* on
//! bounded instances:
//!
//! * [`Dts`] — the transition-system trait (states, initial states, enabled
//!   actions, transition function);
//! * [`Execution`] — recorded executions (alternating states and actions);
//! * [`Explorer`] — bounded breadth-first reachability with deduplication;
//! * [`check_invariant`] — verify a state predicate over all reachable states,
//!   returning a counterexample [`Execution`] on failure;
//! * [`is_stable`] / [`always_reaches_within`] — the two halves of the paper's
//!   "stabilizes to `S`" definition;
//! * [`check_possibly`] — the CTL property `AG EF goal` (no reachable state
//!   is ever trapped away from the goal), used to mechanize progress claims;
//! * [`random_walks`] — Monte-Carlo invariant checking for instances too
//!   large to enumerate.
//!
//! # Example: a wrapping counter
//!
//! ```
//! use cellflow_dts::{check_invariant, Dts, ExploreConfig};
//!
//! struct Counter { modulus: u32 }
//!
//! impl Dts for Counter {
//!     type State = u32;
//!     type Action = ();
//!     fn initial_states(&self) -> Vec<u32> { vec![0] }
//!     fn enabled(&self, _: &u32) -> Vec<()> { vec![()] }
//!     fn apply(&self, s: &u32, _: &()) -> u32 { (s + 1) % self.modulus }
//! }
//!
//! let sys = Counter { modulus: 5 };
//! let report = check_invariant(&sys, |s| *s < 5, &ExploreConfig::default()).unwrap();
//! assert_eq!(report.states_explored, 5);
//! assert!(check_invariant(&sys, |s| *s < 4, &ExploreConfig::default()).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod execution;
mod explore;
pub mod hash;
mod invariant;
mod liveness;
mod montecarlo;
mod stabilize;

pub use automaton::Dts;
pub use execution::Execution;
pub use explore::{ExploreConfig, ExploreOutcome, Explorer, ReachReport};
pub use invariant::{check_invariant, InvariantReport, Violation};
pub use liveness::{check_possibly, LivenessReport, TrappedState};
pub use montecarlo::{random_walks, random_walks_parallel, WalkConfig, WalkReport};
pub use stabilize::{always_reaches_within, is_stable, StabilityViolation};
