//! Invariant checking over the reachable state space.

use crate::{Dts, Execution, ExploreConfig, ExploreOutcome, Explorer};

/// Successful invariant check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvariantReport {
    /// Number of distinct states on which the predicate was verified.
    pub states_explored: usize,
    /// Transitions fired during exploration.
    pub transitions: usize,
    /// `true` if the whole reachable set was covered (no bound was hit), i.e.
    /// the check is a proof for this instance rather than a bounded search.
    pub exhaustive: bool,
}

/// A reachable state violating the invariant, with a shortest path to it.
pub struct Violation<A: Dts> {
    /// The offending state.
    pub state: A::State,
    /// A shortest execution from an initial state to [`Violation::state`].
    pub trace: Execution<A>,
}

impl<A: Dts> core::fmt::Debug for Violation<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invariant violated in {:?} (reached in {} steps)",
            self.state,
            self.trace.len()
        )
    }
}

/// Checks that `invariant` holds in every reachable state of `sys`, within the
/// bounds of `config` — the mechanized form of the paper's "A is safe with
/// respect to S if all reachable states are contained in S".
///
/// # Errors
///
/// Returns a [`Violation`] carrying the first (shallowest) bad state found and
/// a shortest counterexample execution to it.
///
/// ```
/// use cellflow_dts::{check_invariant, Dts, ExploreConfig};
/// # struct C;
/// # impl Dts for C {
/// #     type State = u32; type Action = ();
/// #     fn initial_states(&self) -> Vec<u32> { vec![0] }
/// #     fn enabled(&self, _: &u32) -> Vec<()> { vec![()] }
/// #     fn apply(&self, s: &u32, _: &()) -> u32 { (s + 1) % 8 }
/// # }
/// let violation = check_invariant(&C, |s| *s != 5, &ExploreConfig::default()).unwrap_err();
/// assert_eq!(violation.state, 5);
/// assert_eq!(violation.trace.len(), 5);
/// ```
pub fn check_invariant<A, P>(
    sys: &A,
    invariant: P,
    config: &ExploreConfig,
) -> Result<InvariantReport, Violation<A>>
where
    A: Dts,
    P: Fn(&A::State) -> bool,
{
    let mut explorer = Explorer::new(sys);
    let report = explorer.run(config);
    // BFS order ⇒ the first violating state in `states()` is shallowest.
    for s in explorer.states() {
        if !invariant(s) {
            let trace = explorer.trace_to(s).expect("explored states have traces");
            return Err(Violation {
                state: s.clone(),
                trace,
            });
        }
    }
    Ok(InvariantReport {
        states_explored: report.states,
        transitions: report.transitions,
        exhaustive: report.outcome == ExploreOutcome::Complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::{Branching, Counter};

    #[test]
    fn holds_on_full_space() {
        let sys = Counter { modulus: 16 };
        let r = check_invariant(&sys, |s| *s < 16, &ExploreConfig::default()).unwrap();
        assert_eq!(r.states_explored, 16);
        assert!(r.exhaustive);
    }

    #[test]
    fn finds_shallowest_violation() {
        let sys = Branching { m: 100 };
        // 7 is reachable; shortest path uses 2-steps: 0→2→4→6→7 (4 steps)
        // or 0→2→4→5→7 — BFS guarantees minimal length 4.
        let v = check_invariant(&sys, |s| *s != 7, &ExploreConfig::default()).unwrap_err();
        assert_eq!(v.state, 7);
        assert_eq!(v.trace.len(), 4);
        assert_eq!(v.trace.validate(&sys), Ok(()));
        assert!(format!("{v:?}").contains("invariant violated"));
    }

    #[test]
    fn bounded_check_is_not_exhaustive() {
        let sys = Counter { modulus: 1_000 };
        let r = check_invariant(
            &sys,
            |_| true,
            &ExploreConfig {
                max_states: 10,
                max_depth: usize::MAX,
            },
        )
        .unwrap();
        assert!(!r.exhaustive);
        assert_eq!(r.states_explored, 10);
    }

    #[test]
    fn initial_state_violation_has_empty_trace() {
        let sys = Counter { modulus: 4 };
        let v = check_invariant(&sys, |s| *s != 0, &ExploreConfig::default()).unwrap_err();
        assert_eq!(v.state, 0);
        assert!(v.trace.is_empty());
    }
}
