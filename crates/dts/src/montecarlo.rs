//! Monte-Carlo invariant checking: randomized walks through the state space.
//!
//! Exhaustive exploration ([`Explorer`](crate::Explorer)) proves properties
//! on *small* instances; plain simulation exercises one schedule. Random
//! walks sit in between: many independent trajectories with randomly chosen
//! enabled actions, checking the invariant at every visited state — a cheap
//! high-coverage smoke test for instances too large to enumerate.

use crate::{Dts, Execution};

/// A deterministic xorshift64* generator — enough randomness for walk
/// scheduling without pulling a dependency into this crate.
#[derive(Clone, Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// Each walk owning its own splitmix64-derived seed ([`crate::hash::walk_seed`])
// is what makes the sequential and parallel drivers produce identical
// results: a walk's randomness no longer depends on how many values earlier
// walks consumed.
use crate::hash::walk_seed;

/// Configuration for [`random_walks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// Number of independent trajectories.
    pub walks: usize,
    /// Transitions per trajectory.
    pub depth: usize,
    /// Seed for the walk scheduler.
    pub seed: u64,
}

impl Default for WalkConfig {
    /// 64 walks of depth 256.
    fn default() -> WalkConfig {
        WalkConfig {
            walks: 64,
            depth: 256,
            seed: 0x5EED,
        }
    }
}

/// Statistics from a successful [`random_walks`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkReport {
    /// States on which the invariant was checked (including revisits).
    pub states_checked: usize,
    /// Walks that ended early in a deadlock (no enabled actions).
    pub deadlocked_walks: usize,
}

/// Runs random walks over `sys`, checking `invariant` at every state.
///
/// Each walk starts from a uniformly chosen initial state and repeatedly
/// fires a uniformly chosen enabled action. Unlike
/// [`check_invariant`](crate::check_invariant) this is *not* exhaustive — a
/// clean pass is evidence, not proof — but it scales to instances far beyond
/// enumeration.
///
/// # Errors
///
/// Returns the violating [`Execution`] (the full walk up to and including the
/// bad state).
///
/// ```
/// use cellflow_dts::{random_walks, Dts, WalkConfig};
/// # struct C;
/// # impl Dts for C {
/// #     type State = u32; type Action = u32;
/// #     fn initial_states(&self) -> Vec<u32> { vec![0] }
/// #     fn enabled(&self, _: &u32) -> Vec<u32> { vec![1, 2] }
/// #     fn apply(&self, s: &u32, a: &u32) -> u32 { (s + a) % 97 }
/// # }
/// let report = random_walks(&C, |s| *s < 97, &WalkConfig::default()).unwrap();
/// assert!(report.states_checked > 1_000);
/// let bad = random_walks(&C, |s| *s != 42, &WalkConfig::default()).unwrap_err();
/// assert_eq!(*bad.last(), 42);
/// ```
pub fn random_walks<A, P>(
    sys: &A,
    invariant: P,
    config: &WalkConfig,
) -> Result<WalkReport, Execution<A>>
where
    A: Dts,
    P: Fn(&A::State) -> bool,
{
    let initials = sys.initial_states();
    assert!(!initials.is_empty(), "system has no initial states");
    let mut states_checked = 0usize;
    let mut deadlocked_walks = 0usize;

    for walk in 0..config.walks {
        let mut rng = XorShift::new(walk_seed(config.seed, walk));
        match run_walk(sys, &invariant, &initials, &mut rng, config.depth) {
            Ok((checked, deadlocked)) => {
                states_checked += checked;
                deadlocked_walks += deadlocked;
            }
            Err(exec) => return Err(exec),
        }
    }
    Ok(WalkReport {
        states_checked,
        deadlocked_walks,
    })
}

/// One trajectory: returns `(states checked, 1 if deadlocked else 0)`, or
/// the violating execution.
fn run_walk<A, P>(
    sys: &A,
    invariant: &P,
    initials: &[A::State],
    rng: &mut XorShift,
    depth: usize,
) -> Result<(usize, usize), Execution<A>>
where
    A: Dts,
    P: Fn(&A::State) -> bool,
{
    let start = initials[rng.below(initials.len())].clone();
    let mut exec = Execution::new(start);
    let mut states_checked = 1usize;
    if !invariant(exec.last()) {
        return Err(exec);
    }
    for _ in 0..depth {
        let actions = sys.enabled(exec.last());
        if actions.is_empty() {
            return Ok((states_checked, 1));
        }
        let action = actions[rng.below(actions.len())].clone();
        let next = sys.apply(exec.last(), &action);
        exec.push(action, next);
        states_checked += 1;
        if !invariant(exec.last()) {
            return Err(exec);
        }
    }
    Ok((states_checked, 0))
}

/// [`random_walks`] fanned out over `threads` scoped workers, each owning a
/// disjoint contiguous range of walk indices. Because every walk derives its
/// generator from [`walk_seed`]`(seed, walk)` alone, the outcome — including
/// *which* violating execution is reported when several walks fail — is
/// byte-identical to the sequential driver: all walks run to completion and
/// the error of the lowest-numbered failing walk wins.
///
/// # Errors
///
/// Returns the violating [`Execution`] of the lowest-numbered failing walk.
///
/// # Panics
///
/// Panics if the system has no initial states, and propagates panics from
/// worker threads.
pub fn random_walks_parallel<A, P>(
    sys: &A,
    invariant: P,
    config: &WalkConfig,
    threads: usize,
) -> Result<WalkReport, Execution<A>>
where
    A: Dts + Sync,
    A::State: Send + Sync,
    A::Action: Send,
    P: Fn(&A::State) -> bool + Sync,
{
    if threads <= 1 || config.walks <= 1 {
        return random_walks(sys, invariant, config);
    }
    let initials = sys.initial_states();
    assert!(!initials.is_empty(), "system has no initial states");
    let workers = threads.min(config.walks);
    let chunk = config.walks.div_ceil(workers);
    type WalkOutcome<A> = Option<Result<(usize, usize), Execution<A>>>;
    let mut results: Vec<WalkOutcome<A>> = Vec::new();
    results.resize_with(config.walks, || None);
    let walk_ids: Vec<usize> = (0..config.walks).collect();
    let (invariant, initials) = (&invariant, &initials);
    crossbeam::thread::scope(|scope| {
        for (ids, out) in walk_ids.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (&walk, slot) in ids.iter().zip(out.iter_mut()) {
                    let mut rng = XorShift::new(walk_seed(config.seed, walk));
                    *slot = Some(run_walk(sys, invariant, initials, &mut rng, config.depth));
                }
            });
        }
    })
    .expect("walk worker panicked");
    let mut states_checked = 0usize;
    let mut deadlocked_walks = 0usize;
    for result in results {
        match result.expect("every walk ran") {
            Ok((checked, deadlocked)) => {
                states_checked += checked;
                deadlocked_walks += deadlocked;
            }
            Err(exec) => return Err(exec),
        }
    }
    Ok(WalkReport {
        states_checked,
        deadlocked_walks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::{Branching, Counter};

    #[test]
    fn clean_pass_reports_counts() {
        let sys = Counter { modulus: 10 };
        let cfg = WalkConfig {
            walks: 10,
            depth: 50,
            seed: 7,
        };
        let report = random_walks(&sys, |s| *s < 10, &cfg).unwrap();
        assert_eq!(report.states_checked, 10 * 51);
        assert_eq!(report.deadlocked_walks, 0);
    }

    #[test]
    fn violation_returns_valid_trace() {
        let sys = Branching { m: 1_000 };
        let bad = random_walks(&sys, |s| *s < 30, &WalkConfig::default()).unwrap_err();
        assert!(*bad.last() >= 30);
        assert_eq!(bad.validate(&sys), Ok(()));
        // The walk found the violation at its end — everything before is fine.
        for s in &bad.states()[..bad.states().len() - 1] {
            assert!(*s < 30);
        }
    }

    #[test]
    fn deadlocks_are_counted_not_fatal() {
        struct Dead;
        impl Dts for Dead {
            type State = u8;
            type Action = ();
            fn initial_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn enabled(&self, s: &u8) -> Vec<()> {
                if *s < 3 {
                    vec![()]
                } else {
                    vec![]
                }
            }
            fn apply(&self, s: &u8, _: &()) -> u8 {
                s + 1
            }
        }
        let cfg = WalkConfig {
            walks: 5,
            depth: 100,
            seed: 1,
        };
        let report = random_walks(&Dead, |_| true, &cfg).unwrap();
        assert_eq!(report.deadlocked_walks, 5);
        assert_eq!(report.states_checked, 5 * 4); // 0,1,2,3 each walk
    }

    #[test]
    fn walks_are_seed_deterministic() {
        let sys = Branching { m: 17 };
        let cfg = WalkConfig {
            walks: 8,
            depth: 64,
            seed: 99,
        };
        let a = random_walks(&sys, |_| true, &cfg).unwrap();
        let b = random_walks(&sys, |_| true, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential_on_clean_runs() {
        let sys = Branching { m: 10_000 };
        let cfg = WalkConfig {
            walks: 37,
            depth: 80,
            seed: 0xFEED,
        };
        let seq = random_walks(&sys, |_| true, &cfg).unwrap();
        for threads in [2, 4, 16] {
            let par = random_walks_parallel(&sys, |_| true, &cfg, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_reports_the_same_violation_as_sequential() {
        // Growth is monotone, so many walks violate; both drivers must
        // surface the lowest-numbered failing walk's exact trace.
        let sys = Branching { m: 1_000 };
        let cfg = WalkConfig::default();
        let seq = random_walks(&sys, |s| *s < 30, &cfg).unwrap_err();
        let par = random_walks_parallel(&sys, |s| *s < 30, &cfg, 8).unwrap_err();
        assert_eq!(par.states(), seq.states());
        assert_eq!(par.validate(&sys), Ok(()));
    }

    #[test]
    fn parallel_counts_deadlocks_like_sequential() {
        struct Dead;
        impl Dts for Dead {
            type State = u8;
            type Action = ();
            fn initial_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn enabled(&self, s: &u8) -> Vec<()> {
                if *s < 3 {
                    vec![()]
                } else {
                    vec![]
                }
            }
            fn apply(&self, s: &u8, _: &()) -> u8 {
                s + 1
            }
        }
        let cfg = WalkConfig {
            walks: 9,
            depth: 100,
            seed: 5,
        };
        let seq = random_walks(&Dead, |_| true, &cfg).unwrap();
        let par = random_walks_parallel(&Dead, |_| true, &cfg, 3).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.deadlocked_walks, 9);
    }
}
