//! Monte-Carlo invariant checking: randomized walks through the state space.
//!
//! Exhaustive exploration ([`Explorer`](crate::Explorer)) proves properties
//! on *small* instances; plain simulation exercises one schedule. Random
//! walks sit in between: many independent trajectories with randomly chosen
//! enabled actions, checking the invariant at every visited state — a cheap
//! high-coverage smoke test for instances too large to enumerate.

use crate::{Dts, Execution};

/// A deterministic xorshift64* generator — enough randomness for walk
/// scheduling without pulling a dependency into this crate.
#[derive(Clone, Debug)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Configuration for [`random_walks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// Number of independent trajectories.
    pub walks: usize,
    /// Transitions per trajectory.
    pub depth: usize,
    /// Seed for the walk scheduler.
    pub seed: u64,
}

impl Default for WalkConfig {
    /// 64 walks of depth 256.
    fn default() -> WalkConfig {
        WalkConfig {
            walks: 64,
            depth: 256,
            seed: 0x5EED,
        }
    }
}

/// Statistics from a successful [`random_walks`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkReport {
    /// States on which the invariant was checked (including revisits).
    pub states_checked: usize,
    /// Walks that ended early in a deadlock (no enabled actions).
    pub deadlocked_walks: usize,
}

/// Runs random walks over `sys`, checking `invariant` at every state.
///
/// Each walk starts from a uniformly chosen initial state and repeatedly
/// fires a uniformly chosen enabled action. Unlike
/// [`check_invariant`](crate::check_invariant) this is *not* exhaustive — a
/// clean pass is evidence, not proof — but it scales to instances far beyond
/// enumeration.
///
/// # Errors
///
/// Returns the violating [`Execution`] (the full walk up to and including the
/// bad state).
///
/// ```
/// use cellflow_dts::{random_walks, Dts, WalkConfig};
/// # struct C;
/// # impl Dts for C {
/// #     type State = u32; type Action = u32;
/// #     fn initial_states(&self) -> Vec<u32> { vec![0] }
/// #     fn enabled(&self, _: &u32) -> Vec<u32> { vec![1, 2] }
/// #     fn apply(&self, s: &u32, a: &u32) -> u32 { (s + a) % 97 }
/// # }
/// let report = random_walks(&C, |s| *s < 97, &WalkConfig::default()).unwrap();
/// assert!(report.states_checked > 1_000);
/// let bad = random_walks(&C, |s| *s != 42, &WalkConfig::default()).unwrap_err();
/// assert_eq!(*bad.last(), 42);
/// ```
pub fn random_walks<A, P>(
    sys: &A,
    invariant: P,
    config: &WalkConfig,
) -> Result<WalkReport, Execution<A>>
where
    A: Dts,
    P: Fn(&A::State) -> bool,
{
    let mut rng = XorShift::new(config.seed);
    let initials = sys.initial_states();
    assert!(!initials.is_empty(), "system has no initial states");
    let mut states_checked = 0usize;
    let mut deadlocked_walks = 0usize;

    for _ in 0..config.walks {
        let start = initials[rng.below(initials.len())].clone();
        let mut exec = Execution::new(start);
        states_checked += 1;
        if !invariant(exec.last()) {
            return Err(exec);
        }
        for _ in 0..config.depth {
            let actions = sys.enabled(exec.last());
            if actions.is_empty() {
                deadlocked_walks += 1;
                break;
            }
            let action = actions[rng.below(actions.len())].clone();
            let next = sys.apply(exec.last(), &action);
            exec.push(action, next);
            states_checked += 1;
            if !invariant(exec.last()) {
                return Err(exec);
            }
        }
    }
    Ok(WalkReport {
        states_checked,
        deadlocked_walks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::{Branching, Counter};

    #[test]
    fn clean_pass_reports_counts() {
        let sys = Counter { modulus: 10 };
        let cfg = WalkConfig {
            walks: 10,
            depth: 50,
            seed: 7,
        };
        let report = random_walks(&sys, |s| *s < 10, &cfg).unwrap();
        assert_eq!(report.states_checked, 10 * 51);
        assert_eq!(report.deadlocked_walks, 0);
    }

    #[test]
    fn violation_returns_valid_trace() {
        let sys = Branching { m: 1_000 };
        let bad = random_walks(&sys, |s| *s < 30, &WalkConfig::default()).unwrap_err();
        assert!(*bad.last() >= 30);
        assert_eq!(bad.validate(&sys), Ok(()));
        // The walk found the violation at its end — everything before is fine.
        for s in &bad.states()[..bad.states().len() - 1] {
            assert!(*s < 30);
        }
    }

    #[test]
    fn deadlocks_are_counted_not_fatal() {
        struct Dead;
        impl Dts for Dead {
            type State = u8;
            type Action = ();
            fn initial_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn enabled(&self, s: &u8) -> Vec<()> {
                if *s < 3 {
                    vec![()]
                } else {
                    vec![]
                }
            }
            fn apply(&self, s: &u8, _: &()) -> u8 {
                s + 1
            }
        }
        let cfg = WalkConfig {
            walks: 5,
            depth: 100,
            seed: 1,
        };
        let report = random_walks(&Dead, |_| true, &cfg).unwrap();
        assert_eq!(report.deadlocked_walks, 5);
        assert_eq!(report.states_checked, 5 * 4); // 0,1,2,3 each walk
    }

    #[test]
    fn walks_are_seed_deterministic() {
        let sys = Branching { m: 17 };
        let cfg = WalkConfig {
            walks: 8,
            depth: 64,
            seed: 99,
        };
        let a = random_walks(&sys, |_| true, &cfg).unwrap();
        let b = random_walks(&sys, |_| true, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
