//! Stabilization checking: the paper's "A stabilizes to S".
//!
//! Section II defines: a set `S` is *stable* if it is closed under transitions,
//! and `A` *stabilizes to* `S` if `S` is stable and every execution fragment
//! reaches `S`. Lemma 6 instantiates this for the routing layer: from any state,
//! fault-free executions stabilize to correct `dist`/`next` values within `h`
//! rounds. These helpers check both halves on bounded instances.

use std::collections::HashMap;

use crate::Dts;

/// A witness that a candidate set is not closed under transitions.
pub struct StabilityViolation<A: Dts> {
    /// A state inside the candidate set…
    pub inside: A::State,
    /// …the action that escapes it…
    pub action: A::Action,
    /// …and the successor outside the set.
    pub outside: A::State,
}

impl<A: Dts> core::fmt::Debug for StabilityViolation<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "set not stable: {:?} --{:?}--> {:?}",
            self.inside, self.action, self.outside
        )
    }
}

/// Checks that the set `{ s | in_set(s) }` is **stable** (closed under every
/// enabled transition) over the given collection of member states.
///
/// The caller supplies the member states to examine — typically the reachable
/// states from an [`Explorer`](crate::Explorer) run, filtered by `in_set`.
///
/// # Errors
///
/// Returns the first escaping transition found.
pub fn is_stable<'s, A, P, I>(sys: &A, in_set: P, members: I) -> Result<(), StabilityViolation<A>>
where
    A: Dts,
    A::State: 's,
    P: Fn(&A::State) -> bool,
    I: IntoIterator<Item = &'s A::State>,
{
    for s in members {
        debug_assert!(in_set(s), "members must satisfy the predicate");
        for action in sys.enabled(s) {
            let next = sys.apply(s, &action);
            if !in_set(&next) {
                return Err(StabilityViolation {
                    inside: s.clone(),
                    action,
                    outside: next,
                });
            }
        }
    }
    Ok(())
}

/// Checks that **every** execution fragment from `start` reaches the set
/// `{ s | target(s) }` within at most `bound` transitions — universal
/// (all-paths) bounded reachability.
///
/// Returns `Some(k)` with the smallest `k ≤ bound` such that all executions
/// from `start` are inside the target set by step `k` in the worst case, or
/// `None` if some execution can avoid the set for `bound` steps.
///
/// ```
/// use cellflow_dts::{always_reaches_within, Dts};
/// # struct C;
/// # impl Dts for C {
/// #     type State = u32; type Action = u32;
/// #     fn initial_states(&self) -> Vec<u32> { vec![0] }
/// #     fn enabled(&self, _: &u32) -> Vec<u32> { vec![1, 2] }
/// #     fn apply(&self, s: &u32, a: &u32) -> u32 { s + a }
/// # }
/// // Adding 1 or 2 each step from 0: all paths reach a value ≥ 4 within 4 steps
/// // (worst case all-ones), and cannot be guaranteed within 3.
/// assert_eq!(always_reaches_within(&C, |s| *s >= 4, &0, 4), Some(4));
/// assert_eq!(always_reaches_within(&C, |s| *s >= 4, &0, 3), None);
/// ```
pub fn always_reaches_within<A, P>(
    sys: &A,
    target: P,
    start: &A::State,
    bound: usize,
) -> Option<usize>
where
    A: Dts,
    P: Fn(&A::State) -> bool,
{
    // worst[s] = max over paths of steps needed from s; None = can exceed budget.
    // Memoized DFS on (state, remaining budget is implicit: memo stores the
    // exact worst-case distance when it is ≤ bound).
    fn go<A: Dts, P: Fn(&A::State) -> bool>(
        sys: &A,
        target: &P,
        state: &A::State,
        budget: usize,
        memo: &mut HashMap<A::State, Option<usize>>,
        in_progress: &mut Vec<A::State>,
    ) -> Option<usize> {
        if target(state) {
            return Some(0);
        }
        if budget == 0 {
            return None;
        }
        // A cached worst-case distance is budget-independent when Some; a
        // cached None was computed with at least as much budget only if we
        // always call with non-increasing budgets — we don't, so only trust
        // Some entries.
        if let Some(Some(d)) = memo.get(state) {
            return if *d <= budget { Some(*d) } else { None };
        }
        if in_progress.contains(state) {
            // A cycle that avoids the target: with any finite budget this
            // branch can loop, so it cannot be *guaranteed* to reach.
            return None;
        }
        in_progress.push(state.clone());
        let mut worst = 0usize;
        let mut ok = true;
        let actions = sys.enabled(state);
        if actions.is_empty() {
            ok = false; // deadlock outside the target set
        }
        for action in actions {
            let next = sys.apply(state, &action);
            match go(sys, target, &next, budget - 1, memo, in_progress) {
                Some(d) => worst = worst.max(d + 1),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        in_progress.pop();
        if ok {
            memo.insert(state.clone(), Some(worst));
            Some(worst)
        } else {
            None
        }
    }

    let mut memo = HashMap::new();
    let mut stack = Vec::new();
    go(sys, &target, start, bound, &mut memo, &mut stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::{Branching, Counter, FlipChain};
    use crate::{ExploreConfig, Explorer};

    #[test]
    fn counter_stabilizes_to_nothing_smaller_than_cycle() {
        let sys = Counter { modulus: 4 };
        // The set {0,1,2,3} is trivially stable.
        let mut ex = Explorer::new(&sys);
        ex.run(&ExploreConfig::default());
        assert!(is_stable(&sys, |s| *s < 4, ex.states().iter()).is_ok());
        // The set {0} is not stable: 0 → 1 escapes.
        let members = [0u32];
        let v = is_stable(&sys, |s| *s == 0, members.iter()).unwrap_err();
        assert_eq!(v.inside, 0);
        assert_eq!(v.outside, 1);
        assert!(format!("{v:?}").contains("not stable"));
    }

    #[test]
    fn flip_chain_stabilizes_to_uniform_states() {
        // The paper's notion: S = uniform flag configurations is stable, and
        // every execution reaches S within n−1 rounds.
        let sys = FlipChain { n: 5 };
        let uniform = |s: &Vec<bool>| s.iter().all(|&b| b == s[0]);
        let all = sys.all_states();
        let members: Vec<_> = all.iter().filter(|s| uniform(s)).collect();
        assert!(is_stable(&sys, uniform, members.into_iter()).is_ok());
        for start in &all {
            let k = always_reaches_within(&sys, uniform, start, 4)
                .unwrap_or_else(|| panic!("{start:?} fails to stabilize"));
            assert!(k <= 4);
        }
        // Worst case: one leading mismatch that has to ripple down the whole
        // chain, e.g. [T,F,F,F,F] takes exactly n−1 = 4 rounds.
        let ripple = vec![true, false, false, false, false];
        assert_eq!(always_reaches_within(&sys, uniform, &ripple, 4), Some(4));
        assert_eq!(always_reaches_within(&sys, uniform, &ripple, 3), None);
    }

    #[test]
    fn branching_worst_case_counts_all_paths() {
        let sys = Branching { m: 1_000 };
        assert_eq!(always_reaches_within(&sys, |s| *s >= 6, &0, 6), Some(6));
        assert_eq!(always_reaches_within(&sys, |s| *s >= 6, &0, 5), None);
    }

    #[test]
    fn cycles_that_avoid_target_fail() {
        let sys = Counter { modulus: 4 };
        // From 0, the execution cycles 0,1,2,3,… and never reaches 9.
        assert_eq!(always_reaches_within(&sys, |s| *s == 9, &0, 50), None);
        // …but reaches 3 in exactly 3 steps.
        assert_eq!(always_reaches_within(&sys, |s| *s == 3, &0, 50), Some(3));
    }

    #[test]
    fn already_inside_needs_zero_steps() {
        let sys = Counter { modulus: 4 };
        assert_eq!(always_reaches_within(&sys, |s| *s == 2, &2, 0), Some(0));
        assert_eq!(always_reaches_within(&sys, |s| *s == 3, &2, 0), None);
    }
}
