//! Liveness checking: possibility-of-progress over the reachable graph.
//!
//! The paper's progress result (Theorem 10) is conditional: entities reach
//! the target *once failures cease*. Over a transition system whose actions
//! include crashes, the natural unconditional statement is the CTL property
//! **`AG EF goal`** — *from every reachable state, a goal state remains
//! reachable* (e.g. "all created entities consumed"). A violation is a
//! reachable state from which the system can never again make full progress,
//! no matter how the environment behaves — a trapped state, which is exactly
//! what the deadlock analyses in `cellflow-multiflow` look for.
//!
//! [`check_possibly`] verifies `AG EF goal` by building the reachable graph
//! and reverse-searching from the goal states.

use std::collections::{HashMap, VecDeque};

use crate::{Dts, Execution, ExploreConfig, ExploreOutcome, Explorer};

/// Successful `AG EF goal` check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivenessReport {
    /// Distinct reachable states examined.
    pub states: usize,
    /// How many of them satisfy the goal themselves.
    pub goal_states: usize,
    /// `true` if the whole reachable set was covered (proof-grade for this
    /// instance); `false` if an exploration bound was hit.
    pub exhaustive: bool,
}

/// A reachable state from which no goal state can ever be reached again.
pub struct TrappedState<A: Dts> {
    /// The trapped state.
    pub state: A::State,
    /// A shortest execution from an initial state into the trap.
    pub trace: Execution<A>,
}

impl<A: Dts> core::fmt::Debug for TrappedState<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trapped state (goal unreachable) after {} steps: {:?}",
            self.trace.len(),
            self.state
        )
    }
}

/// Checks `AG EF goal`: every reachable state of `sys` can still reach a
/// state satisfying `goal`.
///
/// # Errors
///
/// Returns the shallowest [`TrappedState`] if some reachable state has no
/// path back to the goal set.
///
/// ```
/// use cellflow_dts::{check_possibly, Dts, ExploreConfig};
///
/// // A counter that can be incremented or reset — 0 stays reachable forever.
/// struct Resettable;
/// impl Dts for Resettable {
///     type State = u8;
///     type Action = bool; // true = increment, false = reset
///     fn initial_states(&self) -> Vec<u8> { vec![0] }
///     fn enabled(&self, _: &u8) -> Vec<bool> { vec![true, false] }
///     fn apply(&self, s: &u8, a: &bool) -> u8 { if *a { (s + 1) % 8 } else { 0 } }
/// }
/// let report = check_possibly(&Resettable, |s| *s == 0, &ExploreConfig::default()).unwrap();
/// assert_eq!(report.states, 8);
/// assert!(report.exhaustive);
/// ```
pub fn check_possibly<A, G>(
    sys: &A,
    goal: G,
    config: &ExploreConfig,
) -> Result<LivenessReport, TrappedState<A>>
where
    A: Dts,
    G: Fn(&A::State) -> bool,
{
    let mut explorer = Explorer::new(sys);
    let report = explorer.run(config);
    let states: Vec<A::State> = explorer.states().to_vec();
    let index: HashMap<&A::State, usize> = states.iter().enumerate().map(|(k, s)| (s, k)).collect();

    // Build the reverse adjacency over the explored set. Edges leading out of
    // the explored set (possible only when a bound truncated exploration) are
    // ignored — soundness then depends on `exhaustive`, which we report.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
    for (from, state) in states.iter().enumerate() {
        for action in sys.enabled(state) {
            let next = sys.apply(state, &action);
            if let Some(&to) = index.get(&next) {
                reverse[to].push(from);
            }
        }
    }

    // Reverse BFS from all goal states.
    let mut co_reachable = vec![false; states.len()];
    let mut queue = VecDeque::new();
    let mut goal_states = 0usize;
    for (k, s) in states.iter().enumerate() {
        if goal(s) {
            goal_states += 1;
            co_reachable[k] = true;
            queue.push_back(k);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &prev in &reverse[cur] {
            if !co_reachable[prev] {
                co_reachable[prev] = true;
                queue.push_back(prev);
            }
        }
    }

    // BFS order ⇒ the first non-co-reachable state is shallowest.
    if let Some(k) = co_reachable.iter().position(|&ok| !ok) {
        let state = states[k].clone();
        let trace = explorer
            .trace_to(&state)
            .expect("explored states have traces");
        return Err(TrappedState { state, trace });
    }

    Ok(LivenessReport {
        states: states.len(),
        goal_states,
        exhaustive: report.outcome == ExploreOutcome::Complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::Counter;

    /// Increment, or fall into an absorbing pit from state 3.
    struct Pitfall;
    impl Dts for Pitfall {
        type State = u8;
        type Action = bool; // true = step, false = fall (only from 3)
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn enabled(&self, s: &u8) -> Vec<bool> {
            if *s == 3 {
                vec![true, false]
            } else {
                vec![true] // ordinary step, or the pit's self-loop
            }
        }
        fn apply(&self, s: &u8, a: &bool) -> u8 {
            match (s, a) {
                (99, _) => 99,
                (3, false) => 99,
                (s, _) => (s + 1) % 6,
            }
        }
    }

    #[test]
    fn cycle_is_always_live() {
        let sys = Counter { modulus: 5 };
        let r = check_possibly(&sys, |s| *s == 2, &ExploreConfig::default()).unwrap();
        assert_eq!(r.states, 5);
        assert_eq!(r.goal_states, 1);
        assert!(r.exhaustive);
    }

    #[test]
    fn pit_is_detected_with_shortest_trace() {
        let trap = check_possibly(&Pitfall, |s| *s == 0, &ExploreConfig::default())
            .expect_err("the pit can never reach 0 again");
        assert_eq!(trap.state, 99);
        // Shortest route into the pit: 0→1→2→3→99.
        assert_eq!(trap.trace.len(), 4);
        assert_eq!(trap.trace.validate(&Pitfall), Ok(()));
        assert!(format!("{trap:?}").contains("trapped"));
    }

    #[test]
    fn goal_inside_pit_is_fine() {
        // If the pit itself is a goal, everything stays live.
        let r =
            check_possibly(&Pitfall, |s| *s == 99 || *s == 0, &ExploreConfig::default()).unwrap();
        assert!(r.exhaustive);
        assert_eq!(r.goal_states, 2);
    }

    #[test]
    fn truncated_exploration_reports_non_exhaustive() {
        let sys = Counter { modulus: 100 };
        let r = check_possibly(
            &sys,
            |_| true,
            &ExploreConfig {
                max_states: 10,
                max_depth: usize::MAX,
            },
        )
        .unwrap();
        assert!(!r.exhaustive);
        assert_eq!(r.states, 10);
    }
}
