//! Bounded breadth-first state-space exploration.

use std::collections::{HashMap, VecDeque};

use crate::{Dts, Execution};

/// Resource bounds for exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Stop after this many distinct states have been expanded.
    pub max_states: usize,
    /// Do not expand states deeper than this many transitions from `Q₀`.
    pub max_depth: usize,
}

impl Default for ExploreConfig {
    /// Generous defaults for small protocol instances: one million states,
    /// unbounded-ish depth.
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        }
    }
}

/// Why exploration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every reachable state (within the depth bound, which was not hit) was
    /// visited: the reported set is the full reachable set.
    Complete,
    /// The state budget was exhausted; the reachable set may be larger.
    StateBudgetExhausted,
    /// Some states at the depth frontier were not expanded.
    DepthBounded,
}

/// Statistics from a reachability run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReachReport {
    /// Distinct states discovered.
    pub states: usize,
    /// Transitions fired.
    pub transitions: usize,
    /// Greatest depth at which a new state was discovered.
    pub max_depth_seen: usize,
    /// Why exploration ended.
    pub outcome: ExploreOutcome,
}

/// Breadth-first explorer over a [`Dts`], retaining predecessor links so any
/// discovered state can be explained by a shortest [`Execution`] from `Q₀`.
///
/// ```
/// use cellflow_dts::{Dts, ExploreConfig, Explorer, ExploreOutcome};
///
/// struct TwoBit;
/// impl Dts for TwoBit {
///     type State = u8;
///     type Action = u8;
///     fn initial_states(&self) -> Vec<u8> { vec![0] }
///     fn enabled(&self, _: &u8) -> Vec<u8> { vec![1, 2] }
///     fn apply(&self, s: &u8, a: &u8) -> u8 { (s + a) % 4 }
/// }
///
/// let mut ex = Explorer::new(&TwoBit);
/// let report = ex.run(&ExploreConfig::default());
/// assert_eq!(report.states, 4);
/// assert_eq!(report.outcome, ExploreOutcome::Complete);
/// assert_eq!(ex.trace_to(&3).unwrap().len(), 2); // 0 →1→ 1 →2→ 3 (shortest)
/// ```
pub struct Explorer<'a, A: Dts> {
    sys: &'a A,
    /// state → its index in `order` (and `meta`).
    seen: HashMap<A::State, usize>,
    /// Discovered states in BFS order — the single owned copy of each state;
    /// expansion and path reconstruction borrow from here instead of cloning.
    order: Vec<A::State>,
    /// Per-state metadata, indexed like `order`.
    meta: Vec<Meta<A>>,
}

struct Meta<A: Dts> {
    depth: usize,
    /// Predecessor state index + the action that led here; roots have `None`.
    pred: Option<(usize, A::Action)>,
}

impl<'a, A: Dts> Explorer<'a, A> {
    /// Creates an explorer for `sys`. No work happens until [`Explorer::run`].
    pub fn new(sys: &'a A) -> Explorer<'a, A> {
        Explorer {
            sys,
            seen: HashMap::new(),
            order: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Runs bounded BFS from `Q₀` and returns statistics.
    ///
    /// Calling `run` again re-explores from scratch.
    pub fn run(&mut self, config: &ExploreConfig) -> ReachReport {
        self.seen.clear();
        self.order.clear();
        self.meta.clear();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut transitions = 0usize;
        let mut max_depth_seen = 0usize;
        let mut outcome = ExploreOutcome::Complete;

        for s in self.sys.initial_states() {
            self.discover(s, 0, None, &mut queue);
        }

        'expand: while let Some(idx) = queue.pop_front() {
            let depth = self.meta[idx].depth;
            if depth >= config.max_depth {
                outcome = ExploreOutcome::DepthBounded;
                continue;
            }
            for action in self.sys.enabled(&self.order[idx]) {
                let next = self.sys.apply(&self.order[idx], &action);
                transitions += 1;
                if !self.seen.contains_key(&next) {
                    if self.order.len() >= config.max_states {
                        outcome = ExploreOutcome::StateBudgetExhausted;
                        break 'expand;
                    }
                    max_depth_seen = max_depth_seen.max(depth + 1);
                    self.discover(next, depth + 1, Some((idx, action)), &mut queue);
                }
            }
        }

        ReachReport {
            states: self.order.len(),
            transitions,
            max_depth_seen,
            outcome,
        }
    }

    fn discover(
        &mut self,
        state: A::State,
        depth: usize,
        pred: Option<(usize, A::Action)>,
        queue: &mut VecDeque<usize>,
    ) {
        if self.seen.contains_key(&state) {
            return;
        }
        let idx = self.order.len();
        self.order.push(state.clone());
        self.seen.insert(state, idx);
        self.meta.push(Meta { depth, pred });
        queue.push_back(idx);
    }

    /// All states discovered so far, in BFS order.
    pub fn states(&self) -> &[A::State] {
        &self.order
    }

    /// `true` if `state` has been discovered.
    pub fn contains(&self, state: &A::State) -> bool {
        self.seen.contains_key(state)
    }

    /// A shortest execution from an initial state to `state`, or `None` if
    /// `state` has not been discovered.
    pub fn trace_to(&self, state: &A::State) -> Option<Execution<A>> {
        // Walk predecessor links back to a root, collecting only indices —
        // each state on the path is cloned exactly once, when the execution
        // is assembled.
        let mut path: Vec<usize> = vec![*self.seen.get(state)?];
        while let Some((pidx, _)) = &self.meta[*path.last().expect("path is nonempty")].pred {
            path.push(*pidx);
        }
        path.reverse();
        let mut exec = Execution::new(self.order[path[0]].clone());
        for &idx in &path[1..] {
            let (_, action) = self.meta[idx]
                .pred
                .as_ref()
                .expect("non-root states have incoming actions");
            exec.push(action.clone(), self.order[idx].clone());
        }
        Some(exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::{Branching, Counter};

    #[test]
    fn explores_full_cycle() {
        let sys = Counter { modulus: 7 };
        let mut ex = Explorer::new(&sys);
        let r = ex.run(&ExploreConfig::default());
        assert_eq!(r.states, 7);
        assert_eq!(r.transitions, 7); // each state has one outgoing edge
        assert_eq!(r.outcome, ExploreOutcome::Complete);
        assert_eq!(r.max_depth_seen, 6);
        assert!(ex.contains(&6));
        assert!(!ex.contains(&7));
    }

    #[test]
    fn trace_is_shortest_and_valid() {
        let sys = Branching { m: 10 };
        let mut ex = Explorer::new(&sys);
        ex.run(&ExploreConfig::default());
        // 5 is reachable in 3 steps (2+2+1); BFS must find a 3-step trace.
        let t = ex.trace_to(&5).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(*t.first(), 0);
        assert_eq!(*t.last(), 5);
        assert_eq!(t.validate(&sys), Ok(()));
        assert!(ex.trace_to(&42).is_none());
    }

    #[test]
    fn state_budget_truncates() {
        let sys = Counter { modulus: 1000 };
        let mut ex = Explorer::new(&sys);
        let r = ex.run(&ExploreConfig {
            max_states: 10,
            max_depth: usize::MAX,
        });
        assert_eq!(r.states, 10);
        assert_eq!(r.outcome, ExploreOutcome::StateBudgetExhausted);
    }

    #[test]
    fn depth_bound_truncates() {
        let sys = Counter { modulus: 1000 };
        let mut ex = Explorer::new(&sys);
        let r = ex.run(&ExploreConfig {
            max_states: usize::MAX,
            max_depth: 5,
        });
        assert_eq!(r.states, 6); // depths 0..=5
        assert_eq!(r.outcome, ExploreOutcome::DepthBounded);
    }

    #[test]
    fn rerun_resets() {
        let sys = Counter { modulus: 4 };
        let mut ex = Explorer::new(&sys);
        ex.run(&ExploreConfig::default());
        let r2 = ex.run(&ExploreConfig::default());
        assert_eq!(r2.states, 4);
        assert_eq!(ex.states().len(), 4);
    }
}
