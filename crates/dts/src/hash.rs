//! Deterministic mixing and checksum primitives shared across the
//! workspace.
//!
//! Several subsystems need small, dependency-free deterministic hashes: the
//! restart supervisor's jitter, overload backoff, per-walk Monte-Carlo
//! seeds, per-edge chaos streams, and the FNV-1a seal on every checksummed
//! report and WAL frame. They all used to carry private copies of the same
//! two functions; this module is the single canonical implementation (this
//! crate has no dependencies, so everything in the workspace can reach it —
//! most code uses it through the `cellflow_core::hash` re-export).
//!
//! The streams are **frozen**: byte-identical reports per seed are a
//! workspace-wide contract, so the constants and update order here must
//! never change. `cellflow-core` pins them with stream-equality tests
//! against the historical per-site formulations.

/// The splitmix64 increment ("golden gamma", ⌊2⁶⁴/φ⌋ rounded to odd).
pub const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64: Steele, Lea & Flood's statistically strong 64-bit mixer —
/// the workspace's deterministic jitter/seed-derivation hash.
///
/// One full step of the splitmix64 generator: advance the state by
/// [`SPLITMIX64_GAMMA`], then finalize with the two multiply-xorshift
/// rounds. Feeding structured keys (cell coordinates, attempt counters)
/// yields well-distributed, schedule-independent values.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(SPLITMIX64_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives stream `index`'s private seed from a campaign seed: splitmix64
/// evaluated at the `index`-th gamma step. Used wherever parallel workers
/// (Monte-Carlo walks, sweep chunks) must each own a generator whose output
/// cannot depend on how many values other workers consumed.
pub fn walk_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed.wrapping_add((index as u64).wrapping_mul(SPLITMIX64_GAMMA)))
}

/// FNV-1a over `bytes` — the checksum sealing certificates, campaign
/// reports, and WAL frames. Not cryptographic; it detects accidental
/// corruption and pins byte-identical reports.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bytes of overhead per checksummed frame: a `u32` payload length plus a
/// `u64` FNV-1a checksum, both little-endian.
pub const FRAME_HEADER_LEN: usize = 12;

/// Appends one checksummed frame to `out`:
/// `[payload_len: u32 LE][fnv1a(payload): u64 LE][payload]`.
///
/// This is the framing the `cellflow-net` write-ahead log has used since
/// it existed; the byte layout is **frozen** (existing WAL files must keep
/// parsing) and pinned by stream-equality tests in `cellflow-core`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.reserve(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// [`append_frame`] into a fresh buffer.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    append_frame(&mut out, payload);
    out
}

/// Why [`next_frame`] stopped before a complete frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameTear {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remain: a torn header.
    Header,
    /// The header promises more payload bytes than the stream holds.
    Payload,
    /// The payload is complete but its FNV-1a checksum does not match.
    Checksum,
}

/// One step of frame-stream decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameStep<'a> {
    /// A complete, checksum-valid frame; `next` is the offset just past it.
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// `at` is exactly the end of the stream.
    End,
    /// The bytes at `offset` are not a complete valid frame. Append-only
    /// consumers (the WAL) treat this as a torn tail and truncate;
    /// whole-file consumers (flight recordings) report it as corruption.
    Torn {
        /// Offset of the torn frame's first byte.
        offset: usize,
        /// What was wrong with it.
        reason: FrameTear,
    },
}

/// Decodes the frame starting at byte `at` of `bytes`.
pub fn next_frame(bytes: &[u8], at: usize) -> FrameStep<'_> {
    if at >= bytes.len() {
        return FrameStep::End;
    }
    if bytes.len() - at < FRAME_HEADER_LEN {
        return FrameStep::Torn { offset: at, reason: FrameTear::Header };
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
    let Some(payload) = bytes.get(at + FRAME_HEADER_LEN..at + FRAME_HEADER_LEN + len) else {
        return FrameStep::Torn { offset: at, reason: FrameTear::Payload };
    };
    if fnv1a(payload) != crc {
        return FrameStep::Torn { offset: at, reason: FrameTear::Checksum };
    }
    FrameStep::Frame { payload, next: at + FRAME_HEADER_LEN + len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // First three outputs of the splitmix64 generator seeded with 0,
        // per the reference implementation (Vigna's xoshiro page).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            splitmix64(SPLITMIX64_GAMMA),
            0x6E78_9E6A_A1B9_65F4,
        );
        assert_eq!(
            splitmix64(SPLITMIX64_GAMMA.wrapping_mul(2)),
            0x06C4_5D18_8009_454F,
        );
    }

    #[test]
    fn walk_seed_is_the_indexed_gamma_step() {
        for seed in [0u64, 1, 0x5EED, u64::MAX] {
            for walk in [0usize, 1, 7, 1000] {
                assert_eq!(
                    walk_seed(seed, walk),
                    splitmix64(seed.wrapping_add((walk as u64).wrapping_mul(SPLITMIX64_GAMMA)))
                );
            }
        }
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_layout_is_len_crc_payload() {
        let f = frame(b"hello");
        assert_eq!(f.len(), FRAME_HEADER_LEN + 5);
        assert_eq!(&f[..4], &5u32.to_le_bytes());
        assert_eq!(&f[4..12], &fnv1a(b"hello").to_le_bytes());
        assert_eq!(&f[12..], b"hello");
    }

    #[test]
    fn next_frame_round_trips_a_stream() {
        let mut stream = Vec::new();
        append_frame(&mut stream, b"one");
        append_frame(&mut stream, b"");
        append_frame(&mut stream, b"three");
        let mut at = 0;
        let mut seen: Vec<Vec<u8>> = Vec::new();
        loop {
            match next_frame(&stream, at) {
                FrameStep::Frame { payload, next } => {
                    seen.push(payload.to_vec());
                    at = next;
                }
                FrameStep::End => break,
                FrameStep::Torn { .. } => panic!("clean stream reported torn"),
            }
        }
        assert_eq!(seen, vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()]);
    }

    #[test]
    fn next_frame_classifies_tears() {
        let clean = frame(b"payload");
        // Torn header: fewer than 12 bytes remain.
        assert_eq!(
            next_frame(&clean[..7], 0),
            FrameStep::Torn { offset: 0, reason: FrameTear::Header }
        );
        // Torn payload: header promises more bytes than the stream holds.
        assert_eq!(
            next_frame(&clean[..clean.len() - 1], 0),
            FrameStep::Torn { offset: 0, reason: FrameTear::Payload }
        );
        // Corrupted payload: checksum mismatch.
        let mut flipped = clean.clone();
        *flipped.last_mut().unwrap() ^= 0xFF;
        assert_eq!(
            next_frame(&flipped, 0),
            FrameStep::Torn { offset: 0, reason: FrameTear::Checksum }
        );
        // The tear offset names the bad frame, not the stream start.
        let mut stream = frame(b"good");
        let start = stream.len();
        stream.extend_from_slice(&flipped);
        let FrameStep::Frame { next, .. } = next_frame(&stream, 0) else {
            panic!("first frame is clean");
        };
        assert_eq!(
            next_frame(&stream, next),
            FrameStep::Torn { offset: start, reason: FrameTear::Checksum }
        );
    }
}
