//! Deterministic mixing and checksum primitives shared across the
//! workspace.
//!
//! Several subsystems need small, dependency-free deterministic hashes: the
//! restart supervisor's jitter, overload backoff, per-walk Monte-Carlo
//! seeds, per-edge chaos streams, and the FNV-1a seal on every checksummed
//! report and WAL frame. They all used to carry private copies of the same
//! two functions; this module is the single canonical implementation (this
//! crate has no dependencies, so everything in the workspace can reach it —
//! most code uses it through the `cellflow_core::hash` re-export).
//!
//! The streams are **frozen**: byte-identical reports per seed are a
//! workspace-wide contract, so the constants and update order here must
//! never change. `cellflow-core` pins them with stream-equality tests
//! against the historical per-site formulations.

/// The splitmix64 increment ("golden gamma", ⌊2⁶⁴/φ⌋ rounded to odd).
pub const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64: Steele, Lea & Flood's statistically strong 64-bit mixer —
/// the workspace's deterministic jitter/seed-derivation hash.
///
/// One full step of the splitmix64 generator: advance the state by
/// [`SPLITMIX64_GAMMA`], then finalize with the two multiply-xorshift
/// rounds. Feeding structured keys (cell coordinates, attempt counters)
/// yields well-distributed, schedule-independent values.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(SPLITMIX64_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives stream `index`'s private seed from a campaign seed: splitmix64
/// evaluated at the `index`-th gamma step. Used wherever parallel workers
/// (Monte-Carlo walks, sweep chunks) must each own a generator whose output
/// cannot depend on how many values other workers consumed.
pub fn walk_seed(seed: u64, index: usize) -> u64 {
    splitmix64(seed.wrapping_add((index as u64).wrapping_mul(SPLITMIX64_GAMMA)))
}

/// FNV-1a over `bytes` — the checksum sealing certificates, campaign
/// reports, and WAL frames. Not cryptographic; it detects accidental
/// corruption and pins byte-identical reports.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // First three outputs of the splitmix64 generator seeded with 0,
        // per the reference implementation (Vigna's xoshiro page).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(
            splitmix64(SPLITMIX64_GAMMA),
            0x6E78_9E6A_A1B9_65F4,
        );
        assert_eq!(
            splitmix64(SPLITMIX64_GAMMA.wrapping_mul(2)),
            0x06C4_5D18_8009_454F,
        );
    }

    #[test]
    fn walk_seed_is_the_indexed_gamma_step() {
        for seed in [0u64, 1, 0x5EED, u64::MAX] {
            for walk in [0usize, 1, 7, 1000] {
                assert_eq!(
                    walk_seed(seed, walk),
                    splitmix64(seed.wrapping_add((walk as u64).wrapping_mul(SPLITMIX64_GAMMA)))
                );
            }
        }
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
