//! Recorded executions.

use core::fmt;

use crate::Dts;

/// A finite execution fragment `x₀ —a₀→ x₁ —a₁→ … —aₖ₋₁→ xₖ`.
///
/// Holds `k + 1` states and `k` actions. Produced by the model checker as a
/// counterexample trace, and usable to replay/validate runs.
#[derive(Clone)]
pub struct Execution<A: Dts> {
    states: Vec<A::State>,
    actions: Vec<A::Action>,
}

impl<A: Dts> Execution<A> {
    /// An execution consisting of the single state `start` and no transitions.
    pub fn new(start: A::State) -> Execution<A> {
        Execution {
            states: vec![start],
            actions: Vec::new(),
        }
    }

    /// Appends a transition. The caller asserts `state = apply(last, action)`.
    pub fn push(&mut self, action: A::Action, state: A::State) {
        self.actions.push(action);
        self.states.push(state);
    }

    /// The states visited, in order.
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// The actions fired, in order.
    pub fn actions(&self) -> &[A::Action] {
        &self.actions
    }

    /// The first state.
    pub fn first(&self) -> &A::State {
        &self.states[0]
    }

    /// The last state.
    pub fn last(&self) -> &A::State {
        self.states.last().expect("executions are nonempty")
    }

    /// Number of transitions (`states().len() − 1`).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if no transition has been recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Re-runs the execution through `sys`, checking every step against
    /// [`Dts::apply`]. Returns the index of the first inconsistent step.
    ///
    /// # Errors
    ///
    /// `Err(k)` if step `k`'s recorded post-state differs from
    /// `sys.apply(states[k], actions[k])`.
    pub fn validate(&self, sys: &A) -> Result<(), usize> {
        for k in 0..self.len() {
            if sys.apply(&self.states[k], &self.actions[k]) != self.states[k + 1] {
                return Err(k);
            }
        }
        Ok(())
    }
}

impl<A: Dts> fmt::Debug for Execution<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Execution ({} steps):", self.len())?;
        for (k, s) in self.states.iter().enumerate() {
            writeln!(f, "  x{k} = {s:?}")?;
            if k < self.actions.len() {
                writeln!(f, "  --{:?}-->", self.actions[k])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::toys::Counter;

    #[test]
    fn build_and_inspect() {
        let sys = Counter { modulus: 3 };
        let mut exec: Execution<Counter> = Execution::new(0);
        assert!(exec.is_empty());
        exec.push((), 1);
        exec.push((), 2);
        exec.push((), 0);
        assert_eq!(exec.len(), 3);
        assert_eq!(*exec.first(), 0);
        assert_eq!(*exec.last(), 0);
        assert_eq!(exec.states(), &[0, 1, 2, 0]);
        assert_eq!(exec.actions().len(), 3);
        assert_eq!(exec.validate(&sys), Ok(()));
    }

    #[test]
    fn validate_catches_corruption() {
        let sys = Counter { modulus: 3 };
        let mut exec: Execution<Counter> = Execution::new(0);
        exec.push((), 1);
        exec.push((), 1); // wrong: should be 2
        assert_eq!(exec.validate(&sys), Err(1));
    }

    #[test]
    fn debug_output_lists_states() {
        let mut exec: Execution<Counter> = Execution::new(0);
        exec.push((), 1);
        let s = format!("{exec:?}");
        assert!(s.contains("x0 = 0"));
        assert!(s.contains("x1 = 1"));
    }
}
