//! The discrete transition system trait.

use core::fmt::Debug;
use core::hash::Hash;

/// A discrete transition system `⟨X, Q₀, A, →⟩` (paper, Section II).
///
/// * `val(X)` — the set of states — is [`Dts::State`];
/// * `Q₀ ⊆ val(X)` is [`Dts::initial_states`];
/// * `A` is [`Dts::Action`];
/// * `→ ⊆ val(X) × A × val(X)` is given by [`Dts::enabled`] (which actions can
///   fire in a state) together with [`Dts::apply`] (the unique post-state of an
///   enabled action — per-action determinism; nondeterminism is expressed by
///   *multiple* enabled actions).
///
/// States must be `Eq + Hash` so the model checker can deduplicate them; this
/// is why the protocol crates use exact fixed-point coordinates rather than
/// floating point.
pub trait Dts {
    /// A valuation of the system's variables.
    type State: Clone + Eq + Hash + Debug;
    /// A transition name.
    type Action: Clone + Debug;

    /// The set of start states `Q₀`.
    fn initial_states(&self) -> Vec<Self::State>;

    /// The actions enabled in `state`. An empty vector means `state` is
    /// terminal (deadlocked).
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;

    /// The post-state of firing `action` in `state`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `action` is not enabled in `state`.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;
}

#[cfg(test)]
pub(crate) mod toys {
    //! Tiny systems shared across this crate's tests.

    use super::Dts;

    /// Counts 0, 1, …, modulus−1, 0, … .
    pub struct Counter {
        pub modulus: u32,
    }

    impl Dts for Counter {
        type State = u32;
        type Action = ();

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn enabled(&self, _: &u32) -> Vec<()> {
            vec![()]
        }

        fn apply(&self, s: &u32, _: &()) -> u32 {
            (s + 1) % self.modulus
        }
    }

    /// Dijkstra-style token ring used to exercise stabilization checking:
    /// from any configuration of `n` binary flags, the rule "flip the first
    /// flag that differs from its left neighbor (or flag 0 if all equal)"
    /// eventually reaches the all-equal configurations and stays legal.
    pub struct FlipChain {
        pub n: usize,
    }

    impl FlipChain {
        pub fn all_states(&self) -> Vec<Vec<bool>> {
            (0..(1u32 << self.n))
                .map(|bits| (0..self.n).map(|k| bits & (1 << k) != 0).collect())
                .collect()
        }
    }

    impl Dts for FlipChain {
        type State = Vec<bool>;
        type Action = ();

        fn initial_states(&self) -> Vec<Vec<bool>> {
            self.all_states()
        }

        fn enabled(&self, _: &Vec<bool>) -> Vec<()> {
            vec![()]
        }

        fn apply(&self, s: &Vec<bool>, _: &()) -> Vec<bool> {
            let mut out = s.clone();
            for k in 1..self.n {
                if out[k] != out[k - 1] {
                    out[k] = out[k - 1];
                    return out;
                }
            }
            out
        }
    }

    /// A system with genuine branching: at each step, add 1 or 2 (mod `m`).
    pub struct Branching {
        pub m: u32,
    }

    impl Dts for Branching {
        type State = u32;
        type Action = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn enabled(&self, _: &u32) -> Vec<u32> {
            vec![1, 2]
        }

        fn apply(&self, s: &u32, a: &u32) -> u32 {
            (s + a) % self.m
        }
    }
}
