//! Edge cases of the `Signal`/`Move` interplay that the paper's prose leaves
//! implicit: stale tokens, failed token holders, grants to cells that cannot
//! use them, and saturation corner cases.

use cellflow_core::{route_phase, signal_phase, update, EntityId, Params, System, SystemConfig};
use cellflow_geom::{Fixed, Point};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;

fn params() -> Params {
    Params::from_milli(250, 50, 100).unwrap()
}

fn config() -> SystemConfig {
    SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params()).unwrap()
}

fn pt(xm: i64, ym: i64) -> Point {
    Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym))
}

/// A token pointing at a neighbor that has since emptied (stale token) still
/// produces a grant — wasted for one round — and then rotates onto the real
/// contender (the paper's lines 10–12 fix staleness lazily).
#[test]
fn stale_token_wastes_one_grant_then_rotates() {
    let cfg = config();
    let dims = cfg.dims();
    let mut s = cfg.initial_state();
    for _ in 0..6 {
        s = route_phase(&cfg, &s);
    }
    let mid = CellId::new(1, 1);
    // Two historical contenders; the token sits on ⟨1,0⟩ which is now empty,
    // while ⟨0,1⟩ holds an entity and routes through mid.
    s.cell_mut(dims, mid).token = Some(CellId::new(1, 0));
    s.cell_mut(dims, CellId::new(0, 1)).next = Some(mid);
    s.cell_mut(dims, CellId::new(0, 1))
        .members
        .insert(EntityId(0), pt(500, 1_500));

    let s2 = signal_phase(&cfg, &s, 0);
    // Wasted grant: the stale holder is granted (its strip is free) …
    assert_eq!(s2.cell(dims, mid).signal, Some(CellId::new(1, 0)));
    // … but the rotation lands on the live contender for the next round.
    assert_eq!(s2.cell(dims, mid).token, Some(CellId::new(0, 1)));
    assert_eq!(
        s2.cell(dims, mid)
            .ne_prev
            .iter()
            .copied()
            .collect::<Vec<_>>(),
        vec![CellId::new(0, 1)]
    );
}

/// A failed neighbor never appears in `NEPrev` (its `next` is `⊥`), so the
/// token cannot be newly assigned to it.
#[test]
fn failed_neighbors_never_enter_ne_prev() {
    let cfg = config();
    let dims = cfg.dims();
    let mut s = cfg.initial_state();
    for _ in 0..6 {
        s = route_phase(&cfg, &s);
    }
    let mid = CellId::new(1, 1);
    // ⟨0,1⟩ has an entity and routed through mid — then crashes.
    s.cell_mut(dims, CellId::new(0, 1)).next = Some(mid);
    s.cell_mut(dims, CellId::new(0, 1))
        .members
        .insert(EntityId(0), pt(500, 1_500));
    s.fail(dims, CellId::new(0, 1));
    let s2 = signal_phase(&cfg, &s, 0);
    assert!(s2.cell(dims, mid).ne_prev.is_empty());
    assert_eq!(s2.cell(dims, mid).signal, None);
}

/// A grant to a cell whose own `next` changed away this round is simply
/// unused: the grantee moves only toward its `next`, and only when that
/// specific cell granted it.
#[test]
fn unused_grants_move_nothing() {
    let cfg = config();
    let dims = cfg.dims();
    let mut s = cfg.initial_state();
    let a = CellId::new(0, 1);
    let mid = CellId::new(1, 1);
    // mid grants a, but a's next points elsewhere (south, say).
    s.cell_mut(dims, a).next = Some(CellId::new(0, 0));
    s.cell_mut(dims, a)
        .members
        .insert(EntityId(0), pt(500, 1_500));
    s.cell_mut(dims, mid).signal = Some(a);
    let out = cellflow_core::move_phase(&cfg, &s);
    assert!(
        out.moved.is_empty(),
        "a grant toward the wrong next must not move"
    );
    assert_eq!(
        out.state.cell(dims, a).members[&EntityId(0)],
        pt(500, 1_500)
    );
}

/// Entities wider apart than `d` on the motion axis cannot both cross in one
/// round (the double-crossing analysis inside Theorem 5's proof): the
/// follower always needs at least one more round.
#[test]
fn double_crossing_requires_axis_closeness() {
    let cfg = config();
    let dims = cfg.dims();
    let mut s = cfg.initial_state();
    let a = CellId::new(0, 1);
    let mid = CellId::new(1, 1);
    s.cell_mut(dims, a).next = Some(mid);
    // Leader flush at the margin, follower exactly d behind.
    s.cell_mut(dims, a)
        .members
        .insert(EntityId(0), pt(875, 1_500));
    s.cell_mut(dims, a)
        .members
        .insert(EntityId(1), pt(575, 1_500));
    s.cell_mut(dims, mid).signal = Some(a);
    let out = cellflow_core::move_phase(&cfg, &s);
    let crossed: Vec<EntityId> = out.transfers.iter().map(|t| t.entity).collect();
    assert_eq!(crossed, vec![EntityId(0)], "only the leader crosses");
    assert_eq!(out.state.cell(dims, a).members.len(), 1);
}

/// With the distance cap forced to its minimum legal value, routing on a
/// fully connected grid still behaves exactly as with the default cap.
#[test]
fn minimal_dist_cap_is_transparent_when_connected() {
    let dims = GridDims::square(3);
    let base = SystemConfig::new(dims, CellId::new(2, 1), params()).unwrap();
    let capped = SystemConfig::new(dims, CellId::new(2, 1), params())
        .unwrap()
        .with_dist_cap(dims.cell_count() as u32);
    let mut a = System::new(base);
    let mut b = System::new(capped);
    for _ in 0..20 {
        a.step();
        b.step();
        for id in dims.iter() {
            assert_eq!(a.cell(id).dist, b.cell(id).dist, "{id}");
            assert_eq!(a.cell(id).next, b.cell(id).next, "{id}");
        }
    }
}

/// The target's variables are never touched by update: dist stays 0, next
/// stays ⊥, even while it grants and consumes.
#[test]
fn target_variables_are_pinned() {
    let cfg = SystemConfig::new(GridDims::new(4, 1), CellId::new(3, 0), params())
        .unwrap()
        .with_source(CellId::new(0, 0));
    let mut sys = System::new(cfg);
    for _ in 0..120 {
        sys.step();
        let t = sys.cell(CellId::new(3, 0));
        assert_eq!(t.dist, Dist::Finite(0));
        assert_eq!(t.next, None);
        assert!(t.members.is_empty(), "the target consumes instantly");
    }
    assert!(sys.consumed_total() > 0);
}

/// Two sources inserting in the same round mint distinct, ordered ids
/// (BTreeSet iteration order of `SID`).
#[test]
fn simultaneous_insertions_mint_ordered_ids() {
    let cfg = SystemConfig::new(GridDims::new(3, 2), CellId::new(2, 0), params())
        .unwrap()
        .with_source(CellId::new(0, 0))
        .with_source(CellId::new(0, 1));
    let (_, events) = update(&cfg, &cfg.initial_state(), 0);
    assert_eq!(events.inserted.len(), 2);
    assert_eq!(events.inserted[0], (CellId::new(0, 0), EntityId(0)));
    assert_eq!(events.inserted[1], (CellId::new(0, 1), EntityId(1)));
}

/// Re-failing a failed cell and re-recovering a live one are harmless no-ops.
#[test]
fn fail_recover_idempotence() {
    let cfg = config();
    let mut sys = System::new(cfg);
    sys.run(5);
    let victim = CellId::new(1, 1);
    sys.fail(victim);
    let snap = sys.state().clone();
    sys.fail(victim);
    assert_eq!(sys.state(), &snap);
    sys.recover(victim);
    let snap = sys.state().clone();
    sys.recover(victim);
    assert_eq!(sys.state(), &snap);
}
