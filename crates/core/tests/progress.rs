//! Progress and stabilization of the full protocol: Lemma 6 / Corollary 7
//! (routing fixes itself after failures cease) and Theorem 10 (every entity on
//! a target-connected cell is eventually consumed).

use cellflow_core::{analysis, safety, Params, SourcePolicy, System, SystemConfig, TokenPolicy};
use cellflow_geom::Dir;
use cellflow_grid::{CellId, GridDims, Path};

fn paper_params() -> Params {
    Params::from_milli(250, 50, 200).unwrap()
}

/// The paper's Figure 7 setup: 8×8 grid, source ⟨1,0⟩, target ⟨1,7⟩.
fn fig7_config() -> SystemConfig {
    SystemConfig::new(GridDims::square(8), CellId::new(1, 7), paper_params())
        .unwrap()
        .with_source(CellId::new(1, 0))
}

#[test]
fn routing_stabilizes_within_o_n_squared_after_churn() {
    let mut sys = System::new(fig7_config());
    // Churn: fail and recover a batch of cells while running.
    let victims = [
        CellId::new(1, 3),
        CellId::new(2, 3),
        CellId::new(0, 3),
        CellId::new(4, 4),
    ];
    for (k, v) in victims.iter().enumerate() {
        sys.fail(*v);
        sys.run(k as u64 + 1);
    }
    for v in &victims[..2] {
        sys.recover(*v);
        sys.run(1);
    }
    // Corollary 7: within O(N²) rounds of the last fail/recover, routing is
    // exact for the live topology.
    let bound = 2 * sys.config().dims().cell_count() as u64 + 2;
    sys.run(bound);
    assert!(analysis::routing_stabilized(sys.config(), sys.state()));
}

#[test]
fn theorem10_entities_reach_target_after_failures_cease() {
    let mut sys = System::new(fig7_config());
    sys.run(20); // routing stable, traffic flowing
                 // Cut the straight path; traffic must reroute around the hole.
    sys.fail(CellId::new(1, 4));
    sys.run(30);
    // Failures cease here. Stop the source so the system can drain.
    let drained_cfg = fig7_config().with_source_policy(SourcePolicy::Disabled);
    let mut drain = System::new(drained_cfg);
    drain.set_state(sys.state().clone());
    // Every in-flight entity is on a target-connected cell (the failed cell
    // holds none: it failed after its members left… verify, then drain).
    let stuck = sys
        .state()
        .cell(sys.config().dims(), CellId::new(1, 4))
        .members
        .len();
    let connected_entities = analysis::entities_on_tc(drain.config(), drain.state());
    assert_eq!(
        connected_entities + stuck,
        drain.state().entity_count(),
        "every live entity is connected or stuck on the failed cell"
    );
    // Theorem 10: all connected entities are eventually consumed.
    let mut rounds = 0u64;
    while analysis::entities_on_tc(drain.config(), drain.state()) > 0 {
        drain.step();
        rounds += 1;
        assert!(
            rounds < 5_000,
            "{} entities still in flight after {rounds} rounds",
            analysis::entities_on_tc(drain.config(), drain.state())
        );
    }
    assert!(safety::check_safe(drain.config(), drain.state()).is_ok());
}

#[test]
fn entities_walled_off_never_progress_but_safety_holds() {
    let mut sys = System::new(fig7_config());
    sys.run(12);
    // Build a wall isolating the bottom-left quadrant (including the source).
    for i in 0..8 {
        sys.fail(CellId::new(i, 2));
    }
    let before = analysis::entities_on_tc(sys.config(), sys.state());
    sys.run(100);
    // Disconnected entities stay put; no safety violation anywhere.
    assert!(safety::check_safe(sys.config(), sys.state()).is_ok());
    assert!(analysis::routing_stabilized(sys.config(), sys.state()));
    let after = analysis::entities_on_tc(sys.config(), sys.state());
    assert_eq!(after, 0, "connected side drained: {before} → {after}");
    // The isolated side still holds entities (the source kept inserting while
    // its region was disconnected — they have nowhere to go).
    assert!(sys.state().entity_count() > 0);
}

#[test]
fn progress_along_carved_turning_path() {
    // Pin the flow to a 2-turn path by failing everything else (the Fig. 8
    // scenario shape) and check entities traverse every turn.
    let dims = GridDims::square(8);
    let path = Path::with_turns(dims, CellId::new(0, 0), 8, 2).unwrap();
    let cfg = SystemConfig::new(dims, *path.target(), paper_params())
        .unwrap()
        .with_source(*path.source());
    let mut sys = System::new(cfg);
    for c in path.carve_failures(dims) {
        sys.fail(c);
    }
    let mut consumed = 0;
    for _ in 0..600 {
        consumed += sys.step().consumed.len();
    }
    assert!(
        consumed > 5,
        "only {consumed} entities traversed the turning path"
    );
    assert!(safety::check_safe(sys.config(), sys.state()).is_ok());
}

#[test]
fn fixed_priority_policy_starves_one_source() {
    // Ablation: two flows merging into one cell. With RoundRobin both make
    // progress; with FixedPriority the higher-id flow starves.
    let dims = GridDims::new(3, 3);
    let target = CellId::new(2, 1);
    let merge = CellId::new(1, 1);
    let build = |policy: TokenPolicy| {
        let cfg = SystemConfig::new(dims, target, paper_params())
            .unwrap()
            .with_source(CellId::new(0, 1)) // flows east through merge
            .with_source(CellId::new(1, 0)) // flows north through merge
            .with_token_policy(policy);
        System::new(cfg)
    };

    let count_consumed = |sys: &mut System, rounds: u64| {
        let mut per_round_members_low = 0u64;
        for _ in 0..rounds {
            sys.step();
            if !sys.cell(CellId::new(1, 0)).members.is_empty() {
                per_round_members_low += 1;
            }
        }
        per_round_members_low
    };

    let mut fair = build(TokenPolicy::RoundRobin);
    let mut unfair = build(TokenPolicy::FixedPriority);
    let _ = count_consumed(&mut fair, 400);
    let _ = count_consumed(&mut unfair, 400);
    // Under fixed priority, ⟨1,0⟩ (larger id than ⟨0,1⟩) never gets the merge
    // cell's grant, so its entity population never drains to empty for long.
    let fair_stuck = fair.cell(CellId::new(1, 0)).members.len();
    let unfair_stuck = unfair.cell(CellId::new(1, 0)).members.len();
    assert!(
        unfair_stuck >= fair_stuck,
        "expected starvation under FixedPriority: fair={fair_stuck} unfair={unfair_stuck}"
    );
    // And the fair system consumed strictly more from the starved flow's side.
    assert!(fair.consumed_total() > 0);
    // Sanity: the merge cell exists on both routes.
    assert_eq!(merge.dir_to(target), Some(Dir::East));
}
