//! Mechanized counterparts of the paper's supporting lemmas, checked on
//! randomized reachable states — the proof obligations of Section III as
//! executable tests.

use cellflow_core::{
    analysis, gap_free_toward, move_phase, route_phase, signal_phase, update, Params, System,
    SystemConfig,
};
use cellflow_geom::{Dir, Fixed, Point};
use cellflow_grid::{CellId, GridDims};
use proptest::prelude::*;

fn paper_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).unwrap(),
    )
    .unwrap()
    .with_source(CellId::new(1, 0))
}

/// Lemma 4, synthetic: whenever two adjacent cells hold mutually-granting
/// signals with positions satisfying `H` on both sides (the only reachable
/// way mutual grants arise — Lemma 3), the round's `Move` produces **no
/// transfer between them**, for arbitrary `H`-respecting positions.
#[test]
fn lemma4_mutual_signals_never_transfer() {
    let cfg = paper_config(4);
    let dims = cfg.dims();
    let d = cfg.params().d();
    let h = cfg.params().half_l();
    let a = CellId::new(1, 1);
    let b = CellId::new(2, 1);

    let mut runner = proptest::test_runner::TestRunner::default();
    // a's entity: x within [1 + h, 2 − d − h] (H toward b), y anywhere valid.
    let lo_ax = (Fixed::from_int(1) + h).raw();
    let hi_ax = (Fixed::from_int(2) - d - h).raw();
    let lo_bx = (Fixed::from_int(2) + d + h).raw();
    let hi_bx = (Fixed::from_int(3) - h).raw();
    let lo_y = (Fixed::from_int(1) + h).raw();
    let hi_y = (Fixed::from_int(2) - h).raw();
    runner
        .run(
            &(lo_ax..=hi_ax, lo_bx..=hi_bx, lo_y..=hi_y, lo_y..=hi_y),
            |(ax, bx, ay, by)| {
                let mut s = cfg.initial_state();
                s.cell_mut(dims, a).next = Some(b);
                s.cell_mut(dims, b).next = Some(a);
                s.cell_mut(dims, a).signal = Some(b);
                s.cell_mut(dims, b).signal = Some(a);
                s.cell_mut(dims, a).members.insert(
                    cellflow_core::EntityId(0),
                    Point::new(Fixed::from_raw(ax), Fixed::from_raw(ay)),
                );
                s.cell_mut(dims, b).members.insert(
                    cellflow_core::EntityId(1),
                    Point::new(Fixed::from_raw(bx), Fixed::from_raw(by)),
                );
                let out = move_phase(&cfg, &s);
                prop_assert!(
                    out.transfers.is_empty() && out.consumed.is_empty(),
                    "Lemma 4 violated: {:?}",
                    out.transfers
                );
                // Both cells kept their members (identity, new positions).
                prop_assert_eq!(out.state.cell(dims, a).members.len(), 1);
                prop_assert_eq!(out.state.cell(dims, b).members.len(), 1);
                Ok(())
            },
        )
        .unwrap();
}

/// Lemma 8: in any reachable state where a cell is granted permission, every
/// entity that stays on the cell (or transfers to `next`) gets strictly
/// closer to `next`'s cell center along the motion axis.
#[test]
fn lemma8_granted_movement_makes_progress() {
    let mut sys = System::new(paper_config(6));
    for round in 0..400u64 {
        // Inject occasional failures to diversify reachable states.
        if round == 120 {
            sys.fail(CellId::new(1, 3));
        }
        if round == 240 {
            sys.recover(CellId::new(1, 3));
        }
        let before = sys.state().clone();
        let ev = sys.step();
        let dims = sys.config().dims();
        for &mover in &ev.moved {
            // Move acts on the `next` computed by Route within the same
            // round; that value persists into the post-step state.
            let next = sys.state().cell(dims, mover).next;
            let Some(next) = next else { continue };
            let target_center = next.center();
            for (eid, &old_pos) in &before.cell(dims, mover).members {
                // Where is it now? Same cell, next cell, or consumed.
                let new_pos = sys
                    .state()
                    .cell(dims, mover)
                    .members
                    .get(eid)
                    .or_else(|| sys.state().cell(dims, next).members.get(eid));
                if let Some(&new_pos) = new_pos {
                    assert!(
                        new_pos.manhattan(target_center) < old_pos.manhattan(target_center),
                        "round {round}: {eid} on {mover} did not progress toward {next}"
                    );
                }
            }
        }
    }
}

/// Lemma 9's fairness core, bounded: once routing is stable and failures have
/// ceased, every cell that stays nonempty receives a grant within a bounded
/// number of rounds (each cell has ≤ 3 contenders after stabilization, and
/// blocked strips drain by induction — we check a generous bound).
#[test]
fn lemma9_nonempty_cells_granted_within_bound() {
    let mut sys = System::new(paper_config(8));
    sys.run(20); // stabilize and fill
    let dims = sys.config().dims();
    let bound = 40u64; // generous vs. the ~4-round argument in the paper
    let mut waiting: std::collections::HashMap<CellId, u64> = Default::default();
    for round in 0..600u64 {
        let ev = sys.step();
        let granted: std::collections::HashSet<CellId> =
            ev.grants.iter().map(|&(_, grantee)| grantee).collect();
        for id in dims.iter() {
            let cell = sys.state().cell(dims, id);
            if cell.members.is_empty() || cell.next.is_none() {
                waiting.remove(&id);
                continue;
            }
            if granted.contains(&id) {
                waiting.remove(&id);
            } else {
                let w = waiting.entry(id).or_insert(0);
                *w += 1;
                assert!(
                    *w <= bound,
                    "round {round}: nonempty cell {id} ungranted for {w} rounds"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 3, randomized: H(Signal(Route(x))) for states x sampled from
    /// random prefixes of random executions (with failures).
    #[test]
    fn lemma3_h_after_signal(seed in any::<u64>(), prefix in 0u64..80, fail_round in 0u64..40) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sys = System::new(paper_config(5));
        for round in 0..prefix {
            if round == fail_round {
                let victim = CellId::new(rng.gen_range(0..5), rng.gen_range(0..5));
                sys.fail(victim);
            }
            sys.step();
        }
        let routed = route_phase(sys.config(), sys.state());
        let signaled = signal_phase(sys.config(), &routed, prefix);
        prop_assert!(cellflow_core::safety::check_h(sys.config(), &signaled).is_ok());
    }

    /// The gap check is exactly the transfer-safety condition: if a strip is
    /// free and an entity enters flush at that edge, it is d-separated from
    /// every resident along the entry axis.
    #[test]
    fn gap_check_implies_entry_separation(
        x_milli in 1_125i64..=1_875,
        y_milli in 1_125i64..=1_875,
    ) {
        let cfg = paper_config(4);
        let id = CellId::new(1, 1);
        let resident = Point::new(Fixed::from_milli(x_milli), Fixed::from_milli(y_milli));
        let h = cfg.params().half_l();
        let d = cfg.params().d();
        for dir in [Dir::East, Dir::West, Dir::North, Dir::South] {
            let strip_free = gap_free_toward(cfg.params(), id, dir, [&resident]);
            // A newcomer flush at that boundary:
            let entry = id.boundary(dir) - h * dir.sign();
            let newcomer = resident.with_along(dir.axis(), entry);
            let sep = (newcomer.along(dir.axis()) - resident.along(dir.axis())).abs();
            if strip_free {
                prop_assert!(sep >= d, "{dir}: strip free but separation {sep} < d");
            }
        }
    }

    /// Theorem 5 under churn: already covered by safety_props, re-checked
    /// here through full `update` composition with the intermediate phases
    /// exposed (route → signal → move equals update).
    #[test]
    fn update_equals_phase_composition(seed in any::<u64>(), rounds in 1u64..40) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = paper_config(4);
        let mut state = cfg.initial_state();
        for round in 0..rounds {
            if rng.gen_bool(0.1) {
                state.fail(cfg.dims(), CellId::new(rng.gen_range(0..4), rng.gen_range(0..4)));
            }
            let (via_update, _) = update(&cfg, &state, round);
            let composed =
                move_phase(&cfg, &signal_phase(&cfg, &route_phase(&cfg, &state), round)).state;
            prop_assert_eq!(&via_update, &composed);
            state = via_update;
        }
    }

    /// Corollary 7 at the system level: after a random batch of failures,
    /// 2·N²+2 update rounds re-stabilize routing.
    #[test]
    fn corollary7_system_level(seed in any::<u64>(), nfail in 0usize..6) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sys = System::new(paper_config(5));
        sys.run(10);
        for _ in 0..nfail {
            let victim = CellId::new(rng.gen_range(0..5), rng.gen_range(0..5));
            if victim != sys.config().target() {
                sys.fail(victim);
            }
        }
        sys.run(2 * 25 + 2);
        prop_assert!(analysis::routing_stabilized(sys.config(), sys.state()));
    }
}
