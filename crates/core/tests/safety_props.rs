//! Property-based tests of the protocol's safety guarantees (Theorem 5,
//! Invariants 1–2, predicate H / Lemma 3) under randomized parameters,
//! topologies, failure schedules, and token policies.

use cellflow_core::{route_phase, safety, signal_phase, Params, System, SystemConfig, TokenPolicy};
use cellflow_grid::{CellId, GridDims};
use proptest::prelude::*;

/// Random valid parameter sets, including the paper's corner case v = l.
fn params() -> impl Strategy<Value = Params> {
    (50i64..=400, 0i64..=300, prop::bool::ANY)
        .prop_flat_map(|(l, rs, v_eq_l)| {
            let rs = rs.min(950 - l); // keep rs + l < 1
            let v = if v_eq_l {
                Just(l).boxed()
            } else {
                (10i64..=l).boxed()
            };
            (Just(l), Just(rs.max(0)), v)
        })
        .prop_map(|(l, rs, v)| Params::from_milli(l, rs, v).expect("constructed valid"))
}

fn policy() -> impl Strategy<Value = TokenPolicy> {
    prop_oneof![
        Just(TokenPolicy::RoundRobin),
        any::<u64>().prop_map(|salt| TokenPolicy::Randomized { salt }),
        Just(TokenPolicy::FixedPriority),
    ]
}

/// A random system: grid up to 6×6, random target/sources, random fallible set.
#[allow(clippy::type_complexity)]
fn scenario() -> impl Strategy<Value = (SystemConfig, Vec<(u64, CellId, bool)>)> {
    (2u16..=6, 2u16..=6, params(), policy())
        .prop_flat_map(|(nx, ny, params, pol)| {
            let dims = GridDims::new(nx, ny);
            let cell = move || (0..nx, 0..ny).prop_map(|(i, j)| CellId::new(i, j));
            (
                Just(dims),
                cell(),
                proptest::collection::vec(cell(), 1..=3),
                Just(params),
                Just(pol),
                // Failure schedule: (round, cell, recover?) triples.
                proptest::collection::vec((0u64..60, cell(), prop::bool::ANY), 0..8),
            )
        })
        .prop_map(|(dims, target, sources, params, pol, schedule)| {
            let mut cfg = SystemConfig::new(dims, target, params)
                .expect("target in bounds")
                .with_token_policy(pol);
            for s in sources {
                if s != target {
                    cfg = cfg.with_source(s);
                }
            }
            (cfg, schedule)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 5 + Invariants 1–2 hold at every round of every random run,
    /// including runs with mid-execution failures and recoveries.
    #[test]
    fn safety_holds_every_round((cfg, schedule) in scenario()) {
        let mut sys = System::new(cfg);
        for round in 0..60u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover {
                        sys.recover(*cell);
                    } else {
                        sys.fail(*cell);
                    }
                }
            }
            sys.step();
            let (cfg, st) = (sys.config(), sys.state());
            prop_assert!(safety::check_safe(cfg, st).is_ok(),
                "round {}: {:?}", round, safety::check_safe(cfg, st));
            prop_assert!(safety::check_invariant1(cfg, st).is_ok(),
                "round {}: {:?}", round, safety::check_invariant1(cfg, st));
            prop_assert!(safety::check_invariant2(cfg, st).is_ok(),
                "round {}: {:?}", round, safety::check_invariant2(cfg, st));
        }
    }

    /// Lemma 3's conclusion: H holds right after Route;Signal, at every round
    /// of every random run.
    #[test]
    fn h_holds_at_signal_time((cfg, schedule) in scenario()) {
        let mut sys = System::new(cfg);
        for round in 0..40u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { sys.recover(*cell); } else { sys.fail(*cell); }
                }
            }
            // Recompute the intermediate state xS = Signal(Route(x)) and check H.
            let routed = route_phase(sys.config(), sys.state());
            let signaled = signal_phase(sys.config(), &routed, round);
            prop_assert!(
                safety::check_h(sys.config(), &signaled).is_ok(),
                "round {}: {:?}", round, safety::check_h(sys.config(), &signaled)
            );
            sys.step();
        }
    }

    /// Entity conservation: inserted = consumed + in-flight, at every round.
    #[test]
    fn entities_are_conserved((cfg, schedule) in scenario()) {
        let mut sys = System::new(cfg);
        for round in 0..60u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { sys.recover(*cell); } else { sys.fail(*cell); }
                }
            }
            sys.step();
            prop_assert_eq!(
                sys.inserted_total(),
                sys.consumed_total() + sys.state().entity_count() as u64
            );
            // Identifiers are minted sequentially.
            prop_assert_eq!(sys.inserted_total(), sys.state().next_entity_id);
        }
    }

    /// Determinism: the same configuration and failure schedule produce the
    /// identical state trajectory.
    #[test]
    fn runs_are_deterministic((cfg, schedule) in scenario()) {
        let mut a = System::new(cfg.clone());
        let mut b = System::new(cfg);
        for round in 0..30u64 {
            for (when, cell, recover) in &schedule {
                if *when == round {
                    if *recover { a.recover(*cell); b.recover(*cell); }
                    else { a.fail(*cell); b.fail(*cell); }
                }
            }
            a.step();
            b.step();
            prop_assert_eq!(a.state(), b.state(), "diverged at round {}", round);
        }
    }

    /// Per-round movement is bounded: every entity moves at most v per round
    /// along one axis (or is transferred/snapped across one boundary).
    #[test]
    fn velocity_bound_respected((cfg, _) in scenario()) {
        let mut sys = System::new(cfg);
        for _ in 0..30 {
            let before: std::collections::HashMap<_, _> = sys
                .state()
                .entities(sys.config().dims())
                .map(|(c, e)| (e.id, (c, e.pos)))
                .collect();
            let ev = sys.step();
            let transferred: std::collections::HashSet<_> =
                ev.transfers.iter().map(|t| t.entity).collect();
            for (cell, e) in sys.state().entities(sys.config().dims()) {
                if let Some(&(old_cell, old_pos)) = before.get(&e.id) {
                    if transferred.contains(&e.id) {
                        prop_assert!(old_cell.is_neighbor(cell));
                    } else {
                        prop_assert_eq!(old_cell, cell);
                        let dist = old_pos.manhattan(e.pos);
                        prop_assert!(
                            dist <= sys.config().params().v(),
                            "{} moved {} > v", e.id, dist
                        );
                    }
                }
            }
        }
    }

    /// Update leaves failed cells' entities frozen in place.
    #[test]
    fn failed_cells_freeze_entities((cfg, _) in scenario()) {
        let mut sys = System::new(cfg);
        sys.run(20);
        // Freeze everything and compare entity positions across rounds.
        let dims = sys.config().dims();
        for id in dims.iter() {
            sys.fail(id);
        }
        let before: Vec<_> = sys.state().entities(dims).collect();
        sys.run(5);
        let after: Vec<_> = sys.state().entities(dims).collect();
        prop_assert_eq!(before, after);
    }
}
