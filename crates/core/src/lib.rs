//! The safe and stabilizing distributed cellular flows protocol.
//!
//! This crate implements the primary contribution of *"Safe and Stabilizing
//! Distributed Cellular Flows"* (Johnson, Mitra, Manamcheri; ICDCS 2010): a
//! synchronous distributed traffic-control protocol on an `N × N` grid of
//! unit-square cells, where the entities (vehicles, packages, …) within a cell
//! move as one. Each round, every non-faulty cell runs three functions:
//!
//! * **`Route`** ([`route_phase`]) — self-stabilizing distance-vector routing
//!   toward the target cell (paper Figure 4);
//! * **`Signal`** ([`signal_phase`]) — token-based permission granting that
//!   blocks a neighbor from sending entities unless a gap of
//!   `d = rs + l` is free at the shared boundary (Figure 5);
//! * **`Move`** ([`move_phase`]) — synchronized motion of a cell's entities at
//!   velocity `v`, with boundary transfers and target consumption (Figure 6).
//!
//! The protocol guarantees (and this crate mechanically checks, via
//! [`safety`] and the bounded model checker in [`mc`]):
//!
//! * **Safety** (Theorem 5): any two entities on the same cell are separated by
//!   at least `d` along some axis, in every reachable state, despite crashes;
//! * **Routing stabilization** (Lemma 6 / Corollary 7): `O(N²)` rounds after
//!   failures cease, all target-connected cells route correctly;
//! * **Progress** (Theorem 10): after failures cease, every entity on a
//!   target-connected cell is eventually consumed by the target.
//!
//! # Quick example
//!
//! ```
//! use cellflow_core::{Params, System, SystemConfig};
//! use cellflow_grid::{CellId, GridDims};
//!
//! // l = 0.25, rs = 0.05, v = 0.25: the fastest series in the paper's Fig. 7.
//! let params = Params::from_milli(250, 50, 250)?;
//! let config = SystemConfig::new(GridDims::square(8), CellId::new(1, 7), params)?
//!     .with_source(CellId::new(1, 0));
//! let mut system = System::new(config);
//! for _ in 0..200 {
//!     system.step();
//! }
//! assert!(system.consumed_total() > 0); // entities reached the target
//! assert!(cellflow_core::safety::check_safe(system.config(), system.state()).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cell;
pub mod certify;
pub mod engine;
mod entity;
pub mod fault;
pub mod hash;
pub mod mc;
pub mod monitor;
mod move_fn;
pub mod overload;
mod params;
mod route;
pub mod safety;
mod signal;
pub mod snapshot;
mod source;
mod system;
mod token;
mod update;

pub use cell::CellState;
pub use cellflow_routing::Dist;
pub use certify::{
    certify, certify_batch, certify_links, shrink, shrink_links, Certificate, CertifyOptions,
    CorruptionEvent, LinkCertificate,
};
pub use engine::{Engine, ExecMode, NeighborTable, RoundTrace};
pub use fault::{
    CampaignSpec, Corruption, FaultCensus, FaultEvent, FaultKind, FaultPlan, FlakySpec, LinkFault,
    PartitionPlan, PartitionSchedule,
};
pub use monitor::{
    component_map, standard_monitors, Monitor, MonitorCtx, MonitorViolation, ReachabilityMonitor,
};
pub use entity::{Entity, EntityId};
pub use overload::{
    expand_overload, BackoffPolicy, CascadeOutcome, CascadeStats, OverloadDetector,
    OverloadTrigger,
};
pub use move_fn::{move_phase, MoveOutcome, Transfer};
pub use params::{Params, ParamsError};
pub use route::route_phase;
pub use signal::{gap_free_toward, signal_phase};
pub use snapshot::{Divergence, Recorder, RegisterDiff};
pub use source::SourcePolicy;
pub use system::{ConfigError, System, SystemConfig, SystemState};
pub use token::TokenPolicy;
pub use update::{update, RoundEvents};
