//! The `Signal` function (paper Figure 5) — the protocol's safety/progress
//! core.

use std::collections::BTreeMap;

use cellflow_geom::{Dir, Point};
use cellflow_grid::CellId;

use crate::{EntityId, Params, SystemConfig, SystemState};

/// The gap check of Figure 5 lines 4–7 (and of predicate `H`): `true` if cell
/// `id` has a strip of width `d = rs + l`, empty of entity footprints, along
/// its boundary facing `dir`.
///
/// Per direction (for cell `⟨i,j⟩`, entity half-length `l/2`):
///
/// * East:  `∀p: px + l/2 ≤ (i+1) − d`
/// * West:  `∀p: px − l/2 ≥ i + d`
/// * North: `∀p: py + l/2 ≤ (j+1) − d`
/// * South: `∀p: py − l/2 ≥ j + d`
///
/// (The paper's fourth arm literally reads `token = i − 1` with a `py` bound —
/// a typo for the south neighbor `⟨i, j−1⟩`; symmetry and predicate `H` fix
/// the intent, as documented in `DESIGN.md`.)
///
/// When the strip is free, an entity transferring across that boundary lands
/// flush at the edge with its center `d`-separated from every resident —
/// exactly what the safety proof (Theorem 5) needs.
pub fn gap_free_toward<'a, I>(params: Params, id: CellId, dir: Dir, members: I) -> bool
where
    I: IntoIterator<Item = &'a Point>,
{
    let boundary = id.boundary(dir);
    let d = params.d();
    let h = params.half_l();
    members.into_iter().all(|p| {
        let edge = p.along(dir.axis()) + h * dir.sign();
        match dir.sign() {
            1 => edge <= boundary - d,
            _ => edge >= boundary + d,
        }
    })
}

/// Applies one synchronous round of the `Signal` function to every non-faulty
/// cell (including the target, which grants like any other cell but never
/// holds entities):
///
/// 1. `NEPrev := { ⟨m,n⟩ ∈ Nbrs : next_{m,n} = ⟨i,j⟩ ∧ Members_{m,n} ≠ ∅ }`;
/// 2. if `token = ⊥`, choose one from `NEPrev` (policy; `⊥` if empty);
/// 3. if the boundary strip toward `token` is free ([`gap_free_toward`]),
///    **grant**: `signal := token`, then rotate the token away from the
///    grantee if another contender exists (lines 10–12);
/// 4. otherwise **block**: `signal := ⊥`, token unchanged (line 14).
///
/// Reads `next`/`Members` from the input state (which [`update`](crate::update)
/// produces with `Route` already applied, matching the paper's
/// `x —Route→ xR —Signal→ xS` composition in Lemma 3).
///
/// ```
/// use cellflow_core::{route_phase, safety, signal_phase, Params, System, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let cfg = SystemConfig::new(
///     GridDims::new(3, 1),
///     CellId::new(2, 0),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(0, 0));
/// let mut sys = System::new(cfg.clone());
/// sys.run(5);
/// // Lemma 3's conclusion holds at signal-computation time:
/// let x_s = signal_phase(&cfg, &route_phase(&cfg, sys.state()), 5);
/// assert!(safety::check_h(&cfg, &x_s).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn signal_phase(config: &SystemConfig, state: &SystemState, round: u64) -> SystemState {
    let dims = config.dims();
    let policy = config.token_policy();
    let mut out = state.clone();
    for id in dims.iter() {
        if state.cell(dims, id).failed {
            continue;
        }
        let ne_prev: std::collections::BTreeSet<CellId> = dims
            .neighbors(id)
            .filter(|&m| {
                let nbr = state.cell(dims, m);
                nbr.next == Some(id) && !nbr.members.is_empty()
            })
            .collect();

        let mut token = state.cell(dims, id).token;
        // A transient fault may have left a non-neighbor in the token
        // register; treat it as ⊥ so `Signal` self-stabilizes instead of
        // trusting the corrupted value.
        if token.is_some_and(|t| !id.is_neighbor(t)) {
            token = None;
        }
        if token.is_none() {
            token = policy.choose(&ne_prev, id, round);
        }

        let (signal, new_token) = match token {
            None => (None, None),
            Some(tok) => {
                let dir = id
                    .dir_to(tok)
                    .expect("token is always one of the cell's neighbors");
                if gap_free_toward(
                    config.params(),
                    id,
                    dir,
                    members_of(state, config, id).values(),
                ) {
                    let rotated = if ne_prev.len() > 1 {
                        policy.rotate(&ne_prev, tok, id, round)
                    } else if ne_prev.len() == 1 {
                        ne_prev.first().copied()
                    } else {
                        None
                    };
                    (Some(tok), rotated)
                } else {
                    (None, Some(tok))
                }
            }
        };

        let c = out.cell_mut(dims, id);
        c.ne_prev = ne_prev;
        c.token = new_token;
        c.signal = signal;
    }
    out
}

fn members_of<'a>(
    state: &'a SystemState,
    config: &SystemConfig,
    id: CellId,
) -> &'a BTreeMap<EntityId, Point> {
    &state.cell(config.dims(), id).members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route_phase, Params, SystemConfig, TokenPolicy};
    use cellflow_geom::Fixed;
    use cellflow_grid::GridDims;

    fn params() -> Params {
        Params::from_milli(250, 50, 100).unwrap() // d = 0.3
    }

    fn config() -> SystemConfig {
        SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params()).unwrap()
    }

    fn pt(xm: i64, ym: i64) -> Point {
        Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym))
    }

    #[test]
    fn gap_check_each_direction() {
        let p = params(); // l/2 = 0.125, d = 0.3
        let id = CellId::new(1, 1);
        // Empty cell: always free.
        for dir in Dir::ALL {
            assert!(gap_free_toward(p, id, dir, []));
        }
        // Entity centered: far from every boundary (1.5 ± 0.125 vs margins at 1.3/1.7 − wait,
        // need edge ≤ boundary − d: 1.625 ≤ 2 − 0.3 = 1.7 ✓ east; 1.375 ≥ 1.3 ✓ west).
        let center = [pt(1_500, 1_500)];
        for dir in Dir::ALL {
            assert!(gap_free_toward(p, id, dir, &center));
        }
        // Entity flush at the east edge: blocks east, frees west.
        let east_flush = [pt(1_875, 1_500)];
        assert!(!gap_free_toward(p, id, Dir::East, &east_flush));
        assert!(gap_free_toward(p, id, Dir::West, &east_flush));
        assert!(gap_free_toward(p, id, Dir::North, &east_flush));
        assert!(gap_free_toward(p, id, Dir::South, &east_flush));
        // Exactly at the limit: edge = boundary − d ⇒ free.
        let limit_east = [pt(2_000 - 300 - 125, 1_500)];
        assert!(gap_free_toward(p, id, Dir::East, &limit_east));
        // One micro-unit closer ⇒ blocked.
        let over = [Point::new(
            Fixed::from_milli(2_000 - 300 - 125) + Fixed::from_raw(1),
            Fixed::from_milli(1_500),
        )];
        assert!(!gap_free_toward(p, id, Dir::East, &over));
        // North/south mirror.
        let north_flush = [pt(1_500, 1_875)];
        assert!(!gap_free_toward(p, id, Dir::North, &north_flush));
        assert!(gap_free_toward(p, id, Dir::South, &north_flush));
        let south_flush = [pt(1_500, 1_125)];
        assert!(!gap_free_toward(p, id, Dir::South, &south_flush));
        assert!(gap_free_toward(p, id, Dir::North, &south_flush));
    }

    /// Builds a routed 3×3 state with an entity on ⟨0,1⟩ and ⟨1,1⟩ routing
    /// into the target column.
    fn routed_state_with_entity() -> (SystemConfig, SystemState) {
        let cfg = config();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase(&cfg, &s);
        }
        // Entity on ⟨0,1⟩ (which routes east toward ⟨1,1⟩ then target ⟨2,1⟩).
        s.cell_mut(cfg.dims(), CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(500, 1_500));
        (cfg, s)
    }

    #[test]
    fn nonempty_upstream_neighbor_is_granted() {
        let (cfg, s) = routed_state_with_entity();
        assert_eq!(
            s.cell(cfg.dims(), CellId::new(0, 1)).next,
            Some(CellId::new(1, 1))
        );
        let s2 = signal_phase(&cfg, &s, 0);
        let mid = s2.cell(cfg.dims(), CellId::new(1, 1));
        assert_eq!(
            mid.ne_prev.iter().copied().collect::<Vec<_>>(),
            vec![CellId::new(0, 1)]
        );
        // ⟨1,1⟩ is empty ⇒ gap free ⇒ grant.
        assert_eq!(mid.signal, Some(CellId::new(0, 1)));
        // Single contender keeps the token.
        assert_eq!(mid.token, Some(CellId::new(0, 1)));
        // Cells with no nonempty upstream neighbors have signal = token = ⊥.
        let corner = s2.cell(cfg.dims(), CellId::new(0, 0));
        assert_eq!(corner.signal, None);
        assert_eq!(corner.token, None);
    }

    #[test]
    fn blocked_when_strip_occupied() {
        let (cfg, mut s) = routed_state_with_entity();
        // Put a resident flush against ⟨1,1⟩'s west boundary: blocks the grant
        // to ⟨0,1⟩ (which would send entities east into that strip).
        s.cell_mut(cfg.dims(), CellId::new(1, 1))
            .members
            .insert(EntityId(9), pt(1_125, 1_500));
        let s2 = signal_phase(&cfg, &s, 0);
        let mid = s2.cell(cfg.dims(), CellId::new(1, 1));
        assert_eq!(mid.signal, None, "grant must be withheld");
        // Token is *retained* while blocked (Figure 5 line 14).
        assert_eq!(mid.token, Some(CellId::new(0, 1)));
    }

    #[test]
    fn token_rotates_between_two_contenders() {
        // Target ⟨2,1⟩'s west neighbor ⟨1,1⟩; place entities on ⟨1,1⟩ and ⟨2,0⟩
        // (wait — use two cells routing into ⟨1,1⟩: ⟨0,1⟩ and ⟨1,0⟩).
        let cfg = config();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase(&cfg, &s);
        }
        // Force both to route through ⟨1,1⟩ for the test's purposes.
        s.cell_mut(cfg.dims(), CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        s.cell_mut(cfg.dims(), CellId::new(1, 0)).next = Some(CellId::new(1, 1));
        s.cell_mut(cfg.dims(), CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(500, 1_500));
        s.cell_mut(cfg.dims(), CellId::new(1, 0))
            .members
            .insert(EntityId(1), pt(1_500, 500));

        let s2 = signal_phase(&cfg, &s, 0);
        let mid = s2.cell(cfg.dims(), CellId::new(1, 1));
        assert_eq!(mid.ne_prev.len(), 2);
        let granted_first = mid.signal.unwrap();
        let token_after = mid.token.unwrap();
        assert_ne!(
            granted_first, token_after,
            "token must rotate after a grant"
        );

        // Next round (members unchanged): the other contender is granted.
        // Keep next pointers forced.
        let mut s3 = s2.clone();
        s3.cell_mut(cfg.dims(), CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        s3.cell_mut(cfg.dims(), CellId::new(1, 0)).next = Some(CellId::new(1, 1));
        let s4 = signal_phase(&cfg, &s3, 1);
        let mid2 = s4.cell(cfg.dims(), CellId::new(1, 1));
        assert_eq!(mid2.signal, Some(token_after));
        assert_eq!(mid2.token, Some(granted_first));
    }

    #[test]
    fn fixed_priority_never_rotates() {
        let cfg = SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params())
            .unwrap()
            .with_token_policy(TokenPolicy::FixedPriority);
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase(&cfg, &s);
        }
        s.cell_mut(cfg.dims(), CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        s.cell_mut(cfg.dims(), CellId::new(1, 0)).next = Some(CellId::new(1, 1));
        s.cell_mut(cfg.dims(), CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(500, 1_500));
        s.cell_mut(cfg.dims(), CellId::new(1, 0))
            .members
            .insert(EntityId(1), pt(1_500, 500));
        let s2 = signal_phase(&cfg, &s, 0);
        let mid = s2.cell(cfg.dims(), CellId::new(1, 1));
        // Smallest id ⟨0,1⟩ is granted and KEEPS the token: starvation.
        assert_eq!(mid.signal, Some(CellId::new(0, 1)));
        assert_eq!(mid.token, Some(CellId::new(0, 1)));
    }

    #[test]
    fn failed_cells_do_not_signal() {
        let (cfg, mut s) = routed_state_with_entity();
        s.fail(cfg.dims(), CellId::new(1, 1));
        let s2 = signal_phase(&cfg, &s, 0);
        assert_eq!(s2.cell(cfg.dims(), CellId::new(1, 1)).signal, None);
    }

    #[test]
    fn empty_upstream_neighbor_not_in_ne_prev() {
        let cfg = config();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase(&cfg, &s);
        }
        // ⟨0,1⟩ routes into ⟨1,1⟩ but has no entities.
        let s2 = signal_phase(&cfg, &s, 0);
        assert!(s2.cell(cfg.dims(), CellId::new(1, 1)).ne_prev.is_empty());
        assert_eq!(s2.cell(cfg.dims(), CellId::new(1, 1)).signal, None);
    }
}
