//! The atomic `update` transition: `Route; Signal; Move` (paper Figure 3).

use cellflow_grid::CellId;

use crate::EntityId;
use crate::{move_phase, route_phase, signal_phase, SystemConfig, SystemState, Transfer};

/// Everything observable about one `update` transition.
///
/// `PartialEq` so the differential suite can compare the engine's events
/// against this reference implementation's, field for field.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundEvents {
    /// Entities consumed by the target this round.
    pub consumed: Vec<EntityId>,
    /// Entity transfers between ordinary cells.
    pub transfers: Vec<Transfer>,
    /// Entities created by sources, with their cell.
    pub inserted: Vec<(CellId, EntityId)>,
    /// `(granter, grantee)` pairs: cells whose `signal` was set this round.
    pub grants: Vec<(CellId, CellId)>,
    /// `(blocker, blocked)` pairs: cells that withheld their signal because
    /// the boundary strip toward the token holder was occupied.
    pub blocked: Vec<(CellId, CellId)>,
    /// Cells that moved their entities this round.
    pub moved: Vec<CellId>,
}

/// Applies one atomic `update` transition (one synchronous round):
/// [`route_phase`], then [`signal_phase`] on its result, then [`move_phase`]
/// on that — the composition `x → xR → xS → x'` used throughout the paper's
/// proofs (Lemma 3 reasons about exactly the intermediate states `xR`, `xS`).
///
/// `round` is the round number, used only by the
/// [`TokenPolicy::Randomized`](crate::TokenPolicy::Randomized) choice; the
/// deterministic policies ignore it.
///
/// Returns the successor state and the events of the round.
///
/// ```
/// use cellflow_core::{update, Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let cfg = SystemConfig::new(
///     GridDims::new(3, 1),
///     CellId::new(2, 0),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(0, 0));
/// let (next, events) = update(&cfg, &cfg.initial_state(), 0);
/// // The source inserted its first entity during the round's Move phase.
/// assert_eq!(events.inserted.len(), 1);
/// assert_eq!(next.entity_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn update(
    config: &SystemConfig,
    state: &SystemState,
    round: u64,
) -> (SystemState, RoundEvents) {
    let routed = route_phase(config, state);
    let signaled = signal_phase(config, &routed, round);

    // Derive grant/block events by inspecting the freshly computed signals.
    let dims = config.dims();
    let mut grants = Vec::new();
    let mut blocked = Vec::new();
    for id in dims.iter() {
        let c = signaled.cell(dims, id);
        if c.failed {
            continue;
        }
        match (c.signal, c.token) {
            (Some(grantee), _) => grants.push((id, grantee)),
            (None, Some(holder)) => blocked.push((id, holder)),
            (None, None) => {}
        }
    }

    let outcome = move_phase(config, &signaled);
    let events = RoundEvents {
        consumed: outcome.consumed,
        transfers: outcome.transfers,
        inserted: outcome.inserted,
        grants,
        blocked,
        moved: outcome.moved,
    };
    (outcome.state, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, System, SystemConfig};
    use cellflow_geom::{Fixed, Point};
    use cellflow_grid::GridDims;

    fn straight_line_config() -> SystemConfig {
        // 1×4 corridor: source ⟨0,0⟩ … target ⟨3,0⟩.
        SystemConfig::new(
            GridDims::new(4, 1),
            CellId::new(3, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    #[test]
    fn entities_flow_down_a_corridor() {
        let mut sys = System::new(straight_line_config());
        let mut saw_transfer = false;
        let mut saw_insert = false;
        for _ in 0..100 {
            let ev = sys.step();
            saw_transfer |= !ev.transfers.is_empty();
            saw_insert |= !ev.inserted.is_empty();
        }
        assert!(saw_insert, "source never inserted");
        assert!(saw_transfer, "no transfers happened");
        assert!(sys.consumed_total() > 0, "nothing reached the target");
        // Conservation: inserted = consumed + still-in-system.
        assert_eq!(
            sys.inserted_total(),
            sys.consumed_total() + sys.state().entity_count() as u64
        );
    }

    #[test]
    fn first_rounds_only_route() {
        // With an empty grid there is nothing to signal about or move.
        let cfg = straight_line_config();
        let (s1, ev) = update(&cfg, &cfg.initial_state(), 0);
        assert!(ev.transfers.is_empty());
        assert!(ev.consumed.is_empty());
        assert!(ev.grants.is_empty());
        assert!(ev.blocked.is_empty());
        // Routing advanced one hop; the source inserted nothing (next = ⊥
        // during this round's Move? No: Route ran first, so ⟨2,0⟩ knows the
        // target but ⟨0,0⟩ doesn't yet — FarEdge falls back to the center).
        assert_eq!(ev.inserted.len(), 1);
        assert_eq!(s1.entity_count(), 1);
    }

    #[test]
    fn grant_then_move_in_same_round() {
        // Seed an entity, then observe grant + movement in one update.
        let cfg = straight_line_config();
        let mut sys = System::new(cfg);
        // Stabilize routing first (4 rounds), consuming inserted entities is fine.
        sys.run(6);
        // Find a round where the mid cell grants and its upstream moves.
        let mut granted_and_moved = false;
        for _ in 0..20 {
            let ev = sys.step();
            for &(granter, grantee) in &ev.grants {
                if ev.moved.contains(&grantee) {
                    let dir = grantee.dir_to(granter);
                    assert!(dir.is_some(), "grantee moves toward granter");
                    granted_and_moved = true;
                }
            }
        }
        assert!(granted_and_moved);
    }

    #[test]
    fn blocked_event_when_strip_occupied() {
        let cfg = straight_line_config();
        let dims = cfg.dims();
        let mut sys = System::new(cfg);
        sys.run(4); // routing stable
                    // Occupy ⟨1,0⟩'s west strip and put a sender on ⟨0,0⟩.
        let mut s = sys.state().clone();
        s.cell_mut(dims, CellId::new(1, 0)).members.insert(
            EntityId(900),
            Point::new(Fixed::from_milli(1_125), Fixed::HALF),
        );
        s.cell_mut(dims, CellId::new(0, 0)).members.insert(
            EntityId(901),
            Point::new(Fixed::from_milli(500), Fixed::HALF),
        );
        s.next_entity_id = 902;
        sys.set_state(s);
        let ev = sys.step();
        assert!(
            ev.blocked
                .iter()
                .any(|&(b, h)| b == CellId::new(1, 0) && h == CellId::new(0, 0)),
            "expected ⟨1,0⟩ to block ⟨0,0⟩, got {:?}",
            ev.blocked
        );
    }

    #[test]
    fn update_is_deterministic() {
        let cfg = straight_line_config();
        let mut a = System::new(cfg.clone());
        let mut b = System::new(cfg);
        for _ in 0..50 {
            a.step();
            b.step();
            assert_eq!(a.state(), b.state());
        }
    }
}
