//! Token selection policies — the `choose` steps of the `Signal` function.
//!
//! The paper's Figure 5 says *"token := **choose** from NEPrev"* (line 3) and
//! *"token := **choose** from NEPrev \ {token}"* (line 11) without fixing the
//! choice. The progress proof (Lemma 9) only needs the choice to be fair:
//! every nonempty predecessor must hold the token infinitely often. This
//! module provides deterministic implementations of the choice, plus a
//! deliberately *unfair* one used by the ablation experiments to demonstrate
//! starvation when rotation is removed.

use std::collections::BTreeSet;
use std::hash::{DefaultHasher, Hash, Hasher};

use cellflow_grid::CellId;

/// How a cell picks which neighbor in `NEPrev` receives its token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TokenPolicy {
    /// Cyclic successor in identifier order (default). Fair: with `k`
    /// contenders, each holds the token at least once every `k` grants.
    RoundRobin,
    /// Pseudo-random choice keyed by `(salt, cell, round)`. Deterministic for
    /// a given seed, fair with probability 1. Not usable under the model
    /// checker (the choice depends on the round number, which is not part of
    /// the hashable state).
    Randomized {
        /// Seed mixed into every choice.
        salt: u64,
    },
    /// Always the smallest identifier — **ignores the paper's rotation rule**
    /// (Figure 5 lines 10–12). Unfair by construction; exists only so the
    /// ablation benchmarks/tests can demonstrate the starvation the rotation
    /// rule prevents.
    FixedPriority,
}

impl Default for TokenPolicy {
    /// [`TokenPolicy::RoundRobin`].
    fn default() -> TokenPolicy {
        TokenPolicy::RoundRobin
    }
}

impl TokenPolicy {
    /// Figure 5 line 3: pick a token holder from `ne_prev` when the current
    /// token is `⊥`. Returns `None` iff `ne_prev` is empty.
    ///
    /// ```
    /// use cellflow_core::TokenPolicy;
    /// use cellflow_grid::CellId;
    /// use std::collections::BTreeSet;
    ///
    /// let contenders: BTreeSet<CellId> =
    ///     [CellId::new(0, 1), CellId::new(2, 1)].into_iter().collect();
    /// let me = CellId::new(1, 1);
    /// let first = TokenPolicy::RoundRobin.choose(&contenders, me, 0).unwrap();
    /// // After a grant, rotation always moves off the current holder:
    /// let second = TokenPolicy::RoundRobin.rotate(&contenders, first, me, 1).unwrap();
    /// assert_ne!(first, second);
    /// ```
    pub fn choose(self, ne_prev: &BTreeSet<CellId>, cell: CellId, round: u64) -> Option<CellId> {
        match self {
            TokenPolicy::RoundRobin | TokenPolicy::FixedPriority => ne_prev.first().copied(),
            TokenPolicy::Randomized { salt } => pick_hashed(ne_prev, None, salt, cell, round),
        }
    }

    /// Figure 5 lines 10–12: after granting, pick the next token holder,
    /// avoiding `current` when another contender exists (`|NEPrev| > 1` ⇒
    /// choose from `NEPrev \ {token}`).
    ///
    /// Returns `None` iff `ne_prev` is empty. [`TokenPolicy::FixedPriority`]
    /// deliberately violates the avoid-`current` rule.
    pub fn rotate(
        self,
        ne_prev: &BTreeSet<CellId>,
        current: CellId,
        cell: CellId,
        round: u64,
    ) -> Option<CellId> {
        match ne_prev.len() {
            0 => None,
            1 => ne_prev.first().copied(),
            _ => match self {
                TokenPolicy::RoundRobin => {
                    // Smallest id strictly greater than `current`, wrapping.
                    ne_prev
                        .range((
                            std::ops::Bound::Excluded(current),
                            std::ops::Bound::Unbounded,
                        ))
                        .next()
                        .or_else(|| ne_prev.iter().find(|&&c| c != current))
                        .copied()
                }
                TokenPolicy::Randomized { salt } => {
                    pick_hashed(ne_prev, Some(current), salt, cell, round)
                }
                TokenPolicy::FixedPriority => ne_prev.first().copied(),
            },
        }
    }
    /// Allocation-free twin of [`TokenPolicy::choose`] over a sorted slice of
    /// contenders — the engine's `NEPrev` is a neighbor mask decoded into a
    /// stack array, never a `BTreeSet`. Agrees with `choose` on every input
    /// (`cands` sorted ascending, as a `BTreeSet` iterates).
    pub fn choose_from(self, cands: &[CellId], cell: CellId, round: u64) -> Option<CellId> {
        match self {
            TokenPolicy::RoundRobin | TokenPolicy::FixedPriority => cands.first().copied(),
            TokenPolicy::Randomized { salt } => {
                pick_hashed_slice(cands, None, salt, cell, round)
            }
        }
    }

    /// Allocation-free twin of [`TokenPolicy::rotate`] over a sorted slice.
    pub fn rotate_from(
        self,
        cands: &[CellId],
        current: CellId,
        cell: CellId,
        round: u64,
    ) -> Option<CellId> {
        match cands.len() {
            0 => None,
            1 => cands.first().copied(),
            _ => match self {
                TokenPolicy::RoundRobin => cands
                    .iter()
                    .find(|&&c| c > current)
                    .or_else(|| cands.iter().find(|&&c| c != current))
                    .copied(),
                TokenPolicy::Randomized { salt } => {
                    pick_hashed_slice(cands, Some(current), salt, cell, round)
                }
                TokenPolicy::FixedPriority => cands.first().copied(),
            },
        }
    }
}

/// Slice counterpart of [`pick_hashed`]: identical hash, identical filter,
/// identical index arithmetic — just counting instead of collecting.
fn pick_hashed_slice(
    cands: &[CellId],
    exclude: Option<CellId>,
    salt: u64,
    cell: CellId,
    round: u64,
) -> Option<CellId> {
    let keep = |c: &CellId| Some(*c) != exclude || cands.len() == 1;
    let n = cands.iter().filter(|c| keep(c)).count();
    if n == 0 {
        return cands.first().copied();
    }
    let mut h = DefaultHasher::new();
    (salt, cell, round).hash(&mut h);
    let idx = (h.finish() % n as u64) as usize;
    cands.iter().filter(|c| keep(c)).nth(idx).copied()
}

fn pick_hashed(
    ne_prev: &BTreeSet<CellId>,
    exclude: Option<CellId>,
    salt: u64,
    cell: CellId,
    round: u64,
) -> Option<CellId> {
    let candidates: Vec<CellId> = ne_prev
        .iter()
        .copied()
        .filter(|c| Some(*c) != exclude || ne_prev.len() == 1)
        .collect();
    if candidates.is_empty() {
        return ne_prev.first().copied();
    }
    let mut h = DefaultHasher::new();
    (salt, cell, round).hash(&mut h);
    let idx = (h.finish() % candidates.len() as u64) as usize;
    Some(candidates[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u16, j: u16) -> CellId {
        CellId::new(i, j)
    }

    fn set(cells: &[CellId]) -> BTreeSet<CellId> {
        cells.iter().copied().collect()
    }

    #[test]
    fn choose_from_empty_is_bottom() {
        for p in [
            TokenPolicy::RoundRobin,
            TokenPolicy::FixedPriority,
            TokenPolicy::Randomized { salt: 7 },
        ] {
            assert_eq!(p.choose(&BTreeSet::new(), id(1, 1), 0), None);
            assert_eq!(p.rotate(&BTreeSet::new(), id(0, 1), id(1, 1), 0), None);
        }
    }

    #[test]
    fn round_robin_cycles_through_all() {
        let contenders = set(&[id(0, 1), id(1, 0), id(1, 2), id(2, 1)]);
        let me = id(1, 1);
        let mut cur = TokenPolicy::RoundRobin.choose(&contenders, me, 0).unwrap();
        let mut seen = BTreeSet::from([cur]);
        for round in 1..=3 {
            cur = TokenPolicy::RoundRobin
                .rotate(&contenders, cur, me, round)
                .unwrap();
            assert!(seen.insert(cur), "{cur} repeated before full cycle");
        }
        assert_eq!(seen, contenders, "all contenders visited in one cycle");
        // Next rotation wraps back to the start.
        let wrapped = TokenPolicy::RoundRobin
            .rotate(&contenders, cur, me, 4)
            .unwrap();
        assert_eq!(wrapped, id(0, 1));
    }

    #[test]
    fn rotation_avoids_current_when_possible() {
        let contenders = set(&[id(0, 1), id(2, 1)]);
        for p in [TokenPolicy::RoundRobin, TokenPolicy::Randomized { salt: 3 }] {
            for round in 0..10 {
                let next = p.rotate(&contenders, id(0, 1), id(1, 1), round).unwrap();
                assert_ne!(next, id(0, 1), "{p:?} failed to rotate at round {round}");
            }
        }
    }

    #[test]
    fn singleton_keeps_token() {
        let only = set(&[id(0, 1)]);
        for p in [
            TokenPolicy::RoundRobin,
            TokenPolicy::FixedPriority,
            TokenPolicy::Randomized { salt: 1 },
        ] {
            assert_eq!(p.rotate(&only, id(0, 1), id(1, 1), 5), Some(id(0, 1)));
        }
    }

    #[test]
    fn fixed_priority_starves() {
        let contenders = set(&[id(0, 1), id(2, 1)]);
        // FixedPriority keeps handing the token to the smallest id.
        let first = TokenPolicy::FixedPriority
            .choose(&contenders, id(1, 1), 0)
            .unwrap();
        let second = TokenPolicy::FixedPriority
            .rotate(&contenders, first, id(1, 1), 1)
            .unwrap();
        assert_eq!(first, id(0, 1));
        assert_eq!(second, id(0, 1), "fixed priority must not rotate");
    }

    #[test]
    fn randomized_is_deterministic_per_round() {
        let contenders = set(&[id(0, 1), id(1, 0), id(2, 1)]);
        let p = TokenPolicy::Randomized { salt: 99 };
        let a = p.choose(&contenders, id(1, 1), 17);
        let b = p.choose(&contenders, id(1, 1), 17);
        assert_eq!(a, b);
        // Over many rounds every contender appears (fairness with pr. 1).
        let mut seen = BTreeSet::new();
        for round in 0..64 {
            seen.insert(p.choose(&contenders, id(1, 1), round).unwrap());
        }
        assert_eq!(seen, contenders);
    }

    #[test]
    fn default_is_round_robin() {
        assert_eq!(TokenPolicy::default(), TokenPolicy::RoundRobin);
    }

    /// The slice twins must agree with the `BTreeSet` originals on every
    /// subset of a cell's neighbors, every policy, every current holder —
    /// this is what lets the engine's mask-decoded arrays replace the sets.
    #[test]
    fn slice_twins_agree_with_set_versions_exhaustively() {
        let me = id(1, 1);
        let nbrs = [id(0, 1), id(1, 0), id(1, 2), id(2, 1)];
        let policies = [
            TokenPolicy::RoundRobin,
            TokenPolicy::FixedPriority,
            TokenPolicy::Randomized { salt: 0xC0FFEE },
        ];
        for mask in 0u8..16 {
            let subset: Vec<CellId> = nbrs
                .iter()
                .enumerate()
                .filter(|(s, _)| mask & (1 << s) != 0)
                .map(|(_, &c)| c)
                .collect();
            let as_set: BTreeSet<CellId> = subset.iter().copied().collect();
            for p in policies {
                for round in 0..8 {
                    assert_eq!(
                        p.choose_from(&subset, me, round),
                        p.choose(&as_set, me, round),
                        "choose mismatch: {p:?} mask {mask:04b} round {round}"
                    );
                    for &current in &nbrs {
                        assert_eq!(
                            p.rotate_from(&subset, current, me, round),
                            p.rotate(&as_set, current, me, round),
                            "rotate mismatch: {p:?} mask {mask:04b} \
                             current {current} round {round}"
                        );
                    }
                }
            }
        }
    }
}
