//! The `Route` function (paper Figure 4).

use cellflow_routing::route_update;

use crate::{SystemConfig, SystemState};

/// Applies one synchronous round of the `Route` function to every cell:
///
/// ```text
/// if ¬failed ∧ ⟨i,j⟩ ≠ tid then
///     dist := 1 + min over neighbors of dist
///     if dist = ∞ then next := ⊥
///     else next := argmin over neighbors of (dist, id)
/// ```
///
/// All cells read their neighbors' `dist` values from the *input* state and
/// update simultaneously — the message-passing reading of the paper's model,
/// where each round begins with a broadcast of the shared variables. The
/// actual min/argmin rule is [`cellflow_routing::route_update`], shared with
/// the standalone routing substrate so the stabilization results proven there
/// (Lemma 6, Corollary 7) transfer directly.
///
/// Failed cells and the target are untouched: the target's `dist` stays `0`
/// (it anchors the routing) and failed cells hold `dist = ∞` until recovery.
///
/// ```
/// use cellflow_core::{route_phase, Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
/// use cellflow_routing::Dist;
///
/// let cfg = SystemConfig::new(
///     GridDims::new(3, 1),
///     CellId::new(0, 0),
///     Params::from_milli(250, 50, 200)?,
/// )?;
/// let mut state = cfg.initial_state();
/// // One round per hop (Lemma 6's shape):
/// state = route_phase(&cfg, &state);
/// assert_eq!(state.cell(cfg.dims(), CellId::new(1, 0)).dist, Dist::Finite(1));
/// assert_eq!(state.cell(cfg.dims(), CellId::new(2, 0)).dist, Dist::Infinity);
/// state = route_phase(&cfg, &state);
/// assert_eq!(state.cell(cfg.dims(), CellId::new(2, 0)).dist, Dist::Finite(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn route_phase(config: &SystemConfig, state: &SystemState) -> SystemState {
    let dims = config.dims();
    let mut out = state.clone();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || id == config.target() {
            continue;
        }
        let (dist, next) = route_update(
            dims.neighbors(id).map(|n| (n, state.cell(dims, n).dist)),
            config.dist_cap(),
        );
        let c = out.cell_mut(dims, id);
        c.dist = dist;
        c.next = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, SystemConfig};
    use cellflow_grid::{CellId, GridDims};
    use cellflow_routing::Dist;

    fn config(n: u16, target: CellId) -> SystemConfig {
        SystemConfig::new(
            GridDims::square(n),
            target,
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn converges_to_manhattan_distances() {
        let cfg = config(4, CellId::new(0, 0));
        let mut s = cfg.initial_state();
        for _ in 0..8 {
            s = route_phase(&cfg, &s);
        }
        for id in cfg.dims().iter() {
            assert_eq!(
                s.cell(cfg.dims(), id).dist,
                Dist::Finite(id.manhattan(cfg.target())),
                "cell {id}"
            );
        }
    }

    #[test]
    fn one_round_per_hop() {
        // Lemma 6's shape: after k rounds, cells at distance ≤ k are exact.
        let cfg = config(5, CellId::new(2, 2));
        let mut s = cfg.initial_state();
        for k in 1..=4u32 {
            s = route_phase(&cfg, &s);
            for id in cfg.dims().iter() {
                let h = id.manhattan(cfg.target());
                if h <= k {
                    assert_eq!(
                        s.cell(cfg.dims(), id).dist,
                        Dist::Finite(h),
                        "round {k}, {id}"
                    );
                } else {
                    assert_eq!(
                        s.cell(cfg.dims(), id).dist,
                        Dist::Infinity,
                        "round {k}, {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_points_downhill_with_id_tiebreak() {
        let cfg = config(3, CellId::new(1, 1));
        let mut s = cfg.initial_state();
        for _ in 0..5 {
            s = route_phase(&cfg, &s);
        }
        // Corner ⟨2,2⟩: neighbors ⟨1,2⟩ and ⟨2,1⟩ both at distance 1; the
        // lexicographically smaller ⟨1,2⟩ wins.
        assert_eq!(
            s.cell(cfg.dims(), CellId::new(2, 2)).next,
            Some(CellId::new(1, 2))
        );
        // Target keeps next = ⊥ and dist = 0.
        assert_eq!(s.cell(cfg.dims(), cfg.target()).next, None);
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Finite(0));
    }

    #[test]
    fn failed_cells_block_routes_and_stay_infinite() {
        let cfg = config(3, CellId::new(0, 0));
        let mut s = cfg.initial_state();
        s.fail(cfg.dims(), CellId::new(1, 0));
        s.fail(cfg.dims(), CellId::new(0, 1));
        for _ in 0..12 {
            s = route_phase(&cfg, &s);
        }
        // Everything except the target and the failed wall is disconnected.
        for id in cfg.dims().iter() {
            let c = s.cell(cfg.dims(), id);
            if id == cfg.target() {
                assert_eq!(c.dist, Dist::Finite(0));
            } else {
                assert_eq!(c.dist, Dist::Infinity, "cell {id}");
                assert_eq!(c.next, None, "cell {id}");
            }
        }
    }

    #[test]
    fn disconnected_region_saturates_not_counts_forever() {
        let cfg = config(3, CellId::new(0, 0));
        let mut s = cfg.initial_state();
        // Wall off the right column.
        s.fail(cfg.dims(), CellId::new(1, 0));
        s.fail(cfg.dims(), CellId::new(1, 1));
        s.fail(cfg.dims(), CellId::new(1, 2));
        for _ in 0..(2 * cfg.dims().cell_count() + 4) {
            s = route_phase(&cfg, &s);
        }
        let right = s.cell(cfg.dims(), CellId::new(2, 1));
        assert_eq!(right.dist, Dist::Infinity);
        assert_eq!(right.next, None);
        // And the state is a fixpoint now.
        let again = route_phase(&cfg, &s);
        assert_eq!(again, s);
    }
}
