//! Analysis helpers: the path distance `ρ`, the target-connected set `TC`,
//! and routing-stabilization observers (paper §III-B).

use std::collections::HashSet;

use cellflow_grid::{connectivity, CellId};
use cellflow_routing::{route_update, Dist};

use crate::{SystemConfig, SystemState};

/// The set `F(x)` of currently failed cells.
pub fn failed_set(config: &SystemConfig, state: &SystemState) -> HashSet<CellId> {
    let dims = config.dims();
    dims.iter()
        .filter(|&id| state.cell(dims, id).failed)
        .collect()
}

/// The paper's path distance `ρ(x, ⟨i,j⟩)`: hop distance to the target
/// through non-faulty cells, `None` for `∞`.
pub fn rho(config: &SystemConfig, state: &SystemState) -> connectivity::Distances {
    connectivity::path_distances(config.dims(), config.target(), &failed_set(config, state))
}

/// The target-connected set `TC(x)`: cells with finite path distance.
pub fn tc(config: &SystemConfig, state: &SystemState) -> HashSet<CellId> {
    rho(config, state)
        .iter_connected()
        .map(|(c, _)| c)
        .collect()
}

/// `true` if routing has stabilized (the stable set `S` of Lemma 6 for the
/// whole grid): every non-faulty cell's `dist` equals `ρ` (with `∞` for
/// disconnected cells) and its `next` is the `(dist, id)`-argmin neighbor.
///
/// ```
/// use cellflow_core::{analysis, Params, System, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let cfg = SystemConfig::new(
///     GridDims::square(4),
///     CellId::new(3, 3),
///     Params::from_milli(250, 50, 200)?,
/// )?;
/// let mut sys = System::new(cfg);
/// assert!(!analysis::routing_stabilized(sys.config(), sys.state()));
/// sys.run(7); // eccentricity of ⟨3,3⟩ is 6 (Corollary 7's bound is generous)
/// assert!(analysis::routing_stabilized(sys.config(), sys.state()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn routing_stabilized(config: &SystemConfig, state: &SystemState) -> bool {
    let dims = config.dims();
    let rho = rho(config, state);
    let expected_dist = |id: CellId| -> Dist {
        match rho.get(id) {
            Some(d) => Dist::Finite(d),
            None => Dist::Infinity,
        }
    };
    dims.iter().all(|id| {
        let cell = state.cell(dims, id);
        if cell.failed {
            return true; // fail() pinned dist = ∞, next = ⊥
        }
        if cell.dist != expected_dist(id) {
            return false;
        }
        if id == config.target() {
            return true;
        }
        let (_, want_next) = route_update(
            dims.neighbors(id).map(|n| (n, expected_dist(n))),
            config.dist_cap(),
        );
        cell.next == want_next
    })
}

/// The number of entities sitting on target-connected cells — the entities
/// Theorem 10 promises will eventually be consumed.
pub fn entities_on_tc(config: &SystemConfig, state: &SystemState) -> usize {
    let dims = config.dims();
    let connected = tc(config, state);
    connected
        .iter()
        .map(|&id| state.cell(dims, id).members.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, System, SystemConfig};
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(4),
            CellId::new(3, 3),
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rho_and_tc_track_failures() {
        let mut sys = System::new(config());
        assert_eq!(tc(sys.config(), sys.state()).len(), 16);
        assert_eq!(
            rho(sys.config(), sys.state()).get(CellId::new(0, 0)),
            Some(6)
        );
        sys.fail(CellId::new(0, 0));
        let connected = tc(sys.config(), sys.state());
        assert_eq!(connected.len(), 15);
        assert!(!connected.contains(&CellId::new(0, 0)));
        assert_eq!(failed_set(sys.config(), sys.state()).len(), 1);
    }

    #[test]
    fn stabilization_observer_flips_after_enough_rounds() {
        let mut sys = System::new(config());
        assert!(!routing_stabilized(sys.config(), sys.state()));
        sys.run(7); // eccentricity of ⟨3,3⟩ is 6
        assert!(routing_stabilized(sys.config(), sys.state()));
        // A failure invalidates stabilization; O(N²) rounds restore it.
        sys.fail(CellId::new(3, 2));
        sys.fail(CellId::new(2, 3));
        sys.run(2 * 16 + 2);
        assert!(routing_stabilized(sys.config(), sys.state()));
        // Everything is now disconnected except the target.
        assert_eq!(tc(sys.config(), sys.state()).len(), 1);
    }

    #[test]
    fn entities_on_tc_counts_only_connected() {
        let mut sys = System::new(config());
        sys.run(7);
        sys.seed_entity(CellId::new(0, 0), CellId::new(0, 0).center())
            .unwrap();
        sys.seed_entity(CellId::new(2, 2), CellId::new(2, 2).center())
            .unwrap();
        assert_eq!(entities_on_tc(sys.config(), sys.state()), 2);
        // Wall off ⟨0,0⟩.
        sys.fail(CellId::new(1, 0));
        sys.fail(CellId::new(0, 1));
        assert_eq!(entities_on_tc(sys.config(), sys.state()), 1);
    }
}
