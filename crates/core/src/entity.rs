//! Entities — the moving objects of the system.

use core::fmt;

use cellflow_geom::{Fixed, Point, Square};

/// The unique identifier of an entity, drawn from the paper's infinite pool
/// `P`. Sources mint fresh identifiers in insertion order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EntityId(pub u64);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An entity: an identifier plus the current center position `(px, py)` of its
/// `l × l` square footprint.
///
/// ```
/// use cellflow_core::{Entity, EntityId};
/// use cellflow_geom::{Fixed, Point};
///
/// let e = Entity::new(EntityId(3), Point::new(Fixed::HALF, Fixed::HALF));
/// let footprint = e.footprint(Fixed::from_milli(250));
/// assert_eq!(footprint.low_x(), Fixed::from_milli(375));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Entity {
    /// The entity's identifier.
    pub id: EntityId,
    /// The center of the entity's footprint.
    pub pos: Point,
}

impl Entity {
    /// Creates an entity at `pos`.
    #[inline]
    pub const fn new(id: EntityId, pos: Point) -> Entity {
        Entity { id, pos }
    }

    /// The entity's `l × l` square footprint.
    #[inline]
    pub fn footprint(self, l: Fixed) -> Square {
        Square::new(self.pos, l)
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_mint_order() {
        assert!(EntityId(0) < EntityId(1));
        assert_eq!(EntityId::default(), EntityId(0));
        assert_eq!(EntityId(42).to_string(), "p42");
    }

    #[test]
    fn footprint_centers_on_position() {
        let e = Entity::new(
            EntityId(1),
            Point::new(Fixed::from_milli(1_500), Fixed::from_milli(2_500)),
        );
        let fp = e.footprint(Fixed::from_milli(200));
        assert_eq!(fp.center(), e.pos);
        assert_eq!(fp.side(), Fixed::from_milli(200));
        assert_eq!(e.to_string(), "p1@(1.5, 2.5)");
    }
}
