//! Source cells: entity insertion policies.
//!
//! The paper specifies only a contract (§II-B and assumption (b) of §III-B):
//! each source cell adds **at most one** entity per round, the addition must
//! not violate the minimum-gap requirement on that cell, and insertion must
//! not perpetually block the cell from granting its nonempty neighbors. The
//! concrete placement is an implementation choice; this module provides one
//! that satisfies the contract.

use cellflow_geom::{sep_ok, Fixed, Point};
use cellflow_grid::CellId;

use crate::{CellState, Params};

/// Where (and whether) a source cell places newly created entities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SourcePolicy {
    /// Insert at the edge *opposite* the cell's current `next` direction,
    /// centered on the transverse axis — as far as possible from where
    /// entities leave, so a new entity never blocks the outgoing boundary gap.
    /// Falls back to the cell center while `next = ⊥` (routing unstabilized).
    #[default]
    FarEdge,
    /// Never insert (turns a configured source off; useful for drain phases
    /// of experiments).
    Disabled,
}

impl SourcePolicy {
    /// The position at which a new entity would be inserted into `cell` this
    /// round, or `None` if the policy declines or no safe position exists.
    ///
    /// The returned position is guaranteed to
    /// * keep the entity's `l × l` footprint inside the cell with the margin
    ///   of Invariant 1, and
    /// * satisfy the center-spacing requirement `d` against every entity
    ///   already in `state.members` (so inserting preserves `Safe`).
    pub fn placement(self, params: Params, id: CellId, state: &CellState) -> Option<Point> {
        let pos = self.candidate(params, id, state.next)?;
        let d = params.d();
        if state.members.values().all(|&q| sep_ok(pos, q, d)) {
            Some(pos)
        } else {
            None
        }
    }

    /// The geometric half of [`SourcePolicy::placement`]: the position this
    /// policy would insert at given the cell's routed `next`, *before* the
    /// spacing check against current members. Split out so the engine can run
    /// the spacing check against its own entity arenas.
    pub(crate) fn candidate(self, params: Params, id: CellId, next: Option<CellId>) -> Option<Point> {
        match self {
            SourcePolicy::Disabled => None,
            SourcePolicy::FarEdge => {
                let center = id.center();
                Some(match next.and_then(|n| id.dir_to(n)) {
                    // Flush against the edge opposite the outgoing direction.
                    Some(dir) => {
                        let back = dir.opposite();
                        let flush = id.boundary(back) - params.half_l() * back.sign();
                        center.with_along(back.axis(), flush)
                    }
                    None => center,
                })
            }
        }
    }
}

/// `true` if `pos` keeps an `l × l` footprint inside cell `id` (Invariant 1's
/// margin: `i + l/2 ≤ px ≤ i+1 − l/2`, same for `py`).
pub(crate) fn within_cell_margins(params: Params, id: CellId, pos: Point) -> bool {
    let h = params.half_l();
    let lo_x = Fixed::from_int(id.i() as i64) + h;
    let hi_x = Fixed::from_int(id.i() as i64 + 1) - h;
    let lo_y = Fixed::from_int(id.j() as i64) + h;
    let hi_y = Fixed::from_int(id.j() as i64 + 1) - h;
    lo_x <= pos.x && pos.x <= hi_x && lo_y <= pos.y && pos.y <= hi_y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EntityId;
    use cellflow_geom::Dir;

    fn params() -> Params {
        Params::from_milli(250, 50, 100).unwrap()
    }

    fn cell_with_next(dir: Option<Dir>) -> (CellId, CellState) {
        let id = CellId::new(1, 1);
        let mut state = CellState::initial();
        state.next = dir.map(|d| id.step(d).unwrap());
        (id, state)
    }

    #[test]
    fn far_edge_opposes_flow_direction() {
        let p = params();
        // Flow east ⇒ insert flush at the west edge.
        let (id, state) = cell_with_next(Some(Dir::East));
        let pos = SourcePolicy::FarEdge.placement(p, id, &state).unwrap();
        assert_eq!(pos.x, Fixed::from_int(1) + p.half_l());
        assert_eq!(pos.y, Fixed::from_milli(1_500));
        assert!(within_cell_margins(p, id, pos));

        // Flow north ⇒ insert flush at the south edge.
        let (id, state) = cell_with_next(Some(Dir::North));
        let pos = SourcePolicy::FarEdge.placement(p, id, &state).unwrap();
        assert_eq!(pos.y, Fixed::from_int(1) + p.half_l());
        assert_eq!(pos.x, Fixed::from_milli(1_500));

        // Flow west ⇒ east edge.
        let (id, state) = cell_with_next(Some(Dir::West));
        let pos = SourcePolicy::FarEdge.placement(p, id, &state).unwrap();
        assert_eq!(pos.x, Fixed::from_int(2) - p.half_l());

        // Flow south ⇒ north edge.
        let (id, state) = cell_with_next(Some(Dir::South));
        let pos = SourcePolicy::FarEdge.placement(p, id, &state).unwrap();
        assert_eq!(pos.y, Fixed::from_int(2) - p.half_l());
    }

    #[test]
    fn without_next_uses_center() {
        let (id, state) = cell_with_next(None);
        let pos = SourcePolicy::FarEdge
            .placement(params(), id, &state)
            .unwrap();
        assert_eq!(pos, id.center());
    }

    #[test]
    fn insertion_respects_spacing() {
        let p = params();
        let (id, mut state) = cell_with_next(Some(Dir::East));
        let slot = SourcePolicy::FarEdge.placement(p, id, &state).unwrap();
        // Occupy exactly the insertion slot: no safe position remains there.
        state.members.insert(EntityId(0), slot);
        assert_eq!(SourcePolicy::FarEdge.placement(p, id, &state), None);
        // An entity d away along x is fine.
        state.members.clear();
        state
            .members
            .insert(EntityId(0), slot.translate(Dir::East, p.d()));
        assert_eq!(SourcePolicy::FarEdge.placement(p, id, &state), Some(slot));
        // An entity d−ε away blocks insertion.
        state.members.clear();
        state.members.insert(
            EntityId(0),
            slot.translate(Dir::East, p.d() - Fixed::from_raw(1)),
        );
        assert_eq!(SourcePolicy::FarEdge.placement(p, id, &state), None);
    }

    #[test]
    fn disabled_never_inserts() {
        let (id, state) = cell_with_next(Some(Dir::East));
        assert_eq!(SourcePolicy::Disabled.placement(params(), id, &state), None);
        assert_eq!(SourcePolicy::default(), SourcePolicy::FarEdge);
    }

    #[test]
    fn margins_reject_boundary_overhang() {
        let p = params();
        let id = CellId::new(0, 0);
        assert!(within_cell_margins(p, id, id.center()));
        // Exactly flush is allowed…
        let flush = Point::new(p.half_l(), Fixed::HALF);
        assert!(within_cell_margins(p, id, flush));
        // …one micro-unit past is not.
        let over = Point::new(p.half_l() - Fixed::from_raw(1), Fixed::HALF);
        assert!(!within_cell_margins(p, id, over));
    }
}
