//! The `Move` function (paper Figure 6): physical motion, transfers,
//! consumption, and source insertion.

use cellflow_geom::Point;
use cellflow_grid::CellId;

use crate::{EntityId, SystemConfig, SystemState};

/// An entity crossing from one cell into a neighboring cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transfer {
    /// Which entity moved.
    pub entity: EntityId,
    /// The cell it left.
    pub from: CellId,
    /// The cell it entered.
    pub to: CellId,
}

/// Everything the `Move` phase did in one round.
#[derive(Clone, Debug)]
pub struct MoveOutcome {
    /// The post-move state.
    pub state: SystemState,
    /// Entities consumed by the target this round (they left the system).
    pub consumed: Vec<EntityId>,
    /// Entity transfers between ordinary cells this round.
    pub transfers: Vec<Transfer>,
    /// Entities created by source cells this round, with their cell.
    pub inserted: Vec<(CellId, EntityId)>,
    /// Cells that held permission and moved their entities this round.
    pub moved: Vec<CellId>,
}

/// Applies the `Move` function to every cell simultaneously.
///
/// A non-faulty cell `⟨i,j⟩` with `next = ⟨m,n⟩` moves all its entities by `v`
/// toward `⟨m,n⟩` **iff** `signal_{m,n} = ⟨i,j⟩` (and `⟨m,n⟩` is alive — a
/// failed cell "never communicates", so its stale signal reads as `⊥`).
/// An entity whose far edge then lies strictly beyond the shared boundary is
/// removed from `Members_{i,j}` and
///
/// * **consumed** if `⟨m,n⟩ = tid` (it leaves the system), or
/// * **transferred**: added to `Members_{m,n}` with its crossing coordinate
///   snapped flush to the receiving cell's near edge — `px := m + l/2` when
///   entering from the west, `px := (m+1) − l/2` from the east (the paper's
///   line 16 has the sign typo corrected; see `DESIGN.md`), and symmetrically
///   for `py`.
///
/// After all motion, each non-faulty source cell inserts at most one fresh
/// entity per its [`SourcePolicy`](crate::SourcePolicy), never violating the
/// spacing requirement, and subject to the configured entity budget.
///
/// All reads are from the input state (positions, signals), so motion is
/// simultaneous: a cell may receive an entity in the same round it moves its
/// own — safety under that interleaving is exactly what predicate `H` and
/// Lemma 4 establish, and what `safety::check_safe` verifies in tests.
///
/// ```
/// use cellflow_core::{move_phase, route_phase, signal_phase, Params, System, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let cfg = SystemConfig::new(
///     GridDims::new(3, 1),
///     CellId::new(2, 0),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(0, 0));
/// let mut sys = System::new(cfg.clone());
/// sys.run(3); // routing stable, source primed
/// let x_s = signal_phase(&cfg, &route_phase(&cfg, sys.state()), 3);
/// let outcome = move_phase(&cfg, &x_s);
/// // The granted source cell moved its entities toward the corridor.
/// assert!(!outcome.moved.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn move_phase(config: &SystemConfig, state: &SystemState) -> MoveOutcome {
    let dims = config.dims();
    let params = config.params();
    let v = params.v();
    let h = params.half_l();

    let mut out = state.clone();
    let mut consumed = Vec::new();
    let mut transfers = Vec::new();
    let mut inserted = Vec::new();
    let mut moved = Vec::new();
    let mut incoming: Vec<(CellId, EntityId, Point)> = Vec::new();

    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || cell.members.is_empty() {
            continue;
        }
        let Some(nx) = cell.next else { continue };
        let nx_cell = state.cell(dims, nx);
        if nx_cell.failed || nx_cell.signal != Some(id) {
            continue;
        }
        let dir = id.dir_to(nx).expect("next is always a neighbor");
        moved.push(id);
        let boundary = id.boundary(dir);
        for (&eid, &pos) in &cell.members {
            let new_pos = pos.translate(dir, v);
            let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
            let crossed = if dir.sign() > 0 {
                far_edge > boundary
            } else {
                far_edge < boundary
            };
            let members = &mut out.cell_mut(dims, id).members;
            if crossed {
                members.remove(&eid);
                if nx == config.target() {
                    consumed.push(eid);
                } else {
                    // Enter the receiving cell flush at its near edge.
                    let entry_edge = nx.boundary(dir.opposite());
                    let snapped = new_pos.with_along(dir.axis(), entry_edge + h * dir.sign());
                    incoming.push((nx, eid, snapped));
                    transfers.push(Transfer {
                        entity: eid,
                        from: id,
                        to: nx,
                    });
                }
            } else {
                members.insert(eid, new_pos);
            }
        }
    }

    for (to, eid, pos) in incoming {
        out.cell_mut(dims, to).members.insert(eid, pos);
    }

    // Source insertion (at most one entity per source per round).
    for &s in config.sources() {
        if state.cell(dims, s).failed {
            continue; // a failed cell does nothing
        }
        if let Some(budget) = config.entity_budget() {
            if out.next_entity_id >= budget {
                continue;
            }
        }
        let placement = config
            .source_policy()
            .placement(params, s, out.cell(dims, s));
        if let Some(pos) = placement {
            let eid = EntityId(out.next_entity_id);
            out.next_entity_id += 1;
            out.cell_mut(dims, s).members.insert(eid, pos);
            inserted.push((s, eid));
        }
    }

    MoveOutcome {
        state: out,
        consumed,
        transfers,
        inserted,
        moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, SourcePolicy, SystemConfig};
    use cellflow_geom::{Dir, Fixed};
    use cellflow_grid::GridDims;

    fn params() -> Params {
        Params::from_milli(250, 50, 100).unwrap() // l=0.25, rs=0.05, v=0.1
    }

    fn config() -> SystemConfig {
        SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params()).unwrap()
    }

    fn pt(xm: i64, ym: i64) -> Point {
        Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym))
    }

    /// State where ⟨0,1⟩ holds one entity and has permission to move east.
    fn granted_state(cfg: &SystemConfig, entity_x_milli: i64) -> SystemState {
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        s.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(entity_x_milli, 1_500));
        s.cell_mut(dims, CellId::new(1, 1)).signal = Some(CellId::new(0, 1));
        s
    }

    #[test]
    fn permitted_cell_moves_by_v() {
        let cfg = config();
        let s = granted_state(&cfg, 500);
        let out = move_phase(&cfg, &s);
        assert_eq!(out.moved, vec![CellId::new(0, 1)]);
        assert!(out.transfers.is_empty());
        assert_eq!(
            out.state.cell(cfg.dims(), CellId::new(0, 1)).members[&EntityId(0)],
            pt(600, 1_500)
        );
    }

    #[test]
    fn unpermitted_cell_is_static() {
        let cfg = config();
        let mut s = granted_state(&cfg, 500);
        // Revoke the permission.
        s.cell_mut(cfg.dims(), CellId::new(1, 1)).signal = None;
        let out = move_phase(&cfg, &s);
        assert!(out.moved.is_empty());
        assert_eq!(
            out.state.cell(cfg.dims(), CellId::new(0, 1)).members[&EntityId(0)],
            pt(500, 1_500)
        );
        // Permission addressed to someone else also doesn't move us.
        s.cell_mut(cfg.dims(), CellId::new(1, 1)).signal = Some(CellId::new(1, 0));
        assert!(move_phase(&cfg, &s).moved.is_empty());
    }

    #[test]
    fn eastward_transfer_snaps_to_west_edge() {
        let cfg = config();
        // Entity at x = 0.85: far edge 0.975; after v = 0.1 → edge 1.075 > 1: crosses.
        let s = granted_state(&cfg, 850);
        let out = move_phase(&cfg, &s);
        assert_eq!(
            out.transfers,
            vec![Transfer {
                entity: EntityId(0),
                from: CellId::new(0, 1),
                to: CellId::new(1, 1)
            }]
        );
        assert!(out
            .state
            .cell(cfg.dims(), CellId::new(0, 1))
            .members
            .is_empty());
        // Snapped flush: px = 1 + l/2 = 1.125, py preserved.
        assert_eq!(
            out.state.cell(cfg.dims(), CellId::new(1, 1)).members[&EntityId(0)],
            pt(1_125, 1_500)
        );
    }

    #[test]
    fn touching_the_boundary_does_not_transfer() {
        let cfg = config();
        // x = 0.775: far edge 0.9; after v → edge exactly 1.0: NOT strictly past.
        let s = granted_state(&cfg, 775);
        let out = move_phase(&cfg, &s);
        assert!(out.transfers.is_empty());
        assert_eq!(
            out.state.cell(cfg.dims(), CellId::new(0, 1)).members[&EntityId(0)],
            pt(875, 1_500)
        );
    }

    #[test]
    fn westward_transfer_snaps_to_east_edge() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(1, 1)).next = Some(CellId::new(0, 1));
        s.cell_mut(dims, CellId::new(1, 1))
            .members
            .insert(EntityId(0), pt(1_150, 1_500)); // near west edge of ⟨1,1⟩
        s.cell_mut(dims, CellId::new(0, 1)).signal = Some(CellId::new(1, 1));
        let out = move_phase(&cfg, &s);
        assert_eq!(out.transfers.len(), 1);
        // Entering ⟨0,1⟩ from the east: px = 1 − l/2 = 0.875 (the corrected
        // Figure 6 line 16).
        assert_eq!(
            out.state.cell(dims, CellId::new(0, 1)).members[&EntityId(0)],
            pt(875, 1_500)
        );
    }

    #[test]
    fn vertical_transfers_snap_too() {
        let cfg = config();
        let dims = cfg.dims();
        // North: ⟨1,0⟩ → ⟨1,1⟩.
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(1, 0)).next = Some(CellId::new(1, 1));
        s.cell_mut(dims, CellId::new(1, 0))
            .members
            .insert(EntityId(0), pt(1_500, 850));
        s.cell_mut(dims, CellId::new(1, 1)).signal = Some(CellId::new(1, 0));
        let out = move_phase(&cfg, &s);
        assert_eq!(
            out.state.cell(dims, CellId::new(1, 1)).members[&EntityId(0)],
            pt(1_500, 1_125)
        );
        // South: ⟨1,2⟩ → ⟨1,1⟩.
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(1, 2)).next = Some(CellId::new(1, 1));
        s.cell_mut(dims, CellId::new(1, 2))
            .members
            .insert(EntityId(0), pt(1_500, 2_150));
        s.cell_mut(dims, CellId::new(1, 1)).signal = Some(CellId::new(1, 2));
        let out = move_phase(&cfg, &s);
        assert_eq!(
            out.state.cell(dims, CellId::new(1, 1)).members[&EntityId(0)],
            pt(1_500, 1_875)
        );
    }

    #[test]
    fn target_consumes_instead_of_receiving() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        // ⟨1,1⟩ routes into the target ⟨2,1⟩ with an entity about to cross.
        s.cell_mut(dims, CellId::new(1, 1)).next = Some(CellId::new(2, 1));
        s.cell_mut(dims, CellId::new(1, 1))
            .members
            .insert(EntityId(7), pt(1_850, 1_500));
        s.cell_mut(dims, CellId::new(2, 1)).signal = Some(CellId::new(1, 1));
        let out = move_phase(&cfg, &s);
        assert_eq!(out.consumed, vec![EntityId(7)]);
        assert!(out.transfers.is_empty());
        assert_eq!(out.state.entity_count(), 0);
        assert!(out.state.cell(dims, CellId::new(2, 1)).members.is_empty());
    }

    #[test]
    fn failed_next_grants_nothing() {
        let cfg = config();
        let mut s = granted_state(&cfg, 500);
        // The granting cell fails, but its stale signal remains in memory:
        // a failed cell never communicates, so no movement may happen.
        let dims = cfg.dims();
        s.cell_mut(dims, CellId::new(1, 1)).failed = true;
        s.cell_mut(dims, CellId::new(1, 1)).signal = Some(CellId::new(0, 1));
        let out = move_phase(&cfg, &s);
        assert!(out.moved.is_empty());
    }

    #[test]
    fn failed_cell_does_not_move_even_with_grant() {
        let cfg = config();
        let mut s = granted_state(&cfg, 500);
        s.cell_mut(cfg.dims(), CellId::new(0, 1)).failed = true;
        let out = move_phase(&cfg, &s);
        assert!(out.moved.is_empty());
        assert_eq!(
            out.state.cell(cfg.dims(), CellId::new(0, 1)).members[&EntityId(0)],
            pt(500, 1_500),
            "entities on failed cells are frozen"
        );
    }

    #[test]
    fn two_side_by_side_entities_transfer_together() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        // Same x, d-separated in y: both cross together.
        s.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(850, 1_300));
        s.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(1), pt(850, 1_600));
        s.cell_mut(dims, CellId::new(1, 1)).signal = Some(CellId::new(0, 1));
        let out = move_phase(&cfg, &s);
        assert_eq!(out.transfers.len(), 2);
        let m = &out.state.cell(dims, CellId::new(1, 1)).members;
        assert_eq!(m[&EntityId(0)], pt(1_125, 1_300));
        assert_eq!(m[&EntityId(1)], pt(1_125, 1_600));
    }

    #[test]
    fn sources_insert_with_budget() {
        let cfg = SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params())
            .unwrap()
            .with_source(CellId::new(0, 1))
            .with_entity_budget(2);
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        // Round 1: insert p0 at far (west) edge.
        let out = move_phase(&cfg, &s);
        assert_eq!(out.inserted, vec![(CellId::new(0, 1), EntityId(0))]);
        assert_eq!(out.state.next_entity_id, 1);
        assert_eq!(
            out.state.cell(dims, CellId::new(0, 1)).members[&EntityId(0)],
            pt(125, 1_500)
        );
        // Round 2 without movement: slot occupied ⇒ no insertion.
        let mut s2 = out.state;
        s2.cell_mut(dims, CellId::new(0, 1)).next = Some(CellId::new(1, 1));
        let out2 = move_phase(&cfg, &s2);
        assert!(out2.inserted.is_empty());
        // Move the resident d away; insertion resumes (budget: one left).
        let mut s3 = out2.state;
        s3.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(125 + 300, 1_500));
        let out3 = move_phase(&cfg, &s3);
        assert_eq!(out3.inserted.len(), 1);
        assert_eq!(out3.state.next_entity_id, 2);
        // Budget exhausted: no more insertions ever.
        let mut s4 = out3.state;
        s4.cell_mut(dims, CellId::new(0, 1)).members.clear();
        let out4 = move_phase(&cfg, &s4);
        assert!(out4.inserted.is_empty());
    }

    #[test]
    fn failed_source_does_not_insert() {
        let cfg = SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params())
            .unwrap()
            .with_source(CellId::new(0, 1));
        let mut s = cfg.initial_state();
        s.fail(cfg.dims(), CellId::new(0, 1));
        let out = move_phase(&cfg, &s);
        assert!(out.inserted.is_empty());
    }

    #[test]
    fn disabled_source_policy_inserts_nothing() {
        let cfg = SystemConfig::new(GridDims::square(3), CellId::new(2, 1), params())
            .unwrap()
            .with_source(CellId::new(0, 1))
            .with_source_policy(SourcePolicy::Disabled);
        let out = move_phase(&cfg, &cfg.initial_state());
        assert!(out.inserted.is_empty());
    }

    #[test]
    fn mutual_grant_produces_no_transfer() {
        // Lemma 4: signal 2-cycle ⇒ Members unchanged (entities may still move
        // inside their cells, but cannot cross).
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let a = CellId::new(0, 1);
        let b = CellId::new(1, 1);
        s.cell_mut(dims, a).next = Some(b);
        s.cell_mut(dims, b).next = Some(a);
        s.cell_mut(dims, a).signal = Some(b);
        s.cell_mut(dims, b).signal = Some(a);
        // Positions satisfying H on both sides (the only reachable way a
        // mutual grant arises): gaps free toward each other.
        s.cell_mut(dims, a)
            .members
            .insert(EntityId(0), pt(500, 1_500));
        s.cell_mut(dims, b)
            .members
            .insert(EntityId(1), pt(1_500, 1_500));
        let out = move_phase(&cfg, &s);
        assert!(out.transfers.is_empty(), "Lemma 4 violated");
        assert_eq!(out.moved.len(), 2);
        // Both moved toward each other without crossing.
        assert_eq!(
            out.state.cell(dims, a).members[&EntityId(0)],
            pt(600, 1_500)
        );
        assert_eq!(
            out.state.cell(dims, b).members[&EntityId(1)],
            pt(1_400, 1_500)
        );
    }

    #[test]
    fn dir_to_direction_matrix_covers_moves() {
        // Sanity: a grant moves entities exactly toward `next` for all four dirs.
        let cfg = config();
        let dims = cfg.dims();
        let center = CellId::new(1, 1);
        for dir in Dir::ALL {
            let nbr = center.step(dir).unwrap();
            let mut s = cfg.initial_state();
            s.cell_mut(dims, center).next = Some(nbr);
            s.cell_mut(dims, center)
                .members
                .insert(EntityId(0), pt(1_500, 1_500));
            s.cell_mut(dims, nbr).signal = Some(center);
            let out = move_phase(&cfg, &s);
            let moved_to = out.state.cell(dims, center).members[&EntityId(0)];
            assert_eq!(
                moved_to,
                pt(1_500, 1_500).translate(dir, params().v()),
                "{dir}"
            );
        }
    }
}
