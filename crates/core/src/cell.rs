//! Per-cell protocol state — the variables of `Cell_{i,j}` (paper Figure 3).

use std::collections::{BTreeMap, BTreeSet};

use cellflow_geom::Point;
use cellflow_grid::CellId;
use cellflow_routing::Dist;

use crate::{Entity, EntityId};

/// The state variables of one cell automaton `Cell_{i,j}`:
///
/// | paper        | here          | shared with neighbors? |
/// |--------------|---------------|------------------------|
/// | `Members`    | [`members`]   | yes (also written by them on transfer) |
/// | `dist`       | [`dist`]      | yes |
/// | `next`       | [`next`]      | yes |
/// | `signal`     | [`signal`]    | yes |
/// | `NEPrev`     | [`ne_prev`]   | private |
/// | `token`      | [`token`]     | private |
/// | `failed`     | [`failed`]    | private |
///
/// `Members` is stored as an ordered map from [`EntityId`] to center position
/// so iteration is deterministic and whole-system states hash consistently
/// (required by the model checker).
///
/// Initial values follow Figure 3: empty members, `dist = ∞`, and `⊥`
/// (`None`) pointers — except the target cell, whose `dist` is pinned to `0`
/// by [`SystemConfig`](crate::SystemConfig).
///
/// [`members`]: CellState::members
/// [`dist`]: CellState::dist
/// [`next`]: CellState::next
/// [`signal`]: CellState::signal
/// [`ne_prev`]: CellState::ne_prev
/// [`token`]: CellState::token
/// [`failed`]: CellState::failed
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellState {
    /// `Members_{i,j}`: the entities currently on this cell.
    pub members: BTreeMap<EntityId, Point>,
    /// `dist_{i,j}`: estimated hop distance to the target (`∞` when failed or
    /// disconnected).
    pub dist: Dist,
    /// `next_{i,j}`: the neighbor this cell attempts to move entities toward
    /// (`None` is the paper's `⊥`).
    pub next: Option<CellId>,
    /// `NEPrev_{i,j}`: the nonempty neighbors currently routing through this
    /// cell (recomputed every round by `Signal`).
    pub ne_prev: BTreeSet<CellId>,
    /// `token_{i,j}`: which member of `NEPrev` holds this cell's
    /// permission-to-move token.
    pub token: Option<CellId>,
    /// `signal_{i,j}`: the neighbor (if any) this cell currently permits to
    /// move entities toward it.
    pub signal: Option<CellId>,
    /// `failed_{i,j}`: whether this cell has crashed.
    pub failed: bool,
}

impl CellState {
    /// The initial state of an ordinary cell (Figure 3's `:=` column).
    pub fn initial() -> CellState {
        CellState {
            members: BTreeMap::new(),
            dist: Dist::Infinity,
            next: None,
            ne_prev: BTreeSet::new(),
            token: None,
            signal: None,
            failed: false,
        }
    }

    /// The initial state of the target cell: as [`CellState::initial`] but
    /// with `dist = 0` (the target is the routing anchor; `Route` never
    /// recomputes it and recovery resets it — paper §IV).
    pub fn initial_target() -> CellState {
        CellState {
            dist: Dist::Finite(0),
            ..CellState::initial()
        }
    }

    /// `true` if this cell holds no entities.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of entities on this cell.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Iterates the cell's entities in identifier order.
    pub fn entities(&self) -> impl Iterator<Item = Entity> + '_ {
        self.members.iter().map(|(&id, &pos)| Entity::new(id, pos))
    }
}

impl Default for CellState {
    /// Same as [`CellState::initial`].
    fn default() -> CellState {
        CellState::initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::Fixed;

    #[test]
    fn initial_matches_figure3() {
        let c = CellState::initial();
        assert!(c.members.is_empty());
        assert_eq!(c.dist, Dist::Infinity);
        assert_eq!(c.next, None);
        assert!(c.ne_prev.is_empty());
        assert_eq!(c.token, None);
        assert_eq!(c.signal, None);
        assert!(!c.failed);
        assert_eq!(CellState::default(), c);
    }

    #[test]
    fn target_initial_has_zero_dist() {
        let t = CellState::initial_target();
        assert_eq!(t.dist, Dist::Finite(0));
        assert!(t.is_empty());
    }

    #[test]
    fn entities_iterate_in_id_order() {
        let mut c = CellState::initial();
        let p = |m: i64| Point::new(Fixed::from_milli(m), Fixed::HALF);
        c.members.insert(EntityId(5), p(500));
        c.members.insert(EntityId(1), p(100));
        c.members.insert(EntityId(3), p(300));
        let ids: Vec<_> = c.entities().map(|e| e.id).collect();
        assert_eq!(ids, vec![EntityId(1), EntityId(3), EntityId(5)]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
