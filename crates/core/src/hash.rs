//! Shared deterministic hashes — the workspace's single home for
//! splitmix64-style mixing and the FNV-1a report/frame checksum.
//!
//! The implementations live in dependency-free `cellflow_dts::hash` (this
//! crate sits above it); this module re-exports them and adds the
//! grid-aware derivations. Byte-identical reports per seed are a
//! workspace-wide contract, so the tests below pin every consolidated
//! function to the exact stream the historical per-site copies produced.

use cellflow_grid::CellId;

pub use cellflow_dts::hash::{
    append_frame, fnv1a, frame, next_frame, splitmix64, walk_seed, FrameStep, FrameTear,
    FRAME_HEADER_LEN, SPLITMIX64_GAMMA,
};

/// Splitmix-style mix of a run seed and a directed edge's endpoints, so
/// every edge draws from a distinct, schedule-independent stream — the seed
/// derivation behind per-edge chaos and link-fault decisions.
pub fn edge_seed(seed: u64, from: CellId, to: CellId) -> u64 {
    splitmix64(
        seed ^ ((from.i() as u64) << 48)
            ^ ((from.j() as u64) << 32)
            ^ ((to.i() as u64) << 16)
            ^ (to.j() as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // The historical per-site copies, reproduced verbatim so the
    // consolidated functions are pinned to the exact streams every
    // checksummed report was sealed with.

    /// `net::supervisor` / `core::overload` formulation.
    fn splitmix64_legacy(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `dts::montecarlo` formulation.
    fn walk_seed_legacy(seed: u64, walk: usize) -> u64 {
        let mut z = seed
            .wrapping_add((walk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `net::transport` formulation.
    fn edge_seed_legacy(seed: u64, from: CellId, to: CellId) -> u64 {
        let mut z = seed
            ^ ((from.i() as u64) << 48)
            ^ ((from.j() as u64) << 32)
            ^ ((to.i() as u64) << 16)
            ^ (to.j() as u64);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `net::store` / `core::certify` formulation.
    fn fnv1a_legacy(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    #[test]
    fn splitmix64_matches_the_supervisor_and_overload_streams() {
        for x in [0u64, 1, 42, 0x5EED, 0xDEAD_BEEF, u64::MAX, u64::MAX / 3] {
            assert_eq!(splitmix64(x), splitmix64_legacy(x), "input {x:#x}");
        }
        // A long sequential sweep for good measure.
        for x in 0..10_000u64 {
            assert_eq!(splitmix64(x), splitmix64_legacy(x));
        }
    }

    #[test]
    fn walk_seed_matches_the_montecarlo_stream() {
        for seed in [0u64, 1, 0x5EED, 0xFEED_FACE, u64::MAX] {
            for walk in [0usize, 1, 2, 63, 64, 1_000_000] {
                assert_eq!(
                    walk_seed(seed, walk),
                    walk_seed_legacy(seed, walk),
                    "seed {seed:#x} walk {walk}"
                );
            }
        }
    }

    #[test]
    fn edge_seed_matches_the_chaos_transport_stream() {
        for seed in [0u64, 7, 42, 0x00C0_FFEE] {
            for (fi, fj, ti, tj) in [(0, 0, 0, 1), (3, 2, 3, 3), (15, 15, 15, 14), (1, 0, 0, 0)] {
                let from = CellId::new(fi, fj);
                let to = CellId::new(ti, tj);
                assert_eq!(
                    edge_seed(seed, from, to),
                    edge_seed_legacy(seed, from, to),
                    "seed {seed} edge {from}->{to}"
                );
            }
        }
    }

    #[test]
    fn fnv1a_matches_the_store_and_certify_streams() {
        let cases: [&[u8]; 6] = [
            b"",
            b"a",
            b"checksum: deadbeef",
            b"rounds: 142\nviolations: 0\n",
            &[0u8; 64],
            &[0xFF; 257],
        ];
        for bytes in cases {
            assert_eq!(fnv1a(bytes), fnv1a_legacy(bytes));
        }
    }

    #[test]
    fn edge_seed_distinguishes_direction() {
        let a = CellId::new(1, 1);
        let b = CellId::new(1, 2);
        assert_ne!(edge_seed(9, a, b), edge_seed(9, b, a));
    }

    /// The `net::store` WAL framing, reproduced verbatim: frames written by
    /// every existing WAL file must keep parsing through the consolidated
    /// codec, and frames written by the consolidated codec must be
    /// byte-identical to what the store always wrote.
    fn frame_legacy(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a_legacy(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn frame_matches_the_store_wal_stream() {
        let cases: [&[u8]; 5] = [
            b"",
            b"x",
            b"round 12 sealed",
            &[0u8; 100],
            &[0xAB; 300],
        ];
        for payload in cases {
            assert_eq!(frame(payload), frame_legacy(payload), "payload len {}", payload.len());
        }
    }

    #[test]
    fn next_frame_parses_legacy_wal_bytes() {
        // A stream written entirely by the legacy formulation must decode
        // cleanly, including the legacy torn-tail reading of a short tail.
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame_legacy(b"alpha"));
        stream.extend_from_slice(&frame_legacy(b"beta"));
        let clean = stream.len();
        stream.extend_from_slice(&frame_legacy(b"gamma")[..9]); // torn tail

        let FrameStep::Frame { payload, next } = next_frame(&stream, 0) else {
            panic!("first legacy frame must parse");
        };
        assert_eq!(payload, b"alpha");
        let FrameStep::Frame { payload, next } = next_frame(&stream, next) else {
            panic!("second legacy frame must parse");
        };
        assert_eq!(payload, b"beta");
        assert_eq!(
            next_frame(&stream, next),
            FrameStep::Torn { offset: clean, reason: FrameTear::Header }
        );
    }
}
