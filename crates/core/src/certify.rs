//! Mechanical stabilization certificates: Corollary 7 / Theorem 10 as a
//! machine-checkable regression gate.
//!
//! The paper proves that the protocol *self*-stabilizes — from an arbitrary
//! transient corruption of protocol state, routing re-converges within
//! `O(N²)` rounds (Corollary 7) and entity progress resumes (Theorem 10),
//! with safety (Theorem 5) holding throughout. [`certify`] turns that claim
//! into an executable experiment: drive the reference system through a
//! scripted corruption campaign, watch it with the standard monitors, and
//! emit a [`Certificate`] recording the re-stabilization time against the
//! [`stabilization_bound`] and the exact violation counts. A certificate
//! [`holds`] only if stabilization beat the bound *and* no monitor fired.
//!
//! When a campaign fails its certificate, [`shrink`] greedily reduces it to
//! a minimal corrupting counterexample (every remaining event is necessary
//! for the failure) — the debugging artifact a falsified theorem deserves.
//! The vendored `proptest` stand-in has no shrinking of its own, so the
//! reduction is a hand-rolled delta-debugging loop over certificate runs.
//!
//! [`holds`]: Certificate::holds

use core::fmt::Write as _;

use cellflow_grid::CellId;

use crate::fault::{Corruption, FaultKind, FaultPlan, FlakySpec, LinkFault, PartitionPlan};
use crate::monitor::{
    stabilization_bound, ConservationMonitor, Monitor, MonitorCtx, ReachabilityMonitor,
    RoutingMonitor, SafetyMonitor, StabilizationMonitor,
};
use crate::{System, SystemConfig};

/// One scripted corruption: `corruption` hits `cell` at the start of
/// (1-based) round `round`, before that round's `update` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptionEvent {
    /// The 1-based round at whose start the corruption is applied.
    pub round: u64,
    /// The victim cell.
    pub cell: CellId,
    /// The state perturbation.
    pub corruption: Corruption,
}

/// Knobs for [`certify`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CertifyOptions {
    /// Rounds to keep driving after the last scheduled corruption; `None`
    /// means the stabilization bound plus two, so an in-bound recovery has
    /// room to show itself and an out-of-bound one is caught.
    pub settle: Option<u64>,
    /// Overrides the [`stabilization_bound`] — a testing aid for forcing
    /// certificate failures without a genuinely broken protocol.
    pub bound_override: Option<u64>,
}

/// The outcome of one certification run: the campaign, the bound it was
/// judged against, and everything the monitors saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The corruption campaign that was driven.
    pub ops: Vec<CorruptionEvent>,
    /// The round budget stabilization was judged against.
    pub bound: u64,
    /// Total rounds driven.
    pub rounds: u64,
    /// Rounds from the last disturbance to re-stabilization; `None` if the
    /// run ended unstabilized.
    pub rounds_to_stabilize: Option<u64>,
    /// Theorem 5 / Invariant violations observed.
    pub safety_violations: u64,
    /// Structural routing violations observed.
    pub routing_violations: u64,
    /// Entity-conservation violations observed.
    pub conservation_violations: u64,
    /// Stabilization-bound violations observed.
    pub stabilization_violations: u64,
}

impl Certificate {
    /// `true` iff the run re-stabilized within the bound and no monitor of
    /// any kind fired — the machine-checkable form of "Corollary 7 and
    /// Theorem 5 both held under this adversary".
    pub fn holds(&self) -> bool {
        self.rounds_to_stabilize.is_some_and(|r| r <= self.bound)
            && self.safety_violations == 0
            && self.routing_violations == 0
            && self.conservation_violations == 0
            && self.stabilization_violations == 0
    }

    /// A deterministic plain-text report: byte-identical for equal
    /// certificates, closed by an FNV-1a checksum over the preceding lines
    /// so external tooling can verify the report wasn't hand-edited.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "stabilization certificate");
        let _ = writeln!(s, "bound: {} rounds", self.bound);
        let _ = writeln!(s, "rounds driven: {}", self.rounds);
        let _ = writeln!(s, "corruptions: {}", self.ops.len());
        for op in &self.ops {
            let _ = writeln!(
                s,
                "  round {:>4}  cell ({},{})  {:?}",
                op.round,
                op.cell.i(),
                op.cell.j(),
                op.corruption
            );
        }
        let restab = match self.rounds_to_stabilize {
            Some(r) => format!("{r} rounds after last disturbance"),
            None => "NO".to_string(),
        };
        let _ = writeln!(s, "re-stabilized: {restab}");
        let _ = writeln!(
            s,
            "violations: safety={} routing={} conservation={} stabilization={}",
            self.safety_violations,
            self.routing_violations,
            self.conservation_violations,
            self.stabilization_violations
        );
        let _ = writeln!(
            s,
            "verdict: {}",
            if self.holds() { "CERTIFIED" } else { "FAILED" }
        );
        let checksum = fnv1a(s.as_bytes());
        let _ = writeln!(s, "checksum: {checksum:016x}");
        s
    }
}

/// FNV-1a over `bytes` — the checksum sealing a rendered certificate
/// (re-exported from the shared [`crate::hash`] module).
pub use crate::hash::fnv1a;

/// Drives the reference system through `ops` under the standard monitors
/// and reports what happened as a [`Certificate`].
///
/// Each round, the corruptions scheduled for it are applied in order before
/// `update` runs, and the monitors observe the end-of-round state with the
/// victims listed in [`MonitorCtx::corrupted`] (restarting the stabilization
/// stopwatch and re-baselining conservation). The run lasts until
/// [`CertifyOptions::settle`] rounds past the last corruption.
pub fn certify(config: &SystemConfig, ops: &[CorruptionEvent], opts: &CertifyOptions) -> Certificate {
    let bound = opts.bound_override.unwrap_or_else(|| stabilization_bound(config));
    let last_op = ops.iter().map(|o| o.round).max().unwrap_or(0);
    let total = last_op + opts.settle.unwrap_or(bound + 2);
    let mut sys = System::new(config.clone());
    let mut safety = SafetyMonitor::new();
    let mut routing = RoutingMonitor::new();
    let mut conservation = ConservationMonitor::new();
    let mut stabilization = StabilizationMonitor::with_bound(bound);
    let mut counts = [0u64; 4];
    for round in 1..=total {
        let corrupted: Vec<CellId> = ops
            .iter()
            .filter(|o| o.round == round)
            .map(|o| {
                sys.corrupt(o.cell, o.corruption);
                o.cell
            })
            .collect();
        sys.step();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: sys.round(),
            failed: &[],
            recovered: &[],
            corrupted: &corrupted,
            ambient_chaos: false,
            consumed_total: sys.consumed_total(),
            inserted_total: sys.inserted_total(),
        };
        counts[0] += safety.observe(&ctx).len() as u64;
        counts[1] += routing.observe(&ctx).len() as u64;
        counts[2] += conservation.observe(&ctx).len() as u64;
        counts[3] += stabilization.observe(&ctx).len() as u64;
    }
    Certificate {
        ops: ops.to_vec(),
        bound,
        rounds: total,
        rounds_to_stabilize: stabilization.rounds_to_stabilize(),
        safety_violations: counts[0],
        routing_violations: counts[1],
        conservation_violations: counts[2],
        stabilization_violations: counts[3],
    }
}

/// Certifies many independent corruption campaigns on `threads` scoped
/// workers, each owning a disjoint chunk of the campaign list. Every
/// campaign drives its own fresh [`System`] and [`certify`] is deterministic,
/// so the result — certificate structs *and* their rendered reports — is
/// byte-identical to mapping [`certify`] sequentially, in input order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn certify_batch(
    config: &SystemConfig,
    campaigns: &[Vec<CorruptionEvent>],
    opts: &CertifyOptions,
    threads: usize,
) -> Vec<Certificate> {
    if threads <= 1 || campaigns.len() <= 1 {
        return campaigns.iter().map(|ops| certify(config, ops, opts)).collect();
    }
    let workers = threads.min(campaigns.len());
    let chunk = campaigns.len().div_ceil(workers);
    let mut results: Vec<Option<Certificate>> = Vec::new();
    results.resize_with(campaigns.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (input, output) in campaigns.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (ops, slot) in input.iter().zip(output.iter_mut()) {
                    *slot = Some(certify(config, ops, opts));
                }
            });
        }
    })
    .expect("certify worker panicked");
    results
        .into_iter()
        .map(|c| c.expect("every campaign was certified"))
        .collect()
}

/// Converts the [`FaultKind::Corrupt`] events of `plan` into the
/// certifier's event list (other fault kinds are ignored — the certifier
/// models the pure corruption adversary; crash/recover adversaries are the
/// chaos layer's).
pub fn corruption_events(plan: &FaultPlan) -> Vec<CorruptionEvent> {
    plan.events()
        .iter()
        .filter_map(|e| match e.kind {
            FaultKind::Corrupt(c) => Some(CorruptionEvent {
                round: e.round.max(1),
                cell: e.cell,
                corruption: c,
            }),
            _ => None,
        })
        .collect()
}

/// Reduces a failing campaign to a minimal corrupting counterexample by
/// greedy delta debugging: repeatedly drop any event whose removal keeps
/// the certificate failing, until every remaining event is necessary.
/// Returns `ops` unchanged if its certificate already holds.
pub fn shrink(
    config: &SystemConfig,
    ops: &[CorruptionEvent],
    opts: &CertifyOptions,
) -> Vec<CorruptionEvent> {
    let mut current = ops.to_vec();
    if certify(config, &current, opts).holds() {
        return current;
    }
    loop {
        let mut removed_any = false;
        let mut k = 0;
        while k < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            candidate.remove(k);
            if !certify(config, &candidate, opts).holds() {
                current = candidate;
                removed_any = true;
            } else {
                k += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

/// The outcome of one link-fault certification run: the partition campaign,
/// the bound its *post-heal* recovery was judged against, and everything the
/// monitors (including the split-brain [`ReachabilityMonitor`]) saw.
///
/// This is the partition-tolerance twin of [`Certificate`]: where `certify`
/// drives the state-corruption adversary of Corollary 7, [`certify_links`]
/// drives the *communication* adversary — scripted directed link cuts and
/// flaky links — and certifies that safety held throughout the episode and
/// routing re-stabilized within the bound once the links healed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkCertificate {
    /// The scripted directed cuts that were driven.
    pub faults: Vec<LinkFault>,
    /// The seeded flaky-link specs that were driven.
    pub flaky: Vec<FlakySpec>,
    /// The round at which the last cut healed; `None` if some cut never
    /// heals (such a campaign can never certify post-heal stabilization).
    pub heal_round: Option<u64>,
    /// The round budget post-heal stabilization was judged against.
    pub bound: u64,
    /// Total rounds driven.
    pub rounds: u64,
    /// Rounds from the last partitioned round to re-stabilization; `None`
    /// if the run ended unstabilized.
    pub rounds_to_stabilize: Option<u64>,
    /// The largest number of simultaneous connected components observed.
    pub max_components: u32,
    /// Theorem 5 / Invariant violations observed.
    pub safety_violations: u64,
    /// Structural routing violations observed.
    pub routing_violations: u64,
    /// Entity-conservation violations observed.
    pub conservation_violations: u64,
    /// Stabilization-bound violations observed.
    pub stabilization_violations: u64,
    /// Split-brain violations (unsafe while partitioned, or an entity
    /// crossing a cut edge) observed.
    pub reachability_violations: u64,
}

impl LinkCertificate {
    /// `true` iff every cut healed, routing re-stabilized within the bound
    /// of the heal, and no monitor of any kind fired — "Theorem 5 held
    /// through the split and Corollary 7 held after the heal".
    pub fn holds(&self) -> bool {
        self.heal_round.is_some()
            && self.rounds_to_stabilize.is_some_and(|r| r <= self.bound)
            && self.safety_violations == 0
            && self.routing_violations == 0
            && self.conservation_violations == 0
            && self.stabilization_violations == 0
            && self.reachability_violations == 0
    }

    /// A deterministic plain-text report, byte-identical for equal
    /// certificates and sealed by an FNV-1a checksum like
    /// [`Certificate::render`].
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "link-fault certificate");
        let _ = writeln!(s, "bound: {} rounds", self.bound);
        let _ = writeln!(s, "rounds driven: {}", self.rounds);
        let _ = writeln!(s, "scripted cuts: {}", self.faults.len());
        for f in &self.faults {
            let heal = match f.heal {
                Some(h) => format!("{h}"),
                None => "never".to_string(),
            };
            let _ = writeln!(
                s,
                "  ({},{}) → ({},{})  rounds {}..{heal}",
                f.from.i(),
                f.from.j(),
                f.to.i(),
                f.to.j(),
                f.start
            );
        }
        let _ = writeln!(s, "flaky specs: {}", self.flaky.len());
        for f in &self.flaky {
            let heal = match f.heal {
                Some(h) => format!("{h}"),
                None => "never".to_string(),
            };
            let _ = writeln!(
                s,
                "  seed {}  rate {}/1000  rounds {}..{heal}",
                f.seed, f.rate_milli, f.start
            );
        }
        let heal = match self.heal_round {
            Some(h) => format!("{h}"),
            None => "never".to_string(),
        };
        let _ = writeln!(s, "heal round: {heal}");
        let _ = writeln!(s, "max components: {}", self.max_components);
        let restab = match self.rounds_to_stabilize {
            Some(r) => format!("{r} rounds after the heal"),
            None => "NO".to_string(),
        };
        let _ = writeln!(s, "re-stabilized: {restab}");
        let _ = writeln!(
            s,
            "violations: safety={} routing={} conservation={} stabilization={} reachability={}",
            self.safety_violations,
            self.routing_violations,
            self.conservation_violations,
            self.stabilization_violations,
            self.reachability_violations
        );
        let _ = writeln!(
            s,
            "verdict: {}",
            if self.holds() { "CERTIFIED" } else { "FAILED" }
        );
        let checksum = fnv1a(s.as_bytes());
        let _ = writeln!(s, "checksum: {checksum:016x}");
        s
    }
}

/// Drives the reference system through the partition campaign of `plan`
/// under the standard monitors plus a [`ReachabilityMonitor`], and reports
/// what happened as a [`LinkCertificate`].
///
/// Each round's link-cut mask is applied before the round runs (a cut slot
/// reads as a silent neighbor: `dist = ∞`, no request, no grant — the paper's
/// footnote-1 convention). Rounds with any active cut count as ambient
/// disturbance for the stabilization stopwatch, so `rounds_to_stabilize`
/// measures recovery *from the heal*, exactly Corollary 7's promise once
/// communication is reliable again. The run lasts until
/// [`CertifyOptions::settle`] rounds past the heal (or past the last onset,
/// for campaigns that never heal).
pub fn certify_links(
    config: &SystemConfig,
    plan: &PartitionPlan,
    opts: &CertifyOptions,
) -> LinkCertificate {
    let bound = opts.bound_override.unwrap_or_else(|| stabilization_bound(config));
    let heal = plan.heal_round();
    let onset = plan
        .faults()
        .iter()
        .map(|f| f.start)
        .chain(plan.flaky().iter().map(|f| f.start))
        .max()
        .unwrap_or(0);
    let total = heal.unwrap_or(onset) + opts.settle.unwrap_or(bound + 2);
    let schedule = plan.expand(total);
    let mut sys = System::new(config.clone());
    let mut safety = SafetyMonitor::new();
    let mut routing = RoutingMonitor::new();
    let mut conservation = ConservationMonitor::new();
    let mut stabilization = StabilizationMonitor::with_bound(bound);
    let mut reachability = ReachabilityMonitor::new(config, schedule.clone());
    let mut counts = [0u64; 5];
    for round in 1..=total {
        let mask_round = round - 1;
        sys.set_link_cuts(schedule.mask_row(mask_round));
        sys.step();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: sys.round(),
            failed: &[],
            recovered: &[],
            corrupted: &[],
            ambient_chaos: schedule.active(mask_round),
            consumed_total: sys.consumed_total(),
            inserted_total: sys.inserted_total(),
        };
        counts[0] += safety.observe(&ctx).len() as u64;
        counts[1] += routing.observe(&ctx).len() as u64;
        counts[2] += conservation.observe(&ctx).len() as u64;
        counts[3] += stabilization.observe(&ctx).len() as u64;
        counts[4] += reachability.observe(&ctx).len() as u64;
    }
    LinkCertificate {
        faults: plan.faults().to_vec(),
        flaky: plan.flaky().to_vec(),
        heal_round: heal,
        bound,
        rounds: total,
        rounds_to_stabilize: stabilization.rounds_to_stabilize(),
        max_components: reachability.max_components(),
        safety_violations: counts[0],
        routing_violations: counts[1],
        conservation_violations: counts[2],
        stabilization_violations: counts[3],
        reachability_violations: counts[4],
    }
}

/// Reduces a failing partition campaign to a minimal breaking set of
/// scripted cuts by the same greedy delta debugging as [`shrink`]: drop any
/// [`LinkFault`] whose removal keeps the certificate failing, until every
/// remaining cut is necessary. Flaky specs are kept as fixed context.
/// Returns the plan's cuts unchanged if its certificate already holds.
pub fn shrink_links(
    config: &SystemConfig,
    plan: &PartitionPlan,
    opts: &CertifyOptions,
) -> Vec<LinkFault> {
    let rebuild = |faults: &[LinkFault]| {
        let mut p = PartitionPlan::for_grid(plan.dims());
        for f in faults {
            p = p.cut(f.from, f.to, f.start, f.heal);
        }
        for fl in plan.flaky() {
            p = p.flaky_links(fl.seed, fl.rate_milli, fl.start, fl.heal);
        }
        p
    };
    let mut current = plan.faults().to_vec();
    if certify_links(config, plan, opts).holds() {
        return current;
    }
    loop {
        let mut removed_any = false;
        let mut k = 0;
        while k < current.len() && current.len() > 1 {
            let mut candidate = current.clone();
            candidate.remove(k);
            if !certify_links(config, &rebuild(&candidate), opts).holds() {
                current = candidate;
                removed_any = true;
            } else {
                k += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;
    use cellflow_grid::GridDims;
    use cellflow_routing::Dist;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(4),
            CellId::new(3, 3),
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    #[test]
    fn clean_execution_certifies() {
        let cert = certify(&config(), &[], &CertifyOptions::default());
        assert!(cert.holds(), "clean run must certify: {}", cert.render());
        assert_eq!(cert.ops.len(), 0);
    }

    #[test]
    fn scramble_campaigns_certify_within_bound() {
        // Seeded campaign loop (the vendored proptest has no shrinking, so
        // this is the property-test layer; `shrink` covers reduction).
        let cfg = config();
        for seed in 0..8u64 {
            let plan = FaultPlan::new().scramble_sweep(
                12,
                cfg.dims().iter().filter(|&c| c != cfg.target()),
                seed,
            );
            let ops = corruption_events(&plan);
            assert_eq!(ops.len(), 15);
            let cert = certify(&cfg, &ops, &CertifyOptions::default());
            assert!(cert.holds(), "seed {seed}:\n{}", cert.render());
            assert!(cert.rounds_to_stabilize.unwrap() <= cert.bound);
        }
    }

    #[test]
    fn fake_zero_dist_washes_within_bound() {
        let ops = [CorruptionEvent {
            round: 10,
            cell: CellId::new(0, 1),
            corruption: Corruption::Dist(Dist::Finite(0)),
        }];
        let cert = certify(&config(), &ops, &CertifyOptions::default());
        assert!(cert.holds(), "{}", cert.render());
        // The fake anchor misleads neighbors for at least one round.
        assert!(cert.rounds_to_stabilize.unwrap() >= 1);
    }

    #[test]
    fn render_is_deterministic_and_sealed() {
        let ops = [CorruptionEvent {
            round: 5,
            cell: CellId::new(1, 2),
            corruption: Corruption::Scramble { salt: 99 },
        }];
        let a = certify(&config(), &ops, &CertifyOptions::default());
        let b = certify(&config(), &ops, &CertifyOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("checksum: "));
        assert!(a.render().contains("verdict: CERTIFIED"));
    }

    #[test]
    fn batch_certification_is_byte_identical_to_sequential() {
        let cfg = config();
        let opts = CertifyOptions::default();
        let campaigns: Vec<Vec<CorruptionEvent>> = (0..7u64)
            .map(|seed| {
                let plan = FaultPlan::new().scramble_sweep(
                    10,
                    cfg.dims().iter().filter(|&c| c != cfg.target()),
                    seed,
                );
                corruption_events(&plan)
            })
            .collect();
        let seq: Vec<Certificate> = campaigns
            .iter()
            .map(|ops| certify(&cfg, ops, &opts))
            .collect();
        for threads in [2, 4] {
            let par = certify_batch(&cfg, &campaigns, &opts, threads);
            assert_eq!(par, seq, "threads = {threads}");
            for (p, s) in par.iter().zip(seq.iter()) {
                assert_eq!(p.render(), s.render());
            }
        }
    }

    #[test]
    fn shrink_reduces_to_a_minimal_counterexample() {
        // Under an absurd bound of 0 every neighbor-misleading corruption
        // fails its certificate; a three-event campaign must shrink to one.
        let cfg = config();
        let opts = CertifyOptions {
            bound_override: Some(0),
            ..CertifyOptions::default()
        };
        let mk = |round, cell| CorruptionEvent {
            round,
            cell,
            corruption: Corruption::Dist(Dist::Finite(0)),
        };
        let ops = vec![
            mk(8, CellId::new(0, 1)),
            mk(12, CellId::new(1, 0)),
            mk(16, CellId::new(2, 1)),
        ];
        assert!(!certify(&cfg, &ops, &opts).holds());
        let minimal = shrink(&cfg, &ops, &opts);
        assert_eq!(minimal.len(), 1, "minimal counterexample: {minimal:?}");
        assert!(!certify(&cfg, &minimal, &opts).holds());
        // A holding campaign is returned untouched.
        let fine = vec![mk(8, CellId::new(0, 1))];
        let default_opts = CertifyOptions::default();
        assert!(certify(&cfg, &fine, &default_opts).holds());
        assert_eq!(shrink(&cfg, &fine, &default_opts), fine);
    }

    #[test]
    fn split_and_heal_certifies_within_bound() {
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(2, 5, Some(40));
        let cert = certify_links(&cfg, &plan, &CertifyOptions::default());
        assert!(cert.holds(), "{}", cert.render());
        assert_eq!(cert.heal_round, Some(40));
        assert_eq!(cert.max_components, 2);
        assert!(cert.rounds_to_stabilize.unwrap() <= cert.bound);
        assert!(cert.render().contains("verdict: CERTIFIED"));
    }

    #[test]
    fn island_and_flaky_campaigns_certify() {
        let cfg = config();
        // Island the source corner for 30 rounds.
        let island = PartitionPlan::for_grid(cfg.dims()).island(
            CellId::new(0, 0),
            CellId::new(1, 1),
            3,
            Some(33),
        );
        let cert = certify_links(&cfg, &island, &CertifyOptions::default());
        assert!(cert.holds(), "island:\n{}", cert.render());
        assert_eq!(cert.max_components, 2);
        // Seeded flaky links at 20% for 25 rounds.
        let flaky = PartitionPlan::for_grid(cfg.dims()).flaky_links(42, 200, 0, Some(25));
        let cert = certify_links(&cfg, &flaky, &CertifyOptions::default());
        assert!(cert.holds(), "flaky:\n{}", cert.render());
    }

    #[test]
    fn never_healing_campaign_cannot_certify() {
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_row(2, 5, None);
        let cert = certify_links(&cfg, &plan, &CertifyOptions::default());
        assert!(!cert.holds());
        assert_eq!(cert.heal_round, None);
        assert!(cert.render().contains("verdict: FAILED"));
        assert!(cert.render().contains("heal round: never"));
    }

    #[test]
    fn link_certificates_are_deterministic_and_sealed() {
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims())
            .split_col(2, 5, Some(30))
            .flaky_links(7, 150, 0, Some(20));
        let a = certify_links(&cfg, &plan, &CertifyOptions::default());
        let b = certify_links(&cfg, &plan, &CertifyOptions::default());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("checksum: "));
    }

    #[test]
    fn shrink_links_reduces_to_a_minimal_breaking_set() {
        // Under an absurd bound of 0 every campaign fails its certificate
        // (stabilization always takes at least one round), so the greedy
        // reduction must bottom out at a single necessary cut.
        let cfg = config();
        let opts = CertifyOptions {
            bound_override: Some(0),
            ..CertifyOptions::default()
        };
        let plan = PartitionPlan::for_grid(cfg.dims()).island(
            CellId::new(2, 2),
            CellId::new(3, 3),
            5,
            Some(25),
        );
        assert!(plan.faults().len() > 2);
        assert!(!certify_links(&cfg, &plan, &opts).holds());
        let minimal = shrink_links(&cfg, &plan, &opts);
        assert_eq!(minimal.len(), 1, "minimal breaking set: {minimal:?}");
        // A holding campaign is returned untouched.
        let fine = PartitionPlan::for_grid(cfg.dims()).split_col(2, 5, Some(30));
        let default_opts = CertifyOptions::default();
        assert!(certify_links(&cfg, &fine, &default_opts).holds());
        assert_eq!(shrink_links(&cfg, &fine, &default_opts), fine.faults());
    }

    #[test]
    fn shrink_is_deterministic_on_cascade_counterexamples() {
        // Same seed → same minimal schedule: shrinking a seeded corruption
        // campaign on the finite-capacity cascade grid is a pure function
        // of its inputs — greedy delta debugging scans in a fixed order
        // and certify is deterministic, so no run-to-run drift.
        let cfg = config().with_capacity(2);
        let opts = CertifyOptions {
            bound_override: Some(0),
            ..CertifyOptions::default()
        };
        for seed in 0..4u64 {
            let campaign = || {
                let plan = FaultPlan::new().scramble_sweep(
                    12,
                    cfg.dims().iter().filter(|&c| c != cfg.target()),
                    seed,
                );
                corruption_events(&plan)
            };
            let ops = campaign();
            assert!(!certify(&cfg, &ops, &opts).holds(), "seed {seed}");
            let a = shrink(&cfg, &ops, &opts);
            let b = shrink(&cfg, &ops, &opts);
            assert_eq!(a, b, "seed {seed}: shrink drifted between runs");
            assert!(!certify(&cfg, &a, &opts).holds(), "seed {seed}");
            assert!(a.len() < ops.len(), "seed {seed}: no reduction");
            // Regenerating the campaign from the same seed reproduces the
            // same minimal schedule end to end.
            assert_eq!(shrink(&cfg, &campaign(), &opts), a, "seed {seed}");
        }
    }
}
