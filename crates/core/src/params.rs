//! The protocol's physical parameters `(l, rs, v)`.

use core::fmt;

use cellflow_geom::Fixed;

/// The three physical parameters of the system (paper §II-B):
///
/// * `l` — side length of an entity's square footprint;
/// * `rs` — minimum required edge-to-edge gap between entities along an axis;
/// * `v` — cell velocity: the distance entities move in one round.
///
/// Validity requires `0 < v ≤ l < 1` and `rs + l < 1`:
/// the former ensures an entity cannot jump past a boundary gap in one round
/// (the paper states `v < l`, but its own Figure 7 evaluates `v = l = 0.25`;
/// the safety argument only needs `v ≤ l` because boundary crossing is
/// strict — see `DESIGN.md`); the latter ensures entities fit inside the unit
/// cells with room for the gap.
/// The derived **center spacing requirement** is `d = rs + l`
/// ([`Params::d`]): two `l × l` entities whose centers differ by at least `d`
/// along an axis have their edges separated by at least `rs` along it.
///
/// ```
/// use cellflow_core::Params;
/// use cellflow_geom::Fixed;
///
/// let p = Params::from_milli(250, 50, 200)?; // l=0.25, rs=0.05, v=0.2
/// assert_eq!(p.d(), Fixed::from_milli(300));
/// assert!(Params::from_milli(250, 50, 300).is_err()); // v > l
/// # Ok::<(), cellflow_core::ParamsError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Params {
    l: Fixed,
    rs: Fixed,
    v: Fixed,
}

impl Params {
    /// Validates and creates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] naming the violated constraint.
    pub fn new(l: Fixed, rs: Fixed, v: Fixed) -> Result<Params, ParamsError> {
        if l <= Fixed::ZERO {
            return Err(ParamsError::NonPositiveLength);
        }
        if rs < Fixed::ZERO {
            return Err(ParamsError::NegativeGap);
        }
        if v <= Fixed::ZERO {
            return Err(ParamsError::NonPositiveVelocity);
        }
        if v > l {
            return Err(ParamsError::VelocityAboveLength);
        }
        if l >= Fixed::ONE {
            return Err(ParamsError::LengthNotBelowOne);
        }
        if rs + l >= Fixed::ONE {
            return Err(ParamsError::SpacingNotBelowOne);
        }
        Ok(Params { l, rs, v })
    }

    /// Convenience constructor in thousandths of a cell side:
    /// `Params::from_milli(250, 50, 200)` is `l = 0.25, rs = 0.05, v = 0.2`.
    ///
    /// # Errors
    ///
    /// Same as [`Params::new`].
    pub fn from_milli(l: i64, rs: i64, v: i64) -> Result<Params, ParamsError> {
        Params::new(
            Fixed::from_milli(l),
            Fixed::from_milli(rs),
            Fixed::from_milli(v),
        )
    }

    /// Entity side length `l`.
    #[inline]
    pub const fn l(self) -> Fixed {
        self.l
    }

    /// Half the entity side, `l/2` (distance from center to edge).
    #[inline]
    pub fn half_l(self) -> Fixed {
        self.l.halve()
    }

    /// Minimum edge-to-edge gap `rs`.
    #[inline]
    pub const fn rs(self) -> Fixed {
        self.rs
    }

    /// Velocity `v` (distance per round).
    #[inline]
    pub const fn v(self) -> Fixed {
        self.v
    }

    /// The center spacing requirement `d = rs + l`.
    #[inline]
    pub fn d(self) -> Fixed {
        self.rs + self.l
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l={}, rs={}, v={}", self.l, self.rs, self.v)
    }
}

/// A violated parameter constraint (paper §II-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamsError {
    /// `l ≤ 0`.
    NonPositiveLength,
    /// `rs < 0`.
    NegativeGap,
    /// `v ≤ 0`.
    NonPositiveVelocity,
    /// `v > l` — an entity could jump past the boundary gap in one round.
    VelocityAboveLength,
    /// `l ≥ 1` — an entity would not fit in a cell.
    LengthNotBelowOne,
    /// `rs + l ≥ 1` — no safe position exists inside a cell.
    SpacingNotBelowOne,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ParamsError::NonPositiveLength => "entity length l must be positive",
            ParamsError::NegativeGap => "safety gap rs must be nonnegative",
            ParamsError::NonPositiveVelocity => "velocity v must be positive",
            ParamsError::VelocityAboveLength => "velocity v must not exceed l",
            ParamsError::LengthNotBelowOne => "entity length l must be strictly below 1",
            ParamsError::SpacingNotBelowOne => "center spacing rs + l must be strictly below 1",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_sets_validate() {
        // Every (l, rs, v) combination used in Figures 7–9.
        for (l, v) in [(250, 50), (250, 100), (250, 200), (200, 200 - 1)] {
            assert!(
                Params::from_milli(l, 50, v.min(l - 1)).is_ok(),
                "l={l} v={v}"
            );
        }
        for (v, l) in [(200, 250), (100, 200), (100, 250), (50, 100), (200, 250)] {
            assert!(Params::from_milli(l, 50, v).is_ok());
        }
    }

    #[test]
    fn derived_quantities() {
        let p = Params::from_milli(200, 50, 100).unwrap();
        assert_eq!(p.l(), Fixed::from_milli(200));
        assert_eq!(p.rs(), Fixed::from_milli(50));
        assert_eq!(p.v(), Fixed::from_milli(100));
        assert_eq!(p.d(), Fixed::from_milli(250));
        assert_eq!(p.half_l(), Fixed::from_milli(100));
    }

    #[test]
    fn each_constraint_is_enforced() {
        assert_eq!(
            Params::from_milli(0, 50, 100).unwrap_err(),
            ParamsError::NonPositiveLength
        );
        assert_eq!(
            Params::from_milli(200, -1, 100).unwrap_err(),
            ParamsError::NegativeGap
        );
        assert_eq!(
            Params::from_milli(200, 50, 0).unwrap_err(),
            ParamsError::NonPositiveVelocity
        );
        assert_eq!(
            Params::from_milli(200, 50, 201).unwrap_err(),
            ParamsError::VelocityAboveLength
        );
        // v = l is allowed (the paper's own Figure 7 uses v = l = 0.25).
        assert!(Params::from_milli(200, 50, 200).is_ok());
        assert_eq!(
            Params::from_milli(1_000, 50, 100).unwrap_err(),
            ParamsError::LengthNotBelowOne
        );
        assert_eq!(
            Params::from_milli(600, 400, 100).unwrap_err(),
            ParamsError::SpacingNotBelowOne
        );
    }

    #[test]
    fn zero_gap_is_allowed() {
        // rs = 0 is degenerate but legal: d = l, entities may touch.
        let p = Params::from_milli(200, 0, 100).unwrap();
        assert_eq!(p.d(), p.l());
    }

    #[test]
    fn display_and_errors_render() {
        let p = Params::from_milli(250, 50, 200).unwrap();
        assert_eq!(p.to_string(), "l=0.25, rs=0.05, v=0.2");
        assert!(ParamsError::VelocityAboveLength
            .to_string()
            .contains("not exceed"));
    }
}
