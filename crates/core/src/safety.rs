//! Executable forms of the paper's safety predicates and invariants.
//!
//! * [`check_safe`] — the top-level safety property `Safe(x)` of Theorem 5;
//! * [`check_invariant1`] — Invariant 1 (entities stay within cell margins);
//! * [`check_invariant2`] — Invariant 2 (`Members` sets are pairwise disjoint);
//! * [`check_h`] — predicate `H(x)` (a granted signal implies an empty
//!   `d`-strip at the shared boundary), which must hold at signal-computation
//!   time (Lemma 3).
//!
//! Each checker returns a rich violation value so failing tests and the model
//! checker can explain exactly what went wrong.

use core::fmt;
use std::collections::HashMap;

use cellflow_geom::{sep_ok, Point};
use cellflow_grid::CellId;

use crate::{gap_free_toward, Entity, EntityId, SystemConfig, SystemState};

/// A violation of `Safe(x)`: two entities on one cell within `d` on both axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    /// The cell holding both entities.
    pub cell: CellId,
    /// One offending entity.
    pub first: Entity,
    /// The other offending entity.
    pub second: Entity,
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entities {} and {} on cell {} are within d on both axes",
            self.first, self.second, self.cell
        )
    }
}

impl std::error::Error for SafetyViolation {}

/// Checks the paper's safety property (Theorem 5): for every cell and every
/// pair of distinct entities on it, the centers differ by at least `d = rs+l`
/// along at least one axis.
///
/// # Errors
///
/// Returns the first violating pair found (deterministic order).
pub fn check_safe(config: &SystemConfig, state: &SystemState) -> Result<(), SafetyViolation> {
    let dims = config.dims();
    let d = config.params().d();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        let entities: Vec<Entity> = cell.entities().collect();
        for (a_idx, a) in entities.iter().enumerate() {
            for b in &entities[a_idx + 1..] {
                if !sep_ok(a.pos, b.pos, d) {
                    return Err(SafetyViolation {
                        cell: id,
                        first: *a,
                        second: *b,
                    });
                }
            }
        }
    }
    Ok(())
}

/// A violation of Invariant 1: an entity's footprint protrudes past its cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarginViolation {
    /// The cell claiming the entity.
    pub cell: CellId,
    /// The offending entity.
    pub entity: Entity,
}

impl fmt::Display for MarginViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entity {} protrudes outside cell {} (Invariant 1)",
            self.entity, self.cell
        )
    }
}

impl std::error::Error for MarginViolation {}

/// Checks Invariant 1: every entity's center obeys
/// `i + l/2 ≤ px ≤ i+1 − l/2` and `j + l/2 ≤ py ≤ j+1 − l/2` for its cell
/// `⟨i,j⟩` — footprints never straddle cell boundaries.
///
/// # Errors
///
/// Returns the first protruding entity found.
pub fn check_invariant1(config: &SystemConfig, state: &SystemState) -> Result<(), MarginViolation> {
    let dims = config.dims();
    for id in dims.iter() {
        for e in state.cell(dims, id).entities() {
            if !crate::source::within_cell_margins(config.params(), id, e.pos) {
                return Err(MarginViolation {
                    cell: id,
                    entity: e,
                });
            }
        }
    }
    Ok(())
}

/// A violation of Invariant 2: one entity identifier in two cells' `Members`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DisjointnessViolation {
    /// The shared identifier.
    pub entity: EntityId,
    /// First cell claiming it.
    pub first_cell: CellId,
    /// Second cell claiming it.
    pub second_cell: CellId,
}

impl fmt::Display for DisjointnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entity {} appears in both {} and {} (Invariant 2)",
            self.entity, self.first_cell, self.second_cell
        )
    }
}

impl std::error::Error for DisjointnessViolation {}

/// Checks Invariant 2: the `Members` sets of distinct cells are disjoint
/// (every entity lives on exactly one cell).
///
/// # Errors
///
/// Returns the first doubly-claimed entity found.
pub fn check_invariant2(
    config: &SystemConfig,
    state: &SystemState,
) -> Result<(), DisjointnessViolation> {
    let dims = config.dims();
    let mut owner: HashMap<EntityId, CellId> = HashMap::new();
    for id in dims.iter() {
        for &eid in state.cell(dims, id).members.keys() {
            if let Some(&prev) = owner.get(&eid) {
                return Err(DisjointnessViolation {
                    entity: eid,
                    first_cell: prev,
                    second_cell: id,
                });
            }
            owner.insert(eid, id);
        }
    }
    Ok(())
}

/// A violation of predicate `H`: a cell granted a neighbor while an entity sat
/// inside the promised boundary strip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HViolation {
    /// The granting cell.
    pub cell: CellId,
    /// The neighbor it granted.
    pub granted: CellId,
    /// An entity inside the strip that should be empty.
    pub witness: Entity,
}

impl fmt::Display for HViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} granted {} but {} sits inside the d-strip (predicate H)",
            self.cell, self.granted, self.witness
        )
    }
}

impl std::error::Error for HViolation {}

/// Checks predicate `H(x)`: whenever `signal_{i,j} = ⟨m,n⟩`, the boundary
/// strip of width `d` toward `⟨m,n⟩` contains no entity footprint of
/// `⟨i,j⟩`'s members.
///
/// `H` is **not** an invariant of reachable states (granted cells' entities
/// may move during the same round) — it must hold at the point the `Signal`
/// function just ran, which is what Lemma 3 establishes and what callers
/// verify by invoking this right after
/// [`signal_phase`](crate::signal_phase).
///
/// # Errors
///
/// Returns the first witness entity found inside a promised strip.
pub fn check_h(config: &SystemConfig, state: &SystemState) -> Result<(), HViolation> {
    let dims = config.dims();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        let Some(granted) = cell.signal else { continue };
        let Some(dir) = id.dir_to(granted) else {
            continue;
        };
        // Locate any member violating the strip.
        for e in cell.entities() {
            let single: [Point; 1] = [e.pos];
            if !gap_free_toward(config.params(), id, dir, &single) {
                return Err(HViolation {
                    cell: id,
                    granted,
                    witness: e,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route_phase, signal_phase, Params, SystemConfig};
    use cellflow_geom::Fixed;
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(3),
            CellId::new(2, 1),
            Params::from_milli(250, 50, 100).unwrap(), // d = 0.3
        )
        .unwrap()
    }

    fn pt(xm: i64, ym: i64) -> Point {
        Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym))
    }

    #[test]
    fn safe_accepts_separated_and_rejects_close() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let cell = CellId::new(1, 1);
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(0), pt(1_200, 1_500));
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(1), pt(1_500, 1_500)); // Δx = 0.3 = d ✓
        assert_eq!(check_safe(&cfg, &s), Ok(()));
        // Move the second within d on both axes.
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(1), pt(1_450, 1_600));
        let v = check_safe(&cfg, &s).unwrap_err();
        assert_eq!(v.cell, cell);
        assert!(v.to_string().contains("within d"));
        // Entities on *different* cells may be close (only per-cell safety).
        let mut s2 = cfg.initial_state();
        s2.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(875, 1_500));
        s2.cell_mut(dims, CellId::new(1, 1))
            .members
            .insert(EntityId(1), pt(1_125, 1_500));
        assert_eq!(check_safe(&cfg, &s2), Ok(()));
    }

    #[test]
    fn invariant1_margins() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let cell = CellId::new(1, 1);
        // Flush at margin: fine.
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(0), pt(1_125, 1_875));
        assert_eq!(check_invariant1(&cfg, &s), Ok(()));
        // Past the margin: violation.
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(1), pt(1_100, 1_500));
        let v = check_invariant1(&cfg, &s).unwrap_err();
        assert_eq!(v.cell, cell);
        assert_eq!(v.entity.id, EntityId(1));
        assert!(v.to_string().contains("Invariant 1"));
    }

    #[test]
    fn invariant2_disjointness() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        s.cell_mut(dims, CellId::new(0, 0))
            .members
            .insert(EntityId(7), pt(500, 500));
        s.cell_mut(dims, CellId::new(2, 2))
            .members
            .insert(EntityId(7), pt(2_500, 2_500));
        let v = check_invariant2(&cfg, &s).unwrap_err();
        assert_eq!(v.entity, EntityId(7));
        assert!(v.to_string().contains("Invariant 2"));
        s.cell_mut(dims, CellId::new(2, 2)).members.clear();
        assert_eq!(check_invariant2(&cfg, &s), Ok(()));
    }

    #[test]
    fn h_holds_after_signal_phase() {
        // Lemma 3, mechanized on a small instance: run Route+Signal from a
        // populated state and check H.
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        for _ in 0..6 {
            s = route_phase(&cfg, &s);
        }
        s.cell_mut(dims, CellId::new(0, 1))
            .members
            .insert(EntityId(0), pt(500, 1_500));
        s.cell_mut(dims, CellId::new(1, 1))
            .members
            .insert(EntityId(1), pt(1_200, 1_500));
        let routed = route_phase(&cfg, &s);
        let signaled = signal_phase(&cfg, &routed, 0);
        assert_eq!(check_h(&cfg, &signaled), Ok(()));
    }

    #[test]
    fn h_detects_hand_built_violation() {
        let cfg = config();
        let dims = cfg.dims();
        let mut s = cfg.initial_state();
        let cell = CellId::new(1, 1);
        // Grant the west neighbor while an entity sits flush at the west edge.
        s.cell_mut(dims, cell).signal = Some(CellId::new(0, 1));
        s.cell_mut(dims, cell)
            .members
            .insert(EntityId(0), pt(1_125, 1_500));
        let v = check_h(&cfg, &s).unwrap_err();
        assert_eq!(v.cell, cell);
        assert_eq!(v.granted, CellId::new(0, 1));
        assert!(v.to_string().contains("d-strip"));
    }
}
