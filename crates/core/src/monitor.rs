//! Online invariant monitors: the paper's theorems as per-round runtime
//! checks.
//!
//! The proofs in the paper are offline arguments about all reachable states;
//! a [`Monitor`] turns each into an *online* observer evaluated against every
//! round of an actual execution — by the lockstep simulator, the
//! message-passing runtime's collector thread, and the `cellflow chaos` CLI
//! alike:
//!
//! * [`SafetyMonitor`] — Theorem 5's `Safe(x)` plus Invariants 1 and 2, which
//!   hold in **every** reachable state despite crashes;
//! * [`RoutingMonitor`] — structural routing sanity derived from the Route
//!   function's definition (Figure 4) and the §IV failure model: pointers
//!   stay on the grid, `dist = 0` exactly at the live target, failed cells
//!   stay pinned at `∞`/`⊥`;
//! * [`ConservationMonitor`] — no entity is minted or destroyed outside the
//!   source/target protocol (`inserted − consumed = population`);
//! * [`StabilizationMonitor`] — a stopwatch for Lemma 6 / Corollary 7:
//!   routing must re-stabilize within `2·N² + 2` rounds of the last fault
//!   transition.
//!
//! Predicate `H` is deliberately **not** monitored here: Lemma 3 establishes
//! it at signal-computation time, and it legitimately fails in end-of-round
//! states (granted cells' entities move within the same round), which is all
//! a monitor gets to see.

use core::fmt;

use cellflow_grid::CellId;
use cellflow_routing::Dist;

use crate::{analysis, safety, SystemConfig, SystemState};

/// Everything a monitor may inspect about one completed round.
///
/// `round` is 1-based: after the first `update` transition the observers see
/// `round = 1`. `failed` / `recovered` list the fault transitions applied at
/// the start of that round (empty when the round ran undisturbed).
#[derive(Clone, Copy, Debug)]
pub struct MonitorCtx<'a> {
    /// The static configuration.
    pub config: &'a SystemConfig,
    /// The end-of-round state.
    pub state: &'a SystemState,
    /// Rounds completed so far (1-based).
    pub round: u64,
    /// Cells crashed at the start of this round.
    pub failed: &'a [CellId],
    /// Cells recovered at the start of this round.
    pub recovered: &'a [CellId],
    /// `true` while ambient message chaos (dropped/delayed announcements)
    /// is active — the stabilization stopwatch treats such rounds as
    /// ongoing disturbance, since Lemma 6 only promises convergence once
    /// communication is reliable again.
    pub ambient_chaos: bool,
    /// Cumulative entities consumed by the target since round 0.
    pub consumed_total: u64,
    /// Cumulative entities inserted by sources since round 0.
    pub inserted_total: u64,
}

/// One property violation flagged by a monitor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MonitorViolation {
    /// [`Monitor::name`] of the reporting monitor.
    pub monitor: &'static str,
    /// The (1-based) round whose end state violated the property.
    pub round: u64,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ round {}] {}", self.monitor, self.round, self.detail)
    }
}

/// An online observer of a protocol execution.
///
/// `Send` so the message-passing runtime can evaluate monitors on its
/// collector thread while node threads keep running.
pub trait Monitor: Send {
    /// Short stable identifier (used in reports and violations).
    fn name(&self) -> &'static str;

    /// Inspects one completed round; returns any violations it implies.
    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation>;

    /// One-line human-readable outcome for the final report.
    fn summary(&self) -> String;
}

/// Theorem 5 safety plus Invariants 1–2, checked every round.
#[derive(Debug, Default)]
pub struct SafetyMonitor {
    rounds: u64,
    violations: u64,
}

impl SafetyMonitor {
    /// A fresh monitor.
    pub fn new() -> SafetyMonitor {
        SafetyMonitor::default()
    }
}

impl Monitor for SafetyMonitor {
    fn name(&self) -> &'static str {
        "safety"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let mut out = Vec::new();
        if let Err(v) = safety::check_safe(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Theorem 5 violated: {v}"),
            });
        }
        if let Err(v) = safety::check_invariant1(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Invariant 1 violated: {v}"),
            });
        }
        if let Err(v) = safety::check_invariant2(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Invariant 2 violated: {v}"),
            });
        }
        self.violations += out.len() as u64;
        out
    }

    fn summary(&self) -> String {
        format!(
            "safety: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// Structural routing sanity that holds in *every* reachable state,
/// stabilized or not (Figure 4's Route plus the §IV fail/recover
/// transitions):
///
/// * `next` and `signal`, when set, point at grid neighbors;
/// * the live target has `dist = 0`; no other live cell ever does;
/// * a failed cell stays pinned at `dist = ∞`, `next = ⊥` (nothing but
///   recovery may touch it).
#[derive(Debug, Default)]
pub struct RoutingMonitor {
    rounds: u64,
    violations: u64,
}

impl RoutingMonitor {
    /// A fresh monitor.
    pub fn new() -> RoutingMonitor {
        RoutingMonitor::default()
    }
}

impl Monitor for RoutingMonitor {
    fn name(&self) -> &'static str {
        "routing"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let dims = ctx.config.dims();
        let target = ctx.config.target();
        let mut out = Vec::new();
        let mut flag = |round: u64, detail: String| {
            out.push(MonitorViolation {
                monitor: "routing",
                round,
                detail,
            });
        };
        for id in dims.iter() {
            let cell = ctx.state.cell(dims, id);
            if cell.failed {
                if cell.dist != Dist::Infinity || cell.next.is_some() {
                    flag(
                        ctx.round,
                        format!(
                            "failed cell {id} not pinned: dist={:?} next={:?}",
                            cell.dist, cell.next
                        ),
                    );
                }
                continue;
            }
            if let Some(n) = cell.next {
                if !id.is_neighbor(n) {
                    flag(ctx.round, format!("cell {id} routes to non-neighbor {n}"));
                }
            }
            if let Some(s) = cell.signal {
                if !id.is_neighbor(s) {
                    flag(ctx.round, format!("cell {id} grants non-neighbor {s}"));
                }
            }
            if id == target {
                if cell.dist != Dist::Finite(0) {
                    flag(
                        ctx.round,
                        format!("live target {id} has dist {:?}, expected 0", cell.dist),
                    );
                }
            } else if cell.dist == Dist::Finite(0) {
                flag(ctx.round, format!("non-target cell {id} claims dist 0"));
            }
        }
        self.violations += out.len() as u64;
        out
    }

    fn summary(&self) -> String {
        format!(
            "routing: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// Entity conservation: starting from the empty initial state, the current
/// population must equal `inserted − consumed` — transfers move entities,
/// never mint or destroy them.
#[derive(Debug, Default)]
pub struct ConservationMonitor {
    rounds: u64,
    violations: u64,
}

impl ConservationMonitor {
    /// A fresh monitor.
    pub fn new() -> ConservationMonitor {
        ConservationMonitor::default()
    }
}

impl Monitor for ConservationMonitor {
    fn name(&self) -> &'static str {
        "conservation"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let population = ctx.state.entity_count() as u64;
        let expected = ctx.inserted_total - ctx.consumed_total.min(ctx.inserted_total);
        let mut out = Vec::new();
        if population != expected {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!(
                    "population {population} ≠ inserted {} − consumed {}",
                    ctx.inserted_total, ctx.consumed_total
                ),
            });
            self.violations += 1;
        }
        out
    }

    fn summary(&self) -> String {
        format!(
            "conservation: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// The round budget the [`StabilizationMonitor`] grants after a disturbance:
/// `2·cell_count + 2`, a conservative executable form of Lemma 6 /
/// Corollary 7's `O(N²)` routing-stabilization bound.
pub fn stabilization_bound(config: &SystemConfig) -> u64 {
    2 * config.dims().cell_count() as u64 + 2
}

/// A stopwatch for Lemma 6 / Corollary 7: after the last fault transition,
/// routing (in the sense of [`analysis::routing_stabilized`]) must
/// re-stabilize within [`stabilization_bound`] rounds. Reports at most one
/// violation per disturbance epoch.
#[derive(Debug)]
pub struct StabilizationMonitor {
    bound: u64,
    last_disturbance: u64,
    stabilized_at: Option<u64>,
    reported_epoch: bool,
    violations: u64,
}

impl StabilizationMonitor {
    /// A stopwatch with the standard bound for `config`.
    pub fn new(config: &SystemConfig) -> StabilizationMonitor {
        StabilizationMonitor::with_bound(stabilization_bound(config))
    }

    /// A stopwatch with an explicit round budget.
    pub fn with_bound(bound: u64) -> StabilizationMonitor {
        StabilizationMonitor {
            bound,
            last_disturbance: 0,
            stabilized_at: None,
            reported_epoch: false,
            violations: 0,
        }
    }

    /// The round budget in force.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The round at which the current quiet epoch stabilized, if it has.
    pub fn stabilized_at(&self) -> Option<u64> {
        self.stabilized_at
    }

    /// Rounds from the last disturbance to stabilization, if stabilized.
    pub fn rounds_to_stabilize(&self) -> Option<u64> {
        self.stabilized_at.map(|r| r - self.last_disturbance)
    }
}

impl Monitor for StabilizationMonitor {
    fn name(&self) -> &'static str {
        "stabilization"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        if !ctx.failed.is_empty() || !ctx.recovered.is_empty() || ctx.ambient_chaos {
            // A new epoch starts; the clock restarts at this round.
            self.last_disturbance = ctx.round;
            self.stabilized_at = None;
            self.reported_epoch = false;
        }
        if analysis::routing_stabilized(ctx.config, ctx.state) {
            if self.stabilized_at.is_none() {
                self.stabilized_at = Some(ctx.round);
            }
            return Vec::new();
        }
        self.stabilized_at = None;
        let elapsed = ctx.round - self.last_disturbance;
        if elapsed > self.bound && !self.reported_epoch {
            self.reported_epoch = true;
            self.violations += 1;
            return vec![MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!(
                    "routing not stabilized {elapsed} rounds after the \
                     disturbance at round {} (bound {})",
                    self.last_disturbance, self.bound
                ),
            }];
        }
        Vec::new()
    }

    fn summary(&self) -> String {
        match self.rounds_to_stabilize() {
            Some(rounds) => format!(
                "stabilization: stabilized {rounds} rounds after the last \
                 disturbance (bound {})",
                self.bound
            ),
            None => format!(
                "stabilization: NOT stabilized (last disturbance round {}, \
                 bound {}, {} violations)",
                self.last_disturbance, self.bound, self.violations
            ),
        }
    }
}

/// The standard monitor suite: safety, routing sanity, conservation, and the
/// stabilization stopwatch for `config`.
pub fn standard_monitors(config: &SystemConfig) -> Vec<Box<dyn Monitor>> {
    vec![
        Box::new(SafetyMonitor::new()),
        Box::new(RoutingMonitor::new()),
        Box::new(ConservationMonitor::new()),
        Box::new(StabilizationMonitor::new(config)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, System, SystemConfig};
    use cellflow_grid::{CellId, GridDims};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(4),
            CellId::new(3, 3),
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    fn observe_run(monitors: &mut [Box<dyn Monitor>], rounds: u64) -> Vec<MonitorViolation> {
        let mut sys = System::new(config());
        let mut all = Vec::new();
        for _ in 0..rounds {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
            ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            for m in monitors.iter_mut() {
                all.extend(m.observe(&ctx));
            }
        }
        all
    }

    #[test]
    fn clean_run_fires_no_monitor() {
        let cfg = config();
        let mut monitors = standard_monitors(&cfg);
        let violations = observe_run(&mut monitors, 60);
        assert_eq!(violations, Vec::new());
        for m in &monitors {
            assert!(m.summary().contains("0 violations") || m.name() == "stabilization");
        }
    }

    #[test]
    fn safety_monitor_flags_seeded_overlap() {
        let mut sys = System::new(config());
        // Bypass the protocol: plant two coincident entities by hand.
        let dims = sys.config().dims();
        let cell = CellId::new(1, 1);
        let mut state = sys.state().clone();
        state
            .cell_mut(dims, cell)
            .members
            .insert(crate::EntityId(900), cell.center());
        state
            .cell_mut(dims, cell)
            .members
            .insert(crate::EntityId(901), cell.center());
        sys.set_state(state);
        let mut m = SafetyMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: 1,
            failed: &[],
            recovered: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 2,
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("Theorem 5"));
        assert!(m.summary().contains("1 violations"));
        assert!(vs[0].to_string().contains("safety"));
    }

    #[test]
    fn routing_monitor_flags_corrupted_pointer() {
        let sys = System::new(config());
        let dims = sys.config().dims();
        let mut state = sys.state().clone();
        // ⟨0,0⟩ pointing at the far corner is never a legal route pointer.
        state.cell_mut(dims, CellId::new(0, 0)).next = Some(CellId::new(3, 3));
        let mut m = RoutingMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: &state,
            round: 3,
            failed: &[],
            recovered: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 0,
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("non-neighbor"));
    }

    #[test]
    fn conservation_monitor_flags_count_mismatch() {
        let sys = System::new(config());
        let mut m = ConservationMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: 1,
            failed: &[],
            recovered: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 5, // claims 5 inserted but the state is empty
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("population"));
    }

    #[test]
    fn stabilization_stopwatch_restarts_on_disturbance() {
        let cfg = config();
        let mut sys = System::new(cfg.clone());
        let mut m = StabilizationMonitor::new(&cfg);
        assert_eq!(m.bound(), 2 * 16 + 2);
        // Quiet start: stabilizes well within the bound.
        for _ in 0..10 {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
            ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            assert_eq!(m.observe(&ctx), Vec::new());
        }
        assert!(m.rounds_to_stabilize().is_some());
        // A crash restarts the clock.
        let victim = CellId::new(2, 2);
        sys.fail(victim);
        sys.step();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: sys.round(),
            failed: &[victim],
            recovered: &[],
            ambient_chaos: false,
            consumed_total: sys.consumed_total(),
            inserted_total: sys.inserted_total(),
        };
        m.observe(&ctx);
        assert_eq!(m.stabilized_at().is_some(), {
            // Whatever the immediate verdict, the epoch must have restarted.
            self::analysis::routing_stabilized(sys.config(), sys.state())
        });
        assert!(m.summary().contains("bound 34"));
    }

    #[test]
    fn stabilization_stopwatch_fires_past_bound() {
        // A tight artificial bound of 1 must fire on the unstabilized start.
        let mut m = StabilizationMonitor::with_bound(1);
        let mut sys = System::new(config());
        let mut fired = Vec::new();
        for _ in 0..4 {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
            ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            fired.extend(m.observe(&ctx));
        }
        // Fires exactly once per epoch, not once per late round.
        assert_eq!(fired.len(), 1);
        assert!(fired[0].detail.contains("bound 1"));
    }
}
