//! Online invariant monitors: the paper's theorems as per-round runtime
//! checks.
//!
//! The proofs in the paper are offline arguments about all reachable states;
//! a [`Monitor`] turns each into an *online* observer evaluated against every
//! round of an actual execution — by the lockstep simulator, the
//! message-passing runtime's collector thread, and the `cellflow chaos` CLI
//! alike:
//!
//! * [`SafetyMonitor`] — Theorem 5's `Safe(x)` plus Invariants 1 and 2, which
//!   hold in **every** reachable state despite crashes;
//! * [`RoutingMonitor`] — structural routing sanity derived from the Route
//!   function's definition (Figure 4) and the §IV failure model: pointers
//!   stay on the grid, `dist = 0` exactly at the live target, failed cells
//!   stay pinned at `∞`/`⊥`;
//! * [`ConservationMonitor`] — no entity is minted or destroyed outside the
//!   source/target protocol (`inserted − consumed = population`);
//! * [`StabilizationMonitor`] — a stopwatch for Lemma 6 / Corollary 7:
//!   routing must re-stabilize within `2·N² + 2` rounds of the last fault
//!   transition.
//!
//! Predicate `H` is deliberately **not** monitored here: Lemma 3 establishes
//! it at signal-computation time, and it legitimately fails in end-of-round
//! states (granted cells' entities move within the same round), which is all
//! a monitor gets to see.

use core::fmt;

use cellflow_grid::CellId;
use cellflow_routing::Dist;

use crate::{analysis, safety, SystemConfig, SystemState};

/// Everything a monitor may inspect about one completed round.
///
/// `round` is 1-based: after the first `update` transition the observers see
/// `round = 1`. `failed` / `recovered` list the fault transitions applied at
/// the start of that round (empty when the round ran undisturbed).
#[derive(Clone, Copy, Debug)]
pub struct MonitorCtx<'a> {
    /// The static configuration.
    pub config: &'a SystemConfig,
    /// The end-of-round state.
    pub state: &'a SystemState,
    /// Rounds completed so far (1-based).
    pub round: u64,
    /// Cells crashed at the start of this round.
    pub failed: &'a [CellId],
    /// Cells recovered at the start of this round.
    pub recovered: &'a [CellId],
    /// Cells whose state suffered a discontinuity at the start of this
    /// round: a transient corruption ([`FaultKind::Corrupt`]), or a re-spawn
    /// from a stale durable snapshot. The stabilization stopwatch restarts
    /// on such rounds, and entity conservation re-baselines (a corruption
    /// adversary / stale restore may legitimately change the population
    /// without a matching insert or consume).
    ///
    /// [`FaultKind::Corrupt`]: crate::FaultKind::Corrupt
    pub corrupted: &'a [CellId],
    /// `true` while ambient message chaos (dropped/delayed announcements)
    /// is active — the stabilization stopwatch treats such rounds as
    /// ongoing disturbance, since Lemma 6 only promises convergence once
    /// communication is reliable again.
    pub ambient_chaos: bool,
    /// Cumulative entities consumed by the target since round 0.
    pub consumed_total: u64,
    /// Cumulative entities inserted by sources since round 0.
    pub inserted_total: u64,
}

/// One property violation flagged by a monitor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MonitorViolation {
    /// [`Monitor::name`] of the reporting monitor.
    pub monitor: &'static str,
    /// The (1-based) round whose end state violated the property.
    pub round: u64,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} @ round {}] {}", self.monitor, self.round, self.detail)
    }
}

/// An online observer of a protocol execution.
///
/// `Send` so the message-passing runtime can evaluate monitors on its
/// collector thread while node threads keep running.
pub trait Monitor: Send {
    /// Short stable identifier (used in reports and violations).
    fn name(&self) -> &'static str;

    /// Inspects one completed round; returns any violations it implies.
    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation>;

    /// One-line human-readable outcome for the final report.
    fn summary(&self) -> String;
}

/// Theorem 5 safety plus Invariants 1–2, checked every round.
#[derive(Debug, Default)]
pub struct SafetyMonitor {
    rounds: u64,
    violations: u64,
}

impl SafetyMonitor {
    /// A fresh monitor.
    pub fn new() -> SafetyMonitor {
        SafetyMonitor::default()
    }
}

impl Monitor for SafetyMonitor {
    fn name(&self) -> &'static str {
        "safety"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let mut out = Vec::new();
        if let Err(v) = safety::check_safe(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Theorem 5 violated: {v}"),
            });
        }
        if let Err(v) = safety::check_invariant1(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Invariant 1 violated: {v}"),
            });
        }
        if let Err(v) = safety::check_invariant2(ctx.config, ctx.state) {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!("Invariant 2 violated: {v}"),
            });
        }
        self.violations += out.len() as u64;
        out
    }

    fn summary(&self) -> String {
        format!(
            "safety: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// Structural routing sanity that holds in *every* reachable state,
/// stabilized or not (Figure 4's Route plus the §IV fail/recover
/// transitions):
///
/// * `next` and `signal`, when set, point at grid neighbors;
/// * the live target has `dist = 0`; no other live cell ever does;
/// * a failed cell stays pinned at `dist = ∞`, `next = ⊥` (nothing but
///   recovery may touch it).
#[derive(Debug, Default)]
pub struct RoutingMonitor {
    rounds: u64,
    violations: u64,
}

impl RoutingMonitor {
    /// A fresh monitor.
    pub fn new() -> RoutingMonitor {
        RoutingMonitor::default()
    }
}

impl Monitor for RoutingMonitor {
    fn name(&self) -> &'static str {
        "routing"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let dims = ctx.config.dims();
        let target = ctx.config.target();
        let mut out = Vec::new();
        let mut flag = |round: u64, detail: String| {
            out.push(MonitorViolation {
                monitor: "routing",
                round,
                detail,
            });
        };
        for id in dims.iter() {
            let cell = ctx.state.cell(dims, id);
            if cell.failed {
                if cell.dist != Dist::Infinity || cell.next.is_some() {
                    flag(
                        ctx.round,
                        format!(
                            "failed cell {id} not pinned: dist={:?} next={:?}",
                            cell.dist, cell.next
                        ),
                    );
                }
                continue;
            }
            if let Some(n) = cell.next {
                if !id.is_neighbor(n) {
                    flag(ctx.round, format!("cell {id} routes to non-neighbor {n}"));
                }
            }
            if let Some(s) = cell.signal {
                if !id.is_neighbor(s) {
                    flag(ctx.round, format!("cell {id} grants non-neighbor {s}"));
                }
            }
            if id == target {
                if cell.dist != Dist::Finite(0) {
                    flag(
                        ctx.round,
                        format!("live target {id} has dist {:?}, expected 0", cell.dist),
                    );
                }
            } else if cell.dist == Dist::Finite(0) {
                flag(ctx.round, format!("non-target cell {id} claims dist 0"));
            }
        }
        self.violations += out.len() as u64;
        out
    }

    fn summary(&self) -> String {
        format!(
            "routing: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// Entity conservation: starting from the empty initial state, the current
/// population must equal `inserted − consumed` — transfers move entities,
/// never mint or destroy them.
///
/// Rounds with a state discontinuity ([`MonitorCtx::corrupted`]) are
/// allowed to shift the population (a stale-snapshot restore resurrects or
/// drops entities; an adversarial jostle may not, but the adversary gets
/// the benefit of the doubt for one round). The monitor *re-baselines* on
/// such rounds — recording the new offset between population and the
/// ledger — and then enforces conservation against that offset until the
/// next discontinuity. Losing entities to a fault is permitted; minting
/// them silently afterwards is still a violation.
#[derive(Debug, Default)]
pub struct ConservationMonitor {
    rounds: u64,
    violations: u64,
    offset: i64,
}

impl ConservationMonitor {
    /// A fresh monitor.
    pub fn new() -> ConservationMonitor {
        ConservationMonitor::default()
    }
}

impl Monitor for ConservationMonitor {
    fn name(&self) -> &'static str {
        "conservation"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let population = ctx.state.entity_count() as i64;
        let expected =
            (ctx.inserted_total - ctx.consumed_total.min(ctx.inserted_total)) as i64;
        if !ctx.corrupted.is_empty() {
            self.offset = population - expected;
            return Vec::new();
        }
        let mut out = Vec::new();
        if population != expected + self.offset {
            out.push(MonitorViolation {
                monitor: self.name(),
                round: ctx.round,
                detail: format!(
                    "population {population} ≠ inserted {} − consumed {}{}",
                    ctx.inserted_total,
                    ctx.consumed_total,
                    if self.offset != 0 {
                        format!(" (fault offset {})", self.offset)
                    } else {
                        String::new()
                    }
                ),
            });
            self.violations += 1;
        }
        out
    }

    fn summary(&self) -> String {
        format!(
            "conservation: {} rounds checked, {} violations",
            self.rounds, self.violations
        )
    }
}

/// The round budget the [`StabilizationMonitor`] grants after a disturbance:
/// `2·cell_count + 2`, a conservative executable form of Lemma 6 /
/// Corollary 7's `O(N²)` routing-stabilization bound.
pub fn stabilization_bound(config: &SystemConfig) -> u64 {
    2 * config.dims().cell_count() as u64 + 2
}

/// A stopwatch for Lemma 6 / Corollary 7: after the last fault transition,
/// routing (in the sense of [`analysis::routing_stabilized`]) must
/// re-stabilize within [`stabilization_bound`] rounds. Reports at most one
/// violation per disturbance epoch.
#[derive(Debug)]
pub struct StabilizationMonitor {
    bound: u64,
    last_disturbance: u64,
    stabilized_at: Option<u64>,
    reported_epoch: bool,
    violations: u64,
    probe: Option<StabilizationProbe>,
}

/// A shared read-out of a [`StabilizationMonitor`]'s verdict, for callers
/// that hand their monitors to a runtime (which consumes them) but still
/// need the stopwatch numbers afterwards — e.g. the `cellflow stabilize`
/// certificate over a deployment run.
#[derive(Clone, Debug, Default)]
pub struct StabilizationProbe {
    inner: std::sync::Arc<std::sync::Mutex<ProbeInner>>,
}

#[derive(Clone, Copy, Debug, Default)]
struct ProbeInner {
    rounds_to_stabilize: Option<u64>,
    last_disturbance: u64,
    violations: u64,
}

impl StabilizationProbe {
    /// A fresh, unobserved probe.
    pub fn new() -> StabilizationProbe {
        StabilizationProbe::default()
    }

    /// Rounds from the last disturbance to stabilization, if the attached
    /// monitor last observed a stabilized state.
    pub fn rounds_to_stabilize(&self) -> Option<u64> {
        self.lock().rounds_to_stabilize
    }

    /// The round of the last disturbance the attached monitor saw.
    pub fn last_disturbance(&self) -> u64 {
        self.lock().last_disturbance
    }

    /// Total bound violations the attached monitor reported.
    pub fn violations(&self) -> u64 {
        self.lock().violations
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProbeInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StabilizationMonitor {
    /// A stopwatch with the standard bound for `config`.
    pub fn new(config: &SystemConfig) -> StabilizationMonitor {
        StabilizationMonitor::with_bound(stabilization_bound(config))
    }

    /// A stopwatch with an explicit round budget.
    pub fn with_bound(bound: u64) -> StabilizationMonitor {
        StabilizationMonitor {
            bound,
            last_disturbance: 0,
            stabilized_at: None,
            reported_epoch: false,
            violations: 0,
            probe: None,
        }
    }

    /// Attaches `probe`, which mirrors the stopwatch after every observed
    /// round.
    pub fn with_probe(mut self, probe: &StabilizationProbe) -> StabilizationMonitor {
        self.probe = Some(probe.clone());
        self
    }

    /// The round budget in force.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// The round at which the current quiet epoch stabilized, if it has.
    pub fn stabilized_at(&self) -> Option<u64> {
        self.stabilized_at
    }

    /// Rounds from the last disturbance to stabilization, if stabilized.
    pub fn rounds_to_stabilize(&self) -> Option<u64> {
        self.stabilized_at.map(|r| r - self.last_disturbance)
    }
}

impl Monitor for StabilizationMonitor {
    fn name(&self) -> &'static str {
        "stabilization"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        if !ctx.failed.is_empty()
            || !ctx.recovered.is_empty()
            || !ctx.corrupted.is_empty()
            || ctx.ambient_chaos
        {
            // A new epoch starts; the clock restarts at this round.
            self.last_disturbance = ctx.round;
            self.stabilized_at = None;
            self.reported_epoch = false;
        }
        let out = if analysis::routing_stabilized(ctx.config, ctx.state) {
            if self.stabilized_at.is_none() {
                self.stabilized_at = Some(ctx.round);
            }
            Vec::new()
        } else {
            self.stabilized_at = None;
            let elapsed = ctx.round - self.last_disturbance;
            if elapsed > self.bound && !self.reported_epoch {
                self.reported_epoch = true;
                self.violations += 1;
                vec![MonitorViolation {
                    monitor: self.name(),
                    round: ctx.round,
                    detail: format!(
                        "routing not stabilized {elapsed} rounds after the \
                         disturbance at round {} (bound {})",
                        self.last_disturbance, self.bound
                    ),
                }]
            } else {
                Vec::new()
            }
        };
        if let Some(probe) = &self.probe {
            *probe.lock() = ProbeInner {
                rounds_to_stabilize: self.rounds_to_stabilize(),
                last_disturbance: self.last_disturbance,
                violations: self.violations,
            };
        }
        out
    }

    fn summary(&self) -> String {
        match self.rounds_to_stabilize() {
            Some(rounds) => format!(
                "stabilization: stabilized {rounds} rounds after the last \
                 disturbance (bound {})",
                self.bound
            ),
            None => format!(
                "stabilization: NOT stabilized (last disturbance round {}, \
                 bound {}, {} violations)",
                self.last_disturbance, self.bound, self.violations
            ),
        }
    }
}

/// The capacity invariant, watched online: every cell's occupancy must stay
/// at or below the configured [`capacity`](SystemConfig::capacity).
///
/// A breach fires **once per violation episode**: the round a cell first
/// exceeds its capacity, not again while it stays over, and afresh if it
/// drains below and breaches anew. Overload campaigns hold cells over
/// capacity for many rounds — one violation per round would bury every
/// other monitor's output, while the episode edge is exactly the event a
/// cascade report wants to count.
#[derive(Debug)]
pub struct CapacityMonitor {
    capacity: u32,
    /// Per-cell episode latch: `true` while the cell is over capacity.
    over: Vec<bool>,
    rounds: u64,
    violations: u64,
    /// Highest occupancy ever observed.
    peak: usize,
}

impl CapacityMonitor {
    /// A monitor for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has no capacity (there would be nothing to check).
    pub fn new(config: &SystemConfig) -> CapacityMonitor {
        CapacityMonitor {
            capacity: config
                .capacity()
                .expect("capacity monitoring requires a finite capacity"),
            over: vec![false; config.dims().cell_count()],
            rounds: 0,
            violations: 0,
            peak: 0,
        }
    }
}

impl Monitor for CapacityMonitor {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let dims = ctx.config.dims();
        let mut out = Vec::new();
        for (k, cell) in ctx.state.cells.iter().enumerate() {
            let occupancy = cell.members.len();
            self.peak = self.peak.max(occupancy);
            if occupancy > self.capacity as usize {
                if !self.over[k] {
                    self.over[k] = true;
                    self.violations += 1;
                    out.push(MonitorViolation {
                        monitor: self.name(),
                        round: ctx.round,
                        detail: format!(
                            "cell {} holds {occupancy} entities over capacity {}",
                            dims.id_at(k),
                            self.capacity
                        ),
                    });
                }
            } else {
                self.over[k] = false;
            }
        }
        out
    }

    fn summary(&self) -> String {
        format!(
            "capacity: {} rounds checked, peak occupancy {} of {}, {} breaches",
            self.rounds, self.peak, self.capacity, self.violations
        )
    }
}

/// Labels each cell with the identifier of its connected component under the
/// per-cell incoming link-cut `mask` (see
/// [`PartitionSchedule::mask_row`](crate::PartitionSchedule::mask_row)),
/// or `None` for failed cells.
///
/// Two live neighboring cells belong to the same component iff their shared
/// edge is open in **both** directions — a one-way cut already breaks the
/// request/grant handshake, so the transfer channel is down. Components are
/// numbered `0, 1, …` in cell-scan order, which makes the labeling
/// deterministic for rendering and reports.
///
/// # Panics
///
/// Panics if `mask.len()` differs from the number of cells.
pub fn component_map(
    config: &SystemConfig,
    state: &SystemState,
    mask: &[u8],
) -> Vec<Option<u32>> {
    let dims = config.dims();
    let n = dims.cell_count();
    assert_eq!(mask.len(), n, "mask row must match the grid");
    let mut comp: Vec<Option<u32>> = vec![None; n];
    let mut next_comp = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start].is_some() || state.cells[start].failed {
            continue;
        }
        let label = next_comp;
        next_comp += 1;
        comp[start] = Some(label);
        stack.push(start);
        while let Some(k) = stack.pop() {
            let id = dims.id_at(k);
            for (s, &dir) in cellflow_geom::Dir::ALL.iter().enumerate() {
                let Some(nid) = dims.neighbor(id, dir) else {
                    continue;
                };
                let nk = dims.index(nid);
                if comp[nk].is_some() || state.cells[nk].failed {
                    continue;
                }
                // k's incoming slot s faces `dir`; the neighbor hears k on
                // the opposite slot.
                let back = cellflow_geom::Dir::ALL
                    .iter()
                    .position(|&d| d == dir.opposite())
                    .expect("Dir::ALL covers every direction");
                if mask[k] & (1 << s) != 0 || mask[nk] & (1 << back) != 0 {
                    continue;
                }
                comp[nk] = Some(label);
                stack.push(nk);
            }
        }
    }
    comp
}

/// A split-brain observer for partition episodes: tracks the connected
/// components induced by a [`PartitionSchedule`](crate::PartitionSchedule),
/// re-checks Theorem 5 safety on every round an episode is active, and
/// asserts that no entity ever crosses a cut edge.
///
/// The standard suite's [`SafetyMonitor`] already checks safety every round;
/// this monitor's value is the *attribution* — its violations say "unsafe
/// **while partitioned**" and "entity crossed a **cut** edge", which is what
/// a partition campaign report needs to certify Theorem 5's
/// failure-obliviousness under link faults, not just cell crashes.
pub struct ReachabilityMonitor {
    schedule: crate::PartitionSchedule,
    /// Entity → cell of the previous observed round.
    prev: std::collections::HashMap<crate::EntityId, CellId>,
    rounds: u64,
    episode_rounds: u64,
    max_components: u32,
    violations: u64,
}

impl ReachabilityMonitor {
    /// A monitor enforcing `schedule`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule was built for a different grid than `config`.
    pub fn new(config: &SystemConfig, schedule: crate::PartitionSchedule) -> ReachabilityMonitor {
        assert_eq!(
            schedule.dims(),
            config.dims(),
            "partition schedule and system must share a grid"
        );
        ReachabilityMonitor {
            schedule,
            prev: std::collections::HashMap::new(),
            rounds: 0,
            episode_rounds: 0,
            max_components: 0,
            violations: 0,
        }
    }

    /// The largest number of simultaneously live components observed.
    pub fn max_components(&self) -> u32 {
        self.max_components
    }

    /// How many observed rounds had at least one active cut.
    pub fn episode_rounds(&self) -> u64 {
        self.episode_rounds
    }
}

impl Monitor for ReachabilityMonitor {
    fn name(&self) -> &'static str {
        "reachability"
    }

    fn observe(&mut self, ctx: &MonitorCtx<'_>) -> Vec<MonitorViolation> {
        self.rounds += 1;
        let dims = ctx.config.dims();
        // `ctx.round` is 1-based; the schedule's mask rows are 0-based.
        let mask_round = ctx.round.saturating_sub(1);
        let mask = self.schedule.mask_row(mask_round);
        let active = self.schedule.active(mask_round);
        let mut out = Vec::new();

        let comp = component_map(ctx.config, ctx.state, mask);
        let components = comp.iter().flatten().copied().max().map_or(0, |m| m + 1);
        self.max_components = self.max_components.max(components);

        if active {
            self.episode_rounds += 1;
            if let Err(v) = safety::check_safe(ctx.config, ctx.state) {
                out.push(MonitorViolation {
                    monitor: self.name(),
                    round: ctx.round,
                    detail: format!("Theorem 5 violated while partitioned: {v}"),
                });
            }
        }

        // No entity may have crossed an edge whose *grant* direction is cut:
        // a mover must hear its next cell's grant that same round (the
        // request side is weaker — a standing token issued before the cut
        // may keep granting, which both executions honor).
        for (k, cell) in ctx.state.cells.iter().enumerate() {
            let here = dims.id_at(k);
            for &eid in cell.members.keys() {
                if let Some(&from) = self.prev.get(&eid) {
                    if from != here && self.schedule.is_cut(mask_round, here, from) {
                        out.push(MonitorViolation {
                            monitor: self.name(),
                            round: ctx.round,
                            detail: format!(
                                "entity {eid:?} crossed the cut edge {from} → {here}"
                            ),
                        });
                    }
                }
            }
        }
        self.prev.clear();
        for (k, cell) in ctx.state.cells.iter().enumerate() {
            let here = dims.id_at(k);
            for &eid in cell.members.keys() {
                self.prev.insert(eid, here);
            }
        }
        self.violations += out.len() as u64;
        out
    }

    fn summary(&self) -> String {
        format!(
            "reachability: {} rounds checked ({} partitioned), max {} components, {} violations",
            self.rounds, self.episode_rounds, self.max_components, self.violations
        )
    }
}

/// The standard monitor suite: safety, routing sanity, conservation, and the
/// stabilization stopwatch for `config` — plus the capacity invariant when
/// `config` gives cells a finite [`capacity`](SystemConfig::capacity)
/// (capacity-free configurations keep the original four monitors).
pub fn standard_monitors(config: &SystemConfig) -> Vec<Box<dyn Monitor>> {
    let mut monitors: Vec<Box<dyn Monitor>> = vec![
        Box::new(SafetyMonitor::new()),
        Box::new(RoutingMonitor::new()),
        Box::new(ConservationMonitor::new()),
        Box::new(StabilizationMonitor::new(config)),
    ];
    if config.capacity().is_some() {
        monitors.push(Box::new(CapacityMonitor::new(config)));
    }
    monitors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, System, SystemConfig};
    use cellflow_grid::{CellId, GridDims};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(4),
            CellId::new(3, 3),
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
    }

    fn observe_run(monitors: &mut [Box<dyn Monitor>], rounds: u64) -> Vec<MonitorViolation> {
        let mut sys = System::new(config());
        let mut all = Vec::new();
        for _ in 0..rounds {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            for m in monitors.iter_mut() {
                all.extend(m.observe(&ctx));
            }
        }
        all
    }

    #[test]
    fn clean_run_fires_no_monitor() {
        let cfg = config();
        let mut monitors = standard_monitors(&cfg);
        let violations = observe_run(&mut monitors, 60);
        assert_eq!(violations, Vec::new());
        for m in &monitors {
            assert!(m.summary().contains("0 violations") || m.name() == "stabilization");
        }
    }

    #[test]
    fn safety_monitor_flags_seeded_overlap() {
        let mut sys = System::new(config());
        // Bypass the protocol: plant two coincident entities by hand.
        let dims = sys.config().dims();
        let cell = CellId::new(1, 1);
        let mut state = sys.state().clone();
        state
            .cell_mut(dims, cell)
            .members
            .insert(crate::EntityId(900), cell.center());
        state
            .cell_mut(dims, cell)
            .members
            .insert(crate::EntityId(901), cell.center());
        sys.set_state(state);
        let mut m = SafetyMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: 1,
            failed: &[],
            recovered: &[],
            corrupted: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 2,
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("Theorem 5"));
        assert!(m.summary().contains("1 violations"));
        assert!(vs[0].to_string().contains("safety"));
    }

    #[test]
    fn routing_monitor_flags_corrupted_pointer() {
        let sys = System::new(config());
        let dims = sys.config().dims();
        let mut state = sys.state().clone();
        // ⟨0,0⟩ pointing at the far corner is never a legal route pointer.
        state.cell_mut(dims, CellId::new(0, 0)).next = Some(CellId::new(3, 3));
        let mut m = RoutingMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: &state,
            round: 3,
            failed: &[],
            recovered: &[],
            corrupted: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 0,
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("non-neighbor"));
    }

    #[test]
    fn conservation_monitor_flags_count_mismatch() {
        let sys = System::new(config());
        let mut m = ConservationMonitor::new();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: 1,
            failed: &[],
            recovered: &[],
            corrupted: &[],
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: 5, // claims 5 inserted but the state is empty
        };
        let vs = m.observe(&ctx);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("population"));
    }

    #[test]
    fn stabilization_stopwatch_restarts_on_disturbance() {
        let cfg = config();
        let mut sys = System::new(cfg.clone());
        let mut m = StabilizationMonitor::new(&cfg);
        assert_eq!(m.bound(), 2 * 16 + 2);
        // Quiet start: stabilizes well within the bound.
        for _ in 0..10 {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            assert_eq!(m.observe(&ctx), Vec::new());
        }
        assert!(m.rounds_to_stabilize().is_some());
        // A crash restarts the clock.
        let victim = CellId::new(2, 2);
        sys.fail(victim);
        sys.step();
        let ctx = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: sys.round(),
            failed: &[victim],
            recovered: &[],
            corrupted: &[],
            ambient_chaos: false,
            consumed_total: sys.consumed_total(),
            inserted_total: sys.inserted_total(),
        };
        m.observe(&ctx);
        assert_eq!(m.stabilized_at().is_some(), {
            // Whatever the immediate verdict, the epoch must have restarted.
            self::analysis::routing_stabilized(sys.config(), sys.state())
        });
        assert!(m.summary().contains("bound 34"));
    }

    #[test]
    fn stabilization_stopwatch_fires_past_bound() {
        // A tight artificial bound of 1 must fire on the unstabilized start.
        let mut m = StabilizationMonitor::with_bound(1);
        let mut sys = System::new(config());
        let mut fired = Vec::new();
        for _ in 0..4 {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            fired.extend(m.observe(&ctx));
        }
        // Fires exactly once per epoch, not once per late round.
        assert_eq!(fired.len(), 1);
        assert!(fired[0].detail.contains("bound 1"));
    }

    #[test]
    fn conservation_rebaselines_on_corrupted_rounds() {
        let sys = System::new(config());
        let mut m = ConservationMonitor::new();
        let ctx = |round, corrupted: &'static [CellId], inserted| MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round,
            failed: &[],
            recovered: &[],
            corrupted,
            ambient_chaos: false,
            consumed_total: 0,
            inserted_total: inserted,
        };
        static VICTIM: [CellId; 1] = [CellId::new(1, 1)];
        // Discontinuity round: the ledger says 3, the state holds 0. The
        // monitor re-baselines instead of firing.
        assert_eq!(m.observe(&ctx(1, &VICTIM, 3)), Vec::new());
        // Quiet rounds hold against the recorded offset of −3.
        assert_eq!(m.observe(&ctx(2, &[], 3)), Vec::new());
        // A later ledger shift without a discontinuity still fires.
        let vs = m.observe(&ctx(3, &[], 2));
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("fault offset -3"));
    }

    #[test]
    fn stabilization_restarts_on_corruption_and_probe_mirrors() {
        let cfg = config();
        let probe = StabilizationProbe::new();
        let mut m = StabilizationMonitor::new(&cfg).with_probe(&probe);
        let mut sys = System::new(cfg);
        for _ in 0..10 {
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            m.observe(&ctx);
        }
        assert!(probe.rounds_to_stabilize().is_some());
        assert_eq!(probe.violations(), 0);
        // A corruption restarts the epoch clock, mirrored by the probe.
        sys.step();
        let disturbed = MonitorCtx {
            config: sys.config(),
            state: sys.state(),
            round: sys.round(),
            failed: &[],
            recovered: &[],
            corrupted: &[CellId::new(2, 2)],
            ambient_chaos: false,
            consumed_total: sys.consumed_total(),
            inserted_total: sys.inserted_total(),
        };
        m.observe(&disturbed);
        assert_eq!(probe.last_disturbance(), sys.round());
    }

    #[test]
    fn component_map_tracks_splits_and_failed_cells() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let mut sys = System::new(cfg.clone());
        // No cuts: one component covering all 16 cells.
        let comp = component_map(&cfg, sys.state(), &[0; 16]);
        assert!(comp.iter().all(|c| *c == Some(0)));
        // Split before column 2: exactly two components, divided on `i`.
        let schedule = PartitionPlan::for_grid(cfg.dims())
            .split_col(2, 0, None)
            .expand(1);
        let comp = component_map(&cfg, sys.state(), schedule.mask_row(0));
        for (k, c) in comp.iter().enumerate() {
            let id = cfg.dims().id_at(k);
            assert_eq!(*c, Some(u32::from(id.i() >= 2)), "cell {id}");
        }
        // A failed cell is in no component.
        sys.fail(CellId::new(0, 0));
        let comp = component_map(&cfg, sys.state(), schedule.mask_row(0));
        assert_eq!(comp[cfg.dims().index(CellId::new(0, 0))], None);
        // A one-way cut alone already severs the component edge.
        let schedule = PartitionPlan::for_grid(cfg.dims())
            .cut(CellId::new(0, 3), CellId::new(1, 3), 0, None)
            .expand(1);
        let comp = component_map(&cfg, sys.state(), schedule.mask_row(0));
        // The grid minus that edge is still connected elsewhere, so still
        // one component — but the edge itself must not be what connects it.
        assert_eq!(comp.iter().flatten().max(), Some(&0));
    }

    #[test]
    fn reachability_monitor_attributes_partition_rounds() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(2, 5, Some(20));
        let schedule = plan.expand(40);
        let mut m = ReachabilityMonitor::new(&cfg, schedule.clone());
        let mut sys = System::new(cfg.clone());
        for round in 0..40u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round: sys.round(),
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: schedule.active(round),
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            assert_eq!(m.observe(&ctx), Vec::new(), "round {round}");
        }
        assert_eq!(m.max_components(), 2);
        assert_eq!(m.episode_rounds(), 15);
        assert!(m.summary().contains("max 2 components"));
    }

    #[test]
    fn reachability_monitor_flags_entity_crossing_a_cut() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let schedule = PartitionPlan::for_grid(cfg.dims())
            .split_col(2, 0, None)
            .expand(10);
        let mut m = ReachabilityMonitor::new(&cfg, schedule);
        let mut sys = System::new(cfg.clone());
        let eid = sys
            .seed_entity(CellId::new(1, 1), CellId::new(1, 1).center())
            .unwrap();
        let observe = |m: &mut ReachabilityMonitor, sys: &System, round| {
            m.observe(&MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round,
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: true,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            })
        };
        assert_eq!(observe(&mut m, &sys, 1), Vec::new());
        // Teleport the entity across the cut by hand: ⟨1,1⟩ → ⟨2,1⟩.
        let dims = cfg.dims();
        let mut state = sys.state().clone();
        let pos = state
            .cell_mut(dims, CellId::new(1, 1))
            .members
            .remove(&eid)
            .unwrap();
        let _ = pos;
        state
            .cell_mut(dims, CellId::new(2, 1))
            .members
            .insert(eid, CellId::new(2, 1).center());
        sys.set_state(state);
        let vs = observe(&mut m, &sys, 2);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("crossed the cut edge"));
    }

    #[test]
    fn capacity_monitor_fires_once_per_violation_episode() {
        let cfg = config().with_capacity(2);
        let mut sys = System::new(cfg.clone());
        let dims = cfg.dims();
        let cell = CellId::new(1, 1);
        let mut m = CapacityMonitor::new(&cfg);
        let observe = |m: &mut CapacityMonitor, sys: &System, round: u64| {
            let ctx = MonitorCtx {
                config: sys.config(),
                state: sys.state(),
                round,
                failed: &[],
                recovered: &[],
                corrupted: &[],
                ambient_chaos: false,
                consumed_total: sys.consumed_total(),
                inserted_total: sys.inserted_total(),
            };
            m.observe(&ctx)
        };

        // Round 1: push the cell one over capacity — exactly one violation.
        let mut state = sys.state().clone();
        for e in 0..3u64 {
            state
                .cell_mut(dims, cell)
                .members
                .insert(crate::EntityId(900 + e), cell.center());
        }
        sys.set_state(state);
        let vs = observe(&mut m, &sys, 1);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].detail.contains("over capacity 2"));

        // Rounds 2-4: still over capacity — the episode latch stays set.
        for round in 2..5 {
            assert_eq!(observe(&mut m, &sys, round), Vec::new());
        }

        // Round 5: drain below capacity — no violation, latch clears.
        let mut state = sys.state().clone();
        state
            .cell_mut(dims, cell)
            .members
            .remove(&crate::EntityId(902));
        sys.set_state(state);
        assert_eq!(observe(&mut m, &sys, 5), Vec::new());

        // Round 6: breach anew — a fresh episode fires a second violation.
        let mut state = sys.state().clone();
        state
            .cell_mut(dims, cell)
            .members
            .insert(crate::EntityId(903), cell.center());
        sys.set_state(state);
        let vs = observe(&mut m, &sys, 6);
        assert_eq!(vs.len(), 1);
        assert!(m.summary().contains("2 breaches"));
    }
}
