//! Endogenous overload faults: finite-capacity cells, cascading failures,
//! and randomized backoff degradation.
//!
//! Every fault in [`fault`](crate::fault) is *exogenous* — an adversary
//! scripts it. This module adds the failure family that load itself causes
//! (Como et al., *Robust Distributed Routing in Dynamical Networks with
//! Cascading Failures*): when a cell's occupancy sits at or above a
//! threshold for `sustain_rounds` consecutive rounds, the cell
//! *overload-crashes* ([`FaultKind::OverloadCrash`]). Its registers freeze,
//! routing sheds its inflow onto neighboring cells, and those neighbors —
//! now carrying the dead cell's load on top of their own — may overload in
//! turn: a cascade, tracked with per-cell *cascade depth* (1 + the deepest
//! previously-overloaded neighbor).
//!
//! The mitigation is the randomized, memory-light backoff of Feldmann,
//! Götte & Scheideler (*A Loosely Self-stabilizing Protocol for Randomized
//! Congestion Control with Logarithmic Memory*): instead of dying, an
//! overloaded cell pauses admission for a randomized window — seeded
//! splitmix64 jitter on top of a window that doubles per activation
//! (logarithmic state: only the activation count is stored) — and resumes.
//! In protocol terms the pause *is* a [`fail`](crate::System::fail) /
//! [`recover`](crate::System::recover) pair: a failed cell's `signal` reads
//! `⊥`, which is precisely "grant no admission", and `Route` steers inflow
//! around it. No new protocol semantics are introduced, so every safety and
//! equivalence argument about the round transition is untouched.
//!
//! Because detection is a deterministic function of the (deterministic)
//! execution, an entire overload campaign can be *precomputed*:
//! [`expand_overload`] replays a scenario on the shared-variable reference,
//! records every endogenous event, and returns an ordinary [`FaultPlan`]
//! that scripted-fault machinery — the sim, the message-passing runtime,
//! the supervisor's restart policies — consumes exactly like a hand-written
//! plan. The online ([`OverloadDetector`]) and expanded views are proven
//! equivalent by the sim crate's differential tests.

use cellflow_geom::Dir;
use cellflow_grid::CellId;

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::{System, SystemConfig, SystemState};

/// When does overload trip? A cell (other than the target, which is an
/// infinite sink) trips once its occupancy has been `≥ threshold` for
/// `sustain_rounds` consecutive rounds — the sustain filter keeps one-round
/// spikes from killing cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadTrigger {
    /// Occupancy at or above this trips the sustain counter. Typically the
    /// cell's [`capacity`](SystemConfig::capacity).
    pub threshold: u32,
    /// Consecutive rounds at/above `threshold` before the cell trips.
    pub sustain_rounds: u32,
}

impl OverloadTrigger {
    /// A trigger at `threshold`, sustained for `sustain_rounds`.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(threshold: u32, sustain_rounds: u32) -> OverloadTrigger {
        assert!(threshold > 0, "threshold must be positive");
        assert!(sustain_rounds > 0, "sustain_rounds must be positive");
        OverloadTrigger {
            threshold,
            sustain_rounds,
        }
    }

    /// The default trigger for `config`: threshold at the configured
    /// capacity, sustained for 2 rounds.
    ///
    /// # Panics
    ///
    /// Panics if `config` has no capacity.
    pub fn for_config(config: &SystemConfig) -> OverloadTrigger {
        let cap = config
            .capacity()
            .expect("overload triggers require a finite capacity");
        OverloadTrigger::new(cap, 2)
    }
}

/// Feldmann-style randomized backoff: an overloaded cell pauses for
/// `min(base · 2^(activations−1), max) + jitter` rounds instead of dying,
/// where `jitter ∈ [0, base)` is drawn by seeded splitmix64. Per cell, only
/// the activation count is kept — logarithmic in the largest window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First pause window, in rounds; also the jitter range.
    pub base: u64,
    /// Cap on the doubling window.
    pub max: u64,
    /// Seed for the per-(cell, activation) jitter draw.
    pub seed: u64,
}

impl BackoffPolicy {
    /// The pause length for `cell`'s `activation`-th trip (1-based).
    pub fn pause_rounds(&self, cell: CellId, activation: u32) -> u64 {
        let doublings = activation.saturating_sub(1).min(62);
        let window = (self.base << doublings).min(self.max);
        let jitter = if self.base == 0 {
            0
        } else {
            splitmix64(
                self.seed
                    ^ ((cell.i() as u64) << 40 | (cell.j() as u64) << 20 | activation as u64),
            ) % self.base
        };
        window.max(1) + jitter
    }
}

// splitmix64: the same deterministic mixer the supervisor's jitter and the
// parallel random walks use — the shared copy in [`crate::hash`].
use crate::hash::splitmix64;

/// What a tripped cell does, as decided by the [`OverloadDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadAction {
    /// No mitigation: the cell overload-crashes (permanently, unless a
    /// restart is scripted). `shed` is the occupancy stranded on the cell at
    /// crash time — the load its neighbors must now absorb.
    Crash {
        /// Cascade depth: 1 + the deepest previously-tripped neighbor.
        depth: u32,
        /// Entities stranded on the cell when it died.
        shed: u64,
    },
    /// Backoff mitigation: the cell pauses admission (fails) and resumes
    /// (recovers) at `resume_round`.
    Backoff {
        /// First round at which the cell runs again.
        resume_round: u64,
        /// The cell's activation count after this trip (the logarithmic
        /// backoff state).
        activation: u32,
        /// Cascade depth of this activation.
        depth: u32,
    },
}

/// Aggregate counters of one overload campaign — the numbers the telemetry
/// registries export and `cellflow chaos --cascade` reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CascadeStats {
    /// Cells that overload-crashed (no mitigation).
    pub overload_crashes: u64,
    /// Total entities stranded on cells at overload-crash time.
    pub sheds: u64,
    /// Backoff pauses taken (mitigation on).
    pub backoff_activations: u64,
    /// Deepest cascade chain observed (0 when nothing tripped).
    pub max_cascade_depth: u32,
}

/// Online overload detection over a running [`System`]'s state.
///
/// Poll it once per round *before* the round executes (where failure models
/// apply their faults); it returns the cells that trip this round and what
/// each does. Fully deterministic: same configuration, trigger, policy and
/// execution ⇒ same decisions, which is what lets [`expand_overload`]
/// precompute a whole campaign as a scripted plan.
#[derive(Clone, Debug)]
pub struct OverloadDetector {
    trigger: OverloadTrigger,
    backoff: Option<BackoffPolicy>,
    /// Cells exempt from overload: the target (an infinite sink) and the
    /// sources (exogenous demand — crashing the load generator ends the
    /// experiment instead of cascading it).
    protected: Vec<bool>,
    /// Consecutive rounds at/above threshold, per cell.
    sustain: Vec<u32>,
    /// Backoff activation count per cell (the Feldmann logarithmic state).
    activations: Vec<u32>,
    /// Cascade depth per cell (0 = never tripped).
    depth: Vec<u32>,
    stats: CascadeStats,
}

impl OverloadDetector {
    /// A detector for `config` with the given trigger, optionally mitigated
    /// by randomized backoff.
    pub fn new(
        config: &SystemConfig,
        trigger: OverloadTrigger,
        backoff: Option<BackoffPolicy>,
    ) -> OverloadDetector {
        let n = config.dims().cell_count();
        let mut protected = vec![false; n];
        protected[config.dims().index(config.target())] = true;
        for &source in config.sources() {
            protected[config.dims().index(source)] = true;
        }
        OverloadDetector {
            trigger,
            backoff,
            protected,
            sustain: vec![0; n],
            activations: vec![0; n],
            depth: vec![0; n],
            stats: CascadeStats::default(),
        }
    }

    /// Campaign counters accumulated so far.
    pub fn stats(&self) -> CascadeStats {
        self.stats
    }

    /// Cascade depth of `cell` (0 if it never tripped).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds for the detector's grid.
    pub fn cascade_depth(&self, config: &SystemConfig, cell: CellId) -> u32 {
        self.depth[config.dims().index(cell)]
    }

    /// Examines `state` at the start of `round` and returns the cells that
    /// trip, in ascending `CellId` order. The caller is responsible for
    /// enacting the actions ([`System::fail`] now; for
    /// [`OverloadAction::Backoff`], a recovery at `resume_round`).
    pub fn poll(
        &mut self,
        config: &SystemConfig,
        state: &SystemState,
        round: u64,
    ) -> Vec<(CellId, OverloadAction)> {
        let dims = config.dims();
        let mut tripped = Vec::new();
        for (k, cell) in state.cells.iter().enumerate() {
            if self.protected[k] {
                continue; // targets sink, sources generate; neither trips
            }
            if cell.failed {
                // Dead or pausing cells are inert; the counter restarts
                // from zero when (if) they come back.
                self.sustain[k] = 0;
                continue;
            }
            if cell.members.len() >= self.trigger.threshold as usize {
                self.sustain[k] += 1;
            } else {
                self.sustain[k] = 0;
                continue;
            }
            if self.sustain[k] < self.trigger.sustain_rounds {
                continue;
            }
            self.sustain[k] = 0;
            let id = dims.id_at(k);
            let nbr_depth = Dir::ALL
                .iter()
                .filter_map(|&d| dims.neighbor(id, d))
                .map(|n| self.depth[dims.index(n)])
                .max()
                .unwrap_or(0);
            let depth = nbr_depth + 1;
            self.depth[k] = self.depth[k].max(depth);
            self.stats.max_cascade_depth = self.stats.max_cascade_depth.max(depth);
            let action = match self.backoff {
                None => {
                    let shed = cell.members.len() as u64;
                    self.stats.overload_crashes += 1;
                    self.stats.sheds += shed;
                    OverloadAction::Crash { depth, shed }
                }
                Some(policy) => {
                    self.activations[k] += 1;
                    let activation = self.activations[k];
                    self.stats.backoff_activations += 1;
                    OverloadAction::Backoff {
                        resume_round: round + policy.pause_rounds(id, activation),
                        activation,
                        depth,
                    }
                }
            };
            tripped.push((id, action));
        }
        tripped
    }
}

/// One overload trip in an expanded campaign: `(round, cell, depth)`.
pub type CascadeTrip = (u64, CellId, u32);

/// A precomputed overload campaign: the scripted plan that reproduces it on
/// any runtime, plus what happened.
#[derive(Clone, Debug)]
pub struct CascadeOutcome {
    /// `base` plus every endogenous event the campaign generated:
    /// [`FaultKind::OverloadCrash`] trips (with scripted restarts when
    /// `restart_after` was given), or `Crash`/`Recover` backoff pauses.
    pub plan: FaultPlan,
    /// Campaign counters.
    pub stats: CascadeStats,
    /// Every overload trip, in firing order.
    pub trips: Vec<CascadeTrip>,
}

/// Precomputes an overload campaign by replaying `base` on the
/// shared-variable reference for `rounds` rounds with an
/// [`OverloadDetector`] attached, recording every endogenous fault as an
/// ordinary scripted event.
///
/// * `backoff: None` — trips are [`FaultKind::OverloadCrash`]es. With
///   `restart_after: Some(d)` each crash also scripts an optimistic
///   [`FaultKind::Recover`] `d` rounds later — the raw restart request a
///   deployment's supervisor then disciplines (backoff, budgets, flapping
///   quarantine; see `cellflow-net`'s `RestartPolicy`).
/// * `backoff: Some(_)` — trips become `Crash`/`Recover` pauses: no
///   overload crash is recorded, only
///   [`CascadeStats::backoff_activations`].
///
/// The returned plan replayed through any `FaultPlan` consumer reproduces
/// the expansion run event for event (within a round: base events first,
/// then endogenous ones, matching this function's application order).
///
/// # Panics
///
/// Panics if `restart_after` is `Some(0)` (a same-round crash+recover would
/// reorder) or combined with `backoff` (pick one mitigation discipline).
pub fn expand_overload(
    config: &SystemConfig,
    base: &FaultPlan,
    trigger: OverloadTrigger,
    backoff: Option<BackoffPolicy>,
    restart_after: Option<u64>,
    rounds: u64,
) -> CascadeOutcome {
    assert!(
        restart_after != Some(0),
        "restart_after must be at least one round"
    );
    assert!(
        backoff.is_none() || restart_after.is_none(),
        "backoff pauses already schedule their own resume"
    );
    let mut system = System::new(config.clone());
    let mut detector = OverloadDetector::new(config, trigger, backoff);
    let mut extra: Vec<FaultEvent> = Vec::new();
    let mut trips = Vec::new();
    for round in 0..rounds {
        for event in base.events_at(round) {
            apply_event(&mut system, &event);
        }
        // Endogenous events recorded in earlier rounds (backoff resumes,
        // scripted restarts) fire here exactly as a replay would fire them.
        for event in &extra {
            if event.round == round {
                apply_event(&mut system, event);
            }
        }
        for (cell, action) in detector.poll(config, system.state(), round) {
            system.fail(cell);
            match action {
                OverloadAction::Crash { depth, .. } => {
                    trips.push((round, cell, depth));
                    extra.push(FaultEvent {
                        round,
                        cell,
                        kind: FaultKind::OverloadCrash,
                    });
                    if let Some(after) = restart_after {
                        extra.push(FaultEvent {
                            round: round + after,
                            cell,
                            kind: FaultKind::Recover,
                        });
                    }
                }
                OverloadAction::Backoff { resume_round, depth, .. } => {
                    trips.push((round, cell, depth));
                    extra.push(FaultEvent {
                        round,
                        cell,
                        kind: FaultKind::Crash,
                    });
                    extra.push(FaultEvent {
                        round: resume_round,
                        cell,
                        kind: FaultKind::Recover,
                    });
                }
            }
        }
        system.step();
    }
    let mut plan = base.clone();
    for event in extra {
        plan = plan.with_event(event.round, event.cell, event.kind);
    }
    CascadeOutcome {
        plan,
        stats: detector.stats(),
        trips,
    }
}

/// Applies one scripted event in the shared-variable model — the same
/// reading `cellflow-sim`'s `FailureModel` impl for [`FaultPlan`] uses:
/// every crash flavor is `fail`, recovery is `recover`, corruption is
/// `corrupt`.
fn apply_event(system: &mut System, event: &FaultEvent) {
    match event.kind {
        FaultKind::Recover => system.recover(event.cell),
        FaultKind::Crash
        | FaultKind::HardCrash
        | FaultKind::Kill
        | FaultKind::OverloadCrash => system.fail(event.cell),
        FaultKind::Corrupt(c) => system.corrupt(event.cell, c),
    }
}

/// A capacity breach: some cell holds more entities than it is engineered
/// for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityViolation {
    /// The over-full cell.
    pub cell: CellId,
    /// Its occupancy.
    pub occupancy: usize,
    /// The configured capacity it exceeds.
    pub capacity: u32,
}

impl std::fmt::Display for CapacityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} holds {} entities over capacity {}",
            self.cell, self.occupancy, self.capacity
        )
    }
}

/// Checks the capacity invariant `∀ cell: occupancy ≤ capacity` (trivially
/// true when `config` has no capacity). This is the invariant the bounded
/// model checker verifies exhaustively on small grids and the
/// [`CapacityMonitor`](crate::monitor::CapacityMonitor) watches online.
pub fn check_capacity(config: &SystemConfig, state: &SystemState) -> Result<(), CapacityViolation> {
    let Some(capacity) = config.capacity() else {
        return Ok(());
    };
    let dims = config.dims();
    for (k, cell) in state.cells.iter().enumerate() {
        if cell.members.len() > capacity as usize {
            return Err(CapacityViolation {
                cell: dims.id_at(k),
                occupancy: cell.members.len(),
                capacity,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, TokenPolicy};
    use cellflow_grid::GridDims;

    fn capacity_config(n: u16, cap: u32) -> SystemConfig {
        SystemConfig::new(
            GridDims::square(n),
            CellId::new(1, n - 1),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_capacity(cap)
    }

    /// A congestion seed: crash the corridor cell above the source so
    /// traffic piles up beneath the blockage.
    fn congestion_plan() -> FaultPlan {
        FaultPlan::new().crash_at(8, CellId::new(1, 2))
    }

    #[test]
    fn sustained_overload_crashes_and_cascades() {
        let config = capacity_config(5, 2);
        let outcome = expand_overload(
            &config,
            &congestion_plan(),
            OverloadTrigger::new(2, 2),
            None,
            None,
            160,
        );
        assert!(
            outcome.stats.overload_crashes >= 1,
            "congestion must trip at least one overload crash: {:?}",
            outcome.stats
        );
        assert_eq!(outcome.stats.backoff_activations, 0);
        assert!(outcome.stats.sheds >= outcome.stats.overload_crashes);
        assert!(outcome.stats.max_cascade_depth >= 1);
        assert_eq!(
            outcome.plan.census().overload_crashes as u64,
            outcome.stats.overload_crashes
        );
        // Trips fire in round order and carry positive depth.
        for w in outcome.trips.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(outcome.trips.iter().all(|&(_, _, d)| d >= 1));
    }

    #[test]
    fn backoff_mitigation_pauses_instead_of_killing() {
        let config = capacity_config(5, 2);
        let trigger = OverloadTrigger::new(2, 2);
        let cascade = expand_overload(&config, &congestion_plan(), trigger, None, None, 160);
        let backoff = expand_overload(
            &config,
            &congestion_plan(),
            trigger,
            Some(BackoffPolicy {
                base: 4,
                max: 32,
                seed: 7,
            }),
            None,
            160,
        );
        assert!(cascade.stats.overload_crashes >= 1);
        assert_eq!(backoff.stats.overload_crashes, 0);
        assert!(backoff.stats.backoff_activations >= 1);
        assert!(backoff.stats.overload_crashes < cascade.stats.overload_crashes);
        // Backoff pauses are Crash/Recover pairs in the plan, never
        // OverloadCrash.
        assert_eq!(backoff.plan.census().overload_crashes, 0);
        assert!(backoff.plan.census().recoveries >= 1);
    }

    #[test]
    fn expansion_is_deterministic() {
        let config = capacity_config(5, 2);
        let trigger = OverloadTrigger::new(2, 2);
        let policy = Some(BackoffPolicy {
            base: 4,
            max: 32,
            seed: 7,
        });
        let a = expand_overload(&config, &congestion_plan(), trigger, policy, None, 160);
        let b = expand_overload(&config, &congestion_plan(), trigger, policy, None, 160);
        assert_eq!(a.plan.events(), b.plan.events());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trips, b.trips);
    }

    #[test]
    fn scripted_restarts_let_cells_flap() {
        let config = capacity_config(5, 2);
        let outcome = expand_overload(
            &config,
            &congestion_plan(),
            OverloadTrigger::new(2, 2),
            None,
            Some(6),
            200,
        );
        // Each crash scripts a recover; a cell whose congestion persists
        // re-trips after its restart.
        let census = outcome.plan.census();
        assert!(census.overload_crashes >= 1);
        assert_eq!(census.recoveries, census.overload_crashes);
        let mut per_cell = std::collections::BTreeMap::new();
        for &(_, cell, _) in &outcome.trips {
            *per_cell.entry(cell).or_insert(0u32) += 1;
        }
        assert!(
            per_cell.values().any(|&c| c >= 2),
            "some cell should flap under naive restarts: {per_cell:?}"
        );
    }

    #[test]
    fn backoff_windows_double_up_to_the_cap_with_bounded_jitter() {
        let policy = BackoffPolicy {
            base: 4,
            max: 16,
            seed: 99,
        };
        let cell = CellId::new(2, 2);
        for activation in 1..=6u32 {
            let pause = policy.pause_rounds(cell, activation);
            let doublings = activation.saturating_sub(1).min(62);
            let window = (policy.base << doublings).min(policy.max);
            assert!(pause >= window, "activation {activation}: {pause} < {window}");
            assert!(
                pause < window + policy.base,
                "activation {activation}: jitter out of range"
            );
        }
        // Deterministic per (cell, activation).
        assert_eq!(
            policy.pause_rounds(cell, 3),
            policy.pause_rounds(cell, 3)
        );
        // And different cells draw different jitter (with overwhelming
        // probability for this seed).
        let other = CellId::new(3, 1);
        assert!(
            (1..=8).any(|a| policy.pause_rounds(cell, a) != policy.pause_rounds(other, a)),
            "jitter should depend on the cell"
        );
    }

    #[test]
    fn check_capacity_flags_the_overfull_cell() {
        let config = capacity_config(4, 3);
        let mut state = config.initial_state();
        assert_eq!(check_capacity(&config, &state), Ok(()));
        // Overfill ⟨2,2⟩ with 4 members (positions are irrelevant to the
        // occupancy count).
        let dims = config.dims();
        let cell = state.cell_mut(dims, CellId::new(2, 2));
        for e in 0..4u64 {
            cell.members.insert(
                crate::EntityId(e),
                cellflow_geom::Point::new(
                    cellflow_geom::Fixed::from_milli(2_500),
                    cellflow_geom::Fixed::from_milli(2_500),
                ),
            );
        }
        let err = check_capacity(&config, &state).unwrap_err();
        assert_eq!(err.cell, CellId::new(2, 2));
        assert_eq!(err.occupancy, 4);
        assert_eq!(err.capacity, 3);
        assert!(err.to_string().contains("over capacity"));
        // No capacity configured ⇒ trivially fine.
        let unbounded = SystemConfig::new(
            dims,
            config.target(),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap();
        assert_eq!(check_capacity(&unbounded, &state), Ok(()));
    }

    #[test]
    fn detector_ignores_target_and_dead_cells() {
        let config = capacity_config(4, 1);
        let mut system = System::new(config.clone());
        let mut detector = OverloadDetector::new(&config, OverloadTrigger::new(1, 1), None);
        // Give the target and a dead cell members beyond threshold.
        let dims = config.dims();
        let target = config.target();
        let dead = CellId::new(3, 3);
        let mut state = system.state().clone();
        for (id, base) in [(target, 0u64), (dead, 10u64)] {
            let cell = state.cell_mut(dims, id);
            for e in 0..2u64 {
                cell.members.insert(
                    crate::EntityId(base + e),
                    cellflow_geom::Point::new(
                        cellflow_geom::Fixed::from_milli(500 + 300 * e as i64),
                        cellflow_geom::Fixed::from_milli(500),
                    ),
                );
            }
        }
        state.next_entity_id = 20;
        system.set_state(state);
        system.fail(dead);
        let tripped = detector.poll(&config, system.state(), 0);
        assert!(tripped.is_empty(), "{tripped:?}");
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_restart_delay_rejected() {
        let config = capacity_config(4, 2);
        let _ = expand_overload(
            &config,
            &FaultPlan::new(),
            OverloadTrigger::new(2, 2),
            None,
            Some(0),
            10,
        );
    }

    #[test]
    fn deterministic_token_policy_required_for_mc_but_not_here() {
        // Expansion itself is fine with randomized tokens (it is still
        // deterministic given the salt).
        let config = capacity_config(4, 2).with_token_policy(TokenPolicy::Randomized { salt: 3 });
        let a = expand_overload(
            &config,
            &congestion_plan(),
            OverloadTrigger::new(2, 2),
            None,
            None,
            60,
        );
        let b = expand_overload(
            &config,
            &congestion_plan(),
            OverloadTrigger::new(2, 2),
            None,
            None,
            60,
        );
        assert_eq!(a.plan.events(), b.plan.events());
    }
}
