//! The deterministic state codec behind flight recordings: keyframe and
//! delta encodings of [`SystemState`], register-level diffing, keyframe-seek
//! state reconstruction, and divergence bisection.
//!
//! The `.rec` *container* (checksummed frames, header, corruption reporting)
//! lives in `cellflow_telemetry::recording`; this module owns the frame
//! *payloads* — it is the only place that knows how a [`SystemState`] is
//! laid out on disk. The encoding is canonical: equal states produce equal
//! bytes (members and `ne_prev` iterate in their `BTreeMap`/`BTreeSet`
//! order), so byte-comparing two recordings of the same seeded scenario is
//! a sound equality test and the `cellflow replay` byte-identity check is
//! exact.
//!
//! Layouts (all integers little-endian):
//!
//! * **keyframe** — `[cell_count u32][next_entity_id u64][cell]*`, one
//!   `cell` per grid index in row-major order;
//! * **delta** — `[next_entity_id u64][changed u32]` then `changed` entries
//!   of `[index u32][cell]`, listing exactly the cells whose state differs
//!   from the previous round (indices ascending);
//! * **cell** — `dist` (`0` = ∞, `1 u32` = finite), then `next`/`token`/
//!   `signal` as optional cell ids (`0` = ⊥, `1 u16 u16` = `⟨i, j⟩`),
//!   `failed u8`, `ne_prev` (`u16` count + `u16 u16` pairs), and `members`
//!   (`u32` count + `[id u64][x raw i64][y raw i64]` triples).
//!
//! Reconstructing the state at round `r` never replays the run: seek the
//! latest keyframe at or before `r`, then apply at most
//! `keyframe_interval − 1` deltas ([`state_at`]). [`bisect`] builds on that
//! to find the first divergent round of two recordings without decoding
//! every frame of both.

use std::collections::{BTreeMap, BTreeSet};

use cellflow_geom::{Fixed, Point};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;
use cellflow_telemetry::recording::{
    FrameKind, RecHeader, Recording, RecordingWriter, REC_SCHEMA_VERSION,
};

use crate::engine::Engine;
use crate::hash::fnv1a;
use crate::{CellState, EntityId, SystemConfig, SystemState};

/// The per-cell registers a recording can disagree on, in the order
/// [`diff_states`] reports them (protocol registers first, derived ones
/// after).
pub const REGISTERS: [&str; 8] = [
    "dist",
    "next",
    "token",
    "signal",
    "occupancy",
    "failed",
    "ne_prev",
    "members",
];

/// A deterministic one-line summary of a [`SystemConfig`] — the `config`
/// string stored in every recording header, and the input to
/// [`config_checksum`]. Derived caches (the topology table) are excluded,
/// so equal configurations always summarize identically.
pub fn config_summary(config: &SystemConfig) -> String {
    let sources: Vec<String> = config.sources().iter().map(|s| s.to_string()).collect();
    format!(
        "grid={} target={} sources=[{}] params={:?} dist_cap={} token={:?} source_policy={:?} entity_budget={:?} capacity={:?}",
        config.dims(),
        config.target(),
        sources.join(" "),
        config.params(),
        config.dist_cap(),
        config.token_policy(),
        config.source_policy(),
        config.entity_budget(),
        config.capacity(),
    )
}

/// FNV-1a checksum of [`config_summary`] — the recording header's
/// `config_checksum`. A replay refuses to re-drive a recording whose
/// checksum does not match the configuration it rebuilt.
pub fn config_checksum(config: &SystemConfig) -> u64 {
    fnv1a(config_summary(config).as_bytes())
}

/// Builds a recording header for `config`: dims, summary and checksum
/// filled in; `rounds` and `content_id` are sealed by the writer.
pub fn recording_header(
    config: &SystemConfig,
    seed: u64,
    keyframe_interval: u64,
    scenario: &str,
) -> RecHeader {
    RecHeader {
        schema: REC_SCHEMA_VERSION,
        seed,
        nx: config.dims().nx(),
        ny: config.dims().ny(),
        keyframe_interval,
        rounds: 0,
        config_checksum: config_checksum(config),
        content_id: 0,
        config: config_summary(config),
        scenario: scenario.to_string(),
    }
}

/// The grid a recording header describes.
///
/// # Errors
///
/// Rejects zero extents (a crafted or corrupt header).
pub fn header_dims(header: &RecHeader) -> Result<GridDims, String> {
    if header.nx == 0 || header.ny == 0 {
        return Err(format!(
            "header grid {}×{} has a zero extent",
            header.nx, header.ny
        ));
    }
    Ok(GridDims::new(header.nx, header.ny))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_cell_ref(out: &mut Vec<u8>, id: Option<CellId>) {
    match id {
        None => out.push(0),
        Some(id) => {
            out.push(1);
            put_u16(out, id.i());
            put_u16(out, id.j());
        }
    }
}

fn put_cell(out: &mut Vec<u8>, cell: &CellState) {
    match cell.dist {
        Dist::Infinity => out.push(0),
        Dist::Finite(d) => {
            out.push(1);
            put_u32(out, d);
        }
    }
    put_cell_ref(out, cell.next);
    put_cell_ref(out, cell.token);
    put_cell_ref(out, cell.signal);
    out.push(cell.failed as u8);
    put_u16(out, cell.ne_prev.len() as u16);
    for &m in &cell.ne_prev {
        put_u16(out, m.i());
        put_u16(out, m.j());
    }
    put_u32(out, cell.members.len() as u32);
    for (&e, &p) in &cell.members {
        put_u64(out, e.0);
        put_i64(out, p.x.raw());
        put_i64(out, p.y.raw());
    }
}

/// Appends the canonical keyframe encoding of `state` to `out`.
pub fn encode_state_into(out: &mut Vec<u8>, state: &SystemState) {
    put_u32(out, state.cells.len() as u32);
    put_u64(out, state.next_entity_id);
    for cell in &state.cells {
        put_cell(out, cell);
    }
}

/// The canonical keyframe encoding of `state` as a fresh buffer.
pub fn encode_state(state: &SystemState) -> Vec<u8> {
    let mut out = Vec::new();
    encode_state_into(&mut out, state);
    out
}

/// Appends the canonical delta from `prev` to `cur` to `out`: exactly the
/// cells whose state changed, in ascending index order.
///
/// # Panics
///
/// Panics if the two states cover different cell counts.
pub fn encode_delta_into(out: &mut Vec<u8>, prev: &SystemState, cur: &SystemState) {
    assert_eq!(
        prev.cells.len(),
        cur.cells.len(),
        "delta endpoints must share a grid"
    );
    put_u64(out, cur.next_entity_id);
    let count_at = out.len();
    put_u32(out, 0);
    let mut changed = 0u32;
    for (k, (p, c)) in prev.cells.iter().zip(cur.cells.iter()).enumerate() {
        if p != c {
            put_u32(out, k as u32);
            put_cell(out, c);
            changed += 1;
        }
    }
    out[count_at..count_at + 4].copy_from_slice(&changed.to_le_bytes());
}

/// [`encode_delta_into`] into a fresh buffer.
pub fn encode_delta(prev: &SystemState, cur: &SystemState) -> Vec<u8> {
    let mut out = Vec::new();
    encode_delta_into(&mut out, prev, cur);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| "state payload truncated".to_string())?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn cell_ref(&mut self) -> Result<Option<CellId>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(CellId::new(self.u16()?, self.u16()?))),
            t => Err(format!("unknown cell-reference tag {t}")),
        }
    }

    fn cell(&mut self) -> Result<CellState, String> {
        let dist = match self.u8()? {
            0 => Dist::Infinity,
            1 => Dist::Finite(self.u32()?),
            t => return Err(format!("unknown dist tag {t}")),
        };
        let next = self.cell_ref()?;
        let token = self.cell_ref()?;
        let signal = self.cell_ref()?;
        let failed = match self.u8()? {
            0 => false,
            1 => true,
            t => return Err(format!("unknown failed flag {t}")),
        };
        let n = self.u16()? as usize;
        let mut ne_prev = BTreeSet::new();
        for _ in 0..n {
            ne_prev.insert(CellId::new(self.u16()?, self.u16()?));
        }
        let m = self.u32()? as usize;
        let mut members = BTreeMap::new();
        for _ in 0..m {
            let id = EntityId(self.u64()?);
            let x = Fixed::from_raw(self.i64()?);
            let y = Fixed::from_raw(self.i64()?);
            members.insert(id, Point::new(x, y));
        }
        Ok(CellState {
            members,
            dist,
            next,
            ne_prev,
            token,
            signal,
            failed,
        })
    }

    fn finish(&self, what: &str) -> Result<(), String> {
        if self.at != self.bytes.len() {
            return Err(format!("trailing bytes after the {what} payload"));
        }
        Ok(())
    }
}

/// Decodes a keyframe body back into a [`SystemState`].
///
/// # Errors
///
/// Rejects truncated payloads, unknown tags, trailing bytes, and a cell
/// count that does not match `dims`.
pub fn decode_state(body: &[u8], dims: GridDims) -> Result<SystemState, String> {
    let mut d = Dec::new(body);
    let n = d.u32()? as usize;
    if n != dims.cell_count() {
        return Err(format!(
            "keyframe holds {n} cell(s), the {dims} grid needs {}",
            dims.cell_count()
        ));
    }
    let next_entity_id = d.u64()?;
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        cells.push(d.cell()?);
    }
    d.finish("keyframe")?;
    Ok(SystemState {
        cells,
        next_entity_id,
    })
}

/// Applies a delta body to `state` in place.
///
/// # Errors
///
/// Rejects truncated payloads, unknown tags, trailing bytes, and indices
/// past the grid; `state` may be partially updated on error.
pub fn apply_delta(state: &mut SystemState, body: &[u8]) -> Result<(), String> {
    let mut d = Dec::new(body);
    state.next_entity_id = d.u64()?;
    let n = d.u32()? as usize;
    for _ in 0..n {
        let idx = d.u32()? as usize;
        let cell = d.cell()?;
        let count = state.cells.len();
        let slot = state.cells.get_mut(idx).ok_or_else(|| {
            format!("delta touches cell index {idx}, past the {count}-cell grid")
        })?;
        *slot = cell;
    }
    d.finish("delta")
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// One register-level disagreement between two states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterDiff {
    /// The disagreeing cell; `None` for system-level registers
    /// (`next_entity_id`).
    pub cell: Option<CellId>,
    /// Which register disagrees (one of [`REGISTERS`] or
    /// `"next_entity_id"`).
    pub register: &'static str,
    /// The register's rendered value in the first state.
    pub a: String,
    /// The register's rendered value in the second state.
    pub b: String,
}

fn fmt_cell_ref(id: Option<CellId>) -> String {
    match id {
        None => "⊥".to_string(),
        Some(id) => id.to_string(),
    }
}

fn fmt_set(set: &BTreeSet<CellId>) -> String {
    let items: Vec<String> = set.iter().map(|c| c.to_string()).collect();
    format!("{{{}}}", items.join(" "))
}

/// Renders the first member entry on which the two (equal-occupancy) maps
/// disagree, from `this` map's perspective.
fn fmt_member_diff(this: &BTreeMap<EntityId, Point>, other: &BTreeMap<EntityId, Point>) -> String {
    for ((&ida, &pa), (&idb, &pb)) in this.iter().zip(other.iter()) {
        if (ida, pa) != (idb, pb) {
            return format!("id {} @ ({}, {})", ida.0, pa.x, pa.y);
        }
    }
    "≡".to_string()
}

/// All register-level disagreements between `a` and `b`: the system-level
/// `next_entity_id` first, then cells in row-major order, registers in
/// [`REGISTERS`] order within a cell. Empty iff `a == b`.
///
/// # Panics
///
/// Panics if the states cover different cell counts (callers compare
/// recordings of the same grid; [`bisect`] checks headers first).
pub fn diff_states(dims: GridDims, a: &SystemState, b: &SystemState) -> Vec<RegisterDiff> {
    assert_eq!(
        a.cells.len(),
        b.cells.len(),
        "diffed states must share a grid"
    );
    let mut out = Vec::new();
    if a.next_entity_id != b.next_entity_id {
        out.push(RegisterDiff {
            cell: None,
            register: "next_entity_id",
            a: a.next_entity_id.to_string(),
            b: b.next_entity_id.to_string(),
        });
    }
    for (k, (ca, cb)) in a.cells.iter().zip(b.cells.iter()).enumerate() {
        if ca == cb {
            continue;
        }
        let id = dims.id_at(k);
        let mut push = |register: &'static str, va: String, vb: String| {
            out.push(RegisterDiff {
                cell: Some(id),
                register,
                a: va,
                b: vb,
            });
        };
        if ca.dist != cb.dist {
            push("dist", ca.dist.to_string(), cb.dist.to_string());
        }
        if ca.next != cb.next {
            push("next", fmt_cell_ref(ca.next), fmt_cell_ref(cb.next));
        }
        if ca.token != cb.token {
            push("token", fmt_cell_ref(ca.token), fmt_cell_ref(cb.token));
        }
        if ca.signal != cb.signal {
            push("signal", fmt_cell_ref(ca.signal), fmt_cell_ref(cb.signal));
        }
        if ca.members.len() != cb.members.len() {
            push(
                "occupancy",
                ca.members.len().to_string(),
                cb.members.len().to_string(),
            );
        } else if ca.members != cb.members {
            push(
                "members",
                fmt_member_diff(&ca.members, &cb.members),
                fmt_member_diff(&cb.members, &ca.members),
            );
        }
        if ca.failed != cb.failed {
            push("failed", ca.failed.to_string(), cb.failed.to_string());
        }
        if ca.ne_prev != cb.ne_prev {
            push("ne_prev", fmt_set(&ca.ne_prev), fmt_set(&cb.ne_prev));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reconstruction and bisection
// ---------------------------------------------------------------------------

/// Reconstructs the state at `round` from a recording: seek the latest
/// keyframe at or before `round`, then apply at most
/// `keyframe_interval − 1` deltas — never a full replay.
///
/// # Errors
///
/// Rejects rounds outside the recording and undecodable frame bodies.
pub fn state_at(rec: &Recording, round: u64) -> Result<SystemState, String> {
    let dims = header_dims(&rec.header)?;
    let idx = rec
        .frame_index(round)
        .ok_or_else(|| format!("round {round} is not in the recording"))?;
    let kf = rec
        .keyframe_at_or_before(round)
        .ok_or_else(|| format!("no keyframe at or before round {round}"))?;
    let mut state = decode_state(&rec.frames[kf].body, dims)?;
    for f in &rec.frames[kf + 1..=idx] {
        match f.kind {
            FrameKind::Keyframe => state = decode_state(&f.body, dims)?,
            FrameKind::Delta => apply_delta(&mut state, &f.body)?,
        }
    }
    Ok(state)
}

/// Steps an already-reconstructed state forward to `round` (the next frame).
fn advance(rec: &Recording, round: u64, state: &mut SystemState) -> Result<(), String> {
    let dims = header_dims(&rec.header)?;
    let idx = rec
        .frame_index(round)
        .ok_or_else(|| format!("round {round} is not in the recording"))?;
    match rec.frames[idx].kind {
        FrameKind::Keyframe => *state = decode_state(&rec.frames[idx].body, dims)?,
        FrameKind::Delta => apply_delta(state, &rec.frames[idx].body)?,
    }
    Ok(())
}

/// The first round on which two recordings disagree, pinned to the first
/// disagreeing cell and register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The first recorded round whose states differ.
    pub round: u64,
    /// The first disagreeing cell (row-major order); `None` when only the
    /// system-level `next_entity_id` differs.
    pub cell: Option<CellId>,
    /// The first disagreeing register on that cell.
    pub register: &'static str,
    /// The register's value in the first recording.
    pub a: String,
    /// The register's value in the second recording.
    pub b: String,
}

/// Finds the first divergent round of two recordings, or `None` if their
/// common round range is byte- and state-identical.
///
/// Because the encoder is canonical, a byte-identical frame prefix implies
/// state-identical rounds — so the scan first locates the first
/// byte-divergent frame (a cheap comparison, no decoding), reconstructs
/// both states there with one keyframe seek each ([`state_at`]), and walks
/// deltas forward until the decoded states actually disagree. Only the
/// frames around the divergence are ever decoded.
///
/// # Errors
///
/// Rejects recordings of different grids or configurations, and
/// undecodable frame bodies.
pub fn bisect(a: &Recording, b: &Recording) -> Result<Option<Divergence>, String> {
    if (a.header.nx, a.header.ny) != (b.header.nx, b.header.ny) {
        return Err(format!(
            "recordings cover different grids ({}×{} vs {}×{})",
            a.header.nx, a.header.ny, b.header.nx, b.header.ny
        ));
    }
    if a.header.config_checksum != b.header.config_checksum {
        return Err(format!(
            "recordings have different configurations ({:016x} vs {:016x}): register diffs would be meaningless",
            a.header.config_checksum, b.header.config_checksum
        ));
    }
    let dims = header_dims(&a.header)?;
    let (Some((alo, ahi)), Some((blo, bhi))) = (a.round_span(), b.round_span()) else {
        return Ok(None);
    };
    let lo = alo.max(blo);
    let hi = ahi.min(bhi);
    if lo > hi {
        return Ok(None);
    }
    let mut candidate = None;
    for round in lo..=hi {
        let fa = &a.frames[a.frame_index(round).expect("round in span")];
        let fb = &b.frames[b.frame_index(round).expect("round in span")];
        if fa.kind != fb.kind || fa.body != fb.body {
            candidate = Some(round);
            break;
        }
    }
    let Some(first) = candidate else {
        return Ok(None);
    };
    let mut sa = state_at(a, first)?;
    let mut sb = state_at(b, first)?;
    let mut round = first;
    loop {
        if let Some(d) = diff_states(dims, &sa, &sb).into_iter().next() {
            return Ok(Some(Divergence {
                round,
                cell: d.cell,
                register: d.register,
                a: d.a,
                b: d.b,
            }));
        }
        if round == hi {
            return Ok(None);
        }
        round += 1;
        advance(a, round, &mut sa)?;
        advance(b, round, &mut sb)?;
    }
}

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

/// Streams a run's states into a `.rec` recording: a keyframe every
/// `keyframe_interval` frames, deltas between. Attach one to an
/// [`Engine`](crate::Engine) (via [`Engine::attach_recorder`] or the
/// [`System`](crate::System)/simulation passthroughs) and every completed
/// round records itself; or drive [`Recorder::record`] by hand.
#[derive(Clone, Debug)]
pub struct Recorder {
    writer: RecordingWriter,
    keyframe_interval: u64,
    /// The previously recorded state (delta base); `None` before the first
    /// frame.
    prev: Option<SystemState>,
    /// Reusable mirror for [`Recorder::record_engine`] exports.
    mirror: Option<SystemState>,
    /// Reusable frame-body buffer.
    scratch: Vec<u8>,
}

impl Recorder {
    /// Starts a recording under `header`.
    ///
    /// # Panics
    ///
    /// Panics if the header's keyframe interval is zero.
    pub fn new(header: RecHeader) -> Recorder {
        assert!(
            header.keyframe_interval > 0,
            "keyframe interval must be positive"
        );
        let keyframe_interval = header.keyframe_interval;
        Recorder {
            writer: RecordingWriter::new(header),
            keyframe_interval,
            prev: None,
            mirror: None,
            scratch: Vec::new(),
        }
    }

    /// Starts a recording for `config` (see [`recording_header`]).
    pub fn for_config(
        config: &SystemConfig,
        seed: u64,
        keyframe_interval: u64,
        scenario: &str,
    ) -> Recorder {
        Recorder::new(recording_header(config, seed, keyframe_interval, scenario))
    }

    /// Records one round's state. Rounds must be recorded contiguously
    /// (`Recording::parse` enforces it on read-back).
    pub fn record(&mut self, round: u64, state: &SystemState) {
        let keyframe =
            self.prev.is_none() || self.writer.rounds().is_multiple_of(self.keyframe_interval);
        self.scratch.clear();
        if keyframe {
            encode_state_into(&mut self.scratch, state);
            self.writer.push(round, FrameKind::Keyframe, &self.scratch);
        } else {
            let prev = self.prev.as_ref().expect("delta frames have a predecessor");
            encode_delta_into(&mut self.scratch, prev, state);
            self.writer.push(round, FrameKind::Delta, &self.scratch);
        }
        match &mut self.prev {
            Some(p) => p.clone_from(state),
            None => self.prev = Some(state.clone()),
        }
    }

    /// Exports `engine`'s current state into an internal mirror (reusing its
    /// allocations round over round) and records it at the engine's current
    /// round number.
    pub fn record_engine(&mut self, engine: &Engine) {
        let mut mirror = match self.mirror.take() {
            Some(m) if m.cells.len() == engine.config().dims().cell_count() => m,
            _ => engine.config().initial_state(),
        };
        engine.store_state(&mut mirror);
        self.record(engine.round(), &mirror);
        self.mirror = Some(mirror);
    }

    /// State frames recorded so far.
    pub fn rounds(&self) -> u64 {
        self.writer.rounds()
    }

    /// Bytes buffered so far (header frame included).
    pub fn bytes_buffered(&self) -> usize {
        self.writer.bytes_buffered()
    }

    /// Seals and returns the recording's file bytes.
    pub fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, System};

    fn config(n: u16) -> SystemConfig {
        SystemConfig::new(
            GridDims::square(n),
            CellId::new(1, n - 1),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn keyframe_codec_round_trips_a_live_state() {
        let mut sys = System::new(config(5));
        sys.run(30);
        sys.fail(CellId::new(2, 2));
        sys.run(5);
        let state = sys.state().clone();
        assert!(state.entity_count() > 0, "run should be populated");
        let decoded = decode_state(&encode_state(&state), sys.config().dims()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn delta_codec_round_trips_consecutive_rounds() {
        let mut sys = System::new(config(5));
        sys.run(10);
        let prev = sys.state().clone();
        sys.run(1);
        let cur = sys.state().clone();
        let delta = encode_delta(&prev, &cur);
        let mut rebuilt = prev.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        assert_eq!(rebuilt, cur);
        // A no-op delta is tiny and exact.
        let noop = encode_delta(&cur, &cur);
        assert_eq!(noop.len(), 8 + 4);
        let mut same = cur.clone();
        apply_delta(&mut same, &noop).unwrap();
        assert_eq!(same, cur);
    }

    #[test]
    fn state_at_matches_linear_replay_at_every_round() {
        let cfg = config(5);
        let mut sys = System::new(cfg.clone());
        let mut rec = Recorder::for_config(&cfg, 7, 4, "test n=5");
        let mut expected = vec![sys.state().clone()];
        rec.record(0, sys.state());
        for round in 1..=13u64 {
            sys.step();
            rec.record(round, sys.state());
            expected.push(sys.state().clone());
        }
        let parsed = Recording::parse(&rec.finish()).unwrap();
        assert_eq!(parsed.header.rounds, 14);
        assert_eq!(parsed.frames[0].kind, FrameKind::Keyframe);
        assert_eq!(parsed.frames[4].kind, FrameKind::Keyframe);
        assert_eq!(parsed.frames[5].kind, FrameKind::Delta);
        for (round, want) in expected.iter().enumerate() {
            let got = state_at(&parsed, round as u64).unwrap();
            assert_eq!(&got, want, "round {round}");
        }
    }

    #[test]
    fn diff_names_the_disagreeing_register() {
        let cfg = config(4);
        let a = cfg.initial_state();
        let mut b = a.clone();
        let victim = CellId::new(2, 1);
        b.cell_mut(cfg.dims(), victim).dist = Dist::Finite(9);
        b.next_entity_id = 3;
        let diffs = diff_states(cfg.dims(), &a, &b);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].register, "next_entity_id");
        assert_eq!(diffs[0].cell, None);
        assert_eq!(diffs[1].register, "dist");
        assert_eq!(diffs[1].cell, Some(victim));
        assert_eq!(diffs[1].a, "∞");
        assert_eq!(diffs[1].b, "9");
        assert!(diff_states(cfg.dims(), &a, &a).is_empty());
    }

    #[test]
    fn bisect_pins_an_injected_divergence_to_its_round_cell_and_register() {
        // Synthetic state sequences give exact control over what diverges:
        // both runs wiggle one unrelated register per round; run B
        // additionally perturbs the victim at exactly one round.
        let cfg = config(4);
        let dims = cfg.dims();
        let victim = CellId::new(3, 2);
        let divergence_round = 9u64;
        let record_run = |diverge: bool| {
            let mut rec = Recorder::for_config(&cfg, 11, 4, "test n=4");
            for round in 0..=15u64 {
                let mut state = cfg.initial_state();
                let wiggled = dims.id_at((round as usize * 2) % dims.cell_count());
                state.cell_mut(dims, wiggled).dist = Dist::Finite(round as u32 + 1);
                if diverge && round == divergence_round {
                    state.cell_mut(dims, victim).token = Some(CellId::new(3, 1));
                }
                rec.record(round, &state);
            }
            Recording::parse(&rec.finish()).unwrap()
        };
        let a = record_run(false);
        let b = record_run(true);
        let d = bisect(&a, &b).unwrap().expect("runs diverge");
        assert_eq!(d.round, divergence_round);
        assert_eq!(d.cell, Some(victim));
        assert_eq!(d.register, "token");
        assert_eq!(d.a, "⊥");
        // Identical recordings never diverge.
        assert_eq!(bisect(&a, &a).unwrap(), None);
    }

    #[test]
    fn bisect_finds_the_round_a_live_run_first_diverged() {
        // Engine-driven runs: run B crashes a cell before round 9's step,
        // so the first divergent *recorded* state is round 9's.
        let cfg = config(4);
        let victim = CellId::new(2, 2);
        let record_run = |crash: bool| {
            let mut sys = System::new(cfg.clone());
            let mut rec = Recorder::for_config(&cfg, 11, 4, "test n=4");
            rec.record(0, sys.state());
            for round in 1..=15u64 {
                if crash && round == 9 {
                    sys.fail(victim);
                }
                sys.step();
                rec.record(round, sys.state());
            }
            Recording::parse(&rec.finish()).unwrap()
        };
        let a = record_run(false);
        let b = record_run(true);
        let d = bisect(&a, &b).unwrap().expect("runs diverge");
        assert_eq!(d.round, 9);
        // The crash itself must be among round 9's register diffs.
        let diffs = diff_states(
            cfg.dims(),
            &state_at(&a, 9).unwrap(),
            &state_at(&b, 9).unwrap(),
        );
        assert!(
            diffs
                .iter()
                .any(|d| d.cell == Some(victim) && d.register == "failed"),
            "{diffs:?}"
        );
    }

    #[test]
    fn identical_seeded_runs_record_identical_bytes() {
        let record = || {
            let cfg = config(5);
            let mut sys = System::new(cfg.clone());
            let mut rec = Recorder::for_config(&cfg, 3, 8, "test n=5");
            rec.record(0, sys.state());
            for round in 1..=20u64 {
                sys.step();
                rec.record(round, sys.state());
            }
            rec.finish()
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn engine_hook_matches_a_by_hand_recording() {
        let cfg = config(5);
        // By hand: mirror states recorded around System::step.
        let mut sys = System::new(cfg.clone());
        let mut rec = Recorder::for_config(&cfg, 5, 6, "test hook");
        rec.record(0, sys.state());
        for round in 1..=12u64 {
            sys.step();
            rec.record(round, sys.state());
        }
        let by_hand = rec.finish();
        // Hooked: the engine records its own rounds.
        let mut sys = System::new(cfg.clone());
        sys.attach_recorder(Box::new(Recorder::for_config(&cfg, 5, 6, "test hook")));
        sys.run(12);
        let hooked = sys.take_recorder().expect("recorder attached").finish();
        assert_eq!(by_hand, hooked);
        let parsed = Recording::parse(&hooked).unwrap();
        assert_eq!(parsed.round_span(), Some((0, 12)));
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let cfg = config(5);
        let mut plain = System::new(cfg.clone());
        let mut taped = System::new(cfg.clone());
        taped.attach_recorder(Box::new(Recorder::for_config(&cfg, 5, 8, "test")));
        for _ in 0..20 {
            plain.step();
            taped.step();
            assert_eq!(plain.state(), taped.state());
        }
        assert_eq!(plain.consumed_total(), taped.consumed_total());
    }

    #[test]
    fn config_checksum_tracks_every_field() {
        let base = config(5);
        assert_eq!(config_checksum(&base), config_checksum(&config(5)));
        let capped = config(5).with_capacity(4);
        assert_ne!(config_checksum(&base), config_checksum(&capped));
        assert!(config_summary(&base).contains("grid=5×5"));
    }

    #[test]
    fn mismatched_grids_refuse_to_bisect() {
        let rec_for = |n: u16| {
            let cfg = config(n);
            let sys = System::new(cfg.clone());
            let mut rec = Recorder::for_config(&cfg, 1, 4, "test");
            rec.record(0, sys.state());
            Recording::parse(&rec.finish()).unwrap()
        };
        let err = bisect(&rec_for(4), &rec_for(5)).unwrap_err();
        assert!(err.contains("different grids"), "{err}");
    }
}
