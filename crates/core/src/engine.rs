//! The zero-clone round engine: a flat, arena-backed implementation of the
//! atomic `update` transition.
//!
//! The pure three-phase functions ([`route_phase`](crate::route_phase),
//! [`signal_phase`](crate::signal_phase), [`move_phase`](crate::move_phase))
//! are the *specification*: they mirror the paper's Figures 4–6 line by line
//! and keep Lemma 3's intermediate states `xR`, `xS` observable, but each
//! clones the full [`SystemState`] (three `O(cells · log)` allocation storms
//! per round). This module implements the *same transition relation* on a
//! flat representation tuned for throughput:
//!
//! * cell protocol registers live in a contiguous `Vec<CellCore>` (a `Copy`
//!   struct — no `BTreeSet`/`BTreeMap` per cell);
//! * `NEPrev` is a 4-bit neighbor mask over [`Dir::ALL`] instead of a
//!   `BTreeSet<CellId>`;
//! * entities are per-cell `Vec<(EntityId, Point)>` arenas kept sorted by
//!   identifier (matching `BTreeMap` iteration order);
//! * neighbor arena indices come from a [`NeighborTable`] precomputed once
//!   per configuration (cached on [`SystemConfig`], shared via `Arc`);
//! * `Route` writes into a second buffer which then *swaps* with the first
//!   (it reads neighbor distances, so it cannot run in place), while
//!   `Signal` and `Move` are aliasing-safe in place: `Signal` writes only a
//!   cell's own `ne_prev`/`token`/`signal` and reads neighbors' `next` and
//!   members (which it never writes); `Move` defers cross-cell arrivals to a
//!   reusable `incoming` scratch exactly like the reference.
//!
//! A steady-state [`Engine::step`] therefore performs **zero heap
//! allocation**: every buffer is reused, and the only allocations ever made
//! are capacity growth while entity counts or event volumes are still
//! ramping up. The engine counts those growth events
//! ([`Engine::alloc_events`]) so benchmarks and tests can assert the
//! steady-state claim mechanically.
//!
//! On top of the flat layout, the engine schedules rounds **sparsely** by
//! default ([`ExecMode::Sparse`]): per-round dirty tracking (distance
//! updates, occupancy flips, sticky signal registers, link-cut diffs,
//! fault/corruption imports via [`Engine::load_state`]) shrinks each phase's
//! sweep to the cells whose inputs changed, so a quiescent region costs
//! O(active), not O(N). When an active list is long enough the phase fans
//! out to worker threads over contiguous bands of the sorted list
//! ([`Engine::set_workers`]) with results applied in band order — bit- and
//! event-identical to the sequential sweep. The dense mode remains available
//! as the reference and benchmark baseline.
//!
//! Equivalence with the pure phases — identical successor state *and*
//! identical [`RoundEvents`], per round, under crashes, recoveries and
//! corruptions — is enforced by `tests/engine_differential.rs` at the
//! workspace root, and sparse/sharded vs dense by
//! `tests/sparse_differential.rs`.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use cellflow_geom::{sep_ok, Dir, Point};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;
use cellflow_telemetry::{PhaseTimers, SchedulerMetrics};

use crate::signal::gap_free_toward;
use crate::{EntityId, Params, RoundEvents, SystemConfig, SystemState, TokenPolicy, Transfer};

/// Sentinel for "no neighbor in this direction" in [`NeighborTable`].
const NO_NBR: u32 = u32::MAX;

/// Slot order that visits a cell's neighbors in ascending `CellId` order.
///
/// Slots index [`Dir::ALL`] = `[East, West, North, South]`; `CellId`'s
/// derived ordering is lexicographic `(i, j)`, so for cell `⟨i,j⟩` the sorted
/// neighbor order is `W ⟨i−1,j⟩ < S ⟨i,j−1⟩ < N ⟨i,j+1⟩ < E ⟨i+1,j⟩`.
const SORTED_SLOTS: [usize; 4] = [1, 3, 2, 0];

/// Default active-list length below which sharded phases stay sequential:
/// spawning scoped workers costs tens of microseconds, so fan-out only pays
/// off once a phase has a few thousand cells to chew through.
const DEFAULT_SHARD_MIN: usize = 4096;

/// Precomputed grid topology: per-cell neighbor arena indices and
/// identifiers in [`Dir::ALL`] slot order, plus the target's arena index.
///
/// Built once per configuration and cached on
/// [`SystemConfig::topology`], so no phase ever recomputes
/// neighbor identifiers or row-major indices round over round.
pub struct NeighborTable {
    /// `CellId` of each arena index (row-major, [`GridDims::index`] order).
    ids: Vec<CellId>,
    /// Per cell, the arena index of the neighbor in each [`Dir::ALL`] slot
    /// (`NO_NBR` where the direction leaves the grid).
    nbr_idx: Vec<[u32; 4]>,
    /// Per cell, the neighbor `CellId` per slot (valid iff `nbr_idx` is).
    nbr_id: Vec<[CellId; 4]>,
    /// Arena index of the target cell.
    target_index: usize,
}

impl NeighborTable {
    /// Builds the table for `dims` with the given target cell.
    pub fn new(dims: GridDims, target: CellId) -> NeighborTable {
        let n = dims.cell_count();
        let mut ids = Vec::with_capacity(n);
        let mut nbr_idx = Vec::with_capacity(n);
        let mut nbr_id = Vec::with_capacity(n);
        for k in 0..n {
            let id = dims.id_at(k);
            ids.push(id);
            let mut idxs = [NO_NBR; 4];
            let mut cids = [id; 4];
            for (s, &dir) in Dir::ALL.iter().enumerate() {
                if let Some(nbr) = dims.neighbor(id, dir) {
                    idxs[s] = dims.index(nbr) as u32;
                    cids[s] = nbr;
                }
            }
            nbr_idx.push(idxs);
            nbr_id.push(cids);
        }
        NeighborTable {
            ids,
            nbr_idx,
            nbr_id,
            target_index: dims.index(target),
        }
    }

    /// The `CellId` at arena index `k`.
    pub fn id_at(&self, k: usize) -> CellId {
        self.ids[k]
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` for an empty grid (never happens for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl std::fmt::Debug for NeighborTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborTable")
            .field("cells", &self.ids.len())
            .field("target_index", &self.target_index)
            .finish()
    }
}

/// One cell's protocol registers in flat form — everything from
/// [`CellState`](crate::CellState) except the member map, with `NEPrev`
/// packed into a 4-bit mask over [`Dir::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellCore {
    /// Estimated hop distance to the target (`dist`).
    pub dist: Dist,
    /// Routing successor (`next`).
    pub next: Option<CellId>,
    /// Current token holder (`token`).
    pub token: Option<CellId>,
    /// Granted neighbor this round (`signal`).
    pub signal: Option<CellId>,
    /// `NEPrev` as a bitmask: bit `s` set ⇔ the neighbor in `Dir::ALL[s]`
    /// is a nonempty predecessor.
    pub ne_mask: u8,
    /// The §IV crash flag.
    pub failed: bool,
}

impl Default for CellCore {
    /// Matches [`CellState::initial`](crate::CellState::initial).
    fn default() -> CellCore {
        CellCore {
            dist: Dist::Infinity,
            next: None,
            token: None,
            signal: None,
            ne_mask: 0,
            failed: false,
        }
    }
}

/// How [`Engine::step`] executes a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Recompute every cell every round — the PR 3 baseline, O(N) per round
    /// regardless of activity. Kept as the differential and benchmark
    /// reference.
    Dense,
    /// Active-set scheduling (the default): `Route`/`Signal`/`Move` run only
    /// on cells whose inputs changed since they last ran, so quiescent
    /// regions cost nothing. State- and event-identical to [`ExecMode::Dense`]
    /// — see the invariant notes on [`Sched`] and the differential suite in
    /// `tests/sparse_differential.rs`.
    Sparse,
}

/// An epoch-stamped cell set: membership is `stamp[k] == epoch`, so clearing
/// is one integer bump (no O(N) wipe) and the member list is reused round
/// over round without reallocating — the "cheap membership bitmap" the
/// sparse scheduler builds its dirty tracking on.
#[derive(Clone, Debug)]
struct MarkSet {
    stamp: Vec<u64>,
    epoch: u64,
    list: Vec<u32>,
}

impl MarkSet {
    fn with_cells(n: usize) -> MarkSet {
        MarkSet {
            stamp: vec![0; n],
            // Stamps start below the live epoch so nothing is spuriously
            // "already present" before the first insert.
            epoch: 1,
            list: Vec::new(),
        }
    }

    /// Empties the set by advancing the epoch; list capacity is retained.
    fn begin(&mut self) {
        self.epoch += 1;
        self.list.clear();
    }

    fn insert(&mut self, k: u32, allocs: &mut u64) {
        if self.stamp[k as usize] != self.epoch {
            self.stamp[k as usize] = self.epoch;
            push_tracked(&mut self.list, k, allocs);
        }
    }

    /// Inserts every cell — the conservative reset after anything that may
    /// have rewritten arbitrary registers (`load_state`, a mode switch).
    fn fill_all(&mut self, allocs: &mut u64) {
        self.begin();
        for k in 0..self.stamp.len() {
            self.stamp[k] = self.epoch;
            push_tracked(&mut self.list, k as u32, allocs);
        }
    }
}

/// `Signal`'s per-cell result: the three registers Figure 5 writes back.
#[derive(Clone, Copy, Debug)]
struct SigOut {
    mask: u8,
    token: Option<CellId>,
    signal: Option<CellId>,
}

/// One shard worker's `Route` output: `(cell, dist, next)` for cells whose
/// routed registers actually changed.
#[derive(Clone, Debug, Default)]
struct RouteBand {
    upd: Vec<(u32, Dist, Option<CellId>)>,
    allocs: u64,
}

/// One shard worker's `Signal` output, in ascending cell order.
#[derive(Clone, Debug, Default)]
struct SigBand {
    out: Vec<(u32, SigOut)>,
    allocs: u64,
}

/// One shard worker's `Move` output: events and deferred arrivals.
/// Bands are merged in ascending band order, which restores the exact
/// row-major event record the sequential sweep produces.
#[derive(Clone, Debug, Default)]
struct MoveOut {
    moved: Vec<CellId>,
    consumed: Vec<EntityId>,
    transfers: Vec<Transfer>,
    incoming: Vec<(u32, EntityId, Point)>,
    allocs: u64,
}

/// Where `Move`'s per-cell kernel writes: either the engine's own event
/// buffers (sequential sweeps) or a per-band [`MoveOut`] (shard workers).
struct MoveSink<'a> {
    moved: &'a mut Vec<CellId>,
    consumed: &'a mut Vec<EntityId>,
    transfers: &'a mut Vec<Transfer>,
    incoming: &'a mut Vec<(u32, EntityId, Point)>,
    allocs: &'a mut u64,
}

/// Per-worker scratch buffers for sharded phases, kept allocated between
/// rounds. Band 0 doubles as the sequential sparse path's scratch.
#[derive(Clone, Debug)]
struct ShardScratch {
    route: Vec<RouteBand>,
    sig: Vec<SigBand>,
    mv: Vec<MoveOut>,
}

impl ShardScratch {
    fn with_bands(n: usize) -> ShardScratch {
        ShardScratch {
            route: vec![RouteBand::default(); n],
            sig: vec![SigBand::default(); n],
            mv: vec![MoveOut::default(); n],
        }
    }
}

/// The active-set scheduler's state. The correctness invariant, per phase:
/// a cell may be skipped only if re-running the phase on it would write back
/// exactly the registers it already holds and emit no event. Concretely:
///
/// * **Route** — a cell's routed `(dist, next)` is a pure function of its
///   neighbors' `dist`, its own `failed` flag and its incoming-cut mask, so
///   `route_now` holds every cell for which any of those changed since it
///   last ran (neighbor dist writes mark neighbors; cut diffs mark the
///   reading cell; fault/corruption imports mark everything).
/// * **Signal** — a skipped cell must be *idle*: registers `(0, ⊥, ⊥)` and
///   no requester. Any cell that finishes `Signal` with a nonzero register
///   re-marks itself ("sticky"); requester appearance is covered by
///   occupancy flips and `next` changes, both of which mark the four
///   neighbors of the changed cell.
/// * **Move** — only nonempty cells move, so the sweep list is exactly the
///   incrementally-maintained occupancy set.
/// * **Pressure** — the leaky integrator is zero and stays zero outside
///   `pressure_list` (cells with nonzero pressure or members).
///
/// A skipped cell reads exactly like footnote 1's silent-but-correct
/// neighbor: its `dist`/`next`/`signal` announcements are whatever it last
/// wrote, which is precisely what a dense round would have rewritten
/// unchanged.
#[derive(Clone, Debug)]
struct Sched {
    /// Cells whose `Route` inputs changed: recompute this round.
    route_now: MarkSet,
    /// `Route` dirty marks accumulating for the next round.
    route_next: MarkSet,
    /// Cells whose `Signal` must run this round.
    sig_now: MarkSet,
    /// `Signal` marks accumulating for the next round (sticky cells,
    /// occupancy flips, cut diffs).
    sig_next: MarkSet,
    /// `occupied[k]` ⇔ `members[k]` is nonempty, maintained incrementally.
    occupied: Vec<bool>,
    /// Unsorted list of occupied cells (compacted once per round).
    occupied_list: Vec<u32>,
    /// Sorted copy of `occupied_list` the `Move` sweep iterates.
    move_list: Vec<u32>,
    /// `pressure_flag[k]` ⇔ `k` is in `pressure_list`.
    pressure_flag: Vec<bool>,
    /// Cells with nonzero pressure or members — everywhere else the
    /// integrator is 0 and `⌊0/2⌋ + 0 = 0`, so skipping is exact.
    pressure_list: Vec<u32>,
    /// Distinct-cell scratch for the occupancy gauge.
    touch: MarkSet,
    /// Distinct cells any phase ran on in the most recent round.
    last_active: usize,
    /// Run the next round on full sets (construction, `load_state`, mode
    /// switches — anything that may have rewritten arbitrary registers).
    mark_all: bool,
}

impl Sched {
    fn with_cells(n: usize) -> Sched {
        Sched {
            route_now: MarkSet::with_cells(n),
            route_next: MarkSet::with_cells(n),
            sig_now: MarkSet::with_cells(n),
            sig_next: MarkSet::with_cells(n),
            occupied: vec![false; n],
            occupied_list: Vec::new(),
            move_list: Vec::new(),
            pressure_flag: vec![false; n],
            pressure_list: Vec::new(),
            touch: MarkSet::with_cells(n),
            last_active: n,
            mark_all: true,
        }
    }
}

/// The sorted (ascending `CellId`) neighbor candidates selected by `mask` on
/// cell `k`.
fn candidates_of(topo: &NeighborTable, k: usize, mask: u8) -> ([CellId; 4], usize) {
    let mut cands = [topo.ids[k]; 4];
    let mut cn = 0;
    for &s in &SORTED_SLOTS {
        if mask & (1 << s) != 0 {
            cands[cn] = topo.nbr_id[k][s];
            cn += 1;
        }
    }
    (cands, cn)
}

/// `Route`'s per-cell kernel (Figure 4) for a non-failed, non-target cell:
/// the `argmin (dist, id)` over readable neighbors, visited in
/// ascending-`CellId` order ([`SORTED_SLOTS`]) with strict-`<` keep-first
/// replacement so the id tie-break never has to run. A cut slot reads as a
/// silent neighbor: `dist = ∞`.
fn route_core(
    topo: &NeighborTable,
    front: &[CellCore],
    cut: u8,
    cap: u32,
    k: usize,
) -> (Dist, Option<CellId>) {
    let nbr_idx = &topo.nbr_idx[k];
    let mut best = Dist::Infinity;
    // 4 = "no finite-distance neighbor": both the zero-neighbor case and the
    // all-∞ case produce (∞, ⊥), exactly like the kernel.
    let mut best_slot = 4usize;
    for &s in &SORTED_SLOTS {
        let ni = nbr_idx[s];
        if ni == NO_NBR || cut & (1 << s) != 0 {
            continue;
        }
        let d = front[ni as usize].dist;
        if d < best {
            best = d;
            best_slot = s;
        }
    }
    if best_slot < 4 {
        let dist = best.succ(cap);
        let next = if dist.is_finite() {
            Some(topo.nbr_id[k][best_slot])
        } else {
            None
        };
        (dist, next)
    } else {
        (Dist::Infinity, None)
    }
}

/// `Signal`'s per-cell kernel (Figure 5) for a non-failed cell: computes the
/// requester mask and the token/signal decision without writing anything, so
/// shard workers can run it concurrently against the shared `front`.
#[allow(clippy::too_many_arguments)]
fn signal_core(
    topo: &NeighborTable,
    front: &[CellCore],
    members: &[Vec<(EntityId, Point)>],
    cut: u8,
    params: Params,
    policy: TokenPolicy,
    round: u64,
    k: usize,
) -> SigOut {
    let id = topo.ids[k];
    let nbr_idx = &topo.nbr_idx[k];
    let mut mask = 0u8;
    for (s, &ni) in nbr_idx.iter().enumerate() {
        // A cut slot's request announcement never arrives.
        if ni == NO_NBR || cut & (1 << s) != 0 {
            continue;
        }
        let ni = ni as usize;
        if front[ni].next == Some(id) && !members[ni].is_empty() {
            mask |= 1 << s;
        }
    }

    let mut token = front[k].token;
    // A transient fault may have left a non-neighbor in the token register;
    // treat it as ⊥ so `Signal` self-stabilizes instead of trusting the
    // corrupted value.
    if token.is_some_and(|t| !id.is_neighbor(t)) {
        token = None;
    }

    // Idle fast path: no requester and no token means `choose_from` on an
    // empty candidate set — ⊥ token, ⊥ signal, no event. Most of a
    // steady-state grid takes this exit; the sparse scheduler's skip
    // condition is exactly "this exit would run and the registers already
    // hold its output".
    if mask == 0 && token.is_none() {
        return SigOut {
            mask: 0,
            token: None,
            signal: None,
        };
    }

    let (cands, cn) = candidates_of(topo, k, mask);
    let cands = &cands[..cn];

    if token.is_none() {
        token = policy.choose_from(cands, id, round);
    }

    let (signal, new_token) = match token {
        None => (None, None),
        Some(tok) => {
            let dir = id
                .dir_to(tok)
                .expect("token is always one of the cell's neighbors");
            if gap_free_toward(params, id, dir, members[k].iter().map(|e| &e.1)) {
                let rotated = if cn > 1 {
                    policy.rotate_from(cands, tok, id, round)
                } else if cn == 1 {
                    Some(cands[0])
                } else {
                    None
                };
                (Some(tok), rotated)
            } else {
                (None, Some(tok))
            }
        }
    };

    SigOut {
        mask,
        token: new_token,
        signal,
    }
}

/// `Move`'s per-cell kernel (Figure 6): advances `members_k`, emitting
/// events and deferred cross-cell arrivals into `out`. All permission reads
/// (`signal`, `failed`) come from registers `Move` never writes, and the
/// only mutation is the cell's own member arena — which is why disjoint
/// bands of cells can run concurrently.
fn move_cell_into(
    config: &SystemConfig,
    topo: &NeighborTable,
    front: &[CellCore],
    link_cuts: &[u8],
    members_k: &mut Vec<(EntityId, Point)>,
    k: usize,
    out: &mut MoveSink<'_>,
) {
    let c = front[k];
    if c.failed || members_k.is_empty() {
        return;
    }
    let Some(nx) = c.next else { return };
    let id = topo.ids[k];
    let dir = id.dir_to(nx).expect("next is always a neighbor");
    if !link_cuts.is_empty() {
        let s = Dir::ALL
            .iter()
            .position(|&d| d == dir)
            .expect("Dir::ALL covers every direction");
        // The grant announcement from a cut neighbor never arrives: the cell
        // reads signal = ⊥ and stays put.
        if link_cuts[k] & (1 << s) != 0 {
            return;
        }
    }
    let dims = config.dims();
    let params = config.params();
    let v = params.v();
    let h = params.half_l();
    let target = config.target();
    let nxi = dims.index(nx);
    let nc = front[nxi];
    if nc.failed || nc.signal != Some(id) {
        return;
    }
    push_tracked(out.moved, id, out.allocs);
    let boundary = id.boundary(dir);
    let mut w = 0usize;
    for r in 0..members_k.len() {
        let (eid, pos) = members_k[r];
        let new_pos = pos.translate(dir, v);
        let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
        let crossed = if dir.sign() > 0 {
            far_edge > boundary
        } else {
            far_edge < boundary
        };
        if crossed {
            if nx == target {
                push_tracked(out.consumed, eid, out.allocs);
            } else {
                // Enter the receiving cell flush at its near edge.
                let entry_edge = nx.boundary(dir.opposite());
                let snapped = new_pos.with_along(dir.axis(), entry_edge + h * dir.sign());
                push_tracked(out.incoming, (nxi as u32, eid, snapped), out.allocs);
                push_tracked(
                    out.transfers,
                    Transfer {
                        entity: eid,
                        from: id,
                        to: nx,
                    },
                    out.allocs,
                );
            }
        } else {
            members_k[w] = (eid, new_pos);
            w += 1;
        }
    }
    members_k.truncate(w);
}

/// The double-buffered round engine. See the [module docs](self) for the
/// layout and aliasing argument.
///
/// Drive it directly for maximum throughput (benchmarks do), or through
/// [`System`](crate::System), which keeps a [`SystemState`] mirror in sync
/// for monitors, safety checks and serialization.
///
/// ```
/// use cellflow_core::engine::Engine;
/// use cellflow_core::{Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let config = SystemConfig::new(
///     GridDims::square(8),
///     CellId::new(1, 7),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(1, 0));
/// let mut engine = Engine::new(config);
/// let mut consumed = 0u64;
/// for _ in 0..200 {
///     consumed += engine.step().consumed.len() as u64;
/// }
/// assert!(consumed > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    config: SystemConfig,
    topo: Arc<NeighborTable>,
    /// Current cell registers ("front" buffer).
    front: Vec<CellCore>,
    /// Scratch buffer `Route` writes into before swapping with `front`.
    back: Vec<CellCore>,
    /// Per-cell entity arenas, sorted by `EntityId` (BTreeMap order).
    members: Vec<Vec<(EntityId, Point)>>,
    next_entity_id: u64,
    round: u64,
    events: RoundEvents,
    /// Deferred cross-cell arrivals `(arena index, entity, position)`.
    incoming: Vec<(u32, EntityId, Point)>,
    /// Per-cell congestion pressure: a leaky integrator
    /// `p ← ⌊p/2⌋ + occupancy`, updated once per round. Bounded by
    /// `2 · max occupancy`, so a cell pinned at its capacity plateaus at
    /// twice that value while a transient spike washes out within a few
    /// rounds — the signal the cascade heat maps render. Derived telemetry,
    /// not protocol state: it survives [`Engine::load_state`] (which runs on
    /// every fault injection) and is zeroed only at construction.
    pressure: Vec<u64>,
    /// Exact `ne_prev` sets that cannot be encoded as a neighbor mask
    /// (injected via [`Engine::load_state`] from hand-built states; dropped
    /// as soon as `Signal` rewrites the cell). Empty in any reachable state.
    ne_override: Vec<(u32, BTreeSet<CellId>)>,
    /// Per-cell incoming-cut masks for the *next* round (bit `s` set ⇔ the
    /// neighbor in `Dir::ALL[s]` is unreadable — its announcements are
    /// suppressed, so the cell reads `dist = ∞`, "no request", `signal = ⊥`
    /// from that side, exactly footnote 1's silent-neighbor semantics).
    /// Empty (the default) means no link faults; set per round via
    /// [`Engine::set_link_cuts`]. Transient input, not protocol state: it
    /// survives [`Engine::load_state`] and is never exported.
    link_cuts: Vec<u8>,
    /// Number of buffer-growth (re)allocations since the last reset.
    alloc_events: u64,
    /// Per-phase span timers, attached when telemetry is enabled. `None`
    /// (the default) keeps [`Engine::step`] on the untimed fast path — a
    /// single branch per round, no clock reads.
    timers: Option<PhaseTimers>,
    /// Scheduler occupancy instrumentation (active/skipped cells, per-shard
    /// phase timing), attached when telemetry is enabled.
    sched_metrics: Option<SchedulerMetrics>,
    /// Per-round phase attribution for the causal tracer (see
    /// [`RoundTrace`]); refreshed in place when enabled, otherwise inert.
    round_trace: RoundTrace,
    /// Dense (recompute everything) or sparse (active sets) execution.
    mode: ExecMode,
    /// Worker threads for sharded sparse phases (1 = sequential).
    workers: usize,
    /// Minimum active-list length before a phase fans out to workers;
    /// below it the thread hand-off costs more than the sweep.
    shard_min: usize,
    /// Active-set scheduler state (dirty sets, occupancy, pressure list).
    sched: Sched,
    /// Per-worker band scratch, reused round over round.
    shards: ShardScratch,
    /// Flight recorder, when a recording is being captured. `None` (the
    /// default) keeps [`Engine::step`] on the unrecorded fast path — a
    /// single branch per round, no state export, no allocation.
    recorder: Option<Box<crate::snapshot::Recorder>>,
}

/// One round's phase attribution for the causal tracer: how many cells each
/// phase actually swept, across how many shard bands, and how long it took.
///
/// Plain `Copy` data refreshed in place every round — reading it allocates
/// nothing, so tracing preserves the engine's zero-allocation steady state.
/// The cell/band counts are deterministic (they mirror the scheduler's
/// sorted work lists); only the `*_ns` fields read the wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Whether the engine is filling this struct each round.
    pub enabled: bool,
    /// Cells swept by `Route` (the whole grid in dense mode).
    pub route_cells: u64,
    /// Cells swept by `Signal`.
    pub signal_cells: u64,
    /// Cells swept by `Move`.
    pub move_cells: u64,
    /// Shard bands `Route` fanned out to (1 = sequential).
    pub route_bands: u32,
    /// Shard bands `Signal` fanned out to.
    pub signal_bands: u32,
    /// Shard bands `Move` fanned out to.
    pub move_bands: u32,
    /// Measured `Route` nanoseconds (wall clock; nondeterministic).
    pub route_ns: u64,
    /// Measured `Signal` nanoseconds.
    pub signal_ns: u64,
    /// Measured `Move` nanoseconds (includes source insertion).
    pub move_ns: u64,
}

/// Pushes tracking capacity growth: bumps `allocs` when the push must
/// reallocate.
fn push_tracked<T>(v: &mut Vec<T>, item: T, allocs: &mut u64) {
    if v.len() == v.capacity() {
        *allocs += 1;
    }
    v.push(item);
}

/// Sorted insert into an entity arena (replaces the position on an existing
/// identifier, mirroring `BTreeMap::insert`).
fn insert_member(v: &mut Vec<(EntityId, Point)>, eid: EntityId, pos: Point, allocs: &mut u64) {
    match v.binary_search_by_key(&eid, |e| e.0) {
        Ok(i) => v[i].1 = pos,
        Err(i) => {
            if v.len() == v.capacity() {
                *allocs += 1;
            }
            v.insert(i, (eid, pos));
        }
    }
}

impl Engine {
    /// Creates an engine in the initial state of `config` at round 0.
    pub fn new(config: SystemConfig) -> Engine {
        let topo = config.topology();
        let n = config.dims().cell_count();
        let mut engine = Engine {
            config,
            topo,
            front: vec![CellCore::default(); n],
            back: vec![CellCore::default(); n],
            members: vec![Vec::new(); n],
            next_entity_id: 0,
            round: 0,
            events: RoundEvents::default(),
            incoming: Vec::new(),
            pressure: vec![0; n],
            ne_override: Vec::new(),
            link_cuts: Vec::new(),
            alloc_events: 0,
            timers: None,
            sched_metrics: None,
            round_trace: RoundTrace::default(),
            mode: ExecMode::Sparse,
            workers: 1,
            shard_min: DEFAULT_SHARD_MIN,
            sched: Sched::with_cells(n),
            shards: ShardScratch::with_bands(1),
            recorder: None,
        };
        engine.front[engine.topo.target_index].dist = Dist::Finite(0);
        engine
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The round number the *next* [`Engine::step`] will execute.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Overrides the round counter (it parameterizes
    /// [`TokenPolicy::Randomized`](crate::TokenPolicy::Randomized) choices).
    pub fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// The next fresh [`EntityId`] sources will mint.
    pub fn next_entity_id(&self) -> u64 {
        self.next_entity_id
    }

    /// Total entities currently in the system.
    pub fn entity_count(&self) -> usize {
        self.members.iter().map(|m| m.len()).sum()
    }

    /// Current occupancy (entity count) of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn occupancy(&self, cell: CellId) -> usize {
        self.members[self.config.dims().index(cell)].len()
    }

    /// Current congestion pressure of `cell`: the leaky occupancy integrator
    /// `p ← ⌊p/2⌋ + occupancy`, as of the most recent [`Engine::step`].
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn pressure(&self, cell: CellId) -> u64 {
        self.pressure[self.config.dims().index(cell)]
    }

    /// Events of the most recent round.
    pub fn events(&self) -> &RoundEvents {
        &self.events
    }

    /// Buffer-growth allocations since construction or the last
    /// [`Engine::reset_alloc_events`]. After a warm-up at steady state this
    /// stays constant: a round that grows no buffer allocates nothing.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Zeroes the growth counter (call after warm-up, before measuring).
    pub fn reset_alloc_events(&mut self) {
        self.alloc_events = 0;
    }

    /// Attaches per-phase span timers (the `cellflow_engine_*_ns`
    /// histograms). Rounds then record Route/Signal/Move and whole-round
    /// nanoseconds; detach by attaching timers from a disabled registry, or
    /// never attach to keep the untimed fast path.
    pub fn attach_phase_timers(&mut self, timers: PhaseTimers) {
        self.timers = if timers.round.is_enabled() {
            Some(timers)
        } else {
            None
        };
    }

    /// Turns on per-round phase attribution: every subsequent
    /// [`Engine::step`] refreshes the [`RoundTrace`] readable via
    /// [`Engine::round_trace`]. Adds one `Instant` read per phase and no
    /// allocations; leave off (the default) for the untraced fast path.
    pub fn enable_round_trace(&mut self) {
        self.round_trace.enabled = true;
    }

    /// The most recent round's phase attribution (all-zero until
    /// [`Engine::enable_round_trace`] and a first step).
    pub fn round_trace(&self) -> RoundTrace {
        self.round_trace
    }

    /// Attaches a flight recorder: the current state is recorded immediately
    /// (the recording's opening keyframe, at the engine's current round) and
    /// every subsequent [`Engine::step`] records its post-round state.
    /// Replaces any recorder already attached.
    pub fn attach_recorder(&mut self, mut recorder: Box<crate::snapshot::Recorder>) {
        recorder.record_engine(self);
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the flight recorder, if one is attached —
    /// callers seal it with [`Recorder::finish`](crate::snapshot::Recorder::finish).
    pub fn take_recorder(&mut self) -> Option<Box<crate::snapshot::Recorder>> {
        self.recorder.take()
    }

    /// `true` while a flight recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records the just-completed round into the attached recorder. The
    /// take/put-back dance lets the recorder borrow `self` immutably for the
    /// state export while remaining owned by it.
    fn record_round(&mut self) {
        if let Some(mut recorder) = self.recorder.take() {
            recorder.record_engine(self);
            self.recorder = Some(recorder);
        }
    }

    /// Sets the incoming-cut masks the next [`Engine::step`] honors: one
    /// mask per cell, bit `s` suppressing reads from the neighbor in
    /// `Dir::ALL[s]` (see [`PartitionSchedule::mask_row`]). The first call
    /// with any nonzero mask allocates the buffer once; steady-state
    /// campaigns then update it in place, preserving the zero-allocation
    /// claim.
    ///
    /// [`PartitionSchedule::mask_row`]: crate::PartitionSchedule::mask_row
    ///
    /// # Panics
    ///
    /// Panics if `masks` has the wrong number of cells.
    pub fn set_link_cuts(&mut self, masks: &[u8]) {
        assert_eq!(
            masks.len(),
            self.front.len(),
            "mask row must match the grid"
        );
        if self.link_cuts.is_empty() {
            if masks.iter().all(|&m| m == 0) {
                return;
            }
            for (k, &m) in masks.iter().enumerate() {
                if m != 0 {
                    self.mark_cut_changed(k as u32);
                }
            }
            self.link_cuts = masks.to_vec();
        } else {
            for (k, (&new, old)) in masks.iter().zip(self.link_cuts.iter_mut()).enumerate() {
                if *old != new {
                    *old = new;
                    self.sched
                        .route_next
                        .insert(k as u32, &mut self.alloc_events);
                    self.sched.sig_next.insert(k as u32, &mut self.alloc_events);
                }
            }
        }
    }

    /// A cell's incoming-cut mask changed: its `Route` argmin and `Signal`
    /// requester mask read different inputs next round.
    fn mark_cut_changed(&mut self, k: u32) {
        self.sched.route_next.insert(k, &mut self.alloc_events);
        self.sched.sig_next.insert(k, &mut self.alloc_events);
    }

    /// Restores the no-link-faults default (all edges readable).
    pub fn clear_link_cuts(&mut self) {
        for k in 0..self.link_cuts.len() {
            if self.link_cuts[k] != 0 {
                self.mark_cut_changed(k as u32);
            }
        }
        self.link_cuts.clear();
    }

    /// Imports `state` into the arenas (replacing everything). `ne_prev`
    /// sets that are not representable as a neighbor mask are retained
    /// verbatim so [`Engine::store_state`] loses nothing.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong number of cells.
    pub fn load_state(&mut self, state: &SystemState) {
        assert_eq!(
            state.cells.len(),
            self.front.len(),
            "state size must match the grid"
        );
        self.ne_override.clear();
        for (k, cs) in state.cells.iter().enumerate() {
            let mut mask = 0u8;
            let mut representable = cs.ne_prev.len() <= 4;
            if representable {
                'encode: for &m in &cs.ne_prev {
                    for s in 0..4 {
                        if self.topo.nbr_idx[k][s] != NO_NBR && self.topo.nbr_id[k][s] == m {
                            mask |= 1 << s;
                            continue 'encode;
                        }
                    }
                    representable = false;
                    break;
                }
            }
            if !representable {
                self.ne_override.push((k as u32, cs.ne_prev.clone()));
                mask = 0;
            }
            self.front[k] = CellCore {
                dist: cs.dist,
                next: cs.next,
                token: cs.token,
                signal: cs.signal,
                ne_mask: mask,
                failed: cs.failed,
            };
            let mem = &mut self.members[k];
            mem.clear();
            mem.extend(cs.members.iter().map(|(&e, &p)| (e, p)));
        }
        self.next_entity_id = state.next_entity_id;
        // Arbitrary registers may have been rewritten (fault injection goes
        // through here): the next sparse round must recompute everything.
        self.sched.mark_all = true;
    }

    /// Exports the arenas into `state` in place, reusing its allocations:
    /// per-cell `BTreeSet`/`BTreeMap` structures are rebuilt only when their
    /// contents actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong number of cells.
    pub fn store_state(&self, state: &mut SystemState) {
        assert_eq!(
            state.cells.len(),
            self.front.len(),
            "state size must match the grid"
        );
        for (k, cs) in state.cells.iter_mut().enumerate() {
            let c = self.front[k];
            cs.dist = c.dist;
            cs.next = c.next;
            cs.token = c.token;
            cs.signal = c.signal;
            cs.failed = c.failed;
            let overridden = self
                .ne_override
                .iter()
                .find(|(i, _)| *i == k as u32)
                .map(|(_, set)| set);
            if let Some(set) = overridden {
                if cs.ne_prev != *set {
                    cs.ne_prev = set.clone();
                }
            } else {
                let (cands, cn) = self.mask_candidates(k, c.ne_mask);
                let unchanged = cs.ne_prev.len() == cn
                    && cs.ne_prev.iter().zip(cands[..cn].iter()).all(|(a, b)| a == b);
                if !unchanged {
                    cs.ne_prev.clear();
                    cs.ne_prev.extend(cands[..cn].iter().copied());
                }
            }
            let mem = &self.members[k];
            let same_keys = cs.members.len() == mem.len()
                && cs.members.keys().zip(mem.iter()).all(|(a, (b, _))| a == b);
            if same_keys {
                for (slot, (_, p)) in cs.members.values_mut().zip(mem.iter()) {
                    *slot = *p;
                }
            } else {
                cs.members.clear();
                cs.members.extend(mem.iter().copied());
            }
        }
        state.next_entity_id = self.next_entity_id;
    }

    /// Allocates and returns a fresh [`SystemState`] mirror (convenience for
    /// tests; hot paths should reuse one via [`Engine::store_state`]).
    pub fn export_state(&self) -> SystemState {
        let mut state = self.config.initial_state();
        self.store_state(&mut state);
        state
    }

    /// Executes one atomic `update` transition — `Route; Signal; Move` — and
    /// returns the round's events. Equivalent, state for state and event for
    /// event, to [`update`](crate::update) on the mirrored representation,
    /// in both [`ExecMode`]s and at every worker count.
    pub fn step(&mut self) -> &RoundEvents {
        self.events.consumed.clear();
        self.events.transfers.clear();
        self.events.inserted.clear();
        self.events.grants.clear();
        self.events.blocked.clear();
        self.events.moved.clear();

        match self.mode {
            ExecMode::Dense => self.round_dense(),
            ExecMode::Sparse => self.round_sparse(),
        }

        self.round += 1;
        if self.recorder.is_some() {
            self.record_round();
        }
        &self.events
    }

    /// The PR 3 reference round: every phase sweeps every cell.
    fn round_dense(&mut self) {
        // Spans hold only Arc handles and `RoundTrace` is plain `Copy`
        // data: starting/stopping a span or stamping a phase mark reads the
        // clock but never allocates, so the steady-state zero-allocation
        // claim holds with timing and tracing on too.
        let timers = self.timers.clone();
        let trace = self.round_trace.enabled;
        let whole = timers.as_ref().map(|t| t.round.start());

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.route.start());
        self.route();
        std::mem::swap(&mut self.front, &mut self.back);
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.route_ns = elapsed_ns(t0);
        }

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.signal.start());
        self.signal();
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.signal_ns = elapsed_ns(t0);
        }

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.mv.start());
        self.do_move();
        self.insert_sources();
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.move_ns = elapsed_ns(t0);
        }
        drop(whole);

        if trace {
            let all = self.front.len() as u64;
            self.round_trace.route_cells = all;
            self.round_trace.signal_cells = all;
            self.round_trace.move_cells = all;
            self.round_trace.route_bands = 1;
            self.round_trace.signal_bands = 1;
            self.round_trace.move_bands = 1;
        }

        for (p, m) in self.pressure.iter_mut().zip(self.members.iter()) {
            *p = *p / 2 + m.len() as u64;
        }

        self.sched.last_active = self.front.len();
        if let Some(m) = &self.sched_metrics {
            m.active_cells.set(self.front.len() as i64);
        }
    }

    /// The active-set round: each phase sweeps only its dirty list, fanning
    /// out to shard workers when the list is long enough.
    fn round_sparse(&mut self) {
        self.begin_round_sparse();
        let timers = self.timers.clone();
        let trace = self.round_trace.enabled;
        let whole = timers.as_ref().map(|t| t.round.start());

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.route.start());
        self.route_sparse();
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.route_ns = elapsed_ns(t0);
        }

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.signal.start());
        self.signal_sparse();
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.signal_ns = elapsed_ns(t0);
        }

        let mark = trace.then(Instant::now);
        let span = timers.as_ref().map(|t| t.mv.start());
        self.move_sparse();
        self.insert_sources();
        drop(span);
        if let Some(t0) = mark {
            self.round_trace.move_ns = elapsed_ns(t0);
        }
        drop(whole);

        if trace {
            // The phase lists stay intact until the next round's rotation,
            // so the counts can be read back here, after the sweeps. Band
            // counts recompute `band_count` on the same lengths the phases
            // saw, so they match what actually ran.
            let route_len = self.sched.route_now.list.len();
            let sig_len = self.sched.sig_now.list.len();
            let move_len = self.sched.move_list.len();
            self.round_trace.route_cells = route_len as u64;
            self.round_trace.signal_cells = sig_len as u64;
            self.round_trace.move_cells = move_len as u64;
            self.round_trace.route_bands = self.band_count(route_len) as u32;
            self.round_trace.signal_bands = self.band_count(sig_len) as u32;
            self.round_trace.move_bands = self.band_count(move_len) as u32;
        }
        self.update_pressure_sparse();
        self.note_round_activity();
    }

    /// Rotates the dirty sets: marks accumulated since the last round become
    /// this round's work. After anything that rewrote arbitrary state
    /// (`load_state`, a mode switch) the sets are refilled wholesale and the
    /// occupancy/pressure lists rebuilt from the arenas.
    fn begin_round_sparse(&mut self) {
        let Engine {
            sched,
            members,
            pressure,
            alloc_events,
            ..
        } = self;
        if sched.mark_all {
            sched.mark_all = false;
            sched.route_now.fill_all(alloc_events);
            sched.sig_now.fill_all(alloc_events);
            // Pending marks are subsumed by the full sweep.
            sched.route_next.begin();
            sched.sig_next.begin();
            sched.occupied.iter_mut().for_each(|f| *f = false);
            sched.occupied_list.clear();
            sched.pressure_flag.iter_mut().for_each(|f| *f = false);
            sched.pressure_list.clear();
            for (k, m) in members.iter().enumerate() {
                if !m.is_empty() {
                    sched.occupied[k] = true;
                    push_tracked(&mut sched.occupied_list, k as u32, alloc_events);
                }
                if pressure[k] > 0 || !m.is_empty() {
                    sched.pressure_flag[k] = true;
                    push_tracked(&mut sched.pressure_list, k as u32, alloc_events);
                }
            }
        } else {
            std::mem::swap(&mut sched.route_now, &mut sched.route_next);
            sched.route_next.begin();
            std::mem::swap(&mut sched.sig_now, &mut sched.sig_next);
            sched.sig_next.begin();
        }
    }

    /// Bands a phase list fans out to: the worker count once the list
    /// clears the sharding threshold, else 1 (sequential).
    fn band_count(&self, len: usize) -> usize {
        if self.workers > 1 && len >= self.shard_min {
            self.workers.min(self.shards.route.len())
        } else {
            1
        }
    }

    /// Sparse `Route`: computes updates for the dirty list (possibly on
    /// shard workers — they only read `front`), then applies them
    /// sequentially in band order, which equals ascending cell order.
    fn route_sparse(&mut self) {
        let cap = self.config.dist_cap();
        let nbands = self.band_count(self.sched.route_now.list.len());
        {
            let Engine {
                sched,
                topo,
                front,
                link_cuts,
                shards,
                sched_metrics,
                ..
            } = self;
            sched.route_now.list.sort_unstable();
            let list: &[u32] = &sched.route_now.list;
            if list.is_empty() {
                return;
            }
            let topo: &NeighborTable = topo;
            let front: &[CellCore] = front;
            let cuts: &[u8] = link_cuts;
            let timing = sched_metrics.as_ref().map(|m| &m.shard_phase);
            let bands = &mut shards.route[..nbands];
            if nbands == 1 {
                route_band(topo, front, cuts, cap, list, &mut bands[0]);
            } else {
                let chunk = list.len().div_ceil(nbands);
                crossbeam::thread::scope(|scope| {
                    for (band, ks) in bands.iter_mut().zip(list.chunks(chunk)) {
                        scope.spawn(move |_| {
                            let t0 = timing.map(|_| Instant::now());
                            route_band(topo, front, cuts, cap, ks, band);
                            if let (Some(h), Some(t0)) = (timing, t0) {
                                h.observe(elapsed_ns(t0));
                            }
                        });
                    }
                })
                .expect("route shard worker panicked");
            }
        }
        self.apply_route_bands(nbands);
    }

    /// Writes the banded `Route` updates into `front` and propagates dirt:
    /// a changed `dist` re-routes the neighbors next round; a changed `next`
    /// feeds their requester masks in **this** round's `Signal`.
    fn apply_route_bands(&mut self, nbands: usize) {
        let Engine {
            sched,
            topo,
            front,
            alloc_events,
            shards,
            ..
        } = self;
        for band in &mut shards.route[..nbands] {
            *alloc_events += band.allocs;
            band.allocs = 0;
            for &(k, dist, next) in &band.upd {
                let ku = k as usize;
                let c = &mut front[ku];
                let dist_changed = c.dist != dist;
                let next_changed = c.next != next;
                c.dist = dist;
                c.next = next;
                let nbrs = &topo.nbr_idx[ku];
                if dist_changed {
                    for &ni in nbrs {
                        if ni != NO_NBR {
                            sched.route_next.insert(ni, alloc_events);
                        }
                    }
                }
                if next_changed {
                    for &ni in nbrs {
                        if ni != NO_NBR {
                            sched.sig_now.insert(ni, alloc_events);
                        }
                    }
                }
            }
            band.upd.clear();
        }
    }

    /// Sparse `Signal`: kernel outputs are computed for the dirty list
    /// (shard workers read the shared pre-write snapshot — `Signal` never
    /// reads a neighbor's signal registers, so this matches the in-place
    /// sweep), then applied in ascending cell order with events emitted
    /// exactly where the dense sweep emits them.
    fn signal_sparse(&mut self) {
        let params = self.config.params();
        let policy = self.config.token_policy();
        let round = self.round;
        let nbands = self.band_count(self.sched.sig_now.list.len());
        {
            let Engine {
                sched,
                topo,
                front,
                members,
                link_cuts,
                shards,
                sched_metrics,
                ..
            } = self;
            sched.sig_now.list.sort_unstable();
            let list: &[u32] = &sched.sig_now.list;
            if list.is_empty() {
                return;
            }
            let topo: &NeighborTable = topo;
            let front: &[CellCore] = front;
            let members: &[Vec<(EntityId, Point)>] = members;
            let cuts: &[u8] = link_cuts;
            let timing = sched_metrics.as_ref().map(|m| &m.shard_phase);
            let bands = &mut shards.sig[..nbands];
            if nbands == 1 {
                signal_band(
                    topo, front, members, cuts, params, policy, round, list, &mut bands[0],
                );
            } else {
                let chunk = list.len().div_ceil(nbands);
                crossbeam::thread::scope(|scope| {
                    for (band, ks) in bands.iter_mut().zip(list.chunks(chunk)) {
                        scope.spawn(move |_| {
                            let t0 = timing.map(|_| Instant::now());
                            signal_band(topo, front, members, cuts, params, policy, round, ks, band);
                            if let (Some(h), Some(t0)) = (timing, t0) {
                                h.observe(elapsed_ns(t0));
                            }
                        });
                    }
                })
                .expect("signal shard worker panicked");
            }
        }
        self.apply_signal_bands(nbands);
    }

    /// Writes banded `Signal` outputs back, emits grant/block events, and
    /// re-marks sticky cells: anything finishing with a nonzero register
    /// must run again next round (the skip precondition is the idle triple).
    fn apply_signal_bands(&mut self, nbands: usize) {
        let Engine {
            sched,
            topo,
            front,
            events,
            ne_override,
            alloc_events,
            shards,
            ..
        } = self;
        for band in &mut shards.sig[..nbands] {
            *alloc_events += band.allocs;
            band.allocs = 0;
            for &(k, out) in &band.out {
                let ku = k as usize;
                let id = topo.ids[ku];
                match (out.signal, out.token) {
                    (Some(grantee), _) => {
                        push_tracked(&mut events.grants, (id, grantee), alloc_events);
                    }
                    (None, Some(holder)) => {
                        push_tracked(&mut events.blocked, (id, holder), alloc_events);
                    }
                    (None, None) => {}
                }
                let c = &mut front[ku];
                c.ne_mask = out.mask;
                c.token = out.token;
                c.signal = out.signal;
                if !ne_override.is_empty() {
                    ne_override.retain(|(i, _)| *i != k);
                }
                if out.mask != 0 || out.token.is_some() || out.signal.is_some() {
                    sched.sig_next.insert(k, alloc_events);
                }
            }
            band.out.clear();
        }
    }

    /// Sparse `Move`: compacts the occupancy list, sweeps exactly the
    /// nonempty cells in ascending order (banded over disjoint member
    /// sub-slices when sharded), then marks drained cells' neighbors and
    /// applies deferred arrivals with occupancy tracking.
    fn move_sparse(&mut self) {
        {
            let Engine {
                sched,
                members,
                alloc_events,
                ..
            } = self;
            let occupied = &mut sched.occupied;
            sched.occupied_list.retain(|&k| {
                if members[k as usize].is_empty() {
                    occupied[k as usize] = false;
                    false
                } else {
                    true
                }
            });
            sched.move_list.clear();
            for i in 0..sched.occupied_list.len() {
                let k = sched.occupied_list[i];
                push_tracked(&mut sched.move_list, k, alloc_events);
            }
            sched.move_list.sort_unstable();
        }
        let nbands = self.band_count(self.sched.move_list.len());
        {
            let Engine {
                config,
                topo,
                front,
                members,
                link_cuts,
                incoming,
                events,
                sched,
                shards,
                alloc_events,
                sched_metrics,
                ..
            } = self;
            let list: &[u32] = &sched.move_list;
            if !list.is_empty() {
                let topo: &NeighborTable = topo;
                let front: &[CellCore] = front;
                let cuts: &[u8] = link_cuts;
                let config: &SystemConfig = config;
                if nbands == 1 {
                    let mut sink = MoveSink {
                        moved: &mut events.moved,
                        consumed: &mut events.consumed,
                        transfers: &mut events.transfers,
                        incoming,
                        allocs: alloc_events,
                    };
                    for &k in list {
                        move_cell_into(
                            config,
                            topo,
                            front,
                            cuts,
                            &mut members[k as usize],
                            k as usize,
                            &mut sink,
                        );
                    }
                } else {
                    let chunk = list.len().div_ceil(nbands);
                    let timing = sched_metrics.as_ref().map(|m| &m.shard_phase);
                    let bands = &mut shards.mv[..nbands];
                    crossbeam::thread::scope(|scope| {
                        // Bands are contiguous runs of the sorted list, so
                        // splitting the member arenas at each band's last
                        // cell + 1 hands every worker a disjoint sub-slice.
                        let mut rest: &mut [Vec<(EntityId, Point)>] = members;
                        let mut offset = 0usize;
                        for (band, ks) in bands.iter_mut().zip(list.chunks(chunk)) {
                            let hi = *ks.last().expect("chunks are nonempty") as usize + 1;
                            let (seg, tail) = rest.split_at_mut(hi - offset);
                            let lo = offset;
                            rest = tail;
                            offset = hi;
                            scope.spawn(move |_| {
                                let t0 = timing.map(|_| Instant::now());
                                let mut sink = MoveSink {
                                    moved: &mut band.moved,
                                    consumed: &mut band.consumed,
                                    transfers: &mut band.transfers,
                                    incoming: &mut band.incoming,
                                    allocs: &mut band.allocs,
                                };
                                for &k in ks {
                                    move_cell_into(
                                        config,
                                        topo,
                                        front,
                                        cuts,
                                        &mut seg[k as usize - lo],
                                        k as usize,
                                        &mut sink,
                                    );
                                }
                                if let (Some(h), Some(t0)) = (timing, t0) {
                                    h.observe(elapsed_ns(t0));
                                }
                            });
                        }
                    })
                    .expect("move shard worker panicked");
                    // Merge in ascending band order = ascending cell order =
                    // the sequential sweep's event record.
                    for band in bands {
                        *alloc_events += band.allocs;
                        band.allocs = 0;
                        drain_tracked(&mut events.moved, &mut band.moved, alloc_events);
                        drain_tracked(&mut events.consumed, &mut band.consumed, alloc_events);
                        drain_tracked(&mut events.transfers, &mut band.transfers, alloc_events);
                        drain_tracked(incoming, &mut band.incoming, alloc_events);
                    }
                }
                // Cells that drained stop being requesters: their neighbors'
                // masks change next round.
                for &k in list {
                    if members[k as usize].is_empty() {
                        for &ni in &topo.nbr_idx[k as usize] {
                            if ni != NO_NBR {
                                sched.sig_next.insert(ni, alloc_events);
                            }
                        }
                    }
                }
            }
        }
        self.apply_incoming(true);
    }

    /// Applies deferred cross-cell arrivals in emission order. With `track`,
    /// cells gaining their first occupant are folded into the occupancy and
    /// pressure lists and their neighbors marked for `Signal`.
    fn apply_incoming(&mut self, track: bool) {
        let mut incoming = std::mem::take(&mut self.incoming);
        for &(to, eid, pos) in &incoming {
            let tu = to as usize;
            let was_empty = self.members[tu].is_empty();
            insert_member(&mut self.members[tu], eid, pos, &mut self.alloc_events);
            if track && was_empty {
                note_occupied(&mut self.sched, &self.topo, to, &mut self.alloc_events);
            }
        }
        incoming.clear();
        self.incoming = incoming;
    }

    /// Sparse pressure update: the leaky integrator is identically zero off
    /// the list (`⌊0/2⌋ + 0 = 0`), so only listed cells are touched; a cell
    /// leaves the list once it decays to zero while empty.
    fn update_pressure_sparse(&mut self) {
        let Engine {
            sched,
            pressure,
            members,
            ..
        } = self;
        let mut i = 0;
        while i < sched.pressure_list.len() {
            let k = sched.pressure_list[i] as usize;
            let p = pressure[k] / 2 + members[k].len() as u64;
            pressure[k] = p;
            if p == 0 {
                sched.pressure_flag[k] = false;
                sched.pressure_list.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Counts the distinct cells this round's phases ran on and publishes
    /// the occupancy gauges when scheduler metrics are attached.
    fn note_round_activity(&mut self) {
        let Engine {
            sched,
            sched_metrics,
            front,
            alloc_events,
            ..
        } = self;
        sched.touch.begin();
        for i in 0..sched.route_now.list.len() {
            let k = sched.route_now.list[i];
            sched.touch.insert(k, alloc_events);
        }
        for i in 0..sched.sig_now.list.len() {
            let k = sched.sig_now.list[i];
            sched.touch.insert(k, alloc_events);
        }
        for i in 0..sched.move_list.len() {
            let k = sched.move_list[i];
            sched.touch.insert(k, alloc_events);
        }
        sched.last_active = sched.touch.list.len();
        if let Some(m) = sched_metrics {
            m.active_cells.set(sched.last_active as i64);
            m.skipped_cells
                .add((front.len() - sched.last_active) as u64);
        }
    }

    /// The sorted (ascending `CellId`) neighbor candidates selected by
    /// `mask` on cell `k`.
    fn mask_candidates(&self, k: usize, mask: u8) -> ([CellId; 4], usize) {
        let mut cands = [self.topo.ids[k]; 4];
        let mut cn = 0;
        for &s in &SORTED_SLOTS {
            if mask & (1 << s) != 0 {
                cands[cn] = self.topo.nbr_id[k][s];
                cn += 1;
            }
        }
        (cands, cn)
    }

    /// `Route` (Figure 4): writes the routed registers into `back`; the
    /// caller swaps the buffers. Mirrors
    /// [`route_phase`](crate::route_phase): the hand-rolled loop below
    /// computes [`route_update`](cellflow_routing::route_update)'s
    /// `argmin (dist, id)` by visiting the slots
    /// in ascending-`CellId` order ([`SORTED_SLOTS`]) with strict-`<`
    /// keep-first replacement, so the id comparison never has to run. The
    /// differential suite pins the two implementations together.
    fn route(&mut self) {
        let cap = self.config.dist_cap();
        let topo = &*self.topo;
        let front = &self.front;
        let back = &mut self.back;
        for k in 0..front.len() {
            let mut c = front[k];
            if !c.failed && k != topo.target_index {
                let cut = if self.link_cuts.is_empty() {
                    0
                } else {
                    self.link_cuts[k]
                };
                let (dist, next) = route_core(topo, front, cut, cap, k);
                c.dist = dist;
                c.next = next;
            }
            back[k] = c;
        }
    }

    /// `Signal` (Figure 5), in place on `front`. Safe without a second
    /// buffer: it writes only a cell's own `ne_mask`/`token`/`signal` and
    /// reads neighbors' `next` (never written here) and member arenas
    /// (never written here). Grant/block events are emitted inline in the
    /// same row-major order the reference derives them.
    fn signal(&mut self) {
        let params = self.config.params();
        let policy = self.config.token_policy();
        let round = self.round;
        for k in 0..self.front.len() {
            if self.front[k].failed {
                continue;
            }
            let cut = if self.link_cuts.is_empty() {
                0
            } else {
                self.link_cuts[k]
            };
            // Reading the kernel off the front buffer mid-sweep is exact:
            // `Signal` never reads a neighbor's ne_mask/token/signal, so the
            // registers already rewritten for earlier cells are invisible.
            let out = signal_core(
                &self.topo,
                &self.front,
                &self.members,
                cut,
                params,
                policy,
                round,
                k,
            );
            let id = self.topo.ids[k];
            match (out.signal, out.token) {
                (Some(grantee), _) => {
                    push_tracked(&mut self.events.grants, (id, grantee), &mut self.alloc_events);
                }
                (None, Some(holder)) => {
                    push_tracked(&mut self.events.blocked, (id, holder), &mut self.alloc_events);
                }
                (None, None) => {}
            }
            let c = &mut self.front[k];
            c.ne_mask = out.mask;
            c.token = out.token;
            c.signal = out.signal;
            if !self.ne_override.is_empty() {
                self.ne_override.retain(|(i, _)| *i != k as u32);
            }
        }
    }

    /// `Move` (Figure 6), in place. All permission reads (`signal`,
    /// `failed`) come from registers `Move` never writes; cross-cell
    /// arrivals are deferred to the `incoming` scratch and applied after the
    /// sweep, exactly like [`move_phase`](crate::move_phase).
    fn do_move(&mut self) {
        let Engine {
            config,
            topo,
            front,
            members,
            link_cuts,
            incoming,
            events,
            alloc_events,
            ..
        } = self;
        let mut sink = MoveSink {
            moved: &mut events.moved,
            consumed: &mut events.consumed,
            transfers: &mut events.transfers,
            incoming,
            allocs: alloc_events,
        };
        for (k, members_k) in members.iter_mut().enumerate() {
            move_cell_into(config, topo, front, link_cuts, members_k, k, &mut sink);
        }
        self.apply_incoming(false);
    }

    /// Source insertion (at most one entity per source per round), reading
    /// post-move members exactly like the tail of
    /// [`move_phase`](crate::move_phase).
    fn insert_sources(&mut self) {
        let dims = self.config.dims();
        let params = self.config.params();
        let policy = self.config.source_policy();
        let budget = self.config.entity_budget();
        let sparse = self.mode == ExecMode::Sparse;
        let d = params.d();
        for &s in self.config.sources() {
            let si = dims.index(s);
            if self.front[si].failed {
                continue; // a failed cell does nothing
            }
            if let Some(budget) = budget {
                if self.next_entity_id >= budget {
                    continue;
                }
            }
            let Some(pos) = policy.candidate(params, s, self.front[si].next) else {
                continue;
            };
            if !self.members[si].iter().all(|&(_, q)| sep_ok(pos, q, d)) {
                continue;
            }
            let was_empty = self.members[si].is_empty();
            let eid = EntityId(self.next_entity_id);
            self.next_entity_id += 1;
            insert_member(&mut self.members[si], eid, pos, &mut self.alloc_events);
            push_tracked(&mut self.events.inserted, (s, eid), &mut self.alloc_events);
            if sparse && was_empty {
                note_occupied(&mut self.sched, &self.topo, si as u32, &mut self.alloc_events);
            }
        }
    }

    /// How [`Engine::step`] executes rounds.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Switches the execution strategy. The first round after a switch runs
    /// on full sets so the sparse scheduler re-learns the state (dense
    /// rounds maintain no dirty tracking).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        if self.mode != mode {
            self.mode = mode;
            self.sched.mark_all = true;
        }
    }

    /// Worker threads sharded sparse phases may fan out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the worker count for sharded execution (clamped to ≥ 1). A
    /// phase fans out only once its active list reaches the sharding
    /// threshold; below it the sequential sweep is faster than the hand-off.
    pub fn set_workers(&mut self, workers: usize) {
        let w = workers.max(1);
        self.workers = w;
        if self.shards.route.len() < w {
            self.shards = ShardScratch::with_bands(w);
        }
    }

    /// Overrides the active-list length at which phases fan out to workers
    /// (mainly for tests and benches; the default keeps small grids
    /// sequential).
    pub fn set_shard_min(&mut self, shard_min: usize) {
        self.shard_min = shard_min.max(1);
    }

    /// Distinct cells any phase ran on in the most recent round (equals the
    /// grid size in dense mode) — the active-set occupancy benchmarks and
    /// the `cellflow_engine_active_cells` gauge report.
    pub fn active_cells(&self) -> usize {
        self.sched.last_active
    }

    /// Attaches the scheduler gauges (`cellflow_engine_active_cells`,
    /// `cellflow_engine_skipped_cells_total`, and per-shard phase timing via
    /// `cellflow_engine_shard_phase_ns`). Handles minted from a disabled
    /// registry stay detached, keeping the untimed fast path.
    pub fn attach_scheduler_metrics(&mut self, metrics: SchedulerMetrics) {
        self.sched_metrics = if metrics.active_cells.is_enabled() {
            Some(metrics)
        } else {
            None
        };
    }
}

/// Entities appeared in a previously empty cell: fold it into the occupancy
/// and pressure lists and mark its neighbors — their requester masks read
/// this cell's emptiness next round.
fn note_occupied(sched: &mut Sched, topo: &NeighborTable, k: u32, allocs: &mut u64) {
    let ku = k as usize;
    for &ni in &topo.nbr_idx[ku] {
        if ni != NO_NBR {
            sched.sig_next.insert(ni, allocs);
        }
    }
    if !sched.occupied[ku] {
        sched.occupied[ku] = true;
        push_tracked(&mut sched.occupied_list, k, allocs);
    }
    if !sched.pressure_flag[ku] {
        sched.pressure_flag[ku] = true;
        push_tracked(&mut sched.pressure_list, k, allocs);
    }
}

/// One worker's sparse `Route` sweep: kernel results for the cells in `ks`
/// whose routed registers would change.
fn route_band(
    topo: &NeighborTable,
    front: &[CellCore],
    link_cuts: &[u8],
    cap: u32,
    ks: &[u32],
    band: &mut RouteBand,
) {
    for &k in ks {
        let ku = k as usize;
        let c = front[ku];
        // Dense leaves failed cells and the target untouched too.
        if c.failed || ku == topo.target_index {
            continue;
        }
        let cut = if link_cuts.is_empty() { 0 } else { link_cuts[ku] };
        let (dist, next) = route_core(topo, front, cut, cap, ku);
        if dist != c.dist || next != c.next {
            push_tracked(&mut band.upd, (k, dist, next), &mut band.allocs);
        }
    }
}

/// One worker's sparse `Signal` sweep: kernel outputs for every non-failed
/// cell in `ks`, in list order.
#[allow(clippy::too_many_arguments)]
fn signal_band(
    topo: &NeighborTable,
    front: &[CellCore],
    members: &[Vec<(EntityId, Point)>],
    link_cuts: &[u8],
    params: Params,
    policy: TokenPolicy,
    round: u64,
    ks: &[u32],
    band: &mut SigBand,
) {
    for &k in ks {
        let ku = k as usize;
        if front[ku].failed {
            continue;
        }
        let cut = if link_cuts.is_empty() { 0 } else { link_cuts[ku] };
        let out = signal_core(topo, front, members, cut, params, policy, round, ku);
        push_tracked(&mut band.out, (k, out), &mut band.allocs);
    }
}

/// Moves everything from `src` onto the end of `dst`, counting growth.
fn drain_tracked<T>(dst: &mut Vec<T>, src: &mut Vec<T>, allocs: &mut u64) {
    for item in src.drain(..) {
        push_tracked(dst, item, allocs);
    }
}

/// Saturating nanoseconds since `t0` for the shard-phase histogram.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{update, Params, System};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(8),
            CellId::new(1, 7),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_source(CellId::new(6, 0))
    }

    #[test]
    fn engine_matches_pure_phases_over_a_long_run() {
        let cfg = config();
        let mut engine = Engine::new(cfg.clone());
        let mut state = cfg.initial_state();
        let mut mirror = cfg.initial_state();
        for round in 0..300 {
            let (next, events) = update(&cfg, &state, round);
            let ev = engine.step().clone();
            engine.store_state(&mut mirror);
            assert_eq!(mirror, next, "state diverged at round {round}");
            assert_eq!(ev.consumed, events.consumed, "round {round}");
            assert_eq!(ev.transfers, events.transfers, "round {round}");
            assert_eq!(ev.inserted, events.inserted, "round {round}");
            assert_eq!(ev.grants, events.grants, "round {round}");
            assert_eq!(ev.blocked, events.blocked, "round {round}");
            assert_eq!(ev.moved, events.moved, "round {round}");
            state = next;
        }
    }

    #[test]
    fn steady_state_rounds_allocate_nothing() {
        let cfg = config();
        let mut engine = Engine::new(cfg);
        for _ in 0..400 {
            engine.step();
        }
        engine.reset_alloc_events();
        for _ in 0..400 {
            engine.step();
        }
        assert_eq!(
            engine.alloc_events(),
            0,
            "steady-state rounds must not grow any buffer"
        );
    }

    #[test]
    fn phase_timers_record_every_round_without_allocating() {
        use cellflow_telemetry::{PhaseTimers, Registry};
        let cfg = config();
        let mut engine = Engine::new(cfg);
        let reg = Registry::new();
        engine.attach_phase_timers(PhaseTimers::register(&reg));
        for _ in 0..100 {
            engine.step();
        }
        engine.reset_alloc_events();
        for _ in 0..100 {
            engine.step();
        }
        assert_eq!(engine.alloc_events(), 0, "timing must not allocate");
        let timers = PhaseTimers::register(&reg);
        assert_eq!(timers.round.count(), 200);
        assert_eq!(timers.route.count(), 200);
        assert_eq!(timers.signal.count(), 200);
        assert_eq!(timers.mv.count(), 200);
        assert!(timers.round.sum() >= timers.route.sum());
    }

    #[test]
    fn round_trace_attributes_phases_without_allocating() {
        let cfg = config();
        let mut engine = Engine::new(cfg.clone());
        engine.enable_round_trace();
        assert_eq!(
            engine.round_trace(),
            RoundTrace {
                enabled: true,
                ..RoundTrace::default()
            }
        );
        let mut counts = Vec::new();
        for _ in 0..150 {
            engine.step();
            let t = engine.round_trace();
            assert_eq!(t.route_bands, 1, "8x8 never clears the shard threshold");
            counts.push((t.route_cells, t.signal_cells, t.move_cells));
        }
        // Counts mirror the deterministic sparse work lists.
        let mut replay = Engine::new(cfg.clone());
        replay.enable_round_trace();
        for expected in &counts {
            replay.step();
            let t = replay.round_trace();
            assert_eq!(*expected, (t.route_cells, t.signal_cells, t.move_cells));
        }
        // Sparse rounds in a driven system sweep fewer cells than the grid.
        assert!(counts.iter().any(|&(r, _, _)| r < 64 && r > 0));
        // Dense mode attributes the whole grid to every phase.
        let mut dense = Engine::new(cfg);
        dense.set_exec_mode(ExecMode::Dense);
        dense.enable_round_trace();
        dense.step();
        let t = dense.round_trace();
        assert_eq!(
            (t.route_cells, t.signal_cells, t.move_cells),
            (64, 64, 64)
        );
        // And tracing must not break the zero-alloc steady state.
        engine.reset_alloc_events();
        for _ in 0..150 {
            engine.step();
        }
        assert_eq!(engine.alloc_events(), 0, "tracing must not allocate");
    }

    #[test]
    fn disabled_timers_stay_detached() {
        use cellflow_telemetry::{PhaseTimers, Registry};
        let cfg = config();
        let mut engine = Engine::new(cfg);
        engine.attach_phase_timers(PhaseTimers::register(&Registry::disabled()));
        assert!(engine.timers.is_none(), "disabled registry must not attach");
        engine.step();
    }

    #[test]
    fn load_store_roundtrips_arbitrary_states() {
        let cfg = config();
        let mut sys = System::new(cfg.clone());
        sys.run(50);
        sys.fail(CellId::new(3, 3));
        let mut state = sys.state().clone();
        // Junk ne_prev that no mask can express (contains a non-neighbor).
        state
            .cells[0]
            .ne_prev
            .extend([CellId::new(7, 7), CellId::new(1, 0)]);
        let mut engine = Engine::new(cfg);
        engine.load_state(&state);
        assert_eq!(engine.export_state(), state);
    }

    #[test]
    fn override_is_dropped_once_signal_rewrites_the_cell() {
        let cfg = config();
        let mut state = cfg.initial_state();
        state.cells[0].ne_prev.insert(CellId::new(7, 7)); // non-neighbor junk
        let mut engine = Engine::new(cfg.clone());
        engine.load_state(&state);
        engine.step();
        let exported = engine.export_state();
        // Signal recomputed ne_prev from actual neighbors: junk gone.
        assert!(!exported.cells[0].ne_prev.contains(&CellId::new(7, 7)));
        // And it matches the reference transition.
        let (next, _) = update(&cfg, &state, 0);
        assert_eq!(exported, next);
    }

    #[test]
    fn neighbor_table_slots_follow_dir_all() {
        let dims = GridDims::square(3);
        let t = NeighborTable::new(dims, CellId::new(2, 1));
        let k = dims.index(CellId::new(1, 1));
        assert_eq!(t.id_at(k), CellId::new(1, 1));
        for (s, &dir) in Dir::ALL.iter().enumerate() {
            let expected = CellId::new(1, 1).step(dir).unwrap();
            assert_eq!(t.nbr_id[k][s], expected);
            assert_eq!(t.nbr_idx[k][s] as usize, dims.index(expected));
        }
        // Corner ⟨0,0⟩: west and south are off-grid.
        let c = dims.index(CellId::new(0, 0));
        assert_eq!(t.nbr_idx[c][1], NO_NBR);
        assert_eq!(t.nbr_idx[c][3], NO_NBR);
        assert_eq!(t.len(), 9);
        assert!(!t.is_empty());
    }

    #[test]
    fn sorted_slots_visit_neighbors_in_ascending_id_order() {
        let dims = GridDims::square(3);
        let t = NeighborTable::new(dims, CellId::new(2, 1));
        let k = dims.index(CellId::new(1, 1));
        let visited: Vec<CellId> = SORTED_SLOTS.iter().map(|&s| t.nbr_id[k][s]).collect();
        let mut sorted = visited.clone();
        sorted.sort();
        assert_eq!(visited, sorted);
    }

    #[test]
    fn engine_handles_corrupted_registers_like_the_reference() {
        use crate::fault::Corruption;
        let cfg = config();
        let mut sys = System::new(cfg.clone()); // engine-backed
        let mut state = cfg.initial_state();
        let schedule = [
            (5u64, CellId::new(2, 2), Corruption::Scramble { salt: 11 }),
            (9, CellId::new(4, 4), Corruption::NePrev { mask: 0b1010 }),
            (13, CellId::new(1, 1), Corruption::Dist(Dist::Finite(0))),
            (17, CellId::new(5, 5), Corruption::Token(Some(Dir::West))),
        ];
        for step in 0..40u64 {
            for &(when, cell, corr) in &schedule {
                if when == step {
                    sys.corrupt(cell, corr);
                    let dims = cfg.dims();
                    corr.apply(&cfg, cell, state.cell_mut(dims, cell));
                }
            }
            let (next, _) = update(&cfg, &state, step);
            sys.step();
            state = next;
            assert_eq!(sys.state(), &state, "diverged at step {step}");
        }
    }

    #[test]
    fn transfers_never_cross_a_cut_edge_and_safety_holds() {
        use crate::fault::PartitionPlan;
        let cfg = config(); // sources at (1,0) and (6,0); target (1,7)
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(120);
        let mut sys = System::new(cfg.clone());
        for round in 0..120u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            let events = sys.step();
            for t in &events.transfers {
                assert_eq!(
                    t.from.i() < 4,
                    t.to.i() < 4,
                    "transfer {:?} crossed the cut at round {round}",
                    t
                );
            }
            crate::safety::check_safe(sys.config(), sys.state())
                .unwrap_or_else(|v| panic!("unsafe at round {round}: {v:?}"));
        }
        // The side cut off from the target sees only ∞/⊥ toward it.
        assert!(sys.consumed_total() > 0, "open side still makes progress");
    }

    #[test]
    fn healing_restores_routing_within_the_bound() {
        use crate::fault::PartitionPlan;
        use crate::monitor::stabilization_bound;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(80);
        let mut sys = System::new(cfg.clone());
        for round in 0..80u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
        }
        assert!(
            !crate::analysis::routing_stabilized(sys.config(), sys.state()),
            "a split grid must not look stabilized"
        );
        sys.clear_link_cuts();
        sys.run(stabilization_bound(&cfg));
        assert!(
            crate::analysis::routing_stabilized(sys.config(), sys.state()),
            "routing must recover within 2N²+2 rounds of healing"
        );
    }

    #[test]
    fn asymmetric_cut_masks_only_one_direction() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let a = CellId::new(1, 3);
        let b = CellId::new(1, 4);
        // Cut only a's view of b: b's announcements (dist, grants) are lost
        // on the way to a, but a's announcements still reach b.
        let plan = PartitionPlan::for_grid(cfg.dims()).cut(b, a, 0, None);
        let schedule = plan.expand(200);
        let mut sys = System::new(cfg.clone());
        for round in 0..200u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            let events = sys.step();
            for t in &events.transfers {
                assert!(
                    !(t.from == a && t.to == b),
                    "a → b needs b's grant, which a can no longer hear (round {round})"
                );
            }
        }
    }

    #[test]
    fn masked_rounds_allocate_nothing_after_warmup() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_row(3, 0, Some(150));
        let schedule = plan.expand(400);
        let mut engine = Engine::new(cfg);
        engine.set_link_cuts(schedule.mask_row(0)); // allocates the mask row once
        for round in 0..200u64 {
            engine.set_link_cuts(schedule.mask_row(round));
            engine.step();
        }
        engine.reset_alloc_events();
        for round in 200..400u64 {
            engine.set_link_cuts(schedule.mask_row(round));
            engine.step();
        }
        assert_eq!(
            engine.alloc_events(),
            0,
            "per-round mask updates must reuse the existing buffer"
        );
    }

    #[test]
    fn sparse_and_sharded_match_dense_round_for_round() {
        let cfg = config();
        let mut dense = Engine::new(cfg.clone());
        dense.set_exec_mode(ExecMode::Dense);
        let mut sparse = Engine::new(cfg.clone());
        let mut sharded = Engine::new(cfg);
        sharded.set_workers(4);
        sharded.set_shard_min(1); // force fan-out even on a tiny grid
        let mut a = dense.export_state();
        let mut b = a.clone();
        for round in 0..300 {
            let ed = dense.step().clone();
            let es = sparse.step().clone();
            assert_eq!(ed, es, "sparse events diverged at round {round}");
            let eh = sharded.step().clone();
            assert_eq!(ed, eh, "sharded events diverged at round {round}");
            dense.store_state(&mut a);
            sparse.store_state(&mut b);
            assert_eq!(a, b, "sparse state diverged at round {round}");
            sharded.store_state(&mut b);
            assert_eq!(a, b, "sharded state diverged at round {round}");
        }
    }

    #[test]
    fn sparse_matches_dense_under_partitions_and_heal() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 10, Some(120));
        let schedule = plan.expand(200);
        let mut dense = Engine::new(cfg.clone());
        dense.set_exec_mode(ExecMode::Dense);
        let mut sharded = Engine::new(cfg);
        sharded.set_workers(2);
        sharded.set_shard_min(1);
        let mut a = dense.export_state();
        let mut b = a.clone();
        for round in 0..200u64 {
            dense.set_link_cuts(schedule.mask_row(round));
            sharded.set_link_cuts(schedule.mask_row(round));
            let ed = dense.step().clone();
            let eh = sharded.step().clone();
            assert_eq!(ed, eh, "events diverged at round {round}");
            dense.store_state(&mut a);
            sharded.store_state(&mut b);
            assert_eq!(a, b, "state diverged at round {round}");
        }
    }

    #[test]
    fn mode_switches_mid_run_stay_equivalent() {
        let cfg = config();
        let mut reference = Engine::new(cfg.clone());
        reference.set_exec_mode(ExecMode::Dense);
        let mut toggled = Engine::new(cfg);
        let mut a = reference.export_state();
        let mut b = a.clone();
        for round in 0..240 {
            if round % 60 == 0 {
                let mode = if (round / 60) % 2 == 0 {
                    ExecMode::Sparse
                } else {
                    ExecMode::Dense
                };
                toggled.set_exec_mode(mode);
            }
            let er = reference.step().clone();
            let et = toggled.step().clone();
            assert_eq!(er, et, "events diverged at round {round}");
            reference.store_state(&mut a);
            toggled.store_state(&mut b);
            assert_eq!(a, b, "state diverged at round {round}");
        }
    }

    #[test]
    fn quiescent_grid_collapses_to_an_empty_active_set() {
        // No sources: once the distance flood reaches its fixed point and no
        // entities exist, every per-round list must drain to nothing.
        let cfg = SystemConfig::new(
            GridDims::square(16),
            CellId::new(1, 15),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap();
        let mut engine = Engine::new(cfg);
        for _ in 0..200 {
            engine.step();
        }
        assert_eq!(
            engine.active_cells(),
            0,
            "a quiescent grid must cost O(active) = 0"
        );
        engine.reset_alloc_events();
        for _ in 0..100 {
            engine.step();
        }
        assert_eq!(engine.alloc_events(), 0, "quiescent rounds must not allocate");
    }

    #[test]
    fn steady_state_active_set_stays_a_small_fraction_of_the_grid() {
        // One source in a 24×24 grid: traffic occupies a corridor, not the
        // whole grid. The active set must track the corridor.
        let cfg = SystemConfig::new(
            GridDims::square(24),
            CellId::new(1, 23),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0));
        let mut engine = Engine::new(cfg);
        for _ in 0..400 {
            engine.step();
        }
        let n = 24 * 24;
        assert!(
            engine.active_cells() < n / 4,
            "active set {} should be well under a quarter of {} cells",
            engine.active_cells(),
            n
        );
        assert!(engine.active_cells() > 0, "traffic keeps some cells active");
    }

    #[test]
    fn scheduler_metrics_report_occupancy_and_detach_when_disabled() {
        use cellflow_telemetry::{Registry, SchedulerMetrics};
        let cfg = config();
        let mut engine = Engine::new(cfg.clone());
        let reg = Registry::new();
        engine.attach_scheduler_metrics(SchedulerMetrics::register(&reg));
        for _ in 0..50 {
            engine.step();
        }
        let m = SchedulerMetrics::register(&reg);
        assert!(m.active_cells.value() >= 0);
        assert!(
            m.skipped_cells.value() > 0,
            "a small grid still skips cells once warmed up"
        );
        let mut detached = Engine::new(cfg);
        detached.attach_scheduler_metrics(SchedulerMetrics::register(&Registry::disabled()));
        assert!(detached.sched_metrics.is_none());
    }

    #[test]
    fn sharded_workers_clamp_and_thresholds_hold() {
        let cfg = config();
        let mut engine = Engine::new(cfg);
        engine.set_workers(0);
        assert_eq!(engine.workers(), 1);
        engine.set_workers(8);
        assert_eq!(engine.workers(), 8);
        assert_eq!(engine.exec_mode(), ExecMode::Sparse);
        // Default threshold keeps an 8×8 grid sequential; rounds still work.
        for _ in 0..50 {
            engine.step();
        }
        assert!(engine.active_cells() <= 64);
    }

    #[test]
    fn cuts_survive_load_state_and_clear_restores_the_fast_path() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(40);
        let mut sys = System::new(cfg.clone());
        for round in 0..40u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
        }
        // fail() forces a load_state on the next step; the cuts must persist.
        sys.fail(CellId::new(6, 6));
        let events = sys.step();
        for t in &events.transfers {
            assert_eq!(t.from.i() < 4, t.to.i() < 4, "cut lost across load_state");
        }
        // Clearing the cuts makes the system behave exactly like the
        // reference semantics again.
        sys.clear_link_cuts();
        let mut state = sys.state().clone();
        let round = sys.round();
        for step in 0..30u64 {
            let (next, _) = update(sys.config(), &state, round + step);
            sys.step();
            state = next;
            assert_eq!(sys.state(), &state, "diverged after clear at step {step}");
        }
    }
}
