//! The zero-clone round engine: a flat, arena-backed implementation of the
//! atomic `update` transition.
//!
//! The pure three-phase functions ([`route_phase`](crate::route_phase),
//! [`signal_phase`](crate::signal_phase), [`move_phase`](crate::move_phase))
//! are the *specification*: they mirror the paper's Figures 4–6 line by line
//! and keep Lemma 3's intermediate states `xR`, `xS` observable, but each
//! clones the full [`SystemState`] (three `O(cells · log)` allocation storms
//! per round). This module implements the *same transition relation* on a
//! flat representation tuned for throughput:
//!
//! * cell protocol registers live in a contiguous `Vec<CellCore>` (a `Copy`
//!   struct — no `BTreeSet`/`BTreeMap` per cell);
//! * `NEPrev` is a 4-bit neighbor mask over [`Dir::ALL`] instead of a
//!   `BTreeSet<CellId>`;
//! * entities are per-cell `Vec<(EntityId, Point)>` arenas kept sorted by
//!   identifier (matching `BTreeMap` iteration order);
//! * neighbor arena indices come from a [`NeighborTable`] precomputed once
//!   per configuration (cached on [`SystemConfig`], shared via `Arc`);
//! * `Route` writes into a second buffer which then *swaps* with the first
//!   (it reads neighbor distances, so it cannot run in place), while
//!   `Signal` and `Move` are aliasing-safe in place: `Signal` writes only a
//!   cell's own `ne_prev`/`token`/`signal` and reads neighbors' `next` and
//!   members (which it never writes); `Move` defers cross-cell arrivals to a
//!   reusable `incoming` scratch exactly like the reference.
//!
//! A steady-state [`Engine::step`] therefore performs **zero heap
//! allocation**: every buffer is reused, and the only allocations ever made
//! are capacity growth while entity counts or event volumes are still
//! ramping up. The engine counts those growth events
//! ([`Engine::alloc_events`]) so benchmarks and tests can assert the
//! steady-state claim mechanically.
//!
//! Equivalence with the pure phases — identical successor state *and*
//! identical [`RoundEvents`], per round, under crashes, recoveries and
//! corruptions — is enforced by `tests/engine_differential.rs` at the
//! workspace root.

use std::collections::BTreeSet;
use std::sync::Arc;

use cellflow_geom::{sep_ok, Dir, Point};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;
use cellflow_telemetry::PhaseTimers;

use crate::signal::gap_free_toward;
use crate::{EntityId, RoundEvents, SystemConfig, SystemState, Transfer};

/// Sentinel for "no neighbor in this direction" in [`NeighborTable`].
const NO_NBR: u32 = u32::MAX;

/// Slot order that visits a cell's neighbors in ascending `CellId` order.
///
/// Slots index [`Dir::ALL`] = `[East, West, North, South]`; `CellId`'s
/// derived ordering is lexicographic `(i, j)`, so for cell `⟨i,j⟩` the sorted
/// neighbor order is `W ⟨i−1,j⟩ < S ⟨i,j−1⟩ < N ⟨i,j+1⟩ < E ⟨i+1,j⟩`.
const SORTED_SLOTS: [usize; 4] = [1, 3, 2, 0];

/// Precomputed grid topology: per-cell neighbor arena indices and
/// identifiers in [`Dir::ALL`] slot order, plus the target's arena index.
///
/// Built once per configuration and cached on
/// [`SystemConfig::topology`], so no phase ever recomputes
/// neighbor identifiers or row-major indices round over round.
pub struct NeighborTable {
    /// `CellId` of each arena index (row-major, [`GridDims::index`] order).
    ids: Vec<CellId>,
    /// Per cell, the arena index of the neighbor in each [`Dir::ALL`] slot
    /// (`NO_NBR` where the direction leaves the grid).
    nbr_idx: Vec<[u32; 4]>,
    /// Per cell, the neighbor `CellId` per slot (valid iff `nbr_idx` is).
    nbr_id: Vec<[CellId; 4]>,
    /// Arena index of the target cell.
    target_index: usize,
}

impl NeighborTable {
    /// Builds the table for `dims` with the given target cell.
    pub fn new(dims: GridDims, target: CellId) -> NeighborTable {
        let n = dims.cell_count();
        let mut ids = Vec::with_capacity(n);
        let mut nbr_idx = Vec::with_capacity(n);
        let mut nbr_id = Vec::with_capacity(n);
        for k in 0..n {
            let id = dims.id_at(k);
            ids.push(id);
            let mut idxs = [NO_NBR; 4];
            let mut cids = [id; 4];
            for (s, &dir) in Dir::ALL.iter().enumerate() {
                if let Some(nbr) = dims.neighbor(id, dir) {
                    idxs[s] = dims.index(nbr) as u32;
                    cids[s] = nbr;
                }
            }
            nbr_idx.push(idxs);
            nbr_id.push(cids);
        }
        NeighborTable {
            ids,
            nbr_idx,
            nbr_id,
            target_index: dims.index(target),
        }
    }

    /// The `CellId` at arena index `k`.
    pub fn id_at(&self, k: usize) -> CellId {
        self.ids[k]
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` for an empty grid (never happens for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl std::fmt::Debug for NeighborTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborTable")
            .field("cells", &self.ids.len())
            .field("target_index", &self.target_index)
            .finish()
    }
}

/// One cell's protocol registers in flat form — everything from
/// [`CellState`](crate::CellState) except the member map, with `NEPrev`
/// packed into a 4-bit mask over [`Dir::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellCore {
    /// Estimated hop distance to the target (`dist`).
    pub dist: Dist,
    /// Routing successor (`next`).
    pub next: Option<CellId>,
    /// Current token holder (`token`).
    pub token: Option<CellId>,
    /// Granted neighbor this round (`signal`).
    pub signal: Option<CellId>,
    /// `NEPrev` as a bitmask: bit `s` set ⇔ the neighbor in `Dir::ALL[s]`
    /// is a nonempty predecessor.
    pub ne_mask: u8,
    /// The §IV crash flag.
    pub failed: bool,
}

impl Default for CellCore {
    /// Matches [`CellState::initial`](crate::CellState::initial).
    fn default() -> CellCore {
        CellCore {
            dist: Dist::Infinity,
            next: None,
            token: None,
            signal: None,
            ne_mask: 0,
            failed: false,
        }
    }
}

/// The double-buffered round engine. See the [module docs](self) for the
/// layout and aliasing argument.
///
/// Drive it directly for maximum throughput (benchmarks do), or through
/// [`System`](crate::System), which keeps a [`SystemState`] mirror in sync
/// for monitors, safety checks and serialization.
///
/// ```
/// use cellflow_core::engine::Engine;
/// use cellflow_core::{Params, SystemConfig};
/// use cellflow_grid::{CellId, GridDims};
///
/// let config = SystemConfig::new(
///     GridDims::square(8),
///     CellId::new(1, 7),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(1, 0));
/// let mut engine = Engine::new(config);
/// let mut consumed = 0u64;
/// for _ in 0..200 {
///     consumed += engine.step().consumed.len() as u64;
/// }
/// assert!(consumed > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    config: SystemConfig,
    topo: Arc<NeighborTable>,
    /// Current cell registers ("front" buffer).
    front: Vec<CellCore>,
    /// Scratch buffer `Route` writes into before swapping with `front`.
    back: Vec<CellCore>,
    /// Per-cell entity arenas, sorted by `EntityId` (BTreeMap order).
    members: Vec<Vec<(EntityId, Point)>>,
    next_entity_id: u64,
    round: u64,
    events: RoundEvents,
    /// Deferred cross-cell arrivals `(arena index, entity, position)`.
    incoming: Vec<(u32, EntityId, Point)>,
    /// Per-cell congestion pressure: a leaky integrator
    /// `p ← ⌊p/2⌋ + occupancy`, updated once per round. Bounded by
    /// `2 · max occupancy`, so a cell pinned at its capacity plateaus at
    /// twice that value while a transient spike washes out within a few
    /// rounds — the signal the cascade heat maps render. Derived telemetry,
    /// not protocol state: it survives [`Engine::load_state`] (which runs on
    /// every fault injection) and is zeroed only at construction.
    pressure: Vec<u64>,
    /// Exact `ne_prev` sets that cannot be encoded as a neighbor mask
    /// (injected via [`Engine::load_state`] from hand-built states; dropped
    /// as soon as `Signal` rewrites the cell). Empty in any reachable state.
    ne_override: Vec<(u32, BTreeSet<CellId>)>,
    /// Per-cell incoming-cut masks for the *next* round (bit `s` set ⇔ the
    /// neighbor in `Dir::ALL[s]` is unreadable — its announcements are
    /// suppressed, so the cell reads `dist = ∞`, "no request", `signal = ⊥`
    /// from that side, exactly footnote 1's silent-neighbor semantics).
    /// Empty (the default) means no link faults; set per round via
    /// [`Engine::set_link_cuts`]. Transient input, not protocol state: it
    /// survives [`Engine::load_state`] and is never exported.
    link_cuts: Vec<u8>,
    /// Number of buffer-growth (re)allocations since the last reset.
    alloc_events: u64,
    /// Per-phase span timers, attached when telemetry is enabled. `None`
    /// (the default) keeps [`Engine::step`] on the untimed fast path — a
    /// single branch per round, no clock reads.
    timers: Option<PhaseTimers>,
}

/// Pushes tracking capacity growth: bumps `allocs` when the push must
/// reallocate.
fn push_tracked<T>(v: &mut Vec<T>, item: T, allocs: &mut u64) {
    if v.len() == v.capacity() {
        *allocs += 1;
    }
    v.push(item);
}

/// Sorted insert into an entity arena (replaces the position on an existing
/// identifier, mirroring `BTreeMap::insert`).
fn insert_member(v: &mut Vec<(EntityId, Point)>, eid: EntityId, pos: Point, allocs: &mut u64) {
    match v.binary_search_by_key(&eid, |e| e.0) {
        Ok(i) => v[i].1 = pos,
        Err(i) => {
            if v.len() == v.capacity() {
                *allocs += 1;
            }
            v.insert(i, (eid, pos));
        }
    }
}

impl Engine {
    /// Creates an engine in the initial state of `config` at round 0.
    pub fn new(config: SystemConfig) -> Engine {
        let topo = config.topology();
        let n = config.dims().cell_count();
        let mut engine = Engine {
            config,
            topo,
            front: vec![CellCore::default(); n],
            back: vec![CellCore::default(); n],
            members: vec![Vec::new(); n],
            next_entity_id: 0,
            round: 0,
            events: RoundEvents::default(),
            incoming: Vec::new(),
            pressure: vec![0; n],
            ne_override: Vec::new(),
            link_cuts: Vec::new(),
            alloc_events: 0,
            timers: None,
        };
        engine.front[engine.topo.target_index].dist = Dist::Finite(0);
        engine
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The round number the *next* [`Engine::step`] will execute.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Overrides the round counter (it parameterizes
    /// [`TokenPolicy::Randomized`](crate::TokenPolicy::Randomized) choices).
    pub fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// The next fresh [`EntityId`] sources will mint.
    pub fn next_entity_id(&self) -> u64 {
        self.next_entity_id
    }

    /// Total entities currently in the system.
    pub fn entity_count(&self) -> usize {
        self.members.iter().map(|m| m.len()).sum()
    }

    /// Current occupancy (entity count) of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn occupancy(&self, cell: CellId) -> usize {
        self.members[self.config.dims().index(cell)].len()
    }

    /// Current congestion pressure of `cell`: the leaky occupancy integrator
    /// `p ← ⌊p/2⌋ + occupancy`, as of the most recent [`Engine::step`].
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn pressure(&self, cell: CellId) -> u64 {
        self.pressure[self.config.dims().index(cell)]
    }

    /// Events of the most recent round.
    pub fn events(&self) -> &RoundEvents {
        &self.events
    }

    /// Buffer-growth allocations since construction or the last
    /// [`Engine::reset_alloc_events`]. After a warm-up at steady state this
    /// stays constant: a round that grows no buffer allocates nothing.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Zeroes the growth counter (call after warm-up, before measuring).
    pub fn reset_alloc_events(&mut self) {
        self.alloc_events = 0;
    }

    /// Attaches per-phase span timers (the `cellflow_engine_*_ns`
    /// histograms). Rounds then record Route/Signal/Move and whole-round
    /// nanoseconds; detach by attaching timers from a disabled registry, or
    /// never attach to keep the untimed fast path.
    pub fn attach_phase_timers(&mut self, timers: PhaseTimers) {
        self.timers = if timers.round.is_enabled() {
            Some(timers)
        } else {
            None
        };
    }

    /// Sets the incoming-cut masks the next [`Engine::step`] honors: one
    /// mask per cell, bit `s` suppressing reads from the neighbor in
    /// `Dir::ALL[s]` (see [`PartitionSchedule::mask_row`]). The first call
    /// with any nonzero mask allocates the buffer once; steady-state
    /// campaigns then update it in place, preserving the zero-allocation
    /// claim.
    ///
    /// [`PartitionSchedule::mask_row`]: crate::PartitionSchedule::mask_row
    ///
    /// # Panics
    ///
    /// Panics if `masks` has the wrong number of cells.
    pub fn set_link_cuts(&mut self, masks: &[u8]) {
        assert_eq!(
            masks.len(),
            self.front.len(),
            "mask row must match the grid"
        );
        if self.link_cuts.is_empty() {
            if masks.iter().all(|&m| m == 0) {
                return;
            }
            self.link_cuts = masks.to_vec();
        } else {
            self.link_cuts.copy_from_slice(masks);
        }
    }

    /// Restores the no-link-faults default (all edges readable).
    pub fn clear_link_cuts(&mut self) {
        self.link_cuts.clear();
    }

    /// Imports `state` into the arenas (replacing everything). `ne_prev`
    /// sets that are not representable as a neighbor mask are retained
    /// verbatim so [`Engine::store_state`] loses nothing.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong number of cells.
    pub fn load_state(&mut self, state: &SystemState) {
        assert_eq!(
            state.cells.len(),
            self.front.len(),
            "state size must match the grid"
        );
        self.ne_override.clear();
        for (k, cs) in state.cells.iter().enumerate() {
            let mut mask = 0u8;
            let mut representable = cs.ne_prev.len() <= 4;
            if representable {
                'encode: for &m in &cs.ne_prev {
                    for s in 0..4 {
                        if self.topo.nbr_idx[k][s] != NO_NBR && self.topo.nbr_id[k][s] == m {
                            mask |= 1 << s;
                            continue 'encode;
                        }
                    }
                    representable = false;
                    break;
                }
            }
            if !representable {
                self.ne_override.push((k as u32, cs.ne_prev.clone()));
                mask = 0;
            }
            self.front[k] = CellCore {
                dist: cs.dist,
                next: cs.next,
                token: cs.token,
                signal: cs.signal,
                ne_mask: mask,
                failed: cs.failed,
            };
            let mem = &mut self.members[k];
            mem.clear();
            mem.extend(cs.members.iter().map(|(&e, &p)| (e, p)));
        }
        self.next_entity_id = state.next_entity_id;
    }

    /// Exports the arenas into `state` in place, reusing its allocations:
    /// per-cell `BTreeSet`/`BTreeMap` structures are rebuilt only when their
    /// contents actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong number of cells.
    pub fn store_state(&self, state: &mut SystemState) {
        assert_eq!(
            state.cells.len(),
            self.front.len(),
            "state size must match the grid"
        );
        for (k, cs) in state.cells.iter_mut().enumerate() {
            let c = self.front[k];
            cs.dist = c.dist;
            cs.next = c.next;
            cs.token = c.token;
            cs.signal = c.signal;
            cs.failed = c.failed;
            let overridden = self
                .ne_override
                .iter()
                .find(|(i, _)| *i == k as u32)
                .map(|(_, set)| set);
            if let Some(set) = overridden {
                if cs.ne_prev != *set {
                    cs.ne_prev = set.clone();
                }
            } else {
                let (cands, cn) = self.mask_candidates(k, c.ne_mask);
                let unchanged = cs.ne_prev.len() == cn
                    && cs.ne_prev.iter().zip(cands[..cn].iter()).all(|(a, b)| a == b);
                if !unchanged {
                    cs.ne_prev.clear();
                    cs.ne_prev.extend(cands[..cn].iter().copied());
                }
            }
            let mem = &self.members[k];
            let same_keys = cs.members.len() == mem.len()
                && cs.members.keys().zip(mem.iter()).all(|(a, (b, _))| a == b);
            if same_keys {
                for (slot, (_, p)) in cs.members.values_mut().zip(mem.iter()) {
                    *slot = *p;
                }
            } else {
                cs.members.clear();
                cs.members.extend(mem.iter().copied());
            }
        }
        state.next_entity_id = self.next_entity_id;
    }

    /// Allocates and returns a fresh [`SystemState`] mirror (convenience for
    /// tests; hot paths should reuse one via [`Engine::store_state`]).
    pub fn export_state(&self) -> SystemState {
        let mut state = self.config.initial_state();
        self.store_state(&mut state);
        state
    }

    /// Executes one atomic `update` transition — `Route; Signal; Move` — and
    /// returns the round's events. Equivalent, state for state and event for
    /// event, to [`update`](crate::update) on the mirrored representation.
    pub fn step(&mut self) -> &RoundEvents {
        self.events.consumed.clear();
        self.events.transfers.clear();
        self.events.inserted.clear();
        self.events.grants.clear();
        self.events.blocked.clear();
        self.events.moved.clear();

        match self.timers.clone() {
            None => {
                self.route();
                std::mem::swap(&mut self.front, &mut self.back);
                self.signal();
                self.do_move();
                self.insert_sources();
            }
            Some(timers) => {
                // Spans hold only Arc handles: starting/stopping them reads
                // the clock but never allocates, so the steady-state
                // zero-allocation claim holds with timing on too.
                let whole = timers.round.start();
                let span = timers.route.start();
                self.route();
                std::mem::swap(&mut self.front, &mut self.back);
                drop(span);
                let span = timers.signal.start();
                self.signal();
                drop(span);
                let span = timers.mv.start();
                self.do_move();
                self.insert_sources();
                drop(span);
                drop(whole);
            }
        }

        for (p, m) in self.pressure.iter_mut().zip(self.members.iter()) {
            *p = *p / 2 + m.len() as u64;
        }

        self.round += 1;
        &self.events
    }

    /// The sorted (ascending `CellId`) neighbor candidates selected by
    /// `mask` on cell `k`.
    fn mask_candidates(&self, k: usize, mask: u8) -> ([CellId; 4], usize) {
        let mut cands = [self.topo.ids[k]; 4];
        let mut cn = 0;
        for &s in &SORTED_SLOTS {
            if mask & (1 << s) != 0 {
                cands[cn] = self.topo.nbr_id[k][s];
                cn += 1;
            }
        }
        (cands, cn)
    }

    /// `Route` (Figure 4): writes the routed registers into `back`; the
    /// caller swaps the buffers. Mirrors
    /// [`route_phase`](crate::route_phase): the hand-rolled loop below
    /// computes [`route_update`](cellflow_routing::route_update)'s
    /// `argmin (dist, id)` by visiting the slots
    /// in ascending-`CellId` order ([`SORTED_SLOTS`]) with strict-`<`
    /// keep-first replacement, so the id comparison never has to run. The
    /// differential suite pins the two implementations together.
    fn route(&mut self) {
        let cap = self.config.dist_cap();
        let topo = &*self.topo;
        let front = &self.front;
        let back = &mut self.back;
        for k in 0..front.len() {
            let mut c = front[k];
            if !c.failed && k != topo.target_index {
                let nbr_idx = &topo.nbr_idx[k];
                let cut = if self.link_cuts.is_empty() {
                    0
                } else {
                    self.link_cuts[k]
                };
                let mut best = Dist::Infinity;
                // 4 = "no finite-distance neighbor": both the zero-neighbor
                // case and the all-∞ case produce (∞, ⊥), exactly like the
                // kernel.
                let mut best_slot = 4usize;
                for &s in &SORTED_SLOTS {
                    let ni = nbr_idx[s];
                    // A cut slot reads as a silent neighbor: dist = ∞.
                    if ni == NO_NBR || cut & (1 << s) != 0 {
                        continue;
                    }
                    let d = front[ni as usize].dist;
                    if d < best {
                        best = d;
                        best_slot = s;
                    }
                }
                if best_slot < 4 {
                    let dist = best.succ(cap);
                    c.dist = dist;
                    c.next = if dist.is_finite() {
                        Some(topo.nbr_id[k][best_slot])
                    } else {
                        None
                    };
                } else {
                    c.dist = Dist::Infinity;
                    c.next = None;
                }
            }
            back[k] = c;
        }
    }

    /// `Signal` (Figure 5), in place on `front`. Safe without a second
    /// buffer: it writes only a cell's own `ne_mask`/`token`/`signal` and
    /// reads neighbors' `next` (never written here) and member arenas
    /// (never written here). Grant/block events are emitted inline in the
    /// same row-major order the reference derives them.
    fn signal(&mut self) {
        let params = self.config.params();
        let policy = self.config.token_policy();
        let round = self.round;
        for k in 0..self.front.len() {
            if self.front[k].failed {
                continue;
            }
            let id = self.topo.ids[k];
            let nbr_idx = &self.topo.nbr_idx[k];
            let cut = if self.link_cuts.is_empty() {
                0
            } else {
                self.link_cuts[k]
            };
            let mut mask = 0u8;
            for (s, &ni) in nbr_idx.iter().enumerate() {
                // A cut slot's request announcement never arrives.
                if ni == NO_NBR || cut & (1 << s) != 0 {
                    continue;
                }
                let ni = ni as usize;
                if self.front[ni].next == Some(id) && !self.members[ni].is_empty() {
                    mask |= 1 << s;
                }
            }

            let mut token = self.front[k].token;
            // A transient fault may have left a non-neighbor in the token
            // register; treat it as ⊥ so `Signal` self-stabilizes instead of
            // trusting the corrupted value.
            if token.is_some_and(|t| !id.is_neighbor(t)) {
                token = None;
            }

            // Idle fast path: no requester and no token means `choose_from`
            // on an empty candidate set — ⊥ token, ⊥ signal, no event. Most
            // of a steady-state grid takes this exit.
            if mask == 0 && token.is_none() {
                let c = &mut self.front[k];
                c.ne_mask = 0;
                c.token = None;
                c.signal = None;
                if !self.ne_override.is_empty() {
                    self.ne_override.retain(|(i, _)| *i != k as u32);
                }
                continue;
            }

            let (cands, cn) = self.mask_candidates(k, mask);
            let cands = &cands[..cn];

            if token.is_none() {
                token = policy.choose_from(cands, id, round);
            }

            let (signal, new_token) = match token {
                None => (None, None),
                Some(tok) => {
                    let dir = id
                        .dir_to(tok)
                        .expect("token is always one of the cell's neighbors");
                    if gap_free_toward(params, id, dir, self.members[k].iter().map(|e| &e.1)) {
                        let rotated = if cn > 1 {
                            policy.rotate_from(cands, tok, id, round)
                        } else if cn == 1 {
                            Some(cands[0])
                        } else {
                            None
                        };
                        (Some(tok), rotated)
                    } else {
                        (None, Some(tok))
                    }
                }
            };

            match (signal, new_token) {
                (Some(grantee), _) => {
                    push_tracked(&mut self.events.grants, (id, grantee), &mut self.alloc_events);
                }
                (None, Some(holder)) => {
                    push_tracked(&mut self.events.blocked, (id, holder), &mut self.alloc_events);
                }
                (None, None) => {}
            }

            let c = &mut self.front[k];
            c.ne_mask = mask;
            c.token = new_token;
            c.signal = signal;
            if !self.ne_override.is_empty() {
                self.ne_override.retain(|(i, _)| *i != k as u32);
            }
        }
    }

    /// `Move` (Figure 6), in place. All permission reads (`signal`,
    /// `failed`) come from registers `Move` never writes; cross-cell
    /// arrivals are deferred to the `incoming` scratch and applied after the
    /// sweep, exactly like [`move_phase`](crate::move_phase).
    fn do_move(&mut self) {
        let dims = self.config.dims();
        let params = self.config.params();
        let v = params.v();
        let h = params.half_l();
        let target = self.config.target();
        for k in 0..self.front.len() {
            let c = self.front[k];
            if c.failed || self.members[k].is_empty() {
                continue;
            }
            let Some(nx) = c.next else { continue };
            let id = self.topo.ids[k];
            let dir = id.dir_to(nx).expect("next is always a neighbor");
            if !self.link_cuts.is_empty() {
                let s = Dir::ALL
                    .iter()
                    .position(|&d| d == dir)
                    .expect("Dir::ALL covers every direction");
                // The grant announcement from a cut neighbor never arrives:
                // the cell reads signal = ⊥ and stays put.
                if self.link_cuts[k] & (1 << s) != 0 {
                    continue;
                }
            }
            let nxi = dims.index(nx);
            let nc = self.front[nxi];
            if nc.failed || nc.signal != Some(id) {
                continue;
            }
            push_tracked(&mut self.events.moved, id, &mut self.alloc_events);
            let boundary = id.boundary(dir);
            let mut w = 0usize;
            for r in 0..self.members[k].len() {
                let (eid, pos) = self.members[k][r];
                let new_pos = pos.translate(dir, v);
                let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
                let crossed = if dir.sign() > 0 {
                    far_edge > boundary
                } else {
                    far_edge < boundary
                };
                if crossed {
                    if nx == target {
                        push_tracked(&mut self.events.consumed, eid, &mut self.alloc_events);
                    } else {
                        // Enter the receiving cell flush at its near edge.
                        let entry_edge = nx.boundary(dir.opposite());
                        let snapped =
                            new_pos.with_along(dir.axis(), entry_edge + h * dir.sign());
                        push_tracked(
                            &mut self.incoming,
                            (nxi as u32, eid, snapped),
                            &mut self.alloc_events,
                        );
                        push_tracked(
                            &mut self.events.transfers,
                            Transfer {
                                entity: eid,
                                from: id,
                                to: nx,
                            },
                            &mut self.alloc_events,
                        );
                    }
                } else {
                    self.members[k][w] = (eid, new_pos);
                    w += 1;
                }
            }
            self.members[k].truncate(w);
        }
        let mut incoming = std::mem::take(&mut self.incoming);
        for &(to, eid, pos) in &incoming {
            insert_member(&mut self.members[to as usize], eid, pos, &mut self.alloc_events);
        }
        incoming.clear();
        self.incoming = incoming;
    }

    /// Source insertion (at most one entity per source per round), reading
    /// post-move members exactly like the tail of
    /// [`move_phase`](crate::move_phase).
    fn insert_sources(&mut self) {
        let dims = self.config.dims();
        let params = self.config.params();
        let policy = self.config.source_policy();
        let budget = self.config.entity_budget();
        let d = params.d();
        for &s in self.config.sources() {
            let si = dims.index(s);
            if self.front[si].failed {
                continue; // a failed cell does nothing
            }
            if let Some(budget) = budget {
                if self.next_entity_id >= budget {
                    continue;
                }
            }
            let Some(pos) = policy.candidate(params, s, self.front[si].next) else {
                continue;
            };
            if !self.members[si].iter().all(|&(_, q)| sep_ok(pos, q, d)) {
                continue;
            }
            let eid = EntityId(self.next_entity_id);
            self.next_entity_id += 1;
            insert_member(&mut self.members[si], eid, pos, &mut self.alloc_events);
            push_tracked(&mut self.events.inserted, (s, eid), &mut self.alloc_events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{update, Params, System};

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(8),
            CellId::new(1, 7),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
        .with_source(CellId::new(6, 0))
    }

    #[test]
    fn engine_matches_pure_phases_over_a_long_run() {
        let cfg = config();
        let mut engine = Engine::new(cfg.clone());
        let mut state = cfg.initial_state();
        let mut mirror = cfg.initial_state();
        for round in 0..300 {
            let (next, events) = update(&cfg, &state, round);
            let ev = engine.step().clone();
            engine.store_state(&mut mirror);
            assert_eq!(mirror, next, "state diverged at round {round}");
            assert_eq!(ev.consumed, events.consumed, "round {round}");
            assert_eq!(ev.transfers, events.transfers, "round {round}");
            assert_eq!(ev.inserted, events.inserted, "round {round}");
            assert_eq!(ev.grants, events.grants, "round {round}");
            assert_eq!(ev.blocked, events.blocked, "round {round}");
            assert_eq!(ev.moved, events.moved, "round {round}");
            state = next;
        }
    }

    #[test]
    fn steady_state_rounds_allocate_nothing() {
        let cfg = config();
        let mut engine = Engine::new(cfg);
        for _ in 0..400 {
            engine.step();
        }
        engine.reset_alloc_events();
        for _ in 0..400 {
            engine.step();
        }
        assert_eq!(
            engine.alloc_events(),
            0,
            "steady-state rounds must not grow any buffer"
        );
    }

    #[test]
    fn phase_timers_record_every_round_without_allocating() {
        use cellflow_telemetry::{PhaseTimers, Registry};
        let cfg = config();
        let mut engine = Engine::new(cfg);
        let reg = Registry::new();
        engine.attach_phase_timers(PhaseTimers::register(&reg));
        for _ in 0..100 {
            engine.step();
        }
        engine.reset_alloc_events();
        for _ in 0..100 {
            engine.step();
        }
        assert_eq!(engine.alloc_events(), 0, "timing must not allocate");
        let timers = PhaseTimers::register(&reg);
        assert_eq!(timers.round.count(), 200);
        assert_eq!(timers.route.count(), 200);
        assert_eq!(timers.signal.count(), 200);
        assert_eq!(timers.mv.count(), 200);
        assert!(timers.round.sum() >= timers.route.sum());
    }

    #[test]
    fn disabled_timers_stay_detached() {
        use cellflow_telemetry::{PhaseTimers, Registry};
        let cfg = config();
        let mut engine = Engine::new(cfg);
        engine.attach_phase_timers(PhaseTimers::register(&Registry::disabled()));
        assert!(engine.timers.is_none(), "disabled registry must not attach");
        engine.step();
    }

    #[test]
    fn load_store_roundtrips_arbitrary_states() {
        let cfg = config();
        let mut sys = System::new(cfg.clone());
        sys.run(50);
        sys.fail(CellId::new(3, 3));
        let mut state = sys.state().clone();
        // Junk ne_prev that no mask can express (contains a non-neighbor).
        state
            .cells[0]
            .ne_prev
            .extend([CellId::new(7, 7), CellId::new(1, 0)]);
        let mut engine = Engine::new(cfg);
        engine.load_state(&state);
        assert_eq!(engine.export_state(), state);
    }

    #[test]
    fn override_is_dropped_once_signal_rewrites_the_cell() {
        let cfg = config();
        let mut state = cfg.initial_state();
        state.cells[0].ne_prev.insert(CellId::new(7, 7)); // non-neighbor junk
        let mut engine = Engine::new(cfg.clone());
        engine.load_state(&state);
        engine.step();
        let exported = engine.export_state();
        // Signal recomputed ne_prev from actual neighbors: junk gone.
        assert!(!exported.cells[0].ne_prev.contains(&CellId::new(7, 7)));
        // And it matches the reference transition.
        let (next, _) = update(&cfg, &state, 0);
        assert_eq!(exported, next);
    }

    #[test]
    fn neighbor_table_slots_follow_dir_all() {
        let dims = GridDims::square(3);
        let t = NeighborTable::new(dims, CellId::new(2, 1));
        let k = dims.index(CellId::new(1, 1));
        assert_eq!(t.id_at(k), CellId::new(1, 1));
        for (s, &dir) in Dir::ALL.iter().enumerate() {
            let expected = CellId::new(1, 1).step(dir).unwrap();
            assert_eq!(t.nbr_id[k][s], expected);
            assert_eq!(t.nbr_idx[k][s] as usize, dims.index(expected));
        }
        // Corner ⟨0,0⟩: west and south are off-grid.
        let c = dims.index(CellId::new(0, 0));
        assert_eq!(t.nbr_idx[c][1], NO_NBR);
        assert_eq!(t.nbr_idx[c][3], NO_NBR);
        assert_eq!(t.len(), 9);
        assert!(!t.is_empty());
    }

    #[test]
    fn sorted_slots_visit_neighbors_in_ascending_id_order() {
        let dims = GridDims::square(3);
        let t = NeighborTable::new(dims, CellId::new(2, 1));
        let k = dims.index(CellId::new(1, 1));
        let visited: Vec<CellId> = SORTED_SLOTS.iter().map(|&s| t.nbr_id[k][s]).collect();
        let mut sorted = visited.clone();
        sorted.sort();
        assert_eq!(visited, sorted);
    }

    #[test]
    fn engine_handles_corrupted_registers_like_the_reference() {
        use crate::fault::Corruption;
        let cfg = config();
        let mut sys = System::new(cfg.clone()); // engine-backed
        let mut state = cfg.initial_state();
        let schedule = [
            (5u64, CellId::new(2, 2), Corruption::Scramble { salt: 11 }),
            (9, CellId::new(4, 4), Corruption::NePrev { mask: 0b1010 }),
            (13, CellId::new(1, 1), Corruption::Dist(Dist::Finite(0))),
            (17, CellId::new(5, 5), Corruption::Token(Some(Dir::West))),
        ];
        for step in 0..40u64 {
            for &(when, cell, corr) in &schedule {
                if when == step {
                    sys.corrupt(cell, corr);
                    let dims = cfg.dims();
                    corr.apply(&cfg, cell, state.cell_mut(dims, cell));
                }
            }
            let (next, _) = update(&cfg, &state, step);
            sys.step();
            state = next;
            assert_eq!(sys.state(), &state, "diverged at step {step}");
        }
    }

    #[test]
    fn transfers_never_cross_a_cut_edge_and_safety_holds() {
        use crate::fault::PartitionPlan;
        let cfg = config(); // sources at (1,0) and (6,0); target (1,7)
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(120);
        let mut sys = System::new(cfg.clone());
        for round in 0..120u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            let events = sys.step();
            for t in &events.transfers {
                assert_eq!(
                    t.from.i() < 4,
                    t.to.i() < 4,
                    "transfer {:?} crossed the cut at round {round}",
                    t
                );
            }
            crate::safety::check_safe(sys.config(), sys.state())
                .unwrap_or_else(|v| panic!("unsafe at round {round}: {v:?}"));
        }
        // The side cut off from the target sees only ∞/⊥ toward it.
        assert!(sys.consumed_total() > 0, "open side still makes progress");
    }

    #[test]
    fn healing_restores_routing_within_the_bound() {
        use crate::fault::PartitionPlan;
        use crate::monitor::stabilization_bound;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(80);
        let mut sys = System::new(cfg.clone());
        for round in 0..80u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
        }
        assert!(
            !crate::analysis::routing_stabilized(sys.config(), sys.state()),
            "a split grid must not look stabilized"
        );
        sys.clear_link_cuts();
        sys.run(stabilization_bound(&cfg));
        assert!(
            crate::analysis::routing_stabilized(sys.config(), sys.state()),
            "routing must recover within 2N²+2 rounds of healing"
        );
    }

    #[test]
    fn asymmetric_cut_masks_only_one_direction() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let a = CellId::new(1, 3);
        let b = CellId::new(1, 4);
        // Cut only a's view of b: b's announcements (dist, grants) are lost
        // on the way to a, but a's announcements still reach b.
        let plan = PartitionPlan::for_grid(cfg.dims()).cut(b, a, 0, None);
        let schedule = plan.expand(200);
        let mut sys = System::new(cfg.clone());
        for round in 0..200u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            let events = sys.step();
            for t in &events.transfers {
                assert!(
                    !(t.from == a && t.to == b),
                    "a → b needs b's grant, which a can no longer hear (round {round})"
                );
            }
        }
    }

    #[test]
    fn masked_rounds_allocate_nothing_after_warmup() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_row(3, 0, Some(150));
        let schedule = plan.expand(400);
        let mut engine = Engine::new(cfg);
        engine.set_link_cuts(schedule.mask_row(0)); // allocates the mask row once
        for round in 0..200u64 {
            engine.set_link_cuts(schedule.mask_row(round));
            engine.step();
        }
        engine.reset_alloc_events();
        for round in 200..400u64 {
            engine.set_link_cuts(schedule.mask_row(round));
            engine.step();
        }
        assert_eq!(
            engine.alloc_events(),
            0,
            "per-round mask updates must reuse the existing buffer"
        );
    }

    #[test]
    fn cuts_survive_load_state_and_clear_restores_the_fast_path() {
        use crate::fault::PartitionPlan;
        let cfg = config();
        let plan = PartitionPlan::for_grid(cfg.dims()).split_col(4, 0, None);
        let schedule = plan.expand(40);
        let mut sys = System::new(cfg.clone());
        for round in 0..40u64 {
            sys.set_link_cuts(schedule.mask_row(round));
            sys.step();
        }
        // fail() forces a load_state on the next step; the cuts must persist.
        sys.fail(CellId::new(6, 6));
        let events = sys.step();
        for t in &events.transfers {
            assert_eq!(t.from.i() < 4, t.to.i() < 4, "cut lost across load_state");
        }
        // Clearing the cuts makes the system behave exactly like the
        // reference semantics again.
        sys.clear_link_cuts();
        let mut state = sys.state().clone();
        let round = sys.round();
        for step in 0..30u64 {
            let (next, _) = update(sys.config(), &state, round + step);
            sys.step();
            state = next;
            assert_eq!(sys.state(), &state, "diverged after clear at step {step}");
        }
    }
}
