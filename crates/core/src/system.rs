//! The composed `System` automaton: configuration, state, and the simulation
//! facade.

use core::fmt;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use cellflow_geom::Point;
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;

use crate::engine::{Engine, NeighborTable};
use crate::fault::Corruption;
use crate::{CellState, Entity, EntityId, Params, RoundEvents, SourcePolicy, TokenPolicy};

/// Static configuration of a `System`: everything that does *not* change
/// during execution.
///
/// Built with a validating constructor plus chainable `with_*` methods:
///
/// ```
/// use cellflow_core::{Params, SourcePolicy, SystemConfig, TokenPolicy};
/// use cellflow_grid::{CellId, GridDims};
///
/// let config = SystemConfig::new(
///     GridDims::square(8),
///     CellId::new(1, 7),
///     Params::from_milli(250, 50, 200)?,
/// )?
/// .with_source(CellId::new(1, 0))
/// .with_token_policy(TokenPolicy::RoundRobin)
/// .with_source_policy(SourcePolicy::FarEdge);
/// assert_eq!(config.sources().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemConfig {
    dims: GridDims,
    target: CellId,
    sources: BTreeSet<CellId>,
    params: Params,
    dist_cap: u32,
    token_policy: TokenPolicy,
    source_policy: SourcePolicy,
    entity_budget: Option<u64>,
    /// Finite per-cell capacity, if any (see [`SystemConfig::capacity`]).
    capacity: Option<u32>,
    /// Lazily built, shared grid topology (see [`SystemConfig::topology`]).
    /// Derived entirely from `dims` and `target`, which are fixed at
    /// construction — so a populated cache can never go stale.
    topology: OnceLock<Arc<NeighborTable>>,
}

/// Manual: equality must ignore the derived topology cache (a populated and
/// an unpopulated cache describe the same configuration).
impl PartialEq for SystemConfig {
    fn eq(&self, other: &SystemConfig) -> bool {
        self.dims == other.dims
            && self.target == other.target
            && self.sources == other.sources
            && self.params == other.params
            && self.dist_cap == other.dist_cap
            && self.token_policy == other.token_policy
            && self.source_policy == other.source_policy
            && self.entity_budget == other.entity_budget
            && self.capacity == other.capacity
    }
}

impl Eq for SystemConfig {}

impl SystemConfig {
    /// Creates a configuration with no sources, the default policies, and the
    /// `∞`-saturation cap `cell_count + 1`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::TargetOutOfBounds`] if `target` is not a grid cell.
    pub fn new(
        dims: GridDims,
        target: CellId,
        params: Params,
    ) -> Result<SystemConfig, ConfigError> {
        if !dims.contains(target) {
            return Err(ConfigError::TargetOutOfBounds { target, dims });
        }
        Ok(SystemConfig {
            dims,
            target,
            sources: BTreeSet::new(),
            params,
            dist_cap: dims.cell_count() as u32 + 1,
            token_policy: TokenPolicy::default(),
            source_policy: SourcePolicy::default(),
            entity_budget: None,
            capacity: None,
            topology: OnceLock::new(),
        })
    }

    /// Adds a source cell (the paper's `SID`).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or equals the target (the target
    /// consumes entities; it cannot also produce them).
    pub fn with_source(mut self, source: CellId) -> SystemConfig {
        assert!(
            self.dims.contains(source),
            "source {source} out of {} bounds",
            self.dims
        );
        assert!(source != self.target, "source must differ from target");
        self.sources.insert(source);
        self
    }

    /// Adds several source cells. Same panics as [`SystemConfig::with_source`].
    pub fn with_sources<I: IntoIterator<Item = CellId>>(mut self, sources: I) -> SystemConfig {
        for s in sources {
            self = self.with_source(s);
        }
        self
    }

    /// Sets the token-selection policy (default [`TokenPolicy::RoundRobin`]).
    pub fn with_token_policy(mut self, policy: TokenPolicy) -> SystemConfig {
        self.token_policy = policy;
        self
    }

    /// Sets the source insertion policy (default [`SourcePolicy::FarEdge`]).
    pub fn with_source_policy(mut self, policy: SourcePolicy) -> SystemConfig {
        self.source_policy = policy;
        self
    }

    /// Caps the total number of entities sources may ever create. Used by the
    /// model checker to bound the state space; `None` (default) is unbounded.
    pub fn with_entity_budget(mut self, budget: u64) -> SystemConfig {
        self.entity_budget = Some(budget);
        self
    }

    /// Gives every cell a finite capacity: the occupancy (entity count) a
    /// cell is engineered to hold. The protocol itself never reads it — the
    /// paper's safety argument is capacity-free — but the surrounding
    /// machinery does: the occupancy≤capacity monitor
    /// ([`standard_monitors`](crate::standard_monitors) gains a
    /// [`CapacityMonitor`](crate::monitor::CapacityMonitor)), the model
    /// checker's capacity invariant, and the [`overload`](crate::overload)
    /// cascade machinery, whose default crash threshold this is.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a cell that can hold nothing cannot
    /// participate in any flow).
    pub fn with_capacity(mut self, capacity: u32) -> SystemConfig {
        assert!(capacity > 0, "capacity must be positive");
        self.capacity = Some(capacity);
        self
    }

    /// Overrides the distance saturation cap (see `cellflow-routing`).
    ///
    /// # Panics
    ///
    /// Panics if `cap` does not exceed the longest possible simple path
    /// (`cell_count − 1`), which would corrupt routing on connected grids.
    pub fn with_dist_cap(mut self, cap: u32) -> SystemConfig {
        assert!(
            cap as usize >= self.dims.cell_count(),
            "cap {cap} must be at least the cell count {}",
            self.dims.cell_count()
        );
        self.dist_cap = cap;
        self
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The target cell `tid`.
    pub fn target(&self) -> CellId {
        self.target
    }

    /// The source cells `SID`.
    pub fn sources(&self) -> &BTreeSet<CellId> {
        &self.sources
    }

    /// The physical parameters `(l, rs, v)`.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The `∞`-saturation cap for `dist`.
    pub fn dist_cap(&self) -> u32 {
        self.dist_cap
    }

    /// The token-selection policy.
    pub fn token_policy(&self) -> TokenPolicy {
        self.token_policy
    }

    /// The source insertion policy.
    pub fn source_policy(&self) -> SourcePolicy {
        self.source_policy
    }

    /// The entity creation budget, if any.
    pub fn entity_budget(&self) -> Option<u64> {
        self.entity_budget
    }

    /// The finite per-cell capacity, if one was set
    /// ([`SystemConfig::with_capacity`]); `None` (default) means unbounded
    /// cells, the paper's original model.
    pub fn capacity(&self) -> Option<u32> {
        self.capacity
    }

    /// The precomputed neighbor table for this grid and target, built on
    /// first use and shared by every [`Engine`] (and clone of this config)
    /// thereafter — no phase recomputes neighbor identifiers per round.
    pub fn topology(&self) -> Arc<NeighborTable> {
        Arc::clone(
            self.topology
                .get_or_init(|| Arc::new(NeighborTable::new(self.dims, self.target))),
        )
    }

    /// The initial [`SystemState`] for this configuration: all cells as in
    /// Figure 3, the target's `dist` pinned to 0, no entities.
    pub fn initial_state(&self) -> SystemState {
        let mut cells = vec![CellState::initial(); self.dims.cell_count()];
        cells[self.dims.index(self.target)] = CellState::initial_target();
        SystemState {
            cells,
            next_entity_id: 0,
        }
    }
}

/// Error building a [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The target identifier lies outside the grid.
    TargetOutOfBounds {
        /// The offending target.
        target: CellId,
        /// The grid it missed.
        dims: GridDims,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TargetOutOfBounds { target, dims } => {
                write!(f, "target {target} is outside the {dims} grid")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A complete valuation of all cells' variables — a state `x` of `System`.
///
/// `Clone + Eq + Hash` so the model checker can store and deduplicate states.
/// `next_entity_id` is the source's fresh-identifier counter (the paper draws
/// identifiers from an infinite pool `P`; we mint them in order).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemState {
    /// Per-cell states, indexed row-major by [`GridDims::index`].
    pub cells: Vec<CellState>,
    /// The next fresh [`EntityId`] to mint.
    pub next_entity_id: u64,
}

impl SystemState {
    /// The state of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for `dims`.
    pub fn cell(&self, dims: GridDims, id: CellId) -> &CellState {
        &self.cells[dims.index(id)]
    }

    /// Mutable access to one cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for `dims`.
    pub fn cell_mut(&mut self, dims: GridDims, id: CellId) -> &mut CellState {
        &mut self.cells[dims.index(id)]
    }

    /// Total number of entities currently in the system.
    pub fn entity_count(&self) -> usize {
        self.cells.iter().map(|c| c.members.len()).sum()
    }

    /// Iterates `(cell, entity)` pairs over the whole grid.
    pub fn entities<'a>(&'a self, dims: GridDims) -> impl Iterator<Item = (CellId, Entity)> + 'a {
        self.cells.iter().enumerate().flat_map(move |(k, c)| {
            let id = dims.id_at(k);
            c.entities().map(move |e| (id, e))
        })
    }

    /// Applies the paper's `fail(⟨i,j⟩)` transition: `failed := true`,
    /// `dist := ∞`, `next := ⊥`. The cell also stops communicating, so its
    /// `signal` is cleared (neighbors read silence as `⊥`). Entities on the
    /// cell remain, frozen. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn fail(&mut self, dims: GridDims, id: CellId) {
        let c = self.cell_mut(dims, id);
        c.failed = true;
        c.dist = Dist::Infinity;
        c.next = None;
        c.signal = None;
    }

    /// Applies the recovery transition of the paper's Section IV failure
    /// model: `failed := false`, and if `id` is the target, `dist := 0`.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn recover(&mut self, dims: GridDims, id: CellId, target: CellId) {
        let c = self.cell_mut(dims, id);
        c.failed = false;
        if id == target {
            c.dist = Dist::Finite(0);
        }
    }
}

/// The `System` automaton with its execution bookkeeping: current state,
/// round number, and cumulative counters — the convenient facade over the
/// round transition used by simulations, examples and tests.
///
/// Rounds execute on the arena-backed [`Engine`]; a [`SystemState`] mirror is
/// kept in sync after every step so monitors, safety checks and serialization
/// keep their structured view of the state. Mutators (fault injection,
/// [`System::set_state`], entity seeding) edit the mirror and mark the engine
/// stale; the next step re-imports it. The engine's transition is proven
/// equivalent to the pure [`update`](crate::update) composition by
/// `tests/engine_differential.rs`.
#[derive(Clone, Debug)]
pub struct System {
    config: SystemConfig,
    state: SystemState,
    engine: Engine,
    /// `false` whenever `state` was mutated behind the engine's back.
    engine_synced: bool,
    round: u64,
    consumed_total: u64,
    inserted_total: u64,
}

impl System {
    /// Creates a system in the initial state of `config`.
    pub fn new(config: SystemConfig) -> System {
        let state = config.initial_state();
        let engine = Engine::new(config.clone());
        System {
            config,
            state,
            engine,
            engine_synced: true,
            round: 0,
            consumed_total: 0,
            inserted_total: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Replaces the current state (fault injection / replay).
    pub fn set_state(&mut self, state: SystemState) {
        assert_eq!(
            state.cells.len(),
            self.config.dims().cell_count(),
            "state size must match the grid"
        );
        self.state = state;
        self.engine_synced = false;
    }

    /// The state of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell(&self, id: CellId) -> &CellState {
        self.state.cell(self.config.dims(), id)
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total entities consumed by the target since round 0.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }

    /// Total entities inserted by sources since round 0.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Current occupancy (entity count) of cell `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn occupancy(&self, id: CellId) -> usize {
        self.state.cell(self.config.dims(), id).members.len()
    }

    /// Congestion pressure of cell `id` — the engine's leaky occupancy
    /// integrator (see [`Engine::pressure`]), as of the last executed round.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn pressure(&self, id: CellId) -> u64 {
        self.engine.pressure(id)
    }

    /// Attaches per-phase span timers to the underlying engine (see
    /// [`Engine::attach_phase_timers`]).
    pub fn attach_phase_timers(&mut self, timers: cellflow_telemetry::PhaseTimers) {
        self.engine.attach_phase_timers(timers);
    }

    /// Attaches the scheduler occupancy gauges to the underlying engine
    /// (see [`Engine::attach_scheduler_metrics`]).
    pub fn attach_scheduler_metrics(&mut self, metrics: cellflow_telemetry::SchedulerMetrics) {
        self.engine.attach_scheduler_metrics(metrics);
    }

    /// Turns on per-round phase attribution in the underlying engine (see
    /// [`Engine::enable_round_trace`]).
    pub fn enable_round_trace(&mut self) {
        self.engine.enable_round_trace();
    }

    /// Attaches a flight recorder to the underlying engine (see
    /// [`Engine::attach_recorder`]). The engine is synced with the mirror
    /// first so the opening keyframe is the state visible right now, at the
    /// current round number.
    pub fn attach_recorder(&mut self, recorder: Box<crate::snapshot::Recorder>) {
        if !self.engine_synced {
            self.engine.load_state(&self.state);
            self.engine_synced = true;
        }
        self.engine.set_round(self.round);
        self.engine.attach_recorder(recorder);
    }

    /// Detaches and returns the flight recorder, if any (see
    /// [`Engine::take_recorder`]).
    pub fn take_recorder(&mut self) -> Option<Box<crate::snapshot::Recorder>> {
        self.engine.take_recorder()
    }

    /// The most recent round's phase attribution (see
    /// [`Engine::round_trace`]).
    pub fn round_trace(&self) -> crate::RoundTrace {
        self.engine.round_trace()
    }

    /// How rounds execute (see [`Engine::exec_mode`]).
    pub fn exec_mode(&self) -> crate::ExecMode {
        self.engine.exec_mode()
    }

    /// Switches the engine between the dense reference sweep and sparse
    /// active-set scheduling (see [`Engine::set_exec_mode`]). Both modes are
    /// state- and event-identical; reports stay byte-identical per seed.
    pub fn set_exec_mode(&mut self, mode: crate::ExecMode) {
        self.engine.set_exec_mode(mode);
    }

    /// Sets the worker count for sharded sparse phases (see
    /// [`Engine::set_workers`]).
    pub fn set_workers(&mut self, workers: usize) {
        self.engine.set_workers(workers);
    }

    /// Overrides the sharding threshold (see [`Engine::set_shard_min`]).
    pub fn set_shard_min(&mut self, shard_min: usize) {
        self.engine.set_shard_min(shard_min);
    }

    /// Distinct cells the engine's phases ran on in the most recent round
    /// (see [`Engine::active_cells`]).
    pub fn active_cells(&self) -> usize {
        self.engine.active_cells()
    }

    /// Executes one `update` transition (one synchronous round) and returns
    /// what happened.
    pub fn step(&mut self) -> RoundEvents {
        if !self.engine_synced {
            self.engine.load_state(&self.state);
            self.engine_synced = true;
        }
        self.engine.set_round(self.round);
        let events = self.engine.step().clone();
        self.engine.store_state(&mut self.state);
        self.round += 1;
        self.consumed_total += events.consumed.len() as u64;
        self.inserted_total += events.inserted.len() as u64;
        events
    }

    /// Runs `rounds` update transitions.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Sets the per-cell incoming link-cut masks applied by the next
    /// [`System::step`] (see [`Engine::set_link_cuts`]). Cut slots read as
    /// silent neighbors: `dist = ∞`, no request seen, no grant seen.
    ///
    /// Masks are a transient *input* like the round number, not part of the
    /// protocol state — they persist across steps until replaced or cleared.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len()` differs from the number of cells.
    pub fn set_link_cuts(&mut self, masks: &[u8]) {
        // Deliberately does not clear `engine_synced`: cuts live beside the
        // protocol state and survive `load_state`.
        self.engine.set_link_cuts(masks);
    }

    /// Clears all link cuts (see [`Engine::clear_link_cuts`]).
    pub fn clear_link_cuts(&mut self) {
        self.engine.clear_link_cuts();
    }

    /// Crashes cell `id` (see [`SystemState::fail`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn fail(&mut self, id: CellId) {
        self.state.fail(self.config.dims(), id);
        self.engine_synced = false;
    }

    /// Recovers cell `id` (see [`SystemState::recover`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn recover(&mut self, id: CellId) {
        let target = self.config.target();
        self.state.recover(self.config.dims(), id, target);
        self.engine_synced = false;
    }

    /// Applies a transient state corruption to cell `id` (see
    /// [`Corruption::apply`]) — the adversary of the stabilization theorems.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn corrupt(&mut self, id: CellId, corruption: Corruption) {
        let cell = self.state.cell_mut(self.config.dims(), id);
        corruption.apply(&self.config, id, cell);
        self.engine_synced = false;
    }

    /// Places an entity with a fresh identifier at `pos` on cell `id`,
    /// bypassing the source machinery — for test setups and examples.
    ///
    /// # Errors
    ///
    /// Returns `Err` (without modifying anything) if the position violates
    /// Invariant 1's margins for the cell or the spacing requirement against
    /// the cell's current members.
    pub fn seed_entity(&mut self, id: CellId, pos: Point) -> Result<EntityId, SeedError> {
        let params = self.config.params();
        if !crate::source::within_cell_margins(params, id, pos) {
            return Err(SeedError::OutsideMargins);
        }
        let dims = self.config.dims();
        let cell = self.state.cell(dims, id);
        if !cell
            .members
            .values()
            .all(|&q| cellflow_geom::sep_ok(pos, q, params.d()))
        {
            return Err(SeedError::TooClose);
        }
        let eid = EntityId(self.state.next_entity_id);
        self.state.next_entity_id += 1;
        self.state.cell_mut(dims, id).members.insert(eid, pos);
        self.engine_synced = false;
        Ok(eid)
    }
}

/// Error from [`System::seed_entity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedError {
    /// The footprint would protrude outside the cell (violates Invariant 1).
    OutsideMargins,
    /// The position is within `d` of an existing entity on both axes
    /// (violates `Safe`).
    TooClose,
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SeedError::OutsideMargins => "position leaves the cell's interior margins",
            SeedError::TooClose => "position violates the spacing requirement",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SeedError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::Fixed;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(4),
            CellId::new(3, 3),
            Params::from_milli(250, 50, 100).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let bad = SystemConfig::new(
            GridDims::square(4),
            CellId::new(4, 0),
            Params::from_milli(250, 50, 100).unwrap(),
        );
        assert!(matches!(bad, Err(ConfigError::TargetOutOfBounds { .. })));
        assert!(bad.unwrap_err().to_string().contains("outside"));
    }

    #[test]
    #[should_panic(expected = "differ from target")]
    fn source_equal_to_target_panics() {
        let _ = config().with_source(CellId::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn source_out_of_bounds_panics() {
        let _ = config().with_source(CellId::new(9, 9));
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn tiny_dist_cap_panics() {
        let _ = config().with_dist_cap(3);
    }

    #[test]
    fn initial_state_shape() {
        let cfg = config().with_source(CellId::new(0, 0));
        let s = cfg.initial_state();
        assert_eq!(s.cells.len(), 16);
        assert_eq!(s.next_entity_id, 0);
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Finite(0));
        assert_eq!(s.cell(cfg.dims(), CellId::new(0, 0)).dist, Dist::Infinity);
        assert_eq!(s.entity_count(), 0);
    }

    #[test]
    fn fail_and_recover_roundtrip() {
        let cfg = config();
        let mut s = cfg.initial_state();
        let victim = CellId::new(1, 1);
        s.fail(cfg.dims(), victim);
        assert!(s.cell(cfg.dims(), victim).failed);
        assert_eq!(s.cell(cfg.dims(), victim).dist, Dist::Infinity);
        s.recover(cfg.dims(), victim, cfg.target());
        assert!(!s.cell(cfg.dims(), victim).failed);
        assert_eq!(s.cell(cfg.dims(), victim).dist, Dist::Infinity); // Route will fix

        // Target recovery resets dist to 0.
        s.fail(cfg.dims(), cfg.target());
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Infinity);
        s.recover(cfg.dims(), cfg.target(), cfg.target());
        assert_eq!(s.cell(cfg.dims(), cfg.target()).dist, Dist::Finite(0));
    }

    #[test]
    fn seed_entity_validates() {
        let mut sys = System::new(config());
        let cell = CellId::new(1, 1);
        let center = cell.center();
        let id0 = sys.seed_entity(cell, center).unwrap();
        assert_eq!(id0, EntityId(0));
        // Same spot: spacing violation.
        assert_eq!(sys.seed_entity(cell, center), Err(SeedError::TooClose));
        // Outside margins.
        let edge = Point::new(Fixed::from_int(1), Fixed::from_milli(1_500));
        assert_eq!(sys.seed_entity(cell, edge), Err(SeedError::OutsideMargins));
        // A d-separated spot works and mints the next id.
        let ok = center.translate(cellflow_geom::Dir::North, sys.config().params().d());
        assert_eq!(sys.seed_entity(cell, ok), Ok(EntityId(1)));
        assert_eq!(sys.state().entity_count(), 2);
        let listed: Vec<_> = sys.state().entities(sys.config().dims()).collect();
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().all(|(c, _)| *c == cell));
    }
}
