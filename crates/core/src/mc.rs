//! Bounded model checking of `System` — mechanizing Theorem 5 on small
//! instances.
//!
//! The paper proves safety by assertional reasoning; this module lets the
//! `cellflow-dts` explorer *exhaustively check* the same property on bounded
//! instances: small grids, a finite entity budget, and a chosen set of cells
//! allowed to crash (and optionally recover) nondeterministically between
//! rounds. Because every coordinate is exact fixed-point and `dist` saturates,
//! the reachable state space is finite.
//!
//! ```
//! use cellflow_core::mc::{BoundedSystem, McAction};
//! use cellflow_core::{safety, Params, SystemConfig};
//! use cellflow_dts::{check_invariant, ExploreConfig};
//! use cellflow_grid::{CellId, GridDims};
//!
//! let config = SystemConfig::new(
//!     GridDims::new(3, 1),
//!     CellId::new(2, 0),
//!     Params::from_milli(250, 50, 200)?,
//! )?
//! .with_source(CellId::new(0, 0))
//! .with_entity_budget(2);
//! let sys = BoundedSystem::new(config.clone()).with_fallible([CellId::new(1, 0)], true);
//! let report = check_invariant(
//!     &sys,
//!     |s| safety::check_safe(&config, s).is_ok(),
//!     &ExploreConfig { max_states: 100_000, max_depth: 64 },
//! ).expect("Theorem 5 holds on this instance");
//! assert!(report.states_explored > 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use cellflow_dts::Dts;
use cellflow_grid::CellId;

use crate::{update, Engine, SystemConfig, SystemState, TokenPolicy};

/// A transition of the bounded system: the paper's two transition kinds, plus
/// the recovery transition of the Section IV failure model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McAction {
    /// One synchronous `update` round.
    Update,
    /// Crash a cell.
    Fail(CellId),
    /// Recover a crashed cell.
    Recover(CellId),
}

/// A [`Dts`] view of `System` for exhaustive exploration.
pub struct BoundedSystem {
    config: SystemConfig,
    fallible: Vec<CellId>,
    allow_recovery: bool,
    /// Static per-cell incoming-cut masks (see [`Engine::set_link_cuts`]);
    /// empty means every link is up.
    link_cuts: Vec<u8>,
}

impl BoundedSystem {
    /// Wraps `config` with no fallible cells (failure-free exploration).
    ///
    /// # Panics
    ///
    /// Panics if the config uses [`TokenPolicy::Randomized`] (its choice
    /// depends on the round number, which is not part of the state, so
    /// exploration would be unsound) or has no entity budget while having
    /// sources (the state space would be infinite).
    pub fn new(config: SystemConfig) -> BoundedSystem {
        assert!(
            !matches!(config.token_policy(), TokenPolicy::Randomized { .. }),
            "model checking requires a deterministic token policy"
        );
        assert!(
            config.sources().is_empty() || config.entity_budget().is_some(),
            "model checking requires an entity budget when sources exist"
        );
        BoundedSystem {
            config,
            fallible: Vec::new(),
            allow_recovery: false,
            link_cuts: Vec::new(),
        }
    }

    /// Declares which cells may crash nondeterministically, and whether they
    /// may also recover.
    pub fn with_fallible<I: IntoIterator<Item = CellId>>(
        mut self,
        cells: I,
        allow_recovery: bool,
    ) -> BoundedSystem {
        self.fallible = cells.into_iter().collect();
        self.allow_recovery = allow_recovery;
        self
    }

    /// Installs a *static* partition: per-cell incoming-cut masks in the
    /// [`Engine::set_link_cuts`] layout, applied to every `Update`
    /// transition. Cut slots read as silent neighbors (footnote 1:
    /// `dist = ∞`, `signal = ⊥`), so this explores the protocol's behavior
    /// on a severed topology. The masks must be round-invariant — the round
    /// number is not part of the explored state, so only a cut that never
    /// changes is sound to check; take one row of a
    /// [`PartitionSchedule`](crate::PartitionSchedule) if a plan built it.
    ///
    /// # Panics
    ///
    /// Panics if `masks.len()` is not the grid's cell count.
    pub fn with_link_cuts(mut self, masks: Vec<u8>) -> BoundedSystem {
        assert_eq!(
            masks.len(),
            self.config.dims().cell_count(),
            "one incoming-cut mask per cell"
        );
        self.link_cuts = masks;
        self
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

impl Dts for BoundedSystem {
    type State = SystemState;
    type Action = McAction;

    fn initial_states(&self) -> Vec<SystemState> {
        vec![self.config.initial_state()]
    }

    fn enabled(&self, state: &SystemState) -> Vec<McAction> {
        let dims = self.config.dims();
        let mut actions = vec![McAction::Update];
        for &c in &self.fallible {
            if state.cell(dims, c).failed {
                if self.allow_recovery {
                    actions.push(McAction::Recover(c));
                }
            } else {
                actions.push(McAction::Fail(c));
            }
        }
        actions
    }

    fn apply(&self, state: &SystemState, action: &McAction) -> SystemState {
        match action {
            // Round number 0 everywhere: deterministic policies ignore it
            // (enforced by the constructor).
            McAction::Update if self.link_cuts.is_empty() => update(&self.config, state, 0).0,
            // The cut-aware round lives in the engine; load/step/export is
            // the same transition function (pinned by the differential
            // suite), just with the incoming-cut masks honored.
            McAction::Update => {
                let mut engine = Engine::new(self.config.clone());
                engine.load_state(state);
                engine.set_link_cuts(&self.link_cuts);
                engine.step();
                engine.export_state()
            }
            McAction::Fail(c) => {
                let mut s = state.clone();
                s.fail(self.config.dims(), *c);
                s
            }
            McAction::Recover(c) => {
                let mut s = state.clone();
                s.recover(self.config.dims(), *c, self.config.target());
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{safety, Params};
    use cellflow_dts::{check_invariant, ExploreConfig, Explorer};
    use cellflow_grid::GridDims;

    fn corridor(budget: u64) -> SystemConfig {
        SystemConfig::new(
            GridDims::new(3, 1),
            CellId::new(2, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
        .with_entity_budget(budget)
    }

    #[test]
    fn exhaustive_safety_no_failures() {
        let cfg = corridor(2);
        let sys = BoundedSystem::new(cfg.clone());
        let report = check_invariant(
            &sys,
            |s| {
                safety::check_safe(&cfg, s).is_ok()
                    && safety::check_invariant1(&cfg, s).is_ok()
                    && safety::check_invariant2(&cfg, s).is_ok()
            },
            &ExploreConfig {
                max_states: 1_000_000,
                max_depth: usize::MAX,
            },
        )
        .expect("Theorem 5 + Invariants 1,2");
        assert!(report.exhaustive, "state space should be fully covered");
        assert!(report.states_explored > 10);
    }

    #[test]
    fn exhaustive_safety_with_fail_recover() {
        let cfg = corridor(1);
        let sys = BoundedSystem::new(cfg.clone())
            .with_fallible([CellId::new(1, 0), CellId::new(2, 0)], true);
        let report = check_invariant(
            &sys,
            |s| safety::check_safe(&cfg, s).is_ok(),
            &ExploreConfig {
                max_states: 2_000_000,
                max_depth: usize::MAX,
            },
        )
        .expect("safety despite failures");
        assert!(report.exhaustive);
        assert!(report.states_explored > 50);
    }

    #[test]
    fn explorer_reaches_consumption() {
        // Some reachable state has the single budgeted entity consumed
        // (entity count 0 after insertions happened).
        let cfg = corridor(1);
        let sys = BoundedSystem::new(cfg.clone());
        let mut ex = Explorer::new(&sys);
        ex.run(&ExploreConfig {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        });
        assert!(
            ex.states()
                .iter()
                .any(|s| s.next_entity_id == 1 && s.entity_count() == 0),
            "no reachable state shows the entity consumed"
        );
    }

    /// Incoming-cut masks for a permanent mid-corridor severance
    /// ⟨1,0⟩ ↮ ⟨2,0⟩ on the 3×1 grid.
    fn corridor_cut_masks() -> Vec<u8> {
        use crate::PartitionPlan;
        PartitionPlan::for_grid(GridDims::new(3, 1))
            .cut_both(CellId::new(1, 0), CellId::new(2, 0), 0, None)
            .expand(1)
            .mask_row(0)
            .to_vec()
    }

    #[test]
    fn exhaustive_safety_on_a_partitioned_corridor() {
        // Theorem 5 must hold on the severed topology too: the cells on each
        // side of the cut read footnote-1 silence across it and keep running.
        let cfg = corridor(1);
        let sys = BoundedSystem::new(cfg.clone()).with_link_cuts(corridor_cut_masks());
        let report = check_invariant(
            &sys,
            |s| {
                safety::check_safe(&cfg, s).is_ok()
                    && safety::check_invariant1(&cfg, s).is_ok()
                    && safety::check_invariant2(&cfg, s).is_ok()
            },
            &ExploreConfig {
                max_states: 1_000_000,
                max_depth: usize::MAX,
            },
        )
        .expect("safety despite the partition");
        assert!(report.exhaustive);
        // The severed corridor quiesces: dist saturates to ∞ on the source
        // side (footnote-1 silence across the cut), the source stops
        // inserting, and the tiny fixpoint space is fully covered.
        assert!(report.states_explored >= 2);
        let sys = BoundedSystem::new(cfg).with_link_cuts(corridor_cut_masks());
        let mut ex = Explorer::new(&sys);
        ex.run(&ExploreConfig {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        });
        assert!(
            ex.states()
                .iter()
                .all(|s| !(s.next_entity_id == 1 && s.entity_count() == 0)),
            "an entity crossed a cut edge"
        );
    }

    #[test]
    fn partitioned_grid_routes_around_the_cut() {
        // On a 2×2 grid a both-ways cut ⟨0,0⟩ ↮ ⟨1,0⟩ leaves the detour via
        // ⟨0,1⟩ intact: the entity is still deliverable, so the partition
        // degrades routing without trapping traffic it need not trap.
        let cfg = SystemConfig::new(
            GridDims::new(2, 2),
            CellId::new(1, 1),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0))
        .with_entity_budget(1);
        let masks = crate::PartitionPlan::for_grid(GridDims::new(2, 2))
            .cut_both(CellId::new(0, 0), CellId::new(1, 0), 0, None)
            .expand(1)
            .mask_row(0)
            .to_vec();
        let sys = BoundedSystem::new(cfg).with_link_cuts(masks);
        let live = cellflow_dts::check_possibly(
            &sys,
            |s| s.next_entity_id == 1 && s.entity_count() == 0,
            &ExploreConfig {
                max_states: 1_000_000,
                max_depth: usize::MAX,
            },
        )
        .expect("the detour delivers despite the cut");
        assert!(live.goal_states > 0);
    }

    #[test]
    #[should_panic(expected = "mask per cell")]
    fn wrong_mask_length_is_rejected() {
        let _ = BoundedSystem::new(corridor(1)).with_link_cuts(vec![0u8; 2]);
    }

    #[test]
    #[should_panic(expected = "entity budget")]
    fn unbounded_sources_rejected() {
        let cfg = SystemConfig::new(
            GridDims::new(3, 1),
            CellId::new(2, 0),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(0, 0));
        let _ = BoundedSystem::new(cfg);
    }

    #[test]
    #[should_panic(expected = "deterministic token policy")]
    fn randomized_policy_rejected() {
        let cfg = corridor(1).with_token_policy(TokenPolicy::Randomized { salt: 1 });
        let _ = BoundedSystem::new(cfg);
    }
}
