//! A shared fault-schedule vocabulary (the paper's §IV failure model, made
//! injectable).
//!
//! The paper proves safety *despite* crashes (Theorem 5) and stabilization
//! *after* they cease (Lemma 6, Theorem 10). A [`FaultPlan`] is a scripted
//! sequence of fail/recover transitions — burst crashes, region blackouts,
//! flapping cells, adversarial kills — that the shared-variable reference
//! (`cellflow-sim`'s `FailureModel`), the message-passing runtime
//! (`cellflow-net`), and the `cellflow chaos` CLI all consume **identically**,
//! so differential tests can drive both implementations through the same
//! adversity.
//!
//! Two fault severities go beyond the paper's polite crash flag:
//!
//! * [`FaultKind::HardCrash`] — the deployment actually kills the cell's
//!   thread (state is lost until the paired [`FaultKind::Recover`] re-spawns
//!   it from a checkpoint). The reference models it as an ordinary crash,
//!   which is exactly the paper's reading: a failed cell is silent and
//!   frozen.
//! * [`FaultKind::Kill`] — the cell vanishes *forever* and never recovers;
//!   the runtime must degrade via timeouts instead of deadlocking. There is
//!   no reference equivalent (the run ends with a typed error), so plans
//!   with kills are excluded from differential comparisons.

use std::collections::BTreeSet;

use cellflow_geom::{sep_ok, Dir, Fixed, Point};
use cellflow_grid::{CellId, GridDims};
use cellflow_routing::Dist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::hash::{edge_seed, splitmix64, SPLITMIX64_GAMMA};
use crate::{CellState, SystemConfig};

/// The kind of a scripted fault transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The paper's `fail(⟨i,j⟩)`: the cell sets its flag, pins `dist = ∞`,
    /// and goes silent. State (members, token, `NEPrev`) is retained.
    Crash,
    /// The paper's recovery transition: `failed := false` (the target
    /// re-anchors `dist = 0`). Also the re-spawn point of a [`HardCrash`].
    ///
    /// [`HardCrash`]: FaultKind::HardCrash
    Recover,
    /// A crash that a deployment realizes by terminating the cell's thread;
    /// the paired [`Recover`] re-spawns it. Observationally identical to
    /// [`Crash`] in the shared-variable model.
    ///
    /// [`Crash`]: FaultKind::Crash
    /// [`Recover`]: FaultKind::Recover
    HardCrash,
    /// An unrecoverable disappearance: the cell becomes permanently
    /// unreachable. Deployments degrade via timeouts (footnote 1's "no
    /// timely response") and report a typed error instead of hanging.
    Kill,
    /// An *endogenous* crash: the cell died because its occupancy exceeded
    /// its finite capacity (see [`SystemConfig::capacity`] and
    /// [`overload`](crate::overload)). Observationally a [`Crash`] — the
    /// flag is set, state retained, the cell may later [`Recover`] — but
    /// census-tracked separately because cascades (Como et al.) are a
    /// distinct failure family: the dead cell's inflow sheds onto its
    /// neighbors, which may overload in turn.
    ///
    /// [`Crash`]: FaultKind::Crash
    /// [`Recover`]: FaultKind::Recover
    OverloadCrash,
    /// A transient state corruption: the cell's protocol state is perturbed
    /// in place (the *self*-stabilization adversary of Corollary 7 /
    /// Theorem 10, as opposed to the polite crash flag). The cell keeps
    /// running; the protocol must wash the damage out within the
    /// stabilization bound without ever violating safety.
    Corrupt(Corruption),
}

/// A perturbation of one cell's protocol state, applied atomically at the
/// start of a round — the "arbitrary transient fault" the paper's
/// stabilization theorems quantify over.
///
/// Shared-register corruptions (`next`, `token`, `signal`, `NEPrev`) are
/// expressed as **direction registers** rather than raw cell identifiers:
/// the adversary scribbles a direction, and the value the protocol observes
/// is that direction resolved on the grid (`⊥` when it points off-grid).
/// This keeps corrupted values inside each variable's type — the paper's
/// model permits arbitrary *values of the declared type*, not arbitrary
/// bit patterns — while still exercising every reachable wrong value.
///
/// Entity-position corruption ([`Corruption::Jostle`]) is constrained by
/// physical well-formedness: entities are matter, so a transient fault may
/// displace them but cannot make two of them overlap or teleport one across
/// a cell boundary. Each nudge is accepted only if it preserves Invariant 1
/// (interior margins) and the `d`-separation of Theorem 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Corruption {
    /// Overwrite `dist` with an arbitrary value (including a fake `0`).
    Dist(Dist),
    /// Overwrite `next` with the neighbor in this direction (`⊥` when `None`
    /// or off-grid).
    Next(Option<Dir>),
    /// Overwrite `token` likewise.
    Token(Option<Dir>),
    /// Overwrite `signal` likewise.
    Signal(Option<Dir>),
    /// Overwrite `NEPrev` with the neighbors selected by `mask` (bit `k`
    /// selects `Dir::ALL[k]`; off-grid bits are ignored).
    NePrev {
        /// Direction bitmask over [`Dir::ALL`].
        mask: u8,
    },
    /// Deterministically nudge every entity on the cell, keeping each nudge
    /// only if it preserves Invariant 1 and `d`-separation.
    Jostle {
        /// Seed for the per-entity nudge derivation.
        salt: u64,
    },
    /// Scramble the *entire* protocol state: `dist`, `next`, `token`,
    /// `signal`, `NEPrev`, and entity positions, all derived from `salt`.
    Scramble {
        /// Seed for the derived sub-corruptions.
        salt: u64,
    },
}

impl Corruption {
    /// Applies this corruption to `cell` (the state of `id` under `config`).
    ///
    /// Two well-formedness clauses are re-asserted afterwards, mirroring the
    /// parts of the state a transient fault cannot reach in the paper's
    /// model:
    ///
    /// * a **failed** cell stays pinned (`dist = ∞`, `next = signal = ⊥`) —
    ///   the fail flag is the §IV failure model's, not the adversary's;
    /// * the live **target** keeps `dist = 0` — the anchor is part of the
    ///   configuration (recovery re-asserts it, `Route` never recomputes
    ///   it), so a corrupted anchor would model a different system, not a
    ///   transient fault of this one.
    pub fn apply(&self, config: &SystemConfig, id: CellId, cell: &mut CellState) {
        let dims = config.dims();
        let resolve = |dir: Option<Dir>| {
            dir.and_then(|d| id.step(d)).filter(|&n| dims.contains(n))
        };
        match *self {
            Corruption::Dist(d) => cell.dist = d,
            Corruption::Next(dir) => cell.next = resolve(dir),
            Corruption::Token(dir) => cell.token = resolve(dir),
            Corruption::Signal(dir) => cell.signal = resolve(dir),
            Corruption::NePrev { mask } => {
                cell.ne_prev = Dir::ALL
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| mask & (1 << k) != 0)
                    .filter_map(|(_, &d)| resolve(Some(d)))
                    .collect();
            }
            Corruption::Jostle { salt } => jostle(config, id, cell, salt),
            Corruption::Scramble { salt } => {
                let mut rng = SmallRng::seed_from_u64(salt);
                let dist = if rng.gen_bool(0.3) {
                    Dist::Infinity
                } else {
                    Dist::Finite(rng.gen_range(0..config.dist_cap() as usize) as u32)
                };
                Corruption::Dist(dist).apply(config, id, cell);
                for mk in [Corruption::Next, Corruption::Token, Corruption::Signal] {
                    mk(random_dir(&mut rng)).apply(config, id, cell);
                }
                let mask = rng.gen_range(0..16usize) as u8;
                Corruption::NePrev { mask }.apply(config, id, cell);
                Corruption::Jostle {
                    salt: salt ^ 0xD1B5_4A32_D192_ED03,
                }
                .apply(config, id, cell);
            }
        }
        if cell.failed {
            cell.dist = Dist::Infinity;
            cell.next = None;
            cell.signal = None;
        } else if id == config.target() {
            cell.dist = Dist::Finite(0);
        }
    }
}

/// A direction drawn uniformly from `⊥` and the four compass directions.
fn random_dir(rng: &mut SmallRng) -> Option<Dir> {
    match rng.gen_range(0..5usize) {
        0 => None,
        k => Some(Dir::ALL[k - 1]),
    }
}

/// Nudges every entity on the cell by a `salt`-derived offset of at most
/// `d/2` per axis, keeping a nudge only if the new position stays inside the
/// cell's interior margins (Invariant 1) and `d`-separated from every other
/// entity (Theorem 5's `Safe`). Rejected nudges leave the entity in place,
/// so the result is well-formed by construction.
fn jostle(config: &SystemConfig, id: CellId, cell: &mut CellState, salt: u64) {
    let params = config.params();
    let amp = params.d().halve().raw();
    if amp == 0 {
        return;
    }
    let ids: Vec<crate::EntityId> = cell.members.keys().copied().collect();
    for eid in ids {
        let mut rng =
            SmallRng::seed_from_u64(salt ^ eid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dx = Fixed::from_raw(rng.gen_range(-amp..=amp));
        let dy = Fixed::from_raw(rng.gen_range(-amp..=amp));
        let old = cell.members[&eid];
        let cand = Point::new(old.x + dx, old.y + dy);
        let ok = crate::source::within_cell_margins(params, id, cand)
            && cell
                .members
                .iter()
                .all(|(&k, &q)| k == eid || sep_ok(cand, q, params.d()));
        if ok {
            cell.members.insert(eid, cand);
        }
    }
}

/// One scripted transition: `kind` applied to `cell` at the start of `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The round at whose start the transition fires.
    pub round: u64,
    /// The affected cell.
    pub cell: CellId,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of [`FaultEvent`]s, consumed identically by the
/// lockstep simulator, the message-passing runtime, and the chaos CLI.
///
/// Built with chainable constructors:
///
/// ```
/// use cellflow_core::fault::{FaultKind, FaultPlan};
/// use cellflow_grid::CellId;
///
/// let plan = FaultPlan::new()
///     .crash_at(5, CellId::new(1, 1))
///     .recover_at(30, CellId::new(1, 1))
///     .hard_crash_at(10, CellId::new(2, 0))
///     .recover_at(40, CellId::new(2, 0));
/// assert_eq!(plan.len(), 4);
/// assert_eq!(plan.last_event_round(), Some(40));
/// assert_eq!(plan.respawn_round_after(CellId::new(2, 0), 10), Some(40));
/// assert!(!plan.has_kills());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an arbitrary event.
    pub fn with_event(mut self, round: u64, cell: CellId, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { round, cell, kind });
        self
    }

    /// Adds a [`FaultKind::Crash`] of `cell` at `round`.
    pub fn crash_at(self, round: u64, cell: CellId) -> FaultPlan {
        self.with_event(round, cell, FaultKind::Crash)
    }

    /// Adds a [`FaultKind::Recover`] of `cell` at `round`.
    pub fn recover_at(self, round: u64, cell: CellId) -> FaultPlan {
        self.with_event(round, cell, FaultKind::Recover)
    }

    /// Adds a [`FaultKind::HardCrash`] of `cell` at `round`.
    pub fn hard_crash_at(self, round: u64, cell: CellId) -> FaultPlan {
        self.with_event(round, cell, FaultKind::HardCrash)
    }

    /// Adds a [`FaultKind::Kill`] of `cell` at `round`.
    pub fn kill_at(self, round: u64, cell: CellId) -> FaultPlan {
        self.with_event(round, cell, FaultKind::Kill)
    }

    /// Adds a [`FaultKind::Corrupt`] of `cell` at `round`.
    pub fn corrupt_at(self, round: u64, cell: CellId, corruption: Corruption) -> FaultPlan {
        self.with_event(round, cell, FaultKind::Corrupt(corruption))
    }

    /// Adds a [`FaultKind::OverloadCrash`] of `cell` at `round` (normally
    /// recorded by [`overload::expand_overload`](crate::overload::expand_overload)
    /// rather than scripted by hand).
    pub fn overload_crash_at(self, round: u64, cell: CellId) -> FaultPlan {
        self.with_event(round, cell, FaultKind::OverloadCrash)
    }

    /// A targeted corruption sweep: every cell in `cells` gets its full
    /// state scrambled at `round`, each with a distinct salt derived from
    /// `salt` and its coordinates (so no two cells scramble identically).
    pub fn scramble_sweep<I: IntoIterator<Item = CellId>>(
        mut self,
        round: u64,
        cells: I,
        salt: u64,
    ) -> FaultPlan {
        for c in cells {
            let cell_salt = salt ^ (((c.i() as u64) << 16 | c.j() as u64) + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.events.push(FaultEvent {
                round,
                cell: c,
                kind: FaultKind::Corrupt(Corruption::Scramble { salt: cell_salt }),
            });
        }
        self
    }

    /// Crashes all `cells` at round 0 — the path-carving helper (Figure 8).
    pub fn carve<I: IntoIterator<Item = CellId>>(mut self, cells: I) -> FaultPlan {
        for c in cells {
            self.events.push(FaultEvent {
                round: 0,
                cell: c,
                kind: FaultKind::Crash,
            });
        }
        self
    }

    /// A burst: every cell in `cells` crashes at `round` and recovers
    /// together at `round + outage`.
    pub fn burst<I: IntoIterator<Item = CellId>>(
        mut self,
        round: u64,
        cells: I,
        outage: u64,
    ) -> FaultPlan {
        for c in cells {
            self.events.push(FaultEvent {
                round,
                cell: c,
                kind: FaultKind::Crash,
            });
            self.events.push(FaultEvent {
                round: round + outage,
                cell: c,
                kind: FaultKind::Recover,
            });
        }
        self
    }

    /// A region blackout: the axis-aligned rectangle spanned by `a` and `b`
    /// (inclusive) crashes at `round` and recovers at `round + outage`.
    pub fn blackout(self, round: u64, a: CellId, b: CellId, outage: u64) -> FaultPlan {
        let (i0, i1) = (a.i().min(b.i()), a.i().max(b.i()));
        let (j0, j1) = (a.j().min(b.j()), a.j().max(b.j()));
        let region =
            (i0..=i1).flat_map(move |i| (j0..=j1).map(move |j| CellId::new(i, j)));
        self.burst(round, region, outage)
    }

    /// A flapping cell: starting at `start`, `cell` crashes and recovers
    /// `flips` times with `half_period` rounds between each transition.
    pub fn flapping(
        mut self,
        cell: CellId,
        start: u64,
        half_period: u64,
        flips: u32,
    ) -> FaultPlan {
        let step = half_period.max(1);
        for k in 0..flips as u64 {
            self.events.push(FaultEvent {
                round: start + 2 * k * step,
                cell,
                kind: FaultKind::Crash,
            });
            self.events.push(FaultEvent {
                round: start + (2 * k + 1) * step,
                cell,
                kind: FaultKind::Recover,
            });
        }
        self
    }

    /// Appends every event of `other`.
    pub fn merge(mut self, other: FaultPlan) -> FaultPlan {
        self.events.extend(other.events);
        self
    }

    /// All events, in insertion order (the order they are applied within a
    /// round).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events firing at the start of `round`, in insertion order.
    pub fn events_at(&self, round: u64) -> impl Iterator<Item = FaultEvent> + '_ {
        self.events.iter().copied().filter(move |e| e.round == round)
    }

    /// The events affecting `cell` at the start of `round`.
    pub fn events_at_for(&self, round: u64, cell: CellId) -> impl Iterator<Item = FaultEvent> + '_ {
        self.events_at(round).filter(move |e| e.cell == cell)
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The round of the last scripted event — the moment "failures cease"
    /// from which the Theorem 10 stabilization clock starts. `None` for an
    /// empty plan.
    pub fn last_event_round(&self) -> Option<u64> {
        self.events.iter().map(|e| e.round).max()
    }

    /// The earliest [`FaultKind::Recover`] of `cell` strictly after `round` —
    /// where a hard-crashed cell's thread re-spawns. `None` means the cell
    /// stays dead.
    pub fn respawn_round_after(&self, cell: CellId, round: u64) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.cell == cell && e.kind == FaultKind::Recover && e.round > round)
            .map(|e| e.round)
            .min()
    }

    /// `true` if the plan contains any [`FaultKind::Kill`] (such plans end a
    /// deployment run with a timeout error by design).
    pub fn has_kills(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::Kill)
    }

    /// `true` if the plan contains any [`FaultKind::HardCrash`].
    pub fn has_hard_crashes(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::HardCrash)
    }

    /// Cells that are hard-dead (between a [`FaultKind::HardCrash`] /
    /// [`FaultKind::Kill`] and their next recovery, if any) at the start of
    /// `round`, *after* this round's events fire.
    pub fn hard_dead_at(&self, round: u64) -> BTreeSet<CellId> {
        let mut dead = BTreeSet::new();
        for e in self.events.iter().filter(|e| e.round <= round) {
            match e.kind {
                FaultKind::HardCrash | FaultKind::Kill => {
                    dead.insert(e.cell);
                }
                FaultKind::Recover => {
                    dead.remove(&e.cell);
                }
                FaultKind::Crash | FaultKind::OverloadCrash | FaultKind::Corrupt(_) => {}
            }
        }
        dead
    }

    /// Cells taken down by a [`FaultKind::Kill`] at or before `round` (and
    /// not scripted to recover, which plans never do for kills). Unlike
    /// [`FaultPlan::hard_dead_at`] this excludes hard-crash victims — it
    /// identifies the cells whose silence is *expected and unrecoverable*,
    /// the culprits a timeout report should name.
    pub fn killed_at(&self, round: u64) -> BTreeSet<CellId> {
        let mut dead = BTreeSet::new();
        for e in self.events.iter().filter(|e| e.round <= round) {
            match e.kind {
                FaultKind::Kill => {
                    dead.insert(e.cell);
                }
                FaultKind::Recover => {
                    dead.remove(&e.cell);
                }
                _ => {}
            }
        }
        dead
    }

    /// Counts per kind.
    pub fn census(&self) -> FaultCensus {
        let mut c = FaultCensus::default();
        for e in &self.events {
            match e.kind {
                FaultKind::Crash => c.crashes += 1,
                FaultKind::Recover => c.recoveries += 1,
                FaultKind::HardCrash => c.hard_crashes += 1,
                FaultKind::Kill => c.kills += 1,
                FaultKind::Corrupt(_) => c.corruptions += 1,
                FaultKind::OverloadCrash => c.overload_crashes += 1,
            }
        }
        c
    }
}

/// Event counts per [`FaultKind`], as reported by [`FaultPlan::census`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCensus {
    /// [`FaultKind::Crash`] events.
    pub crashes: usize,
    /// [`FaultKind::Recover`] events.
    pub recoveries: usize,
    /// [`FaultKind::HardCrash`] events.
    pub hard_crashes: usize,
    /// [`FaultKind::Kill`] events.
    pub kills: usize,
    /// [`FaultKind::Corrupt`] events.
    pub corruptions: usize,
    /// [`FaultKind::OverloadCrash`] events — endogenous, capacity-induced
    /// deaths, counted apart from exogenous crashes so cascade campaigns can
    /// be compared against their backoff-mitigated runs.
    pub overload_crashes: usize,
}

/// Shape parameters for [`FaultPlan::random_campaign`]: how much adversity a
/// generated campaign contains. All faults land in `[0, active_rounds)`; the
/// tail of a run after that is the fault-free window in which the Theorem 10
/// stabilization clock must expire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Faults only fire before this round (recoveries included).
    pub active_rounds: u64,
    /// Number of burst crashes (a clump of cells failing together).
    pub bursts: u32,
    /// Cells per burst.
    pub burst_size: u32,
    /// Number of rectangular region blackouts.
    pub blackouts: u32,
    /// Number of flapping cells (repeated crash/recover).
    pub flappers: u32,
    /// Number of hard crashes (thread-killing, with scripted re-spawn).
    pub hard_crashes: u32,
    /// Number of unrecoverable kills (the run is expected to end in a
    /// timeout error; keep 0 for differential campaigns).
    pub kills: u32,
    /// Number of transient state corruptions ([`FaultKind::Corrupt`]):
    /// seeded draws over the full [`Corruption`] vocabulary, landing on
    /// cells that are never hard-crash/kill victims (a dead node has no
    /// state to corrupt).
    pub corruptions: u32,
    /// Never fault the target (an adversarial target kill otherwise
    /// disconnects everything).
    pub protect_target: bool,
    /// Never fault source cells.
    pub protect_sources: bool,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            active_rounds: 100,
            bursts: 2,
            burst_size: 3,
            blackouts: 1,
            flappers: 1,
            hard_crashes: 1,
            kills: 0,
            corruptions: 0,
            protect_target: true,
            protect_sources: true,
        }
    }
}

impl FaultPlan {
    /// Generates a seeded random campaign over `config`'s grid following
    /// `spec`. Deterministic: the same `(config, spec, seed)` triple always
    /// yields the same plan.
    ///
    /// Hard-crash and kill victims are kept disjoint from each other and
    /// from every flag-fault generator, so a hard-crashed cell's scripted
    /// re-spawn is never confused with a foreign recovery.
    pub fn random_campaign(config: &SystemConfig, spec: &CampaignSpec, seed: u64) -> FaultPlan {
        let dims = config.dims();
        let mut rng = SmallRng::seed_from_u64(seed);
        let horizon = spec.active_rounds.max(2);
        let protected: BTreeSet<CellId> = {
            let mut p = BTreeSet::new();
            if spec.protect_target {
                p.insert(config.target());
            }
            if spec.protect_sources {
                p.extend(config.sources().iter().copied());
            }
            p
        };
        let pool: Vec<CellId> = dims.iter().filter(|c| !protected.contains(c)).collect();
        if pool.is_empty() {
            return FaultPlan::new();
        }
        let mut plan = FaultPlan::new();
        // Hard crashes and kills first, drawing exclusive victims.
        let mut exclusive: Vec<CellId> = pool.clone();
        let mut taken = BTreeSet::new();
        for _ in 0..spec.hard_crashes {
            if exclusive.is_empty() {
                break;
            }
            let cell = exclusive.swap_remove(rng.gen_range(0..exclusive.len()));
            taken.insert(cell);
            let down = rng.gen_range(0..horizon / 2);
            let up = rng.gen_range(down + 1..horizon);
            plan = plan.hard_crash_at(down, cell).recover_at(up, cell);
        }
        for _ in 0..spec.kills {
            if exclusive.is_empty() {
                break;
            }
            let cell = exclusive.swap_remove(rng.gen_range(0..exclusive.len()));
            taken.insert(cell);
            plan = plan.kill_at(rng.gen_range(0..horizon), cell);
        }
        // Flag faults over the remaining pool.
        let flaggable: Vec<CellId> = pool.iter().copied().filter(|c| !taken.contains(c)).collect();
        if flaggable.is_empty() {
            return plan;
        }
        for _ in 0..spec.bursts {
            let when = rng.gen_range(0..horizon / 2);
            let outage = rng.gen_range(1..(horizon - when).max(2));
            let mut victims = BTreeSet::new();
            for _ in 0..spec.burst_size {
                victims.insert(flaggable[rng.gen_range(0..flaggable.len())]);
            }
            plan = plan.burst(when, victims, outage);
        }
        for _ in 0..spec.blackouts {
            let a = flaggable[rng.gen_range(0..flaggable.len())];
            let span = rng.gen_range(0..2u16);
            let b = CellId::new(
                (a.i() + span).min(dims.nx() - 1),
                (a.j() + span).min(dims.ny() - 1),
            );
            let when = rng.gen_range(0..horizon / 2);
            let outage = rng.gen_range(1..(horizon - when).max(2));
            // Clip the rectangle to unprotected, non-exclusive cells.
            let (i0, i1) = (a.i().min(b.i()), a.i().max(b.i()));
            let (j0, j1) = (a.j().min(b.j()), a.j().max(b.j()));
            let region: Vec<CellId> = (i0..=i1)
                .flat_map(|i| (j0..=j1).map(move |j| CellId::new(i, j)))
                .filter(|c| !protected.contains(c) && !taken.contains(c))
                .collect();
            plan = plan.burst(when, region, outage);
        }
        for _ in 0..spec.flappers {
            let cell = flaggable[rng.gen_range(0..flaggable.len())];
            let flips = rng.gen_range(1..=3u32);
            let half = rng.gen_range(1..=(horizon / (2 * flips as u64 + 1)).max(1));
            let latest_start = horizon.saturating_sub(2 * flips as u64 * half).max(1);
            let start = rng.gen_range(0..latest_start);
            plan = plan.flapping(cell, start, half, flips);
        }
        for _ in 0..spec.corruptions {
            let cell = flaggable[rng.gen_range(0..flaggable.len())];
            let when = rng.gen_range(0..horizon);
            let corruption = match rng.gen_range(0..7usize) {
                0 => Corruption::Dist(if rng.gen_bool(0.3) {
                    Dist::Infinity
                } else {
                    Dist::Finite(rng.gen_range(0..config.dist_cap() as usize) as u32)
                }),
                1 => Corruption::Next(random_dir(&mut rng)),
                2 => Corruption::Token(random_dir(&mut rng)),
                3 => Corruption::Signal(random_dir(&mut rng)),
                4 => Corruption::NePrev {
                    mask: rng.gen_range(0..16usize) as u8,
                },
                5 => Corruption::Jostle {
                    salt: rng.gen::<u64>(),
                },
                _ => Corruption::Scramble {
                    salt: rng.gen::<u64>(),
                },
            };
            plan = plan.corrupt_at(when, cell, corruption);
        }
        plan
    }
}

/// One scripted **directed link cut**: every message `from → to` is
/// suppressed from the start of round `start` until (exclusively) round
/// `heal` — forever, when `heal` is `None`. Asymmetric by construction:
/// cutting `A → B` leaves `B → A` alive, the half-open link failure that
/// drives count-to-infinity in distance-vector routing.
///
/// The receiving side observes exactly the paper's footnote 1: a neighbor
/// it hears nothing from reads as `dist = ∞`, `signal = ⊥`. Cells on both
/// sides keep running — link faults never crash anyone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkFault {
    /// The silenced sender.
    pub from: CellId,
    /// The receiver that stops hearing it.
    pub to: CellId,
    /// First round (0-based, as seen by the engine) the cut is active.
    pub start: u64,
    /// First round the link works again; `None` = never heals.
    pub heal: Option<u64>,
}

impl LinkFault {
    /// `true` if the cut suppresses traffic during `round`.
    pub fn active(&self, round: u64) -> bool {
        round >= self.start && self.heal.is_none_or(|h| round < h)
    }
}

/// Seeded intermittent link weather: during `[start, heal)`, every directed
/// grid edge is independently cut in each round with probability
/// `rate_milli / 1000`, decided by a **stateless** per-`(edge, round)` hash.
/// Statelessness is the determinism anchor: re-expanding the plan over any
/// horizon reproduces the same cuts round for round, so a schedule's prefix
/// never depends on how far ahead it was expanded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlakySpec {
    /// Seed for the per-(edge, round) cut decisions.
    pub seed: u64,
    /// Cut probability in parts per thousand (`0..=1000`).
    pub rate_milli: u32,
    /// First round the weather is active.
    pub start: u64,
    /// First calm round; `None` = never calms.
    pub heal: Option<u64>,
}

impl FlakySpec {
    fn active(&self, round: u64) -> bool {
        round >= self.start && self.heal.is_none_or(|h| round < h)
    }

    /// The stateless cut decision for edge `from → to` in `round`.
    fn cuts(&self, round: u64, from: CellId, to: CellId) -> bool {
        let key = edge_seed(self.seed, from, to) ^ round.wrapping_mul(SPLITMIX64_GAMMA);
        splitmix64(key) % 1000 < self.rate_milli as u64
    }
}

/// A deterministic schedule of link cuts and partition episodes over one
/// grid — the correlated-failure counterpart of [`FaultPlan`]'s per-cell
/// faults. Consumed identically by the lockstep simulator (edge masks on
/// the engine's neighbor reads) and the message-passing runtime (a
/// [`LinkFaultTransport`] suppressing announcements), so partition
/// campaigns can be compared differentially.
///
/// Built with chainable constructors and expanded ([`PartitionPlan::expand`])
/// into a per-round, per-cell incoming-cut mask ([`PartitionSchedule`]) that
/// both runtimes index the same way.
///
/// ```
/// use cellflow_core::fault::PartitionPlan;
/// use cellflow_grid::{CellId, GridDims};
///
/// let dims = GridDims::square(4);
/// let plan = PartitionPlan::for_grid(dims)
///     .split_col(2, 10, Some(40))            // split-brain along a grid line
///     .cut(CellId::new(0, 0), CellId::new(0, 1), 5, None); // asymmetric cut
/// let schedule = plan.expand(60);
/// assert!(schedule.is_cut(12, CellId::new(1, 0), CellId::new(2, 0)));
/// assert!(!schedule.is_cut(40, CellId::new(1, 0), CellId::new(2, 0)));
/// assert!(schedule.is_cut(59, CellId::new(0, 0), CellId::new(0, 1)));
/// ```
///
/// [`LinkFaultTransport`]: ../../cellflow_net/struct.LinkFaultTransport.html
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    dims: GridDims,
    faults: Vec<LinkFault>,
    flaky: Vec<FlakySpec>,
}

impl PartitionPlan {
    /// An empty plan over `dims` (no cuts ever).
    pub fn for_grid(dims: GridDims) -> PartitionPlan {
        PartitionPlan {
            dims,
            faults: Vec::new(),
            flaky: Vec::new(),
        }
    }

    /// Adds one directed cut `from → to` active over `[start, heal)`.
    ///
    /// # Panics
    ///
    /// Panics if the cells are not grid neighbors, lie out of bounds, or
    /// `heal ≤ start` (an empty cut is always a scripting mistake).
    pub fn cut(mut self, from: CellId, to: CellId, start: u64, heal: Option<u64>) -> PartitionPlan {
        assert!(
            self.dims.contains(from) && self.dims.contains(to),
            "link {from}->{to} out of {} bounds",
            self.dims
        );
        assert!(from.is_neighbor(to), "{from} and {to} are not neighbors");
        assert!(
            heal.is_none_or(|h| h > start),
            "heal round {heal:?} must follow start round {start}"
        );
        self.faults.push(LinkFault {
            from,
            to,
            start,
            heal,
        });
        self
    }

    /// Adds both directions of the edge `{a, b}` as cuts over `[start, heal)`.
    pub fn cut_both(self, a: CellId, b: CellId, start: u64, heal: Option<u64>) -> PartitionPlan {
        self.cut(a, b, start, heal).cut(b, a, start, heal)
    }

    /// Splits the grid along the vertical line before column `col`: every
    /// edge between columns `col − 1` and `col` is cut in both directions
    /// over `[start, heal)` — the canonical split-brain episode.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ col < nx` (the line must have cells on both sides).
    pub fn split_col(mut self, col: u16, start: u64, heal: Option<u64>) -> PartitionPlan {
        assert!(
            col >= 1 && col < self.dims.nx(),
            "column {col} does not split a {} grid",
            self.dims
        );
        for j in 0..self.dims.ny() {
            self = self.cut_both(CellId::new(col - 1, j), CellId::new(col, j), start, heal);
        }
        self
    }

    /// Splits the grid along the horizontal line before row `row` — the
    /// [`PartitionPlan::split_col`] of the other axis.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ row < ny`.
    pub fn split_row(mut self, row: u16, start: u64, heal: Option<u64>) -> PartitionPlan {
        assert!(
            row >= 1 && row < self.dims.ny(),
            "row {row} does not split a {} grid",
            self.dims
        );
        for i in 0..self.dims.nx() {
            self = self.cut_both(CellId::new(i, row - 1), CellId::new(i, row), start, heal);
        }
        self
    }

    /// Isolates the axis-aligned rectangle spanned by `a` and `b`
    /// (inclusive): every edge crossing the rectangle's boundary is cut in
    /// both directions over `[start, heal)`, leaving an island that keeps
    /// running on its own.
    pub fn island(mut self, a: CellId, b: CellId, start: u64, heal: Option<u64>) -> PartitionPlan {
        let (i0, i1) = (a.i().min(b.i()), a.i().max(b.i()));
        let (j0, j1) = (a.j().min(b.j()), a.j().max(b.j()));
        let inside =
            |c: CellId| c.i() >= i0 && c.i() <= i1 && c.j() >= j0 && c.j() <= j1;
        for i in i0..=i1 {
            for j in j0..=j1 {
                let cell = CellId::new(i, j);
                for dir in Dir::ALL {
                    if let Some(nbr) = self.dims.neighbor(cell, dir) {
                        if !inside(nbr) {
                            self = self.cut_both(cell, nbr, start, heal);
                        }
                    }
                }
            }
        }
        self
    }

    /// Adds seeded intermittent cuts over every directed edge: each edge is
    /// independently down with probability `rate_milli / 1000` per round
    /// during `[start, heal)`. See [`FlakySpec`] for the determinism
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `rate_milli > 1000`.
    pub fn flaky_links(
        mut self,
        seed: u64,
        rate_milli: u32,
        start: u64,
        heal: Option<u64>,
    ) -> PartitionPlan {
        assert!(rate_milli <= 1000, "rate is in parts per thousand");
        self.flaky.push(FlakySpec {
            seed,
            rate_milli,
            start,
            heal,
        });
        self
    }

    /// The grid this plan is scripted over.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The scripted directed cuts, in insertion order.
    pub fn faults(&self) -> &[LinkFault] {
        &self.faults
    }

    /// The flaky-weather episodes, in insertion order.
    pub fn flaky(&self) -> &[FlakySpec] {
        &self.flaky
    }

    /// `true` if the plan scripts no cuts at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.flaky.is_empty()
    }

    /// The first round from which every cut has healed — the moment "link
    /// failures cease" that starts the stabilization clock. `None` if any
    /// cut or flaky episode never heals.
    pub fn heal_round(&self) -> Option<u64> {
        let mut heal = 0u64;
        for f in &self.faults {
            heal = heal.max(f.heal?);
        }
        for f in &self.flaky {
            heal = heal.max(f.heal?);
        }
        Some(heal)
    }

    /// Is the directed edge `from → to` cut during `round`? The scripted
    /// answer, independent of any expansion horizon.
    pub fn is_cut(&self, round: u64, from: CellId, to: CellId) -> bool {
        self.faults
            .iter()
            .any(|f| f.from == from && f.to == to && f.active(round))
            || self
                .flaky
                .iter()
                .any(|f| f.active(round) && f.cuts(round, from, to))
    }

    /// Expands the plan over rounds `0..rounds` into the flat per-round mask
    /// form both runtimes consume. Deterministic, and **prefix-stable**:
    /// `expand(n)` agrees with `expand(m)` on the first `min(n, m)` rounds.
    pub fn expand(&self, rounds: u64) -> PartitionSchedule {
        let n = self.dims.cell_count();
        let mut masks = vec![0u8; rounds as usize * n];
        let mut active = vec![false; rounds as usize];
        for round in 0..rounds {
            let row = &mut masks[round as usize * n..(round as usize + 1) * n];
            for f in self.faults.iter().filter(|f| f.active(round)) {
                apply_cut(self.dims, row, f.from, f.to);
            }
            for f in self.flaky.iter().filter(|f| f.active(round)) {
                for (k, mask) in row.iter_mut().enumerate() {
                    let to = self.dims.id_at(k);
                    for dir in Dir::ALL {
                        if let Some(from) = self.dims.neighbor(to, dir) {
                            if f.cuts(round, from, to) {
                                *mask |= 1 << dir_slot(dir);
                            }
                        }
                    }
                }
            }
            active[round as usize] = row.iter().any(|&m| m != 0);
        }
        PartitionSchedule {
            dims: self.dims,
            rounds,
            masks,
            active,
            zeros: vec![0u8; n],
        }
    }
}

/// The slot of `dir` in [`Dir::ALL`] — the bit the engine's neighbor masks
/// use for that direction.
fn dir_slot(dir: Dir) -> usize {
    Dir::ALL
        .iter()
        .position(|&d| d == dir)
        .expect("Dir::ALL covers every direction")
}

/// Sets the incoming-cut bit on `to`'s mask for the neighbor `from`.
fn apply_cut(dims: GridDims, row: &mut [u8], from: CellId, to: CellId) {
    let dir = to.dir_to(from).expect("cuts are validated as neighbor edges");
    row[dims.index(to)] |= 1 << dir_slot(dir);
}

/// A [`PartitionPlan`] expanded over a fixed horizon: for each round, one
/// **incoming-cut bitmask per cell** (bit `s` set ⇔ traffic from the
/// neighbor in `Dir::ALL[s]` is suppressed this round). This is the single
/// runtime-portable artifact: the engine masks its neighbor reads with it,
/// and the net transport suppresses exactly the announcements it marks, so
/// both runtimes see the identical degraded topology.
///
/// Rounds at or past the horizon read as fully healed (all-zero masks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSchedule {
    dims: GridDims,
    rounds: u64,
    /// Round-major: `masks[round * cell_count + k]` is cell `k`'s mask.
    masks: Vec<u8>,
    /// Per round: does any cut exist at all?
    active: Vec<bool>,
    /// The all-healed row returned beyond the horizon.
    zeros: Vec<u8>,
}

impl PartitionSchedule {
    /// The grid the schedule covers.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The expansion horizon (rounds `0..rounds` carry real masks).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The per-cell incoming-cut masks for `round` (all zeros at or past
    /// the horizon).
    pub fn mask_row(&self, round: u64) -> &[u8] {
        let n = self.zeros.len();
        if round < self.rounds {
            &self.masks[round as usize * n..(round as usize + 1) * n]
        } else {
            &self.zeros
        }
    }

    /// `true` if any link is cut during `round`.
    pub fn active(&self, round: u64) -> bool {
        round < self.rounds && self.active[round as usize]
    }

    /// Is the directed edge `from → to` cut during `round`?
    ///
    /// # Panics
    ///
    /// Panics if the cells are not neighbors or lie out of bounds.
    pub fn is_cut(&self, round: u64, from: CellId, to: CellId) -> bool {
        let dir = to.dir_to(from).expect("is_cut takes a neighbor edge");
        self.mask_row(round)[self.dims.index(to)] & (1 << dir_slot(dir)) != 0
    }

    /// Total directed cut-rounds over the horizon (one cut edge for one
    /// round counts once) — the partition-severity scalar reports quote.
    pub fn cut_edge_rounds(&self) -> u64 {
        self.masks.iter().map(|m| m.count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;
    use cellflow_grid::GridDims;

    fn config() -> SystemConfig {
        SystemConfig::new(
            GridDims::square(6),
            CellId::new(1, 5),
            Params::from_milli(250, 50, 200).unwrap(),
        )
        .unwrap()
        .with_source(CellId::new(1, 0))
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new()
            .burst(10, [CellId::new(2, 2), CellId::new(3, 3)], 5)
            .blackout(20, CellId::new(0, 0), CellId::new(1, 1), 3)
            .flapping(CellId::new(4, 4), 30, 2, 2)
            .kill_at(50, CellId::new(5, 5))
            .corrupt_at(55, CellId::new(2, 1), Corruption::Dist(Dist::Finite(0)));
        let census = plan.census();
        assert_eq!(census.crashes, 2 + 4 + 2);
        assert_eq!(census.recoveries, 2 + 4 + 2);
        assert_eq!(census.hard_crashes, 0);
        assert_eq!(census.kills, 1);
        assert_eq!(census.corruptions, 1);
        assert!(plan.has_kills());
        assert_eq!(plan.last_event_round(), Some(55));
    }

    #[test]
    fn events_at_preserves_insertion_order() {
        let plan = FaultPlan::new()
            .crash_at(3, CellId::new(1, 1))
            .recover_at(3, CellId::new(2, 2))
            .crash_at(3, CellId::new(0, 0));
        let at3: Vec<CellId> = plan.events_at(3).map(|e| e.cell).collect();
        assert_eq!(
            at3,
            vec![CellId::new(1, 1), CellId::new(2, 2), CellId::new(0, 0)]
        );
        assert_eq!(plan.events_at_for(3, CellId::new(0, 0)).count(), 1);
        assert_eq!(plan.events_at(4).count(), 0);
    }

    #[test]
    fn respawn_finds_next_recovery() {
        let c = CellId::new(2, 3);
        let plan = FaultPlan::new()
            .hard_crash_at(5, c)
            .recover_at(12, c)
            .hard_crash_at(20, c)
            .recover_at(33, c);
        assert_eq!(plan.respawn_round_after(c, 5), Some(12));
        assert_eq!(plan.respawn_round_after(c, 20), Some(33));
        assert_eq!(plan.respawn_round_after(c, 33), None);
        assert!(plan.hard_dead_at(7).contains(&c));
        assert!(!plan.hard_dead_at(12).contains(&c));
        assert!(plan.hard_dead_at(40).is_empty());
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let cfg = config();
        let spec = CampaignSpec::default();
        let a = FaultPlan::random_campaign(&cfg, &spec, 42);
        let b = FaultPlan::random_campaign(&cfg, &spec, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random_campaign(&cfg, &spec, 43);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
    }

    #[test]
    fn campaign_respects_protections_and_window() {
        let cfg = config();
        let spec = CampaignSpec {
            active_rounds: 60,
            kills: 1,
            ..CampaignSpec::default()
        };
        for seed in 0..20 {
            let plan = FaultPlan::random_campaign(&cfg, &spec, seed);
            for e in plan.events() {
                assert_ne!(e.cell, cfg.target(), "seed {seed}: target faulted");
                assert!(
                    !cfg.sources().contains(&e.cell),
                    "seed {seed}: source faulted"
                );
                assert!(e.round < 60, "seed {seed}: event outside active window");
            }
        }
    }

    #[test]
    fn corruption_registers_resolve_to_neighbors_or_bottom() {
        let cfg = config();
        let corner = CellId::new(0, 0);
        let mut cell = CellState::initial();
        // West of the corner is off-grid: the register resolves to ⊥.
        Corruption::Next(Some(Dir::West)).apply(&cfg, corner, &mut cell);
        assert_eq!(cell.next, None);
        Corruption::Next(Some(Dir::East)).apply(&cfg, corner, &mut cell);
        assert_eq!(cell.next, Some(CellId::new(1, 0)));
        // A mask selecting all four directions keeps only the on-grid two.
        Corruption::NePrev { mask: 0b1111 }.apply(&cfg, corner, &mut cell);
        assert_eq!(cell.ne_prev.len(), 2);
        assert!(cell.ne_prev.iter().all(|&n| corner.is_neighbor(n)));
    }

    #[test]
    fn corruption_respects_failed_and_target_pinning() {
        let cfg = config();
        let mut failed = CellState::initial();
        failed.failed = true;
        Corruption::Scramble { salt: 7 }.apply(&cfg, CellId::new(2, 2), &mut failed);
        assert_eq!(failed.dist, Dist::Infinity);
        assert_eq!(failed.next, None);
        assert_eq!(failed.signal, None);
        let mut target = CellState::initial_target();
        Corruption::Dist(Dist::Infinity).apply(&cfg, cfg.target(), &mut target);
        assert_eq!(target.dist, Dist::Finite(0), "live target anchor is pinned");
    }

    #[test]
    fn jostle_preserves_physical_well_formedness() {
        use crate::EntityId;
        use cellflow_geom::{sep_ok, Point};

        let cfg = config();
        let id = CellId::new(2, 2);
        let params = cfg.params();
        let mut cell = CellState::initial();
        // Two entities legally placed inside the cell.
        let c = id.center();
        cell.members.insert(EntityId(1), Point::new(c.x - params.d(), c.y));
        cell.members.insert(EntityId(2), Point::new(c.x + params.d(), c.y));
        for salt in 0..50u64 {
            let mut jostled = cell.clone();
            Corruption::Jostle { salt }.apply(&cfg, id, &mut jostled);
            assert_eq!(jostled.members.len(), 2);
            let pts: Vec<Point> = jostled.members.values().copied().collect();
            assert!(
                sep_ok(pts[0], pts[1], params.d()),
                "salt {salt}: separation violated"
            );
        }
        // Determinism: the same salt jostles identically.
        let (mut a, mut b) = (cell.clone(), cell.clone());
        Corruption::Jostle { salt: 9 }.apply(&cfg, id, &mut a);
        Corruption::Jostle { salt: 9 }.apply(&cfg, id, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scramble_sweep_salts_cells_distinctly() {
        let cells = [CellId::new(2, 2), CellId::new(3, 3)];
        let plan = FaultPlan::new().scramble_sweep(4, cells, 99);
        assert_eq!(plan.len(), 2);
        let salts: BTreeSet<u64> = plan
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::Corrupt(Corruption::Scramble { salt }) => salt,
                other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        assert_eq!(salts.len(), 2, "per-cell salts must differ");
        assert_eq!(
            plan,
            FaultPlan::new().scramble_sweep(4, cells, 99),
            "sweep is deterministic"
        );
    }

    #[test]
    fn campaign_corruptions_avoid_hard_victims() {
        let cfg = config();
        let spec = CampaignSpec {
            hard_crashes: 2,
            corruptions: 5,
            ..CampaignSpec::default()
        };
        for seed in 0..20 {
            let plan = FaultPlan::random_campaign(&cfg, &spec, seed);
            assert_eq!(plan.census().corruptions, 5, "seed {seed}");
            let hard: BTreeSet<CellId> = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::HardCrash | FaultKind::Kill))
                .map(|e| e.cell)
                .collect();
            for e in plan.events() {
                if matches!(e.kind, FaultKind::Corrupt(_)) {
                    assert!(!hard.contains(&e.cell), "seed {seed}: corrupted a dead cell");
                }
            }
        }
    }

    #[test]
    fn directed_cuts_are_asymmetric_and_interval_scoped() {
        let dims = GridDims::square(4);
        let (a, b) = (CellId::new(1, 1), CellId::new(2, 1));
        let plan = PartitionPlan::for_grid(dims).cut(a, b, 10, Some(20));
        let sched = plan.expand(30);
        for round in 0..30 {
            let expect = (10..20).contains(&round);
            assert_eq!(sched.is_cut(round, a, b), expect, "round {round}");
            assert!(!sched.is_cut(round, b, a), "reverse stays alive");
            assert_eq!(plan.is_cut(round, a, b), expect, "plan view agrees");
        }
        assert!(!sched.is_cut(100, a, b), "past the horizon reads healed");
        assert_eq!(sched.cut_edge_rounds(), 10);
        assert_eq!(plan.heal_round(), Some(20));
    }

    #[test]
    fn split_col_disconnects_the_grid_both_ways() {
        let dims = GridDims::square(4);
        let sched = PartitionPlan::for_grid(dims)
            .split_col(2, 5, Some(15))
            .expand(20);
        for j in 0..4 {
            let west = CellId::new(1, j);
            let east = CellId::new(2, j);
            assert!(sched.is_cut(7, west, east), "row {j} west->east");
            assert!(sched.is_cut(7, east, west), "row {j} east->west");
        }
        // Inside each half everything still flows.
        assert!(!sched.is_cut(7, CellId::new(0, 0), CellId::new(1, 0)));
        assert!(!sched.is_cut(7, CellId::new(2, 0), CellId::new(3, 0)));
        assert!(sched.active(7));
        assert!(!sched.active(15), "healed from the heal round on");
    }

    #[test]
    fn island_cuts_exactly_the_boundary() {
        let dims = GridDims::square(4);
        let sched = PartitionPlan::for_grid(dims)
            .island(CellId::new(1, 1), CellId::new(2, 2), 0, None)
            .expand(5);
        // Boundary edge: cut in both directions.
        assert!(sched.is_cut(0, CellId::new(0, 1), CellId::new(1, 1)));
        assert!(sched.is_cut(0, CellId::new(1, 1), CellId::new(0, 1)));
        // Interior edge of the island: alive.
        assert!(!sched.is_cut(0, CellId::new(1, 1), CellId::new(2, 1)));
        // Edge fully outside the island: alive.
        assert!(!sched.is_cut(0, CellId::new(0, 0), CellId::new(0, 1)));
        assert_eq!(
            PartitionPlan::for_grid(dims)
                .island(CellId::new(1, 1), CellId::new(2, 2), 0, None)
                .heal_round(),
            None
        );
    }

    #[test]
    fn flaky_expansion_is_prefix_stable_and_seed_deterministic() {
        let dims = GridDims::square(4);
        let plan = |seed| PartitionPlan::for_grid(dims).flaky_links(seed, 300, 0, Some(40));
        let a = plan(7).expand(40);
        let b = plan(7).expand(40);
        assert_eq!(a, b, "same seed, same schedule");
        // Prefix stability: a longer expansion agrees round for round.
        let long = plan(7).expand(80);
        for round in 0..40 {
            assert_eq!(a.mask_row(round), long.mask_row(round), "round {round}");
        }
        // A different seed cuts differently somewhere.
        assert_ne!(a, plan(8).expand(40));
        // The rate is roughly honored (300‰ over 48 directed edges × 40
        // rounds ≈ 576 expected cut-rounds; allow a wide band).
        let cuts = a.cut_edge_rounds();
        assert!((300..900).contains(&cuts), "cut-rounds {cuts} implausible");
    }

    #[test]
    fn flaky_rate_extremes() {
        let dims = GridDims::square(3);
        let calm = PartitionPlan::for_grid(dims)
            .flaky_links(1, 0, 0, None)
            .expand(10);
        assert_eq!(calm.cut_edge_rounds(), 0);
        let storm = PartitionPlan::for_grid(dims)
            .flaky_links(1, 1000, 0, None)
            .expand(10);
        // 3×3 grid: 24 directed edges, all cut every round.
        assert_eq!(storm.cut_edge_rounds(), 24 * 10);
    }

    #[test]
    fn plan_view_matches_expanded_view_under_mixed_episodes() {
        let dims = GridDims::square(4);
        let plan = PartitionPlan::for_grid(dims)
            .split_row(1, 3, Some(12))
            .cut(CellId::new(3, 3), CellId::new(3, 2), 0, Some(30))
            .flaky_links(99, 250, 8, Some(25));
        let sched = plan.expand(35);
        for round in 0..35 {
            for k in 0..dims.cell_count() {
                let to = dims.id_at(k);
                for dir in Dir::ALL {
                    if let Some(from) = dims.neighbor(to, dir) {
                        assert_eq!(
                            sched.is_cut(round, from, to),
                            plan.is_cut(round, from, to),
                            "round {round} edge {from}->{to}"
                        );
                    }
                }
            }
        }
        assert_eq!(plan.heal_round(), Some(30));
        assert!(!plan.is_empty());
        assert_eq!(plan.faults().len(), 1 + 8);
        assert_eq!(plan.flaky().len(), 1);
    }

    #[test]
    #[should_panic(expected = "not neighbors")]
    fn non_neighbor_cut_panics() {
        let _ = PartitionPlan::for_grid(GridDims::square(4)).cut(
            CellId::new(0, 0),
            CellId::new(2, 0),
            0,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "does not split")]
    fn split_outside_grid_panics() {
        let _ = PartitionPlan::for_grid(GridDims::square(4)).split_col(4, 0, None);
    }

    #[test]
    fn killed_at_tracks_only_kills() {
        let plan = FaultPlan::new()
            .hard_crash_at(5, CellId::new(1, 1))
            .kill_at(10, CellId::new(2, 2));
        assert!(plan.killed_at(7).is_empty(), "hard crashes are not kills");
        assert_eq!(
            plan.killed_at(10).into_iter().collect::<Vec<_>>(),
            vec![CellId::new(2, 2)]
        );
        assert!(plan.hard_dead_at(10).contains(&CellId::new(1, 1)));
    }

    #[test]
    fn campaign_keeps_hard_victims_exclusive() {
        let cfg = config();
        let spec = CampaignSpec {
            hard_crashes: 3,
            kills: 2,
            ..CampaignSpec::default()
        };
        for seed in 0..20 {
            let plan = FaultPlan::random_campaign(&cfg, &spec, seed);
            let hard: Vec<CellId> = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::HardCrash | FaultKind::Kill))
                .map(|e| e.cell)
                .collect();
            let unique: BTreeSet<CellId> = hard.iter().copied().collect();
            assert_eq!(hard.len(), unique.len(), "seed {seed}: duplicate victim");
            // No flag fault ever touches a hard victim.
            for e in plan.events() {
                if e.kind == FaultKind::Crash {
                    assert!(!unique.contains(&e.cell), "seed {seed}: overlap");
                }
            }
            // Every hard crash has a scripted respawn; kills never do.
            for e in plan.events() {
                match e.kind {
                    FaultKind::HardCrash => {
                        assert!(plan.respawn_round_after(e.cell, e.round).is_some())
                    }
                    FaultKind::Kill => {
                        assert!(plan.respawn_round_after(e.cell, e.round).is_none())
                    }
                    _ => {}
                }
            }
        }
    }
}
