//! Additional property tests for `Fixed` full multiplication/division and
//! the square primitives — the operations the first property file
//! (`props.rs`) doesn't cover.

use cellflow_geom::{Dir, Fixed, Point, Square};
use proptest::prelude::*;

/// Values small enough that products stay exact through the i128 widening.
fn fixed_mid() -> impl Strategy<Value = Fixed> {
    (-2_000_000_000i64..=2_000_000_000).prop_map(Fixed::from_raw)
}

fn fixed_nonzero() -> impl Strategy<Value = Fixed> {
    prop_oneof![
        (1i64..=2_000_000_000).prop_map(Fixed::from_raw),
        (-2_000_000_000i64..=-1).prop_map(Fixed::from_raw),
    ]
}

proptest! {
    #[test]
    fn mul_identity_and_zero(a in fixed_mid()) {
        prop_assert_eq!(a * Fixed::ONE, a);
        prop_assert_eq!(Fixed::ONE * a, a);
        prop_assert_eq!(a * Fixed::ZERO, Fixed::ZERO);
    }

    #[test]
    fn mul_commutes(a in fixed_mid(), b in fixed_mid()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_sign_rules(a in fixed_nonzero(), b in fixed_nonzero()) {
        let product = a * b;
        if product != Fixed::ZERO {
            prop_assert_eq!(product.signum(), a.signum() * b.signum());
        }
    }

    #[test]
    fn div_identity(a in fixed_mid()) {
        prop_assert_eq!(a / Fixed::ONE, a);
        prop_assert_eq!(a / 1i64, a);
    }

    #[test]
    fn self_division_is_one(a in fixed_nonzero()) {
        prop_assert_eq!(a / a, Fixed::ONE);
    }

    #[test]
    fn mul_div_round_trip_within_truncation(a in fixed_mid(), b in fixed_nonzero()) {
        // (a * b) / b equals a up to one unit of truncation per operation.
        let round_tripped = (a * b) / b;
        let err = (round_tripped - a).abs();
        // Each truncating op loses < 1 raw unit scaled by the operand ratio;
        // bound generously by the magnitude of b in whole units plus one.
        let bound = Fixed::from_raw(b.raw().abs() / 1_000_000 + 2);
        prop_assert!(err <= bound, "err {err} for a={a}, b={b}");
    }

    #[test]
    fn scalar_mul_matches_repeated_add(a in fixed_mid(), k in 0i64..=50) {
        let mut acc = Fixed::ZERO;
        for _ in 0..k {
            acc += a;
        }
        prop_assert_eq!(a * k, acc);
    }

    #[test]
    fn halve_bounds(a in fixed_mid()) {
        let h = a.halve();
        // h + h differs from a by at most one raw unit (odd truncation).
        prop_assert!((h + h - a).abs() <= Fixed::from_raw(1));
    }

    #[test]
    fn rem_decomposition(a in fixed_mid(), b in fixed_nonzero()) {
        // `%` follows the raw integers: |r| < |b|, r carries the dividend's
        // sign (or is zero), and a − r is an exact multiple of b.
        let r = a % b;
        prop_assert!(r.abs() < b.abs());
        if r != Fixed::ZERO {
            prop_assert_eq!(r.signum(), a.signum());
        }
        prop_assert_eq!((a - r).raw() % b.raw(), 0);
    }

    #[test]
    fn square_edges_are_consistent(
        x in -1_000_000i64..=1_000_000,
        y in -1_000_000i64..=1_000_000,
        side in 1i64..=1_000_000,
    ) {
        let s = Square::new(
            Point::new(Fixed::from_raw(x), Fixed::from_raw(y)),
            Fixed::from_raw(side),
        );
        prop_assert!(s.low_x() <= s.high_x());
        prop_assert!(s.low_y() <= s.high_y());
        // Width equals the side up to halving truncation.
        prop_assert!((s.high_x() - s.low_x() - s.side()).abs() <= Fixed::from_raw(1));
        for d in Dir::ALL {
            let e = s.edge_toward(d);
            prop_assert!(s.low_x() <= e || s.low_y() <= e);
        }
        prop_assert!(s.overlaps(s));
        prop_assert!(s.contained_in(s));
    }

    #[test]
    fn translated_square_still_contains_shrunk_self(
        x in -1_000_000i64..=1_000_000,
        side in 2i64..=1_000_000,
        step in 0i64..=1_000,
    ) {
        let outer = Square::new(
            Point::new(Fixed::from_raw(x), Fixed::ZERO),
            Fixed::from_raw(side),
        );
        let moved = outer.translate(Dir::East, Fixed::from_raw(step));
        // A square moved less than its half-side still overlaps itself.
        if Fixed::from_raw(step) < outer.half_side() {
            prop_assert!(outer.overlaps(moved));
        }
    }
}
