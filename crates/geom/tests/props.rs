//! Property-based tests for the geometry substrate.

use cellflow_geom::{sep_ok, Axis, Dir, Fixed, Point, Square};
use proptest::prelude::*;

/// Raw units kept small enough that sums/products never overflow `i64`.
fn fixed_small() -> impl Strategy<Value = Fixed> {
    (-1_000_000_000i64..=1_000_000_000).prop_map(Fixed::from_raw)
}

fn fixed_positive() -> impl Strategy<Value = Fixed> {
    (1i64..=1_000_000_000).prop_map(Fixed::from_raw)
}

fn point_small() -> impl Strategy<Value = Point> {
    (fixed_small(), fixed_small()).prop_map(|(x, y)| Point::new(x, y))
}

fn dir() -> impl Strategy<Value = Dir> {
    prop::sample::select(&Dir::ALL[..])
}

proptest! {
    #[test]
    fn add_commutes(a in fixed_small(), b in fixed_small()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associates(a in fixed_small(), b in fixed_small(), c in fixed_small()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn sub_is_add_neg(a in fixed_small(), b in fixed_small()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn scalar_mul_distributes(a in fixed_small(), b in fixed_small(), k in -1_000i64..=1_000) {
        prop_assert_eq!((a + b) * k, a * k + b * k);
    }

    #[test]
    fn display_parse_round_trip(a in fixed_small()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Fixed>().unwrap(), a);
    }

    #[test]
    fn ordering_respects_addition(a in fixed_small(), b in fixed_small(), c in fixed_small()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }

    #[test]
    fn abs_is_nonnegative(a in fixed_small()) {
        prop_assert!(a.abs() >= Fixed::ZERO);
        prop_assert_eq!(a.abs(), (-a).abs());
    }

    #[test]
    fn floor_cells_bounds(a in fixed_small()) {
        let fl = a.floor_cells();
        prop_assert!(Fixed::from_int(fl) <= a);
        prop_assert!(a < Fixed::from_int(fl + 1));
    }

    #[test]
    fn translate_round_trip(p in point_small(), d in dir(), step in fixed_positive()) {
        prop_assert_eq!(p.translate(d, step).translate(d.opposite(), step), p);
    }

    #[test]
    fn translate_changes_only_one_axis(p in point_small(), d in dir(), step in fixed_positive()) {
        let q = p.translate(d, step);
        match d.axis() {
            Axis::X => prop_assert_eq!(p.y, q.y),
            Axis::Y => prop_assert_eq!(p.x, q.x),
        }
        prop_assert_eq!(p.manhattan(q), step);
    }

    #[test]
    fn manhattan_symmetric(p in point_small(), q in point_small()) {
        prop_assert_eq!(p.manhattan(q), q.manhattan(p));
    }

    #[test]
    fn manhattan_triangle(p in point_small(), q in point_small(), r in point_small()) {
        prop_assert!(p.manhattan(r) <= p.manhattan(q) + q.manhattan(r));
    }

    #[test]
    fn sep_ok_symmetric(p in point_small(), q in point_small(), d in fixed_positive()) {
        prop_assert_eq!(sep_ok(p, q, d), sep_ok(q, p, d));
    }

    #[test]
    fn sep_ok_monotone_in_d(p in point_small(), q in point_small(), d in fixed_positive()) {
        // If separated at distance d, also separated at any smaller distance.
        if sep_ok(p, q, d) {
            prop_assert!(sep_ok(p, q, d.halve().max(Fixed::from_raw(1))));
        }
    }

    #[test]
    fn overlap_symmetric(
        p in point_small(),
        q in point_small(),
        s1 in fixed_positive(),
        s2 in fixed_positive(),
    ) {
        let a = Square::new(p, s1);
        let b = Square::new(q, s2);
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    #[test]
    fn separated_squares_do_not_overlap(
        p in point_small(),
        q in point_small(),
        side in fixed_positive(),
        gap in fixed_positive(),
    ) {
        // If centers are >= side + gap apart on some axis, the l×l squares are disjoint.
        let d = side + gap;
        if sep_ok(p, q, d) {
            let a = Square::new(p, side);
            let b = Square::new(q, side);
            prop_assert!(!a.overlaps(b));
        }
    }

    #[test]
    fn containment_shrinks(p in point_small(), side in fixed_positive(), shrink in fixed_positive()) {
        let outer = Square::new(p, side + shrink);
        let inner = Square::new(p, side);
        prop_assert!(inner.contained_in(outer));
        if shrink > Fixed::ZERO {
            prop_assert!(!outer.contained_in(inner));
        }
    }
}
