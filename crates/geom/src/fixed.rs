//! The [`Fixed`] exact fixed-point scalar.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

/// Number of [`Fixed`] units per cell side (one million).
const SCALE: i64 = 1_000_000;

/// An exact fixed-point scalar with a resolution of `1/1_000_000` of a cell side.
///
/// The paper's positions, entity length `l`, safety gap `rs`, and velocity `v`
/// are all real numbers, but the only values ever produced by the protocol are
/// of the form `i + l/2 + k·v` for integers `i, k`. Storing them in micro-cell
/// units keeps every computation exact: no floating-point drift over long
/// executions, bitwise-reproducible simulations, and hashable states for the
/// model checker.
///
/// `Fixed` implements the usual arithmetic operators. Addition, subtraction and
/// negation are exact; multiplication and division of two `Fixed` values
/// rescale through 128-bit intermediates and truncate toward zero (they are
/// only used for derived statistics, never in the protocol itself).
///
/// # Examples
///
/// ```
/// use cellflow_geom::Fixed;
///
/// let v = Fixed::from_milli(100); // 0.1 cells per round
/// let travelled = v * 25;         // after 25 rounds
/// assert_eq!(travelled, Fixed::from_milli(2_500));
/// assert_eq!(travelled.to_string(), "2.5");
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fixed(i64);

impl Fixed {
    /// The additive identity (`0.0`).
    pub const ZERO: Fixed = Fixed(0);
    /// One cell side (`1.0`).
    pub const ONE: Fixed = Fixed(SCALE);
    /// Half a cell side (`0.5`).
    pub const HALF: Fixed = Fixed(SCALE / 2);
    /// Largest representable value.
    pub const MAX: Fixed = Fixed(i64::MAX);
    /// Smallest representable value.
    pub const MIN: Fixed = Fixed(i64::MIN);

    /// Creates a value from raw micro-cell units (`1_000_000` = one cell).
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!(Fixed::from_raw(250_000), Fixed::from_milli(250));
    /// ```
    #[inline]
    pub const fn from_raw(units: i64) -> Fixed {
        Fixed(units)
    }

    /// Creates a value from whole cells.
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!(Fixed::from_int(3) + Fixed::HALF, Fixed::from_milli(3_500));
    /// ```
    #[inline]
    pub const fn from_int(cells: i64) -> Fixed {
        Fixed(cells * SCALE)
    }

    /// Creates a value from thousandths of a cell (`250` → `0.25`).
    ///
    /// Handy because every parameter in the paper's evaluation is a multiple of
    /// `0.001`.
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!(Fixed::from_milli(50).to_f64(), 0.05);
    /// ```
    #[inline]
    pub const fn from_milli(milli_cells: i64) -> Fixed {
        Fixed(milli_cells * (SCALE / 1_000))
    }

    /// Returns the raw micro-cell units.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Converts to `f64` (for reporting only; may round for huge magnitudes).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Converts from `f64`, requiring the value to be exactly representable.
    ///
    /// # Errors
    ///
    /// Returns [`TryFromF64Error`] if `x` is non-finite, out of range, or not an
    /// exact multiple of `1e-6`.
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!(Fixed::try_from_f64(0.25)?, Fixed::from_milli(250));
    /// assert!(Fixed::try_from_f64(f64::NAN).is_err());
    /// # Ok::<(), cellflow_geom::TryFromF64Error>(())
    /// ```
    pub fn try_from_f64(x: f64) -> Result<Fixed, TryFromF64Error> {
        if !x.is_finite() {
            return Err(TryFromF64Error::NotFinite);
        }
        let scaled = x * SCALE as f64;
        if scaled.abs() > i64::MAX as f64 / 2.0 {
            return Err(TryFromF64Error::OutOfRange);
        }
        let rounded = scaled.round();
        if (scaled - rounded).abs() > 1e-6 {
            return Err(TryFromF64Error::NotRepresentable);
        }
        Ok(Fixed(rounded as i64))
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is [`Fixed::MIN`] (mirrors `i64::abs`).
    #[inline]
    pub const fn abs(self) -> Fixed {
        Fixed(self.0.abs())
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Fixed) -> Fixed {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Fixed) -> Fixed {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Fixed) -> Option<Fixed> {
        self.0.checked_add(rhs.0).map(Fixed)
    }

    /// Checked subtraction; `None` on overflow.
    #[inline]
    pub fn checked_sub(self, rhs: Fixed) -> Option<Fixed> {
        self.0.checked_sub(rhs.0).map(Fixed)
    }

    /// `true` if the value is an exact whole number of cells.
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert!(Fixed::from_int(7).is_integral());
    /// assert!(!Fixed::HALF.is_integral());
    /// ```
    #[inline]
    pub const fn is_integral(self) -> bool {
        self.0 % SCALE == 0
    }

    /// The largest whole number of cells `≤ self` (floor division).
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!(Fixed::from_milli(2_700).floor_cells(), 2);
    /// assert_eq!(Fixed::from_milli(-300).floor_cells(), -1);
    /// ```
    #[inline]
    pub const fn floor_cells(self) -> i64 {
        self.0.div_euclid(SCALE)
    }

    /// Half of the value, truncating toward zero on odd raw units.
    ///
    /// Used for `l/2` (entity half-length); all paper parameters are even in
    /// micro-units so this is exact in practice.
    #[inline]
    pub const fn halve(self) -> Fixed {
        Fixed(self.0 / 2)
    }

    /// Sign: `-1`, `0`, or `1`.
    #[inline]
    pub const fn signum(self) -> i64 {
        self.0.signum()
    }
}

impl Add for Fixed {
    type Output = Fixed;
    #[inline]
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 + rhs.0)
    }
}

impl AddAssign for Fixed {
    #[inline]
    fn add_assign(&mut self, rhs: Fixed) {
        self.0 += rhs.0;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    #[inline]
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 - rhs.0)
    }
}

impl SubAssign for Fixed {
    #[inline]
    fn sub_assign(&mut self, rhs: Fixed) {
        self.0 -= rhs.0;
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    #[inline]
    fn neg(self) -> Fixed {
        Fixed(-self.0)
    }
}

impl Mul<i64> for Fixed {
    type Output = Fixed;
    #[inline]
    fn mul(self, rhs: i64) -> Fixed {
        Fixed(self.0 * rhs)
    }
}

impl Mul<Fixed> for i64 {
    type Output = Fixed;
    #[inline]
    fn mul(self, rhs: Fixed) -> Fixed {
        rhs * self
    }
}

impl MulAssign<i64> for Fixed {
    #[inline]
    fn mul_assign(&mut self, rhs: i64) {
        self.0 *= rhs;
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    /// Full fixed-point product, truncating toward zero.
    #[inline]
    fn mul(self, rhs: Fixed) -> Fixed {
        let wide = self.0 as i128 * rhs.0 as i128 / SCALE as i128;
        Fixed(wide as i64)
    }
}

impl Div for Fixed {
    type Output = Fixed;
    /// Full fixed-point quotient, truncating toward zero.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: Fixed) -> Fixed {
        let wide = self.0 as i128 * SCALE as i128 / rhs.0 as i128;
        Fixed(wide as i64)
    }
}

impl Div<i64> for Fixed {
    type Output = Fixed;
    /// Divides by an integer, truncating toward zero.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    fn div(self, rhs: i64) -> Fixed {
        Fixed(self.0 / rhs)
    }
}

impl Rem for Fixed {
    type Output = Fixed;
    /// Remainder with the sign of the dividend.
    ///
    /// # Panics
    ///
    /// Panics on a zero divisor.
    #[inline]
    fn rem(self, rhs: Fixed) -> Fixed {
        Fixed(self.0 % rhs.0)
    }
}

impl Sum for Fixed {
    fn sum<I: Iterator<Item = Fixed>>(iter: I) -> Fixed {
        iter.fold(Fixed::ZERO, Add::add)
    }
}

impl From<i32> for Fixed {
    /// Whole cells → `Fixed` (mirrors [`Fixed::from_int`]).
    #[inline]
    fn from(cells: i32) -> Fixed {
        Fixed::from_int(cells as i64)
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({self})")
    }
}

impl fmt::Display for Fixed {
    /// Renders as a decimal with trailing zeros trimmed, e.g. `0.25`, `-1.5`, `3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let mag = self.0.unsigned_abs();
        let whole = mag / SCALE as u64;
        let frac = mag % SCALE as u64;
        if frac == 0 {
            write!(f, "{sign}{whole}")
        } else {
            let digits = format!("{frac:06}");
            write!(f, "{sign}{whole}.{}", digits.trim_end_matches('0'))
        }
    }
}

impl FromStr for Fixed {
    type Err = FixedParseError;

    /// Parses a decimal literal with at most six fractional digits.
    ///
    /// ```
    /// use cellflow_geom::Fixed;
    /// assert_eq!("0.25".parse::<Fixed>()?, Fixed::from_milli(250));
    /// assert_eq!("-1.5".parse::<Fixed>()?, -Fixed::from_milli(1_500));
    /// assert!("0.1234567".parse::<Fixed>().is_err());
    /// # Ok::<(), cellflow_geom::FixedParseError>(())
    /// ```
    fn from_str(s: &str) -> Result<Fixed, FixedParseError> {
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i64, rest),
            None => (1i64, s),
        };
        if body.is_empty() {
            return Err(FixedParseError);
        }
        let (whole_str, frac_str) = match body.split_once('.') {
            Some((w, fr)) => (w, fr),
            None => (body, ""),
        };
        if frac_str.len() > 6 {
            return Err(FixedParseError);
        }
        if !whole_str.bytes().all(|b| b.is_ascii_digit())
            || !frac_str.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(FixedParseError);
        }
        let whole: i64 = if whole_str.is_empty() {
            0
        } else {
            whole_str.parse().map_err(|_| FixedParseError)?
        };
        let frac: i64 = if frac_str.is_empty() {
            0
        } else {
            let padded = format!("{frac_str:0<6}");
            padded.parse().map_err(|_| FixedParseError)?
        };
        whole
            .checked_mul(SCALE)
            .and_then(|w| w.checked_add(frac))
            .and_then(|m| m.checked_mul(sign))
            .map(Fixed)
            .ok_or(FixedParseError)
    }
}

/// Error returned when parsing a [`Fixed`] from a string fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedParseError;

impl fmt::Display for FixedParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(
            "invalid fixed-point literal (expected decimal with at most 6 fractional digits)",
        )
    }
}

impl std::error::Error for FixedParseError {}

/// Error returned by [`Fixed::try_from_f64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryFromF64Error {
    /// Input was NaN or infinite.
    NotFinite,
    /// Input magnitude exceeds the representable range.
    OutOfRange,
    /// Input is not an exact multiple of `1e-6` cells.
    NotRepresentable,
}

impl fmt::Display for TryFromF64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TryFromF64Error::NotFinite => "value is not finite",
            TryFromF64Error::OutOfRange => "value is out of the representable range",
            TryFromF64Error::NotRepresentable => "value is not a multiple of 1e-6 cells",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TryFromF64Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Fixed::from_int(1), Fixed::ONE);
        assert_eq!(Fixed::from_milli(1_000), Fixed::ONE);
        assert_eq!(Fixed::from_raw(1_000_000), Fixed::ONE);
        assert_eq!(Fixed::from_milli(500), Fixed::HALF);
    }

    #[test]
    fn paper_parameters_are_exact() {
        for (milli, f) in [(50, 0.05), (100, 0.1), (200, 0.2), (250, 0.25)] {
            assert_eq!(Fixed::from_milli(milli).to_f64(), f);
            assert_eq!(Fixed::try_from_f64(f).unwrap(), Fixed::from_milli(milli));
        }
    }

    #[test]
    fn arithmetic_basics() {
        let a = Fixed::from_milli(300);
        let b = Fixed::from_milli(200);
        assert_eq!(a + b, Fixed::HALF);
        assert_eq!(a - b, Fixed::from_milli(100));
        assert_eq!(-a, Fixed::from_milli(-300));
        assert_eq!(a * 3, Fixed::from_milli(900));
        assert_eq!(3 * a, Fixed::from_milli(900));
        assert_eq!(a * b, Fixed::from_milli(60)); // 0.3 * 0.2 = 0.06
        assert_eq!(a / b, Fixed::from_milli(1_500)); // 0.3 / 0.2 = 1.5
        assert_eq!(a / 2, Fixed::from_milli(150));
        assert_eq!(a % b, Fixed::from_milli(100));
    }

    #[test]
    fn assign_ops() {
        let mut x = Fixed::ONE;
        x += Fixed::HALF;
        assert_eq!(x, Fixed::from_milli(1_500));
        x -= Fixed::ONE;
        assert_eq!(x, Fixed::HALF);
        x *= 4;
        assert_eq!(x, Fixed::from_int(2));
    }

    #[test]
    fn min_max_abs_signum() {
        let a = Fixed::from_milli(-300);
        let b = Fixed::from_milli(200);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Fixed::from_milli(300));
        assert_eq!(a.signum(), -1);
        assert_eq!(Fixed::ZERO.signum(), 0);
        assert_eq!(b.signum(), 1);
    }

    #[test]
    fn floor_and_integral() {
        assert_eq!(Fixed::from_milli(2_700).floor_cells(), 2);
        assert_eq!(Fixed::from_milli(-300).floor_cells(), -1);
        assert_eq!(Fixed::from_int(-2).floor_cells(), -2);
        assert!(Fixed::from_int(5).is_integral());
        assert!(!Fixed::from_milli(5_001).is_integral());
    }

    #[test]
    fn halve_is_exact_for_even_units() {
        assert_eq!(Fixed::from_milli(250).halve(), Fixed::from_milli(125));
        assert_eq!(Fixed::ONE.halve(), Fixed::HALF);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert_eq!(Fixed::MAX.checked_add(Fixed::ONE), None);
        assert_eq!(Fixed::MIN.checked_sub(Fixed::ONE), None);
        assert_eq!(Fixed::ONE.checked_add(Fixed::ONE), Some(Fixed::from_int(2)));
    }

    #[test]
    fn display_round_trip() {
        for raw in [0, 1, -1, 250_000, -250_000, 1_000_000, 123_456_789, -42] {
            let x = Fixed::from_raw(raw);
            let s = x.to_string();
            assert_eq!(s.parse::<Fixed>().unwrap(), x, "round-trip of {s}");
        }
        assert_eq!(Fixed::from_milli(250).to_string(), "0.25");
        assert_eq!(Fixed::from_milli(-1_500).to_string(), "-1.5");
        assert_eq!(Fixed::from_int(3).to_string(), "3");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "-", "1.2.3", "abc", "0.1234567", "--1"] {
            assert!(bad.parse::<Fixed>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn try_from_f64_rejects_bad_values() {
        assert_eq!(
            Fixed::try_from_f64(f64::NAN),
            Err(TryFromF64Error::NotFinite)
        );
        assert_eq!(
            Fixed::try_from_f64(f64::INFINITY),
            Err(TryFromF64Error::NotFinite)
        );
        assert_eq!(Fixed::try_from_f64(1e300), Err(TryFromF64Error::OutOfRange));
        assert_eq!(
            Fixed::try_from_f64(1e-9),
            Err(TryFromF64Error::NotRepresentable)
        );
    }

    #[test]
    fn sum_folds() {
        let total: Fixed = (1..=4).map(Fixed::from_int).sum();
        assert_eq!(total, Fixed::from_int(10));
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Fixed::HALF), "Fixed(0.5)");
    }
}
