//! Axis-aligned square footprints and the paper's separation predicate.

use core::fmt;

use crate::{Axis, Dir, Fixed, Point};

/// An axis-aligned square with a given center and side length.
///
/// Both entities (`l × l`) and cells (`1 × 1`) in the paper are axis-aligned
/// squares; this type provides their edge coordinates and overlap tests.
///
/// ```
/// use cellflow_geom::{Fixed, Point, Square};
///
/// let entity = Square::new(Point::new(Fixed::HALF, Fixed::HALF), Fixed::from_milli(250));
/// assert_eq!(entity.low_x(), Fixed::from_milli(375));
/// assert_eq!(entity.high_x(), Fixed::from_milli(625));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Square {
    center: Point,
    side: Fixed,
}

impl Square {
    /// Creates a square from its center and side length.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not positive.
    #[inline]
    pub fn new(center: Point, side: Fixed) -> Square {
        assert!(
            side > Fixed::ZERO,
            "square side must be positive, got {side}"
        );
        Square { center, side }
    }

    /// The unit cell square whose bottom-left corner is `(i, j)`.
    ///
    /// ```
    /// use cellflow_geom::{Fixed, Square};
    /// let cell = Square::unit_cell(2, 3);
    /// assert_eq!(cell.low_x(), Fixed::from_int(2));
    /// assert_eq!(cell.high_y(), Fixed::from_int(4));
    /// ```
    #[inline]
    pub fn unit_cell(i: i64, j: i64) -> Square {
        Square {
            center: Point::new(
                Fixed::from_int(i) + Fixed::HALF,
                Fixed::from_int(j) + Fixed::HALF,
            ),
            side: Fixed::ONE,
        }
    }

    /// The square's center.
    #[inline]
    pub const fn center(self) -> Point {
        self.center
    }

    /// The square's side length.
    #[inline]
    pub const fn side(self) -> Fixed {
        self.side
    }

    /// Half the side length (distance from center to an edge).
    #[inline]
    pub fn half_side(self) -> Fixed {
        self.side.halve()
    }

    /// Left edge `x` coordinate.
    #[inline]
    pub fn low_x(self) -> Fixed {
        self.center.x - self.half_side()
    }

    /// Right edge `x` coordinate.
    #[inline]
    pub fn high_x(self) -> Fixed {
        self.center.x + self.half_side()
    }

    /// Bottom edge `y` coordinate.
    #[inline]
    pub fn low_y(self) -> Fixed {
        self.center.y - self.half_side()
    }

    /// Top edge `y` coordinate.
    #[inline]
    pub fn high_y(self) -> Fixed {
        self.center.y + self.half_side()
    }

    /// Low edge coordinate along `axis`.
    #[inline]
    pub fn low(self, axis: Axis) -> Fixed {
        self.center.along(axis) - self.half_side()
    }

    /// High edge coordinate along `axis`.
    #[inline]
    pub fn high(self, axis: Axis) -> Fixed {
        self.center.along(axis) + self.half_side()
    }

    /// The edge coordinate facing direction `dir` (e.g. `East` → right edge).
    #[inline]
    pub fn edge_toward(self, dir: Dir) -> Fixed {
        if dir.sign() > 0 {
            self.high(dir.axis())
        } else {
            self.low(dir.axis())
        }
    }

    /// The square moved by `distance` in direction `dir`.
    #[inline]
    pub fn translate(self, dir: Dir, distance: Fixed) -> Square {
        Square {
            center: self.center.translate(dir, distance),
            side: self.side,
        }
    }

    /// `true` if the two squares' interiors intersect (shared edges do not count).
    ///
    /// ```
    /// use cellflow_geom::{Fixed, Point, Square};
    /// let a = Square::new(Point::new(Fixed::ZERO, Fixed::ZERO), Fixed::ONE);
    /// let touching = Square::new(Point::new(Fixed::ONE, Fixed::ZERO), Fixed::ONE);
    /// let overlapping = Square::new(Point::new(Fixed::HALF, Fixed::ZERO), Fixed::ONE);
    /// assert!(!a.overlaps(touching));
    /// assert!(a.overlaps(overlapping));
    /// ```
    #[inline]
    pub fn overlaps(self, other: Square) -> bool {
        self.low_x() < other.high_x()
            && other.low_x() < self.high_x()
            && self.low_y() < other.high_y()
            && other.low_y() < self.high_y()
    }

    /// `true` if this square lies entirely within `outer` (edges may touch).
    ///
    /// This is the paper's Invariant 1 check: an entity's `l × l` footprint
    /// never protrudes outside its cell.
    #[inline]
    pub fn contained_in(self, outer: Square) -> bool {
        outer.low_x() <= self.low_x()
            && self.high_x() <= outer.high_x()
            && outer.low_y() <= self.low_y()
            && self.high_y() <= outer.high_y()
    }
}

impl fmt::Display for Square {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} ± {}]", self.center, self.half_side())
    }
}

/// The paper's center-separation predicate: `|px − qx| ≥ d ∨ |py − qy| ≥ d`.
///
/// Two entity centers are *adequately separated* if they differ by at least the
/// center-spacing requirement `d = rs + l` along at least one axis. With equal
/// `l × l` footprints this guarantees an edge-to-edge clearance of `rs` along
/// that axis.
///
/// ```
/// use cellflow_geom::{sep_ok, Fixed, Point};
///
/// let d = Fixed::from_milli(300);
/// let p = Point::new(Fixed::HALF, Fixed::HALF);
/// let near = Point::new(Fixed::from_milli(700), Fixed::from_milli(600));
/// let far_x = Point::new(Fixed::from_milli(800), Fixed::HALF);
/// assert!(!sep_ok(p, near, d)); // within d on both axes
/// assert!(sep_ok(p, far_x, d)); // ≥ d apart along x
/// ```
#[inline]
pub fn sep_ok(p: Point, q: Point, d: Fixed) -> bool {
    let (dx, dy) = p.abs_diff(q);
    dx >= d || dy >= d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(xm: i64, ym: i64, side_m: i64) -> Square {
        Square::new(
            Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym)),
            Fixed::from_milli(side_m),
        )
    }

    #[test]
    fn edges() {
        let s = sq(500, 500, 250);
        assert_eq!(s.low_x(), Fixed::from_milli(375));
        assert_eq!(s.high_x(), Fixed::from_milli(625));
        assert_eq!(s.low_y(), Fixed::from_milli(375));
        assert_eq!(s.high_y(), Fixed::from_milli(625));
        assert_eq!(s.edge_toward(Dir::East), s.high_x());
        assert_eq!(s.edge_toward(Dir::West), s.low_x());
        assert_eq!(s.edge_toward(Dir::North), s.high_y());
        assert_eq!(s.edge_toward(Dir::South), s.low_y());
    }

    #[test]
    #[should_panic(expected = "side must be positive")]
    fn zero_side_panics() {
        let _ = sq(0, 0, 0);
    }

    #[test]
    fn overlap_is_symmetric_and_strict() {
        let a = sq(500, 500, 1_000);
        let touching = sq(1_500, 500, 1_000);
        let overlapping = sq(1_400, 500, 1_000);
        let diagonal = sq(1_400, 1_400, 1_000);
        assert!(!a.overlaps(touching));
        assert!(!touching.overlaps(a));
        assert!(a.overlaps(overlapping));
        assert!(overlapping.overlaps(a));
        assert!(a.overlaps(diagonal));
        assert!(a.overlaps(a));
    }

    #[test]
    fn containment_in_unit_cell() {
        let cell = Square::unit_cell(1, 2);
        // Entity centered in the cell.
        let inside = sq(1_500, 2_500, 250);
        // Entity touching the cell's left edge from inside.
        let flush = sq(1_125, 2_500, 250);
        // Entity protruding past the left edge.
        let outside = sq(1_100, 2_500, 250);
        assert!(inside.contained_in(cell));
        assert!(flush.contained_in(cell));
        assert!(!outside.contained_in(cell));
        assert!(cell.contained_in(cell));
    }

    #[test]
    fn translate_moves_center_only() {
        let s = sq(500, 500, 250);
        let t = s.translate(Dir::North, Fixed::from_milli(100));
        assert_eq!(t.center(), Point::new(Fixed::HALF, Fixed::from_milli(600)));
        assert_eq!(t.side(), s.side());
    }

    #[test]
    fn sep_ok_boundary_cases() {
        let d = Fixed::from_milli(300);
        let p = Point::new(Fixed::ZERO, Fixed::ZERO);
        // Exactly d along x: allowed.
        assert!(sep_ok(
            p,
            Point::new(Fixed::from_milli(300), Fixed::ZERO),
            d
        ));
        // One micro-unit less than d on both axes: violation.
        let eps = Fixed::from_raw(1);
        let near = Point::new(Fixed::from_milli(300) - eps, Fixed::from_milli(300) - eps);
        assert!(!sep_ok(p, near, d));
        // Far along y only.
        assert!(sep_ok(
            p,
            Point::new(Fixed::ZERO, Fixed::from_milli(300)),
            d
        ));
        // Coincident points are never separated.
        assert!(!sep_ok(p, p, d));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(sq(500, 500, 250).to_string(), "[(0.5, 0.5) ± 0.125]");
    }
}
