//! Cardinal directions and axes on the partitioned plane.

use core::fmt;

/// One of the two coordinate axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Axis {
    /// The horizontal (`x`) axis.
    X,
    /// The vertical (`y`) axis.
    Y,
}

/// A cardinal direction of motion on the grid.
///
/// In the paper a cell moves its entities toward one of its four neighbors;
/// `Dir` names that relationship. `East` increases `x` (column index `i`),
/// `North` increases `y` (row index `j`), matching the paper's coordinate
/// system where cell `⟨i,j⟩` occupies the unit square with bottom-left corner
/// `(i, j)`.
///
/// ```
/// use cellflow_geom::{Axis, Dir};
///
/// assert_eq!(Dir::East.offset(), (1, 0));
/// assert_eq!(Dir::East.opposite(), Dir::West);
/// assert_eq!(Dir::North.axis(), Axis::Y);
/// assert!(Dir::East.is_turn_from(Dir::North));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Dir {
    /// Toward increasing `x` (neighbor `⟨i+1, j⟩`).
    East,
    /// Toward decreasing `x` (neighbor `⟨i−1, j⟩`).
    West,
    /// Toward increasing `y` (neighbor `⟨i, j+1⟩`).
    North,
    /// Toward decreasing `y` (neighbor `⟨i, j−1⟩`).
    South,
}

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// The `(Δi, Δj)` cell-index offset of the neighbor in this direction.
    #[inline]
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Dir::East => (1, 0),
            Dir::West => (-1, 0),
            Dir::North => (0, 1),
            Dir::South => (0, -1),
        }
    }

    /// The reverse direction.
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
        }
    }

    /// The axis along which this direction moves.
    #[inline]
    pub const fn axis(self) -> Axis {
        match self {
            Dir::East | Dir::West => Axis::X,
            Dir::North | Dir::South => Axis::Y,
        }
    }

    /// `+1` if this direction increases its axis coordinate, `-1` otherwise.
    #[inline]
    pub const fn sign(self) -> i64 {
        match self {
            Dir::East | Dir::North => 1,
            Dir::West | Dir::South => -1,
        }
    }

    /// `true` if moving from heading `prev` to `self` is a 90° turn.
    ///
    /// Used when counting path complexity for the paper's Figure 8 experiment.
    #[inline]
    pub fn is_turn_from(self, prev: Dir) -> bool {
        self.axis() != prev.axis()
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::East => "east",
            Dir::West => "west",
            Dir::North => "north",
            Dir::South => "south",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::X => "x",
            Axis::Y => "y",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn offsets_are_unit_steps() {
        for d in Dir::ALL {
            let (di, dj) = d.offset();
            assert_eq!(di.abs() + dj.abs(), 1);
            let (oi, oj) = d.opposite().offset();
            assert_eq!((di + oi, dj + oj), (0, 0));
        }
    }

    #[test]
    fn axis_and_sign_consistent_with_offset() {
        for d in Dir::ALL {
            let (di, dj) = d.offset();
            match d.axis() {
                Axis::X => {
                    assert_eq!(di as i64, d.sign());
                    assert_eq!(dj, 0);
                }
                Axis::Y => {
                    assert_eq!(dj as i64, d.sign());
                    assert_eq!(di, 0);
                }
            }
        }
    }

    #[test]
    fn turns_only_across_axes() {
        assert!(Dir::East.is_turn_from(Dir::North));
        assert!(Dir::South.is_turn_from(Dir::West));
        assert!(!Dir::East.is_turn_from(Dir::West));
        assert!(!Dir::North.is_turn_from(Dir::North));
    }

    #[test]
    fn display_names() {
        assert_eq!(Dir::East.to_string(), "east");
        assert_eq!(Axis::Y.to_string(), "y");
    }
}
