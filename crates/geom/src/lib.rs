//! Exact fixed-point planar geometry for distributed cellular flows.
//!
//! This crate is the geometric substrate of the `cellular-flows` workspace, a
//! reproduction of *"Safe and Stabilizing Distributed Cellular Flows"* (Johnson,
//! Mitra, Manamcheri; ICDCS 2010). The paper models vehicles ("entities") as
//! `l × l` squares with centers in the Euclidean plane, moving in steps of an
//! exact velocity `v` inside unit-square cells.
//!
//! All coordinates here use [`Fixed`], an exact fixed-point scalar with a
//! resolution of one millionth of a cell side. Every parameter value used in the
//! paper's evaluation (`0.05`, `0.1`, `0.2`, `0.25`, …) is representable exactly,
//! so 20 000-round simulations are bit-reproducible and system states are
//! hashable — a requirement of the explicit-state model checker in
//! `cellflow-dts`.
//!
//! # Quick example
//!
//! ```
//! use cellflow_geom::{Fixed, Point, Dir, sep_ok};
//!
//! // Entity length l = 0.25, safety gap rs = 0.05 → center spacing d = 0.3.
//! let l = Fixed::from_milli(250);
//! let rs = Fixed::from_milli(50);
//! let d = l + rs;
//!
//! let p = Point::new(Fixed::from_milli(1_500), Fixed::from_milli(500));
//! let q = p.translate(Dir::East, d);
//! assert!(sep_ok(p, q, d)); // spaced exactly d apart along x
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod direction;
mod fixed;
mod point;
mod square;

pub use direction::{Axis, Dir};
pub use fixed::{Fixed, FixedParseError, TryFromF64Error};
pub use point::Point;
pub use square::{sep_ok, Square};
