//! Exact points in the partitioned plane.

use core::fmt;

use crate::{Axis, Dir, Fixed};

/// An exact position `(x, y)` in the plane, in cell-side units.
///
/// Entity centers in the paper are points `(px, py) ∈ ℝ²`; here both
/// coordinates are [`Fixed`], so positions are exact and hashable.
///
/// ```
/// use cellflow_geom::{Dir, Fixed, Point};
///
/// let p = Point::new(Fixed::from_milli(1_125), Fixed::HALF);
/// let q = p.translate(Dir::East, Fixed::from_milli(100));
/// assert_eq!(q.x, Fixed::from_milli(1_225));
/// assert_eq!(q.y, p.y);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (the paper's `px`).
    pub x: Fixed,
    /// Vertical coordinate (the paper's `py`).
    pub y: Fixed,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: Fixed, y: Fixed) -> Point {
        Point { x, y }
    }

    /// The point moved by `distance` in direction `dir`.
    #[inline]
    pub fn translate(self, dir: Dir, distance: Fixed) -> Point {
        let delta = distance * dir.sign();
        match dir.axis() {
            Axis::X => Point::new(self.x + delta, self.y),
            Axis::Y => Point::new(self.x, self.y + delta),
        }
    }

    /// The coordinate along `axis`.
    #[inline]
    pub fn along(self, axis: Axis) -> Fixed {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
        }
    }

    /// Replaces the coordinate along `axis`, returning the new point.
    #[inline]
    pub fn with_along(self, axis: Axis, value: Fixed) -> Point {
        match axis {
            Axis::X => Point::new(value, self.y),
            Axis::Y => Point::new(self.x, value),
        }
    }

    /// Component-wise absolute difference `(|Δx|, |Δy|)`.
    #[inline]
    pub fn abs_diff(self, other: Point) -> (Fixed, Fixed) {
        ((self.x - other.x).abs(), (self.y - other.y).abs())
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use cellflow_geom::{Fixed, Point};
    /// let a = Point::new(Fixed::ZERO, Fixed::ZERO);
    /// let b = Point::new(Fixed::ONE, Fixed::HALF);
    /// assert_eq!(a.manhattan(b), Fixed::from_milli(1_500));
    /// ```
    #[inline]
    pub fn manhattan(self, other: Point) -> Fixed {
        let (dx, dy) = self.abs_diff(other);
        dx + dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(xm: i64, ym: i64) -> Point {
        Point::new(Fixed::from_milli(xm), Fixed::from_milli(ym))
    }

    #[test]
    fn translate_each_direction() {
        let origin = p(1_000, 2_000);
        let step = Fixed::from_milli(250);
        assert_eq!(origin.translate(Dir::East, step), p(1_250, 2_000));
        assert_eq!(origin.translate(Dir::West, step), p(750, 2_000));
        assert_eq!(origin.translate(Dir::North, step), p(1_000, 2_250));
        assert_eq!(origin.translate(Dir::South, step), p(1_000, 1_750));
    }

    #[test]
    fn translate_then_back_is_identity() {
        let origin = p(123, 456);
        let step = Fixed::from_milli(789);
        for d in Dir::ALL {
            assert_eq!(
                origin.translate(d, step).translate(d.opposite(), step),
                origin
            );
        }
    }

    #[test]
    fn along_and_with_along() {
        let q = p(100, 200);
        assert_eq!(q.along(Axis::X), Fixed::from_milli(100));
        assert_eq!(q.along(Axis::Y), Fixed::from_milli(200));
        assert_eq!(q.with_along(Axis::X, Fixed::ONE), p(1_000, 200));
        assert_eq!(q.with_along(Axis::Y, Fixed::ONE), p(100, 1_000));
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = p(100, 900);
        let b = p(400, 200);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(
            a.abs_diff(b),
            (Fixed::from_milli(300), Fixed::from_milli(700))
        );
    }

    #[test]
    fn manhattan_triangle_inequality_spot_check() {
        let a = p(0, 0);
        let b = p(500, 500);
        let c = p(1_000, 0);
        assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn display_format() {
        assert_eq!(p(1_250, -500).to_string(), "(1.25, -0.5)");
    }
}
