//! The protocol phases over a rectangular tessellation.
//!
//! Identical to `cellflow-core`'s phases except that boundary coordinates,
//! centers, and margins come from the [`Tessellation`] instead of integer
//! cell indices. With the unit tessellation the behavior is bit-identical
//! (equivalence-tested in `tests/unit_equivalence.rs`).

use std::collections::BTreeSet;

use cellflow_core::{CellState, EntityId, Params, SystemState, TokenPolicy};
use cellflow_geom::{Dir, Point};
use cellflow_grid::CellId;
use cellflow_routing::route_update;

use crate::system::TessSystemConfig;
use crate::Tessellation;

/// The tessellation gap check: `true` if the `d`-strip of cell `id` along its
/// boundary facing `dir` is free of entity footprints.
pub(crate) fn gap_free_toward_tess<'a, I>(
    params: Params,
    tess: &Tessellation,
    id: CellId,
    dir: Dir,
    members: I,
) -> bool
where
    I: IntoIterator<Item = &'a Point>,
{
    let boundary = tess.boundary(id, dir);
    let d = params.d();
    let h = params.half_l();
    members.into_iter().all(|p| {
        let edge = p.along(dir.axis()) + h * dir.sign();
        if dir.sign() > 0 {
            edge <= boundary - d
        } else {
            edge >= boundary + d
        }
    })
}

/// What one tessellation round did.
#[derive(Clone, Debug)]
pub struct TessOutcome {
    /// The post-round state (reuses the core per-cell state type).
    pub state: SystemState,
    /// Entities consumed by the target this round.
    pub consumed: Vec<EntityId>,
    /// `(entity, from, to)` transfers this round.
    pub transfers: Vec<(EntityId, CellId, CellId)>,
    /// `(cell, entity)` source insertions this round.
    pub inserted: Vec<(CellId, EntityId)>,
}

/// The atomic `update` over a tessellation: `Route; Signal; Move` with
/// tessellation geometry.
pub(crate) fn update_tess(
    config: &TessSystemConfig,
    state: &SystemState,
    round: u64,
) -> TessOutcome {
    let routed = route_tess(config, state);
    let signaled = signal_tess(config, &routed, round);
    move_tess(config, &signaled)
}

fn route_tess(config: &TessSystemConfig, state: &SystemState) -> SystemState {
    let dims = config.tess.dims();
    let mut out = state.clone();
    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || id == config.target {
            continue;
        }
        let (dist, next) = route_update(
            dims.neighbors(id).map(|n| (n, state.cell(dims, n).dist)),
            config.dist_cap,
        );
        let c = out.cell_mut(dims, id);
        c.dist = dist;
        c.next = next;
    }
    out
}

fn signal_tess(config: &TessSystemConfig, state: &SystemState, round: u64) -> SystemState {
    let dims = config.tess.dims();
    let policy = TokenPolicy::RoundRobin;
    let mut out = state.clone();
    for id in dims.iter() {
        if state.cell(dims, id).failed {
            continue;
        }
        let ne_prev: BTreeSet<CellId> = dims
            .neighbors(id)
            .filter(|&m| {
                let nbr = state.cell(dims, m);
                nbr.next == Some(id) && !nbr.members.is_empty()
            })
            .collect();
        let mut token = state.cell(dims, id).token;
        if token.is_none() {
            token = policy.choose(&ne_prev, id, round);
        }
        let (signal, new_token) = match token {
            None => (None, None),
            Some(tok) => {
                let dir = id.dir_to(tok).expect("token is a neighbor");
                if gap_free_toward_tess(
                    config.params,
                    &config.tess,
                    id,
                    dir,
                    state.cell(dims, id).members.values(),
                ) {
                    let rotated = if ne_prev.len() > 1 {
                        policy.rotate(&ne_prev, tok, id, round)
                    } else if ne_prev.len() == 1 {
                        ne_prev.first().copied()
                    } else {
                        None
                    };
                    (Some(tok), rotated)
                } else {
                    (None, Some(tok))
                }
            }
        };
        let c = out.cell_mut(dims, id);
        c.ne_prev = ne_prev;
        c.token = new_token;
        c.signal = signal;
    }
    out
}

fn move_tess(config: &TessSystemConfig, state: &SystemState) -> TessOutcome {
    let dims = config.tess.dims();
    let params = config.params;
    let (v, h) = (params.v(), params.half_l());

    let mut out = state.clone();
    let mut consumed = Vec::new();
    let mut transfers = Vec::new();
    let mut inserted = Vec::new();
    let mut incoming: Vec<(CellId, EntityId, Point)> = Vec::new();

    for id in dims.iter() {
        let cell = state.cell(dims, id);
        if cell.failed || cell.members.is_empty() {
            continue;
        }
        let Some(nx) = cell.next else { continue };
        let nx_cell = state.cell(dims, nx);
        if nx_cell.failed || nx_cell.signal != Some(id) {
            continue;
        }
        let dir = id.dir_to(nx).expect("next is a neighbor");
        let boundary = config.tess.boundary(id, dir);
        for (&eid, &pos) in &cell.members {
            let new_pos = pos.translate(dir, v);
            let far_edge = new_pos.along(dir.axis()) + h * dir.sign();
            let crossed = if dir.sign() > 0 {
                far_edge > boundary
            } else {
                far_edge < boundary
            };
            let members = &mut out.cell_mut(dims, id).members;
            if crossed {
                members.remove(&eid);
                if nx == config.target {
                    consumed.push(eid);
                } else {
                    let entry = config.tess.boundary(nx, dir.opposite());
                    let snapped = new_pos.with_along(dir.axis(), entry + h * dir.sign());
                    incoming.push((nx, eid, snapped));
                    transfers.push((eid, id, nx));
                }
            } else {
                members.insert(eid, new_pos);
            }
        }
    }

    for (to, eid, pos) in incoming {
        out.cell_mut(dims, to).members.insert(eid, pos);
    }

    // Far-edge source insertion, with tessellation geometry.
    for &s in &config.sources {
        if state.cell(dims, s).failed {
            continue;
        }
        let cell = out.cell(dims, s);
        let pos = match cell.next.and_then(|n| s.dir_to(n)) {
            Some(dir) => {
                let back = dir.opposite();
                let flush = config.tess.boundary(s, back) - h * back.sign();
                config.tess.center(s).with_along(back.axis(), flush)
            }
            None => config.tess.center(s),
        };
        if cell
            .members
            .values()
            .all(|&q| cellflow_geom::sep_ok(pos, q, params.d()))
        {
            let eid = EntityId(out.next_entity_id);
            out.next_entity_id += 1;
            out.cell_mut(dims, s).members.insert(eid, pos);
            inserted.push((s, eid));
        }
    }

    TessOutcome {
        state: out,
        consumed,
        transfers,
        inserted,
    }
}

/// The initial state for a tessellation config (mirrors
/// `SystemConfig::initial_state`).
pub(crate) fn initial_state(config: &TessSystemConfig) -> SystemState {
    let dims = config.tess.dims();
    let mut cells = vec![CellState::initial(); dims.cell_count()];
    cells[dims.index(config.target)] = CellState::initial_target();
    SystemState {
        cells,
        next_entity_id: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TessSystem, Tessellation};
    use cellflow_geom::Fixed;

    fn params() -> Params {
        Params::from_milli(250, 50, 200).unwrap()
    }

    #[test]
    fn wide_cell_takes_longer_to_traverse() {
        // Same corridor, one with a long middle cell: the long corridor needs
        // strictly more rounds to deliver its first entity.
        let p = params();
        let deliver_first = |widths: Vec<Fixed>| {
            let tess = Tessellation::new(widths, vec![Fixed::ONE], p).unwrap();
            let target = CellId::new(3, 0);
            let mut sys = TessSystem::new(tess, target, p)
                .unwrap()
                .with_source(CellId::new(0, 0));
            for round in 1..=600u64 {
                if sys.step().consumed.is_empty() {
                    continue;
                }
                return round;
            }
            panic!("nothing delivered in 600 rounds");
        };
        let uniform = deliver_first(vec![Fixed::ONE; 4]);
        let stretched = deliver_first(vec![
            Fixed::ONE,
            Fixed::from_milli(3_000),
            Fixed::ONE,
            Fixed::ONE,
        ]);
        assert!(
            stretched > uniform,
            "long cell should delay delivery: {uniform} vs {stretched}"
        );
    }

    #[test]
    fn transfers_snap_to_tessellation_edges() {
        let p = params();
        let tess = Tessellation::new(
            vec![Fixed::from_milli(1_500), Fixed::from_milli(2_000)],
            vec![Fixed::ONE],
            p,
        )
        .unwrap();
        let target = CellId::new(1, 0);
        let mut sys = TessSystem::new(tess.clone(), target, p).unwrap();
        // Seed an entity near the first cell's east boundary (x = 1.5).
        sys.seed_entity(
            CellId::new(0, 0),
            Point::new(Fixed::from_milli(1_300), Fixed::HALF),
        );
        // Manually supply routing + grant via one full update cycle: the
        // target grants the single contender immediately.
        let mut consumed = 0;
        for _ in 0..40 {
            consumed += sys.step().consumed.len();
        }
        assert_eq!(consumed, 1, "the entity should be consumed by the target");
    }

    #[test]
    fn gap_check_uses_tess_boundaries() {
        let p = params();
        let tess = Tessellation::new(vec![Fixed::from_milli(2_000)], vec![Fixed::ONE], p).unwrap();
        let id = CellId::new(0, 0);
        // Entity at x = 1.0: far from both boundaries of the 2.0-wide cell.
        let mid = [Point::new(Fixed::ONE, Fixed::HALF)];
        assert!(gap_free_toward_tess(p, &tess, id, Dir::East, &mid));
        assert!(gap_free_toward_tess(p, &tess, id, Dir::West, &mid));
        // Entity flush at x = 2.0 − l/2 blocks east only.
        let east = [Point::new(
            Fixed::from_milli(2_000) - p.half_l(),
            Fixed::HALF,
        )];
        assert!(!gap_free_toward_tess(p, &tess, id, Dir::East, &east));
        assert!(gap_free_toward_tess(p, &tess, id, Dir::West, &east));
    }
}
