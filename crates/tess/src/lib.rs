//! Cellular flows over arbitrary **rectangular tessellations**.
//!
//! The paper's conclusion (§V) raises *"the case for arbitrary tessellations
//! of the plane"*. The fully general case (hexagons, triangles) breaks the
//! paper's safety argument: the `Safe` predicate and the snap-on-transfer
//! rule rely on the motion axes being **orthogonal**, so that snapping the
//! crossing coordinate leaves the transverse separation untouched. Under
//! non-orthogonal tilings, simultaneous transfers can erode separation by a
//! `v`-dependent term — genuinely new protocol design, which is exactly why
//! the paper calls it challenging.
//!
//! What *does* carry over verbatim is the step from unit squares to
//! **arbitrary axis-aligned rectangles**: columns of heterogeneous widths and
//! rows of heterogeneous heights (highway segments of different lengths,
//! warehouse aisles of different pitches). Every lemma survives unchanged —
//! boundaries are still axis-aligned lines, the gap check is still a
//! `d`-strip, snapping still preserves the transverse coordinate — provided
//! each cell dimension exceeds the spacing requirement `d = rs + l` (the
//! generalization of the paper's `rs + l < 1`).
//!
//! This crate implements that generalization. With the all-unit tessellation
//! it reproduces `cellflow-core` **bit for bit** (equivalence-tested); with
//! heterogeneous sizes it powers the cell-size ablation in `EXPERIMENTS.md`.
//!
//! ```
//! use cellflow_core::Params;
//! use cellflow_geom::Fixed;
//! use cellflow_grid::CellId;
//! use cellflow_tess::{Tessellation, TessSystem};
//!
//! // A 4-cell highway with a long middle segment.
//! let params = Params::from_milli(250, 50, 200)?;
//! let tess = Tessellation::new(
//!     vec![Fixed::ONE, Fixed::from_milli(2_500), Fixed::ONE, Fixed::ONE],
//!     vec![Fixed::ONE],
//!     params,
//! )?;
//! let mut system = TessSystem::new(tess, CellId::new(3, 0), params)?
//!     .with_source(CellId::new(0, 0));
//! for _ in 0..300 { system.step(); }
//! assert!(system.consumed_total() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod phases;
pub mod safety;
mod system;
mod tessellation;

pub use phases::TessOutcome;
pub use system::{TessConfigError, TessSystem};
pub use tessellation::{Tessellation, TessellationError};
