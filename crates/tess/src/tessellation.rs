//! The rectangular tessellation: heterogeneous column widths and row heights.

use core::fmt;

use cellflow_core::Params;
use cellflow_geom::{Axis, Dir, Fixed, Point};
use cellflow_grid::{CellId, GridDims};

/// An axis-aligned rectangular tessellation: the plane region
/// `[0, Σwidths] × [0, Σheights]` cut into `columns × rows` cells.
///
/// Cell `⟨i, j⟩` occupies `[X_i, X_{i+1}) × [Y_j, Y_{j+1})` where `X`/`Y` are
/// the prefix sums of the column widths / row heights. The paper's unit grid
/// is the special case of all-`1` widths and heights
/// ([`Tessellation::unit`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tessellation {
    /// Column boundaries `X_0 = 0, X_1, …, X_nx` (prefix sums of widths).
    col_edges: Vec<Fixed>,
    /// Row boundaries `Y_0 = 0, …, Y_ny`.
    row_edges: Vec<Fixed>,
}

impl Tessellation {
    /// Builds a tessellation from column widths and row heights, validated
    /// against `params`: every dimension must strictly exceed the center
    /// spacing `d = rs + l` (the generalization of the paper's
    /// `rs + l < 1`), so that at least one safe position exists in every
    /// cell and a freshly transferred entity never immediately violates a
    /// standing gap promise.
    ///
    /// # Errors
    ///
    /// [`TessellationError`] if a dimension list is empty or any dimension is
    /// not strictly greater than `d`.
    pub fn new(
        widths: Vec<Fixed>,
        heights: Vec<Fixed>,
        params: Params,
    ) -> Result<Tessellation, TessellationError> {
        if widths.is_empty() || heights.is_empty() {
            return Err(TessellationError::Empty);
        }
        let d = params.d();
        for (axis, dims) in [(Axis::X, &widths), (Axis::Y, &heights)] {
            for (index, &size) in dims.iter().enumerate() {
                if size <= d {
                    return Err(TessellationError::CellTooSmall {
                        axis,
                        index,
                        size,
                        d,
                    });
                }
            }
        }
        let prefix = |sizes: &[Fixed]| {
            let mut edges = Vec::with_capacity(sizes.len() + 1);
            let mut acc = Fixed::ZERO;
            edges.push(acc);
            for &s in sizes {
                acc += s;
                edges.push(acc);
            }
            edges
        };
        Ok(Tessellation {
            col_edges: prefix(&widths),
            row_edges: prefix(&heights),
        })
    }

    /// The paper's unit tessellation: `nx × ny` unit squares.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (unit cells always satisfy the
    /// size constraint because `Params` enforces `rs + l < 1`).
    pub fn unit(nx: u16, ny: u16, params: Params) -> Tessellation {
        Tessellation::new(
            vec![Fixed::ONE; nx as usize],
            vec![Fixed::ONE; ny as usize],
            params,
        )
        .expect("unit cells always satisfy the size constraint")
    }

    /// The cell-index grid (for neighbor enumeration and routing).
    pub fn dims(&self) -> GridDims {
        GridDims::new(
            (self.col_edges.len() - 1) as u16,
            (self.row_edges.len() - 1) as u16,
        )
    }

    /// The boundary coordinate of cell `id` facing `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn boundary(&self, id: CellId, dir: Dir) -> Fixed {
        assert!(self.dims().contains(id), "cell {id} out of bounds");
        match dir {
            Dir::East => self.col_edges[id.i() as usize + 1],
            Dir::West => self.col_edges[id.i() as usize],
            Dir::North => self.row_edges[id.j() as usize + 1],
            Dir::South => self.row_edges[id.j() as usize],
        }
    }

    /// The low/high extents of cell `id` along `axis`.
    pub fn extent(&self, id: CellId, axis: Axis) -> (Fixed, Fixed) {
        match axis {
            Axis::X => (self.boundary(id, Dir::West), self.boundary(id, Dir::East)),
            Axis::Y => (self.boundary(id, Dir::South), self.boundary(id, Dir::North)),
        }
    }

    /// The center point of cell `id`.
    pub fn center(&self, id: CellId) -> Point {
        let (x0, x1) = self.extent(id, Axis::X);
        let (y0, y1) = self.extent(id, Axis::Y);
        Point::new(x0 + (x1 - x0).halve(), y0 + (y1 - y0).halve())
    }

    /// `true` if an `l × l` footprint centered at `pos` lies within cell
    /// `id`'s margins (the tessellation analogue of Invariant 1).
    pub fn within_margins(&self, params: Params, id: CellId, pos: Point) -> bool {
        let h = params.half_l();
        let (x0, x1) = self.extent(id, Axis::X);
        let (y0, y1) = self.extent(id, Axis::Y);
        x0 + h <= pos.x && pos.x <= x1 - h && y0 + h <= pos.y && pos.y <= y1 - h
    }

    /// Total width of the tessellated region.
    pub fn total_width(&self) -> Fixed {
        *self.col_edges.last().expect("nonempty")
    }

    /// Total height of the tessellated region.
    pub fn total_height(&self) -> Fixed {
        *self.row_edges.last().expect("nonempty")
    }
}

/// Error building a [`Tessellation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TessellationError {
    /// No columns or no rows.
    Empty,
    /// A cell dimension does not exceed the spacing requirement `d`.
    CellTooSmall {
        /// Which axis the offending dimension lies on.
        axis: Axis,
        /// The column/row index.
        index: usize,
        /// The offending size.
        size: Fixed,
        /// The required strict lower bound.
        d: Fixed,
    },
}

impl fmt::Display for TessellationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TessellationError::Empty => f.write_str("tessellation needs at least one cell"),
            TessellationError::CellTooSmall {
                axis,
                index,
                size,
                d,
            } => write!(
                f,
                "{axis}-dimension {index} is {size}, but must strictly exceed d = {d}"
            ),
        }
    }
}

impl std::error::Error for TessellationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::from_milli(250, 50, 200).unwrap() // d = 0.3
    }

    #[test]
    fn unit_matches_integer_boundaries() {
        let t = Tessellation::unit(3, 2, params());
        assert_eq!(t.dims(), GridDims::new(3, 2));
        let c = CellId::new(2, 1);
        assert_eq!(t.boundary(c, Dir::West), Fixed::from_int(2));
        assert_eq!(t.boundary(c, Dir::East), Fixed::from_int(3));
        assert_eq!(t.boundary(c, Dir::South), Fixed::from_int(1));
        assert_eq!(t.boundary(c, Dir::North), Fixed::from_int(2));
        assert_eq!(t.center(c), c.center());
        assert_eq!(t.total_width(), Fixed::from_int(3));
        assert_eq!(t.total_height(), Fixed::from_int(2));
    }

    #[test]
    fn heterogeneous_boundaries_are_prefix_sums() {
        let t = Tessellation::new(
            vec![Fixed::HALF, Fixed::from_milli(2_000)],
            vec![Fixed::from_milli(600)],
            params(),
        )
        .unwrap();
        assert_eq!(t.boundary(CellId::new(0, 0), Dir::East), Fixed::HALF);
        assert_eq!(
            t.boundary(CellId::new(1, 0), Dir::East),
            Fixed::from_milli(2_500)
        );
        assert_eq!(
            t.boundary(CellId::new(0, 0), Dir::North),
            Fixed::from_milli(600)
        );
        assert_eq!(
            t.center(CellId::new(1, 0)),
            Point::new(Fixed::from_milli(1_500), Fixed::from_milli(300))
        );
    }

    #[test]
    fn rejects_too_small_cells() {
        let err = Tessellation::new(
            vec![Fixed::ONE, Fixed::from_milli(300)], // width == d: not strict
            vec![Fixed::ONE],
            params(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TessellationError::CellTooSmall {
                axis: Axis::X,
                index: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("exceed"));
        assert_eq!(
            Tessellation::new(vec![], vec![Fixed::ONE], params()).unwrap_err(),
            TessellationError::Empty
        );
    }

    #[test]
    fn margins_respect_cell_extents() {
        let t =
            Tessellation::new(vec![Fixed::from_milli(2_000)], vec![Fixed::ONE], params()).unwrap();
        let id = CellId::new(0, 0);
        let p = params();
        assert!(t.within_margins(p, id, t.center(id)));
        // Flush at the wide cell's east margin.
        let flush = Point::new(Fixed::from_milli(2_000) - p.half_l(), Fixed::HALF);
        assert!(t.within_margins(p, id, flush));
        let over = Point::new(
            Fixed::from_milli(2_000) - p.half_l() + Fixed::from_raw(1),
            Fixed::HALF,
        );
        assert!(!t.within_margins(p, id, over));
    }
}
