//! Safety predicates over a tessellation.

use cellflow_core::{EntityId, Params, SystemState};
use cellflow_geom::sep_ok;
use cellflow_grid::CellId;

use crate::Tessellation;

/// Checks the paper's `Safe` predicate over a tessellation: any two entities
/// on one cell are `d`-separated along some axis. (The predicate itself is
/// geometry-independent; only the cell membership comes from the
/// tessellation.)
///
/// # Errors
///
/// Returns the first violating `(cell, a, b)` triple.
pub fn check_safe_tess(
    tess: &Tessellation,
    params: Params,
    state: &SystemState,
) -> Result<(), (CellId, EntityId, EntityId)> {
    let dims = tess.dims();
    let d = params.d();
    for id in dims.iter() {
        let entities: Vec<_> = state.cell(dims, id).members.iter().collect();
        for (ai, (&a_id, &a_pos)) in entities.iter().enumerate() {
            for &(&b_id, &b_pos) in &entities[ai + 1..] {
                if !sep_ok(a_pos, b_pos, d) {
                    return Err((id, a_id, b_id));
                }
            }
        }
    }
    Ok(())
}

/// Checks the tessellation analogue of Invariant 1: every footprint lies
/// within its cell's rectangle.
///
/// # Errors
///
/// Returns the first protruding `(cell, entity)`.
pub fn check_margins_tess(
    tess: &Tessellation,
    params: Params,
    state: &SystemState,
) -> Result<(), (CellId, EntityId)> {
    let dims = tess.dims();
    for id in dims.iter() {
        for (&eid, &pos) in &state.cell(dims, id).members {
            if !tess.within_margins(params, id, pos) {
                return Err((id, eid));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TessSystem;
    use cellflow_geom::{Fixed, Point};

    #[test]
    fn detects_violations_in_wide_cells() {
        let params = Params::from_milli(250, 50, 200).unwrap();
        let tess =
            Tessellation::new(vec![Fixed::from_milli(3_000)], vec![Fixed::ONE], params).unwrap();
        let mut sys = TessSystem::new(tess.clone(), CellId::new(0, 0), params).unwrap();
        // Target cells can hold seeded entities for checking purposes.
        sys.seed_entity(CellId::new(0, 0), Point::new(Fixed::ONE, Fixed::HALF));
        sys.seed_entity(
            CellId::new(0, 0),
            Point::new(Fixed::from_milli(1_300), Fixed::HALF),
        );
        assert!(check_safe_tess(&tess, params, sys.state()).is_ok());
        assert!(check_margins_tess(&tess, params, sys.state()).is_ok());

        // Surgery: push the second within d on both axes.
        let dims = tess.dims();
        let mut bad = sys.state().clone();
        bad.cell_mut(dims, CellId::new(0, 0)).members.insert(
            EntityId(1),
            Point::new(Fixed::from_milli(1_100), Fixed::from_milli(600)),
        );
        let (cell, _, _) = check_safe_tess(&tess, params, &bad).unwrap_err();
        assert_eq!(cell, CellId::new(0, 0));
        // And out past the wide cell's margin.
        bad.cell_mut(dims, CellId::new(0, 0)).members.insert(
            EntityId(2),
            Point::new(Fixed::from_milli(2_950), Fixed::HALF),
        );
        assert_eq!(
            check_margins_tess(&tess, params, &bad).unwrap_err().1,
            EntityId(2)
        );
    }
}
