//! The tessellation system facade.

use core::fmt;
use std::collections::BTreeSet;

use cellflow_core::{CellState, EntityId, Params, SystemState};
use cellflow_geom::Point;
use cellflow_grid::CellId;

use crate::phases::{initial_state, update_tess, TessOutcome};
use crate::Tessellation;

/// Internal configuration bundle shared by the phases.
#[derive(Clone, Debug)]
pub(crate) struct TessSystemConfig {
    pub(crate) tess: Tessellation,
    pub(crate) target: CellId,
    pub(crate) sources: BTreeSet<CellId>,
    pub(crate) params: Params,
    pub(crate) dist_cap: u32,
}

/// A cellular-flows system over a rectangular tessellation — the facade
/// mirroring [`cellflow_core::System`], with geometry supplied by a
/// [`Tessellation`].
#[derive(Clone, Debug)]
pub struct TessSystem {
    config: TessSystemConfig,
    state: SystemState,
    round: u64,
    consumed_total: u64,
    inserted_total: u64,
}

impl TessSystem {
    /// Creates a system over `tess` routing toward `target`.
    ///
    /// # Errors
    ///
    /// [`TessConfigError::TargetOutOfBounds`] if `target` is not a cell of
    /// the tessellation.
    pub fn new(
        tess: Tessellation,
        target: CellId,
        params: Params,
    ) -> Result<TessSystem, TessConfigError> {
        let dims = tess.dims();
        if !dims.contains(target) {
            return Err(TessConfigError::TargetOutOfBounds { target });
        }
        let config = TessSystemConfig {
            dist_cap: dims.cell_count() as u32 + 1,
            tess,
            target,
            sources: BTreeSet::new(),
            params,
        };
        let state = initial_state(&config);
        Ok(TessSystem {
            config,
            state,
            round: 0,
            consumed_total: 0,
            inserted_total: 0,
        })
    }

    /// Adds a source cell.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or equals the target.
    pub fn with_source(mut self, source: CellId) -> TessSystem {
        assert!(
            self.config.tess.dims().contains(source),
            "source {source} out of bounds"
        );
        assert!(
            source != self.config.target,
            "source must differ from target"
        );
        self.config.sources.insert(source);
        self
    }

    /// The tessellation.
    pub fn tessellation(&self) -> &Tessellation {
        &self.config.tess
    }

    /// The target cell.
    pub fn target(&self) -> CellId {
        self.config.target
    }

    /// The physical parameters.
    pub fn params(&self) -> Params {
        self.config.params
    }

    /// The current state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// One cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell(&self, id: CellId) -> &CellState {
        self.state.cell(self.config.tess.dims(), id)
    }

    /// Rounds executed.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Entities consumed so far.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }

    /// Entities inserted so far.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// One synchronous round.
    pub fn step(&mut self) -> TessOutcome {
        let outcome = update_tess(&self.config, &self.state, self.round);
        self.state = outcome.state.clone();
        self.round += 1;
        self.consumed_total += outcome.consumed.len() as u64;
        self.inserted_total += outcome.inserted.len() as u64;
        outcome
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Crashes a cell (the paper's `fail` transition).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn fail(&mut self, id: CellId) {
        self.state.fail(self.config.tess.dims(), id);
    }

    /// Recovers a cell; the target re-anchors at distance 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn recover(&mut self, id: CellId) {
        let t = self.config.target;
        self.state.recover(self.config.tess.dims(), id, t);
    }

    /// Seeds an entity at `pos` on cell `id` (test/example setup).
    ///
    /// # Panics
    ///
    /// Panics if the position violates the cell's margins or the spacing
    /// requirement against existing members.
    pub fn seed_entity(&mut self, id: CellId, pos: Point) -> EntityId {
        assert!(
            self.config.tess.within_margins(self.config.params, id, pos),
            "entity would protrude from {id}"
        );
        let dims = self.config.tess.dims();
        assert!(
            self.state
                .cell(dims, id)
                .members
                .values()
                .all(|&q| cellflow_geom::sep_ok(pos, q, self.config.params.d())),
            "seed violates spacing"
        );
        let eid = EntityId(self.state.next_entity_id);
        self.state.next_entity_id += 1;
        self.state.cell_mut(dims, id).members.insert(eid, pos);
        eid
    }
}

/// Error building a [`TessSystem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TessConfigError {
    /// The target is not a cell of the tessellation.
    TargetOutOfBounds {
        /// The offending target.
        target: CellId,
    },
}

impl fmt::Display for TessConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TessConfigError::TargetOutOfBounds { target } => {
                write!(f, "target {target} is outside the tessellation")
            }
        }
    }
}

impl std::error::Error for TessConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_geom::Fixed;

    fn params() -> Params {
        Params::from_milli(250, 50, 200).unwrap()
    }

    fn corridor() -> TessSystem {
        let tess = Tessellation::new(
            vec![Fixed::ONE, Fixed::from_milli(1_500), Fixed::ONE],
            vec![Fixed::ONE],
            params(),
        )
        .unwrap();
        TessSystem::new(tess, CellId::new(2, 0), params())
            .unwrap()
            .with_source(CellId::new(0, 0))
    }

    #[test]
    fn config_validates_target() {
        let tess = Tessellation::unit(2, 2, params());
        assert!(matches!(
            TessSystem::new(tess, CellId::new(2, 0), params()),
            Err(TessConfigError::TargetOutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "differ from target")]
    fn source_equals_target_panics() {
        let tess = Tessellation::unit(2, 1, params());
        let _ = TessSystem::new(tess, CellId::new(1, 0), params())
            .unwrap()
            .with_source(CellId::new(1, 0));
    }

    #[test]
    fn corridor_delivers_and_conserves() {
        let mut sys = corridor();
        sys.run(400);
        assert!(sys.consumed_total() > 0);
        assert_eq!(
            sys.inserted_total(),
            sys.consumed_total() + sys.state().entity_count() as u64
        );
        assert!(
            crate::safety::check_safe_tess(sys.tessellation(), sys.params(), sys.state()).is_ok()
        );
    }

    #[test]
    fn fail_recover_roundtrip() {
        let mut sys = corridor();
        sys.run(10);
        sys.fail(CellId::new(1, 0));
        sys.run(40);
        // Corridor is cut: nothing new arrives while failed.
        let before = sys.consumed_total();
        sys.run(40);
        assert_eq!(sys.consumed_total(), before);
        sys.recover(CellId::new(1, 0));
        sys.run(80);
        assert!(
            sys.consumed_total() > before,
            "recovery should restore flow"
        );
    }

    #[test]
    fn seeding_validates_against_tess_margins() {
        let mut sys = corridor();
        let wide = CellId::new(1, 0); // x ∈ [1, 2.5]
        let eid = sys.seed_entity(wide, Point::new(Fixed::from_milli(2_300), Fixed::HALF));
        assert_eq!(sys.cell(wide).members.len(), 1);
        assert_eq!(eid, EntityId(0));
    }

    #[test]
    #[should_panic(expected = "protrude")]
    fn seeding_rejects_out_of_margin() {
        let mut sys = corridor();
        // x = 2.45 + l/2 = 2.575 > 2.5: protrudes from the wide cell.
        sys.seed_entity(
            CellId::new(1, 0),
            Point::new(Fixed::from_milli(2_450), Fixed::HALF),
        );
    }
}
