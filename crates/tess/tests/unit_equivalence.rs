//! With the all-unit tessellation, `cellflow-tess` must reproduce the
//! reference `cellflow-core` implementation **bit for bit** — the same kind
//! of pinning test the message-passing crate uses. Heterogeneous
//! tessellations then get randomized safety checks of their own.

use cellflow_core::{Params, System, SystemConfig};
use cellflow_geom::Fixed;
use cellflow_grid::{CellId, GridDims};
use cellflow_tess::safety::{check_margins_tess, check_safe_tess};
use cellflow_tess::{TessSystem, Tessellation};
use proptest::prelude::*;

#[test]
fn unit_tessellation_is_bit_identical_to_core() {
    let params = Params::from_milli(250, 50, 200).unwrap();
    let core_cfg = SystemConfig::new(GridDims::square(5), CellId::new(1, 4), params)
        .unwrap()
        .with_source(CellId::new(1, 0));
    let mut core = System::new(core_cfg);

    let mut tess = TessSystem::new(Tessellation::unit(5, 5, params), CellId::new(1, 4), params)
        .unwrap()
        .with_source(CellId::new(1, 0));

    for round in 0..200u64 {
        // Interleave identical failures.
        if round == 30 {
            core.fail(CellId::new(1, 2));
            tess.fail(CellId::new(1, 2));
        }
        if round == 90 {
            core.recover(CellId::new(1, 2));
            tess.recover(CellId::new(1, 2));
        }
        core.step();
        tess.step();
        assert_eq!(core.state(), tess.state(), "diverged at round {round}");
    }
    assert_eq!(core.consumed_total(), tess.consumed_total());
    assert_eq!(core.inserted_total(), tess.inserted_total());
}

fn widths() -> impl Strategy<Value = Vec<Fixed>> {
    proptest::collection::vec((400i64..=3_000).prop_map(Fixed::from_milli), 2..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Safety and conservation hold over random heterogeneous tessellations
    /// with random failure schedules.
    #[test]
    fn random_tessellations_stay_safe(
        cols in widths(),
        rows in widths(),
        schedule in proptest::collection::vec((0u64..60, 0usize..36, prop::bool::ANY), 0..5),
    ) {
        let params = Params::from_milli(250, 50, 200).unwrap();
        // Filter: all dimensions must exceed d = 0.3 — guaranteed by widths().
        let tess = Tessellation::new(cols.clone(), rows.clone(), params).unwrap();
        let dims = tess.dims();
        let target = CellId::new(dims.nx() - 1, dims.ny() - 1);
        let mut sys = TessSystem::new(tess.clone(), target, params)
            .unwrap()
            .with_source(CellId::new(0, 0));
        for round in 0..60u64 {
            for &(when, raw, recover) in &schedule {
                if when == round {
                    let cell = dims.id_at(raw % dims.cell_count());
                    if recover { sys.recover(cell); } else { sys.fail(cell); }
                }
            }
            sys.step();
            prop_assert!(check_safe_tess(&tess, params, sys.state()).is_ok(),
                "round {}: {:?}", round, check_safe_tess(&tess, params, sys.state()));
            prop_assert!(check_margins_tess(&tess, params, sys.state()).is_ok(),
                "round {}: {:?}", round, check_margins_tess(&tess, params, sys.state()));
            prop_assert_eq!(
                sys.inserted_total(),
                sys.consumed_total() + sys.state().entity_count() as u64
            );
        }
    }

    /// Progress on heterogeneous corridors: every corridor of 3–6 cells with
    /// arbitrary widths delivers entities.
    #[test]
    fn heterogeneous_corridors_deliver(cols in widths()) {
        let params = Params::from_milli(250, 50, 200).unwrap();
        let n = cols.len() as u16;
        let tess = Tessellation::new(cols, vec![Fixed::ONE], params).unwrap();
        let mut sys = TessSystem::new(tess, CellId::new(n - 1, 0), params)
            .unwrap()
            .with_source(CellId::new(0, 0));
        sys.run(800);
        prop_assert!(sys.consumed_total() > 0, "corridor never delivered");
    }
}
