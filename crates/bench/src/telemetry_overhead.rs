//! Telemetry overhead baseline: the engine's ns/round with phase timers
//! detached vs. attached, over the same scenario matrix as the perf
//! baseline (`BENCH_PR5.json`; format documented in `DESIGN.md` §10).
//!
//! Two configurations are timed per grid size:
//!
//! * **off** — no timers attached (the default): the engine's round loop
//!   takes the branch-free path, identical to what `BENCH_PR3.json` times
//!   as `engine_ns_per_round`. The committed reports are generated
//!   back-to-back on one machine, so the off column doubles as a
//!   regression guard on the instrumentation seam itself.
//! * **on** — [`PhaseTimers`] registered in a live [`Registry`]: four
//!   histogram spans per round (route, signal, move, whole round), the
//!   full cost a profiling run pays.
//!
//! A final `cascade-5x5` scenario times a full cascading-failure campaign
//! ([`run_cascade`]) with and without a live [`SimTelemetry`] — covering
//! the overload/shed/backoff counters this PR adds on top of the phase
//! timers. It is appended after the grid matrix so older tooling that
//! zips scenario lists positionally keeps comparing the shared prefix.

use std::time::Instant;

use cellflow_core::{Engine, FaultPlan, OverloadTrigger, Params, SystemConfig};
use cellflow_grid::{CellId, GridDims};
use cellflow_sim::{run_cascade, run_cascade_with, CascadeScenario, SimTelemetry};
use cellflow_telemetry::{PhaseTimers, Registry};

use crate::perf::GRID_SIZES;

/// Measured telemetry overhead for one grid size.
#[derive(Clone, Debug)]
pub struct OverheadResult {
    /// Scenario key, e.g. `"16x16"`.
    pub name: String,
    /// Grid side length.
    pub n: u16,
    /// Rounds per timed repetition.
    pub rounds: u64,
    /// Median ns/round with timers detached (the default path).
    pub telemetry_off_ns_per_round: u64,
    /// Median ns/round with live phase timers attached.
    pub telemetry_on_ns_per_round: u64,
    /// `on / off` — the multiplicative cost of enabling phase timing.
    pub overhead_ratio: f64,
}

/// A full telemetry-overhead run over the scenario matrix.
#[derive(Clone, Debug)]
pub struct TelemetryOverheadReport {
    /// Report format identifier.
    pub schema: String,
    /// `true` for `--quick` runs (fewer rounds/reps, same shape).
    pub quick: bool,
    /// Timed repetitions per configuration (median taken).
    pub reps: usize,
    /// Per-scenario results: [`GRID_SIZES`] order, then the appended
    /// `cascade-5x5` campaign.
    pub scenarios: Vec<OverheadResult>,
}

fn scenario_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).expect("paper parameters are valid"),
    )
    .expect("target is in bounds")
    .with_source(CellId::new(1, 0))
}

fn cascade_scenario(rounds: u64, settle: u64) -> CascadeScenario {
    CascadeScenario {
        config: scenario_config(5).with_capacity(2),
        base: FaultPlan::new().crash_at(8, CellId::new(1, 2)),
        trigger: OverloadTrigger::new(2, 2),
        backoff: None,
        restart_after: None,
        rounds,
        settle,
        workers: 1,
    }
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn time_engine(config: &SystemConfig, timers: Option<PhaseTimers>, warmup: u64, rounds: u64) -> u64 {
    let mut engine = Engine::new(config.clone());
    if let Some(t) = timers {
        engine.attach_phase_timers(t);
    }
    for _ in 0..warmup {
        engine.step();
    }
    let start = Instant::now();
    for _ in 0..rounds {
        engine.step();
    }
    (start.elapsed().as_nanos() / rounds as u128) as u64
}

fn time_cascade(scenario: &CascadeScenario, registry: Option<&Registry>) -> u64 {
    let start = Instant::now();
    match registry {
        None => drop(run_cascade(scenario)),
        Some(r) => drop(run_cascade_with(scenario, Some(SimTelemetry::new(r)))),
    }
    let total = scenario.rounds + scenario.settle;
    (start.elapsed().as_nanos() / total as u128) as u64
}

/// Runs the telemetry-overhead matrix. `quick` shrinks rounds and
/// repetitions (for CI smoke) while keeping the report shape identical.
pub fn run(quick: bool) -> TelemetryOverheadReport {
    let (rounds, reps, warmup) = if quick { (120, 2, 120) } else { (600, 5, 600) };
    let mut scenarios: Vec<OverheadResult> = GRID_SIZES
        .iter()
        .map(|&n| {
            let config = scenario_config(n);
            let off = median(
                (0..reps)
                    .map(|_| time_engine(&config, None, warmup, rounds))
                    .collect(),
            );
            let registry = Registry::new();
            let on = median(
                (0..reps)
                    .map(|_| {
                        time_engine(&config, Some(PhaseTimers::register(&registry)), warmup, rounds)
                    })
                    .collect(),
            );
            OverheadResult {
                name: format!("{n}x{n}"),
                n,
                rounds,
                telemetry_off_ns_per_round: off,
                telemetry_on_ns_per_round: on,
                overhead_ratio: on as f64 / off.max(1) as f64,
            }
        })
        .collect();
    // Cascade campaign: same off/on comparison, but the unit under test is
    // a whole `run_cascade` (overload expansion + monitor suite + heat
    // maps), and the "on" path exercises the overload/shed/backoff
    // counters. Appended after the grid matrix so positional zips against
    // older reports keep comparing the shared prefix.
    let (c_rounds, c_settle) = if quick { (80, 40) } else { (160, 80) };
    let cascade = cascade_scenario(c_rounds, c_settle);
    time_cascade(&cascade, None); // warmup
    let off = median((0..reps).map(|_| time_cascade(&cascade, None)).collect());
    let registry = Registry::new();
    let on = median(
        (0..reps)
            .map(|_| time_cascade(&cascade, Some(&registry)))
            .collect(),
    );
    scenarios.push(OverheadResult {
        name: "cascade-5x5".to_string(),
        n: 5,
        rounds: c_rounds + c_settle,
        telemetry_off_ns_per_round: off,
        telemetry_on_ns_per_round: on,
        overhead_ratio: on as f64 / off.max(1) as f64,
    });
    TelemetryOverheadReport {
        schema: "cellflow-bench-telemetry-v1".to_string(),
        quick,
        reps,
        scenarios,
    }
}

impl TelemetryOverheadReport {
    /// Renders the report as pretty-printed JSON, keys in a fixed order
    /// (hand-rolled; the workspace builds without a JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str("  \"scenarios\": [\n");
        for (k, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!(
                "      \"telemetry_off_ns_per_round\": {},\n",
                sc.telemetry_off_ns_per_round
            ));
            s.push_str(&format!(
                "      \"telemetry_on_ns_per_round\": {},\n",
                sc.telemetry_on_ns_per_round
            ));
            s.push_str(&format!("      \"overhead_ratio\": {:.3}\n", sc.overhead_ratio));
            s.push_str(if k + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_telemetry::Json;

    #[test]
    fn quick_run_produces_well_formed_report() {
        let report = run(true);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), GRID_SIZES.len() + 1);
        for sc in &report.scenarios {
            assert!(sc.telemetry_off_ns_per_round > 0);
            assert!(sc.telemetry_on_ns_per_round > 0);
        }
        // The cascade campaign rides at the end, after the grid matrix.
        assert_eq!(report.scenarios.last().unwrap().name, "cascade-5x5");
        let json = report.to_json();
        let parsed = Json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cellflow-bench-telemetry-v1")
        );
        assert_eq!(
            parsed.get("scenarios").and_then(Json::as_arr).map(|a| a.len()),
            Some(GRID_SIZES.len() + 1)
        );
    }

    /// The committed baselines are generated back-to-back on one machine:
    /// `BENCH_PR5.json`'s telemetry-off medians must sit within noise of
    /// `BENCH_PR3.json`'s engine medians — the instrumentation seam in the
    /// engine's round loop costs nothing when detached. Skips silently
    /// when either committed artifact is absent (fresh checkout mid-run).
    #[test]
    fn committed_off_baseline_tracks_pr3() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let (Ok(pr3), Ok(pr5)) = (
            std::fs::read_to_string(format!("{root}/BENCH_PR3.json")),
            std::fs::read_to_string(format!("{root}/BENCH_PR5.json")),
        ) else {
            return;
        };
        let pr3 = Json::parse(&pr3).expect("BENCH_PR3.json parses");
        let pr5 = Json::parse(&pr5).expect("BENCH_PR5.json parses");
        let medians = |doc: &Json, key: &str| -> Vec<(String, u64)> {
            doc.get("scenarios")
                .and_then(Json::as_arr)
                .expect("scenarios array")
                .iter()
                .map(|sc| {
                    (
                        sc.get("name").and_then(Json::as_str).expect("name").to_string(),
                        sc.get(key).and_then(Json::as_u64).expect("median"),
                    )
                })
                .collect()
        };
        let baseline = medians(&pr3, "engine_ns_per_round");
        let off = medians(&pr5, "telemetry_off_ns_per_round");
        for ((name, base), (name5, measured)) in baseline.iter().zip(&off) {
            assert_eq!(name, name5, "scenario order matches");
            let ratio = *measured as f64 / (*base).max(1) as f64;
            assert!(
                ratio < 1.03,
                "{name}: telemetry-off {measured} ns/round regresses >3% vs baseline {base}"
            );
        }
    }
}
