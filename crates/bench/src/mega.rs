//! Mega-grid scaling baseline: the sparse active-set scheduler and the
//! sharded row-band executor timed against the dense sweep on grids from
//! 64² up to 1024² (1,048,576 cells), reported as machine-readable JSON
//! (`BENCH_PR8.json`; format documented in `DESIGN.md` §13).
//!
//! Three engine configurations are timed per grid size, at identical
//! semantics (pinned by `tests/sparse_differential.rs`, and spot-checked
//! here on the smallest grid before any timing):
//!
//! * **dense** — [`ExecMode::Dense`]: every phase sweeps every cell, the
//!   pre-PR8 behavior;
//! * **sparse** — [`ExecMode::Sparse`] (the default): Route/Signal/Move
//!   visit only cells whose inputs changed, so quiescent regions cost
//!   nothing;
//! * **sparse+sharded** — the sparse phases fanned out to 1/2/4/8 row-band
//!   workers, the scaling curve.
//!
//! The workload is the corridor scenario every other baseline uses — one
//! source, one target, both on row 1 — which is *quiescent-heavy* at mega
//! scale: steady-state traffic touches a band of cells around one row while
//! the rest of the grid has nothing to do. That is exactly the regime the
//! active-set scheduler targets, and the report records the measured
//! occupancy (`active_cells / cells`) alongside ns/round so the speedup can
//! be read against how sparse the round actually was.
//!
//! The committed report is generated on one machine in one sitting; the
//! `cores` field records how much hardware parallelism the sharded curve
//! had available (on a single-core runner the curve measures fan-out
//! overhead, not speedup — the byte-identity guarantees still hold, which
//! is what the differential suite and CI pin).

use std::time::Instant;

use cellflow_core::{Engine, ExecMode, Params, SystemConfig};
use cellflow_grid::{CellId, GridDims};

/// Grid sizes of the full mega matrix: 4096 up to 1,048,576 cells.
pub const MEGA_GRID_SIZES: [u16; 5] = [64, 128, 256, 512, 1024];

/// Grid sizes timed under `--quick` (CI smoke): capped at 128².
pub const QUICK_GRID_SIZES: [u16; 2] = [64, 128];

/// Worker counts of the sharded scaling curve.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Measured results for one grid size.
#[derive(Clone, Debug)]
pub struct MegaScenarioResult {
    /// Scenario key, e.g. `"256x256"`.
    pub name: String,
    /// Grid side length.
    pub n: u16,
    /// Total cell count (`n²`).
    pub cells: usize,
    /// Rounds per timed repetition.
    pub rounds: u64,
    /// Warmup rounds before timing (dist settles, traffic enters).
    pub warmup: u64,
    /// Median ns/round of the dense full-sweep engine.
    pub dense_ns_per_round: u64,
    /// Median ns/round of the sparse active-set engine (one thread).
    pub sparse_ns_per_round: u64,
    /// `dense_ns_per_round / sparse_ns_per_round`.
    pub speedup_sparse_vs_dense: f64,
    /// Active-set size after the sparse run's last timed round.
    pub active_cells: usize,
    /// `active_cells / cells` — how sparse the steady rounds actually were.
    pub occupancy: f64,
    /// `(workers, median ns/round)` of the sharded sparse engine, in
    /// [`WORKER_COUNTS`] order.
    pub sharded_ns_per_round: Vec<(usize, u64)>,
}

/// A full run of the mega matrix.
#[derive(Clone, Debug)]
pub struct MegaReport {
    /// Report format identifier.
    pub schema: String,
    /// `true` for `--quick` runs (128² cap, fewer rounds, same shape).
    pub quick: bool,
    /// Timed repetitions per configuration (median taken).
    pub reps: usize,
    /// Hardware threads available to the sharded curve when this report
    /// was generated.
    pub cores: usize,
    /// Per-scenario results, in grid-size order.
    pub scenarios: Vec<MegaScenarioResult>,
}

fn scenario_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).expect("paper parameters are valid"),
    )
    .expect("target is in bounds")
    .with_source(CellId::new(1, 0))
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn make_engine(config: &SystemConfig, mode: ExecMode, workers: usize) -> Engine {
    let mut engine = Engine::new(config.clone());
    engine.set_exec_mode(mode);
    if workers > 1 {
        engine.set_workers(workers);
    }
    engine
}

/// Warms one engine, then times `reps` consecutive windows of `rounds`
/// rounds on it (the engine stays warm between windows — no re-warmup per
/// repetition). Returns the median ns/round and the final active-set size.
fn time_mode(
    config: &SystemConfig,
    mode: ExecMode,
    workers: usize,
    warmup: u64,
    rounds: u64,
    reps: usize,
) -> (u64, usize) {
    let mut engine = make_engine(config, mode, workers);
    for _ in 0..warmup {
        engine.step();
    }
    let samples = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..rounds {
                engine.step();
            }
            (start.elapsed().as_nanos() / rounds as u128) as u64
        })
        .collect();
    (median(samples), engine.active_cells())
}

/// The cheap semantics spot-check run before any timing: dense, sparse, and
/// sparse+4-workers agree on the exported state after `rounds` rounds. The
/// real guarantee is the property suite (`tests/sparse_differential.rs`);
/// this guards against benchmarking a silently mis-wired build.
fn check_semantics(config: &SystemConfig, rounds: u64) {
    let mut dense = make_engine(config, ExecMode::Dense, 1);
    let mut sparse = make_engine(config, ExecMode::Sparse, 1);
    let mut sharded = make_engine(config, ExecMode::Sparse, 4);
    for _ in 0..rounds {
        dense.step();
        sparse.step();
        sharded.step();
    }
    let reference = dense.export_state();
    assert_eq!(
        sparse.export_state(),
        reference,
        "sparse diverged from dense; benchmark numbers would be meaningless"
    );
    assert_eq!(
        sharded.export_state(),
        reference,
        "sharded diverged from dense; benchmark numbers would be meaningless"
    );
}

/// Runs the mega matrix. `quick` caps the grid at 128² and shrinks rounds
/// and repetitions (for CI smoke) while keeping the report shape identical.
///
/// # Panics
///
/// Panics if the sparse or sharded engine diverges from the dense sweep on
/// the smallest grid.
pub fn run(quick: bool) -> MegaReport {
    let sizes: &[u16] = if quick {
        &QUICK_GRID_SIZES
    } else {
        &MEGA_GRID_SIZES
    };
    let (rounds, reps) = if quick { (20, 2) } else { (40, 3) };
    check_semantics(&scenario_config(sizes[0]), 200);
    let scenarios = sizes
        .iter()
        .map(|&n| {
            let config = scenario_config(n);
            let cells = usize::from(n) * usize::from(n);
            // Warmup: the dist gradient settles in ~2n rounds and traffic
            // starts filling the corridor; steady rounds after that are
            // representative of the long-run regime.
            let warmup = 2 * u64::from(n) + 64;
            let (dense, _) = time_mode(&config, ExecMode::Dense, 1, warmup, rounds, reps);
            let (sparse, active_cells) =
                time_mode(&config, ExecMode::Sparse, 1, warmup, rounds, reps);
            let sharded_ns_per_round = WORKER_COUNTS
                .iter()
                .map(|&w| {
                    let (ns, _) = time_mode(&config, ExecMode::Sparse, w, warmup, rounds, reps);
                    (w, ns)
                })
                .collect();
            MegaScenarioResult {
                name: format!("{n}x{n}"),
                n,
                cells,
                rounds,
                warmup,
                dense_ns_per_round: dense,
                sparse_ns_per_round: sparse,
                speedup_sparse_vs_dense: dense as f64 / sparse.max(1) as f64,
                active_cells,
                occupancy: active_cells as f64 / cells as f64,
                sharded_ns_per_round,
            }
        })
        .collect();
    MegaReport {
        schema: "cellflow-bench-mega-v1".to_string(),
        quick,
        reps,
        cores: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        scenarios,
    }
}

impl MegaReport {
    /// Renders the report as pretty-printed JSON, keys in a fixed order
    /// (hand-rolled; the workspace builds without a JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str("  \"scenarios\": [\n");
        for (k, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"cells\": {},\n", sc.cells));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!("      \"warmup\": {},\n", sc.warmup));
            s.push_str(&format!(
                "      \"dense_ns_per_round\": {},\n",
                sc.dense_ns_per_round
            ));
            s.push_str(&format!(
                "      \"sparse_ns_per_round\": {},\n",
                sc.sparse_ns_per_round
            ));
            s.push_str(&format!(
                "      \"speedup_sparse_vs_dense\": {:.2},\n",
                sc.speedup_sparse_vs_dense
            ));
            s.push_str(&format!("      \"active_cells\": {},\n", sc.active_cells));
            s.push_str(&format!("      \"occupancy\": {:.4},\n", sc.occupancy));
            s.push_str("      \"sharded_ns_per_round\": {\n");
            for (i, (w, ns)) in sc.sharded_ns_per_round.iter().enumerate() {
                s.push_str(&format!("        \"{w}\": {ns}"));
                s.push_str(if i + 1 < sc.sharded_ns_per_round.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("      }\n");
            s.push_str(if k + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellflow_telemetry::Json;

    #[test]
    fn quick_run_produces_well_formed_report() {
        let report = run(true);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), QUICK_GRID_SIZES.len());
        assert!(report.cores >= 1);
        for sc in &report.scenarios {
            assert!(sc.dense_ns_per_round > 0);
            assert!(sc.sparse_ns_per_round > 0);
            assert_eq!(sc.cells, usize::from(sc.n) * usize::from(sc.n));
            // The corridor workload is quiescent-heavy: steady-state
            // activity stays well under the full grid.
            assert!(
                sc.active_cells < sc.cells / 2,
                "{}: active set {}/{} is not sparse",
                sc.name,
                sc.active_cells,
                sc.cells
            );
            assert_eq!(sc.sharded_ns_per_round.len(), WORKER_COUNTS.len());
            for &(w, ns) in &sc.sharded_ns_per_round {
                assert!(WORKER_COUNTS.contains(&w));
                assert!(ns > 0);
            }
        }
        let json = report.to_json();
        let parsed = Json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("cellflow-bench-mega-v1")
        );
        assert_eq!(
            parsed.get("scenarios").and_then(Json::as_arr).map(|a| a.len()),
            Some(QUICK_GRID_SIZES.len())
        );
    }
}
