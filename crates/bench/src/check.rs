//! `cellflow bench --check`: the perf-regression harness.
//!
//! Loads the committed baseline reports (`BENCH_PR3.json`,
//! `BENCH_PR5.json`, `BENCH_PR8.json`, `BENCH_PR9.json`,
//! `BENCH_PR10.json`), reruns every
//! matrix in `--quick` mode on the current machine, and compares the
//! machine-independent shape of the results inside wide tolerance bands:
//!
//! * **speedups** (engine-vs-legacy, sparse-vs-dense) must not collapse:
//!   the fresh quick measurement must stay above a fixed fraction of the
//!   committed median. A 38× speedup measured at 12× on a noisy CI box is
//!   fine; measured at 2× it is a regression, not noise.
//! * **overhead ratios** (telemetry-on/off, trace-on/off, recording-on/off)
//!   must not blow
//!   up: the fresh ratio must stay below a fixed multiple of the
//!   committed one.
//! * **steady-state allocations** must stay exactly zero — the one band
//!   with no tolerance at all.
//!
//! Ratios rather than absolute ns/round are compared because the committed
//! baselines come from one machine and the checker runs on another;
//! absolute bands would be pure noise. Scenarios are matched by name, so a
//! quick run (which caps the mega matrix at 128²) silently checks only the
//! shared prefix of a full committed report.

use std::path::Path;

use cellflow_telemetry::Json;

use crate::mega::MegaReport;
use crate::perf::PerfReport;
use crate::recording_overhead::RecordingOverheadReport;
use crate::telemetry_overhead::TelemetryOverheadReport;
use crate::trace_overhead::TraceOverheadReport;

/// A fresh quick measurement must retain at least this fraction of a
/// committed speedup (PR3 engine-vs-legacy, PR8 sparse-vs-dense). Quick
/// runs on small grids swing hard under transient machine load, so the
/// floor only trips on order-of-magnitude collapses, not scheduler noise.
pub const SPEEDUP_FLOOR: f64 = 0.15;
/// The mega matrix is noisier still (threaded, occupancy-dependent): its
/// floor is looser.
pub const MEGA_SPEEDUP_FLOOR: f64 = 0.1;
/// A fresh overhead ratio may exceed the committed one by at most this
/// factor (PR5 telemetry, PR9 tracing, PR10 recording).
pub const RATIO_CEIL: f64 = 3.0;

/// One baseline-vs-fresh comparison.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Which committed artifact the row checks, e.g. `"BENCH_PR3"`.
    pub baseline: String,
    /// Scenario key, e.g. `"16x16"`.
    pub scenario: String,
    /// The compared metric, e.g. `"speedup_engine_vs_legacy"`.
    pub metric: String,
    /// The committed value.
    pub committed: f64,
    /// The fresh quick measurement.
    pub measured: f64,
    /// The pass bound derived from the committed value (a floor for
    /// speedups, a ceiling for ratios, exactly 0 for allocations).
    pub bound: f64,
    /// `true` when the measurement respects the bound.
    pub pass: bool,
}

/// The full comparison: every row, pass/fail per row.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// All comparisons, in baseline order.
    pub rows: Vec<CheckRow>,
}

/// The committed baseline documents.
#[derive(Clone, Debug)]
pub struct Baselines {
    /// `BENCH_PR3.json` (engine vs legacy + zero-alloc).
    pub pr3: Json,
    /// `BENCH_PR5.json` (telemetry overhead).
    pub pr5: Json,
    /// `BENCH_PR8.json` (mega-grid sparse vs dense).
    pub pr8: Json,
    /// `BENCH_PR9.json` (causal-tracing overhead).
    pub pr9: Json,
    /// `BENCH_PR10.json` (flight-recording overhead).
    pub pr10: Json,
}

/// The fresh quick reports the committed documents are compared to.
#[derive(Clone, Debug)]
pub struct FreshReports {
    /// `perf::run(true)`.
    pub perf: PerfReport,
    /// `telemetry_overhead::run(true)`.
    pub telemetry: TelemetryOverheadReport,
    /// `mega::run(true)`.
    pub mega: MegaReport,
    /// `trace_overhead::run(true)`.
    pub trace: TraceOverheadReport,
    /// `recording_overhead::run(true)`.
    pub recording: RecordingOverheadReport,
}

/// Reads and parses the committed baselines from `dir`.
///
/// # Errors
///
/// A missing or unparsable artifact is an error — the checker exists to
/// guard the committed files, so their absence is itself a failure.
pub fn load_baselines(dir: &Path) -> Result<Baselines, String> {
    let load = |name: &str| -> Result<Json, String> {
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
    };
    Ok(Baselines {
        pr3: load("BENCH_PR3.json")?,
        pr5: load("BENCH_PR5.json")?,
        pr8: load("BENCH_PR8.json")?,
        pr9: load("BENCH_PR9.json")?,
        pr10: load("BENCH_PR10.json")?,
    })
}

/// A committed scenario's metric, looked up by name.
fn committed(doc: &Json, name: &str, key: &str) -> Option<f64> {
    doc.get("scenarios")?
        .as_arr()?
        .iter()
        .find(|sc| sc.get("name").and_then(Json::as_str) == Some(name))?
        .get(key)?
        .as_f64()
}

/// Compares the committed baselines to fresh quick measurements. Pure:
/// runs nothing, so doctored inputs are unit-testable.
pub fn evaluate(base: &Baselines, fresh: &FreshReports) -> CheckReport {
    let mut rows = Vec::new();
    for sc in &fresh.perf.scenarios {
        if let Some(c) = committed(&base.pr3, &sc.name, "speedup_engine_vs_legacy") {
            let bound = c * SPEEDUP_FLOOR;
            let measured = sc.speedup_engine_vs_legacy;
            rows.push(CheckRow {
                baseline: "BENCH_PR3".into(),
                scenario: sc.name.clone(),
                metric: "speedup_engine_vs_legacy".into(),
                committed: c,
                measured,
                bound,
                pass: measured >= bound,
            });
        }
        let allocs = sc.engine_steady_alloc_events as f64;
        rows.push(CheckRow {
            baseline: "BENCH_PR3".into(),
            scenario: sc.name.clone(),
            metric: "engine_steady_alloc_events".into(),
            committed: 0.0,
            measured: allocs,
            bound: 0.0,
            pass: allocs == 0.0,
        });
    }
    for sc in &fresh.telemetry.scenarios {
        if let Some(c) = committed(&base.pr5, &sc.name, "overhead_ratio") {
            let bound = c * RATIO_CEIL;
            rows.push(CheckRow {
                baseline: "BENCH_PR5".into(),
                scenario: sc.name.clone(),
                metric: "overhead_ratio".into(),
                committed: c,
                measured: sc.overhead_ratio,
                bound,
                pass: sc.overhead_ratio <= bound,
            });
        }
    }
    for sc in &fresh.mega.scenarios {
        if let Some(c) = committed(&base.pr8, &sc.name, "speedup_sparse_vs_dense") {
            let bound = c * MEGA_SPEEDUP_FLOOR;
            rows.push(CheckRow {
                baseline: "BENCH_PR8".into(),
                scenario: sc.name.clone(),
                metric: "speedup_sparse_vs_dense".into(),
                committed: c,
                measured: sc.speedup_sparse_vs_dense,
                bound,
                pass: sc.speedup_sparse_vs_dense >= bound,
            });
        }
    }
    for sc in &fresh.trace.scenarios {
        if let Some(c) = committed(&base.pr9, &sc.name, "overhead_ratio") {
            let bound = c * RATIO_CEIL;
            rows.push(CheckRow {
                baseline: "BENCH_PR9".into(),
                scenario: sc.name.clone(),
                metric: "overhead_ratio".into(),
                committed: c,
                measured: sc.overhead_ratio,
                bound,
                pass: sc.overhead_ratio <= bound,
            });
        }
    }
    for sc in &fresh.recording.scenarios {
        if let Some(c) = committed(&base.pr10, &sc.name, "overhead_ratio") {
            let bound = c * RATIO_CEIL;
            rows.push(CheckRow {
                baseline: "BENCH_PR10".into(),
                scenario: sc.name.clone(),
                metric: "overhead_ratio".into(),
                committed: c,
                measured: sc.overhead_ratio,
                bound,
                pass: sc.overhead_ratio <= bound,
            });
        }
    }
    CheckReport { rows }
}

/// Loads the baselines from `dir`, reruns every matrix in quick mode, and
/// compares.
///
/// # Errors
///
/// As [`load_baselines`].
pub fn run(dir: &Path) -> Result<CheckReport, String> {
    let base = load_baselines(dir)?;
    let fresh = FreshReports {
        perf: crate::perf::run(true),
        telemetry: crate::telemetry_overhead::run(true),
        mega: crate::mega::run(true),
        trace: crate::trace_overhead::run(true),
        recording: crate::recording_overhead::run(true),
    };
    Ok(evaluate(&base, &fresh))
}

impl CheckReport {
    /// `true` when every row passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// The failing rows.
    pub fn failures(&self) -> Vec<&CheckRow> {
        self.rows.iter().filter(|r| !r.pass).collect()
    }

    /// Renders the PASS/FAIL table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:<28} {:>10} {:>10} {:>10}  verdict",
            "baseline", "scenario", "metric", "committed", "measured", "bound"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:<12} {:<28} {:>10.3} {:>10.3} {:>10.3}  {}",
                r.baseline,
                r.scenario,
                r.metric,
                r.committed,
                r.measured,
                r.bound,
                if r.pass { "PASS" } else { "FAIL" }
            );
        }
        let fails = self.failures().len();
        if fails == 0 {
            let _ = writeln!(out, "\nall {} checks passed", self.rows.len());
        } else {
            let _ = writeln!(out, "\n{fails} of {} checks FAILED", self.rows.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mega::MegaScenarioResult;
    use crate::perf::ScenarioResult;
    use crate::recording_overhead::{RecordingOverheadResult, RecordingOverheadReport};
    use crate::telemetry_overhead::OverheadResult;
    use crate::trace_overhead::TraceOverheadResult;

    fn baseline_doc(scenario_body: &str) -> Json {
        Json::parse(&format!("{{\"scenarios\": [{scenario_body}]}}")).unwrap()
    }

    fn fresh() -> FreshReports {
        FreshReports {
            perf: PerfReport {
                schema: "cellflow-bench-v1".into(),
                quick: true,
                reps: 1,
                scenarios: vec![ScenarioResult {
                    name: "8x8".into(),
                    n: 8,
                    rounds: 10,
                    legacy_ns_per_round: 1000,
                    engine_ns_per_round: 50,
                    system_ns_per_round: 60,
                    speedup_engine_vs_legacy: 20.0,
                    peak_entities: 4,
                    engine_steady_alloc_events: 0,
                }],
            },
            telemetry: TelemetryOverheadReport {
                schema: "cellflow-bench-telemetry-v1".into(),
                quick: true,
                reps: 1,
                scenarios: vec![OverheadResult {
                    name: "8x8".into(),
                    n: 8,
                    rounds: 10,
                    telemetry_off_ns_per_round: 50,
                    telemetry_on_ns_per_round: 80,
                    overhead_ratio: 1.6,
                }],
            },
            mega: MegaReport {
                schema: "cellflow-bench-mega-v1".into(),
                quick: true,
                reps: 1,
                cores: 1,
                scenarios: vec![MegaScenarioResult {
                    name: "64x64".into(),
                    n: 64,
                    cells: 4096,
                    rounds: 10,
                    warmup: 5,
                    dense_ns_per_round: 1000,
                    sparse_ns_per_round: 100,
                    speedup_sparse_vs_dense: 10.0,
                    active_cells: 40,
                    occupancy: 0.01,
                    sharded_ns_per_round: vec![(1, 100)],
                }],
            },
            trace: TraceOverheadReport {
                schema: "cellflow-bench-trace-v1".into(),
                quick: true,
                reps: 1,
                scenarios: vec![TraceOverheadResult {
                    name: "8x8".into(),
                    n: 8,
                    rounds: 10,
                    trace_off_ns_per_round: 80,
                    trace_on_ns_per_round: 100,
                    overhead_ratio: 1.25,
                }],
            },
            recording: RecordingOverheadReport {
                schema: "cellflow-bench-recording-v1".into(),
                quick: true,
                reps: 1,
                scenarios: vec![RecordingOverheadResult {
                    name: "8x8".into(),
                    n: 8,
                    rounds: 10,
                    recording_off_ns_per_round: 80,
                    recording_on_ns_per_round: 95,
                    overhead_ratio: 1.19,
                    bytes_per_round: 120,
                }],
            },
        }
    }

    fn healthy_baselines() -> Baselines {
        Baselines {
            pr3: baseline_doc(
                "{\"name\": \"8x8\", \"speedup_engine_vs_legacy\": 38.0, \
                 \"engine_steady_alloc_events\": 0}",
            ),
            pr5: baseline_doc("{\"name\": \"8x8\", \"overhead_ratio\": 1.8}"),
            pr8: baseline_doc("{\"name\": \"64x64\", \"speedup_sparse_vs_dense\": 35.0}"),
            pr9: baseline_doc("{\"name\": \"8x8\", \"overhead_ratio\": 1.3}"),
            pr10: baseline_doc("{\"name\": \"8x8\", \"overhead_ratio\": 1.2}"),
        }
    }

    #[test]
    fn healthy_measurements_pass_every_band() {
        let report = evaluate(&healthy_baselines(), &fresh());
        assert!(report.passed(), "{}", report.render());
        // One speedup + one alloc row from PR3, one row each for 5/8/9/10.
        assert_eq!(report.rows.len(), 6);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn doctored_baseline_fails_the_speedup_floor() {
        // A doctored committed speedup of 500× demands ≥125× fresh; the
        // honest 20× measurement must flag it.
        let mut base = healthy_baselines();
        base.pr3 = baseline_doc(
            "{\"name\": \"8x8\", \"speedup_engine_vs_legacy\": 500.0, \
             \"engine_steady_alloc_events\": 0}",
        );
        let report = evaluate(&base, &fresh());
        assert!(!report.passed());
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].metric, "speedup_engine_vs_legacy");
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn blown_up_overhead_ratio_fails_the_ceiling() {
        let base = healthy_baselines();
        let mut measured = fresh();
        measured.trace.scenarios[0].overhead_ratio = 10.0;
        let report = evaluate(&base, &measured);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].baseline, "BENCH_PR9");
    }

    #[test]
    fn unknown_scenarios_are_skipped_not_failed() {
        // A quick mega run lacks the committed 1024² row; matching is by
        // name, so the extra committed scenario simply contributes no row.
        let mut base = healthy_baselines();
        base.pr8 = baseline_doc(
            "{\"name\": \"1024x1024\", \"speedup_sparse_vs_dense\": 400.0}",
        );
        let report = evaluate(&base, &fresh());
        assert!(report.passed());
        assert!(report.rows.iter().all(|r| r.baseline != "BENCH_PR8"));
    }

    #[test]
    fn missing_baseline_files_error() {
        let dir = std::env::temp_dir().join(format!(
            "cellflow-check-missing-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_baselines(&dir).unwrap_err();
        assert!(err.contains("BENCH_PR3.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
