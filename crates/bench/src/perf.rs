//! The committed performance baseline: a fixed scenario matrix timing the
//! arena-backed [`Engine`] against the legacy clone-based phase composition,
//! reported as machine-readable JSON (`BENCH_PR3.json`; format documented in
//! `DESIGN.md` §9.5).
//!
//! Three code paths are timed per scenario, at identical semantics (each
//! run's final state is asserted equal to the reference before any timing):
//!
//! * **legacy** — the pure `update` composition: `route_phase`,
//!   `signal_phase`, `move_phase`, each cloning the full `SystemState`;
//! * **engine** — [`Engine::step`] on the double-buffered arenas (the
//!   zero-allocation steady-state path; asserted allocation-free here);
//! * **system** — [`System::step`], the compatibility facade: engine rounds
//!   plus the per-round `SystemState` mirror writeback.

use std::time::Instant;

use cellflow_core::{update, Engine, Params, System, SystemConfig};
use cellflow_grid::{CellId, GridDims};

/// Grid sizes of the fixed scenario matrix.
pub const GRID_SIZES: [u16; 3] = [8, 16, 24];

/// Measured results for one grid size.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario key, e.g. `"16x16"`.
    pub name: String,
    /// Grid side length.
    pub n: u16,
    /// Rounds per timed repetition.
    pub rounds: u64,
    /// Median ns/round of the legacy clone-based phase composition.
    pub legacy_ns_per_round: u64,
    /// Median ns/round of direct [`Engine::step`] calls.
    pub engine_ns_per_round: u64,
    /// Median ns/round of [`System::step`] (engine + mirror writeback).
    pub system_ns_per_round: u64,
    /// `legacy_ns_per_round / engine_ns_per_round`.
    pub speedup_engine_vs_legacy: f64,
    /// Most entities simultaneously in the system during the semantics run.
    pub peak_entities: usize,
    /// Buffer-growth allocations during the engine's timed rounds — the
    /// allocs-avoided proxy. Asserted to be 0 (steady state is warm).
    pub engine_steady_alloc_events: u64,
}

/// A full run of the scenario matrix.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Report format identifier.
    pub schema: String,
    /// `true` for `--quick` runs (fewer rounds/reps, same shape).
    pub quick: bool,
    /// Timed repetitions per path (median taken).
    pub reps: usize,
    /// Per-scenario results, in [`GRID_SIZES`] order.
    pub scenarios: Vec<ScenarioResult>,
}

fn scenario_config(n: u16) -> SystemConfig {
    SystemConfig::new(
        GridDims::square(n),
        CellId::new(1, n - 1),
        Params::from_milli(250, 50, 200).expect("paper parameters are valid"),
    )
    .expect("target is in bounds")
    .with_source(CellId::new(1, 0))
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs the legacy phase chain and the engine side by side, asserting equal
/// final states (the "equal semantics" guard) and returning the peak entity
/// count observed.
fn check_semantics(config: &SystemConfig, rounds: u64) -> usize {
    let mut engine = Engine::new(config.clone());
    let mut state = config.initial_state();
    let mut peak = 0usize;
    for round in 0..rounds {
        let (next, _) = update(config, &state, round);
        engine.step();
        state = next;
        peak = peak.max(engine.entity_count());
    }
    assert_eq!(
        engine.export_state(),
        state,
        "engine diverged from the legacy phases; benchmark numbers would be meaningless"
    );
    peak
}

fn time_legacy(config: &SystemConfig, warmup: u64, rounds: u64) -> u64 {
    let mut state = config.initial_state();
    let mut round = 0u64;
    for _ in 0..warmup {
        state = update(config, &state, round).0;
        round += 1;
    }
    let start = Instant::now();
    for _ in 0..rounds {
        state = update(config, &state, round).0;
        round += 1;
    }
    (start.elapsed().as_nanos() / rounds as u128) as u64
}

fn time_engine(config: &SystemConfig, warmup: u64, rounds: u64) -> (u64, u64) {
    let mut engine = Engine::new(config.clone());
    for _ in 0..warmup {
        engine.step();
    }
    engine.reset_alloc_events();
    let start = Instant::now();
    for _ in 0..rounds {
        engine.step();
    }
    let ns = (start.elapsed().as_nanos() / rounds as u128) as u64;
    (ns, engine.alloc_events())
}

fn time_system(config: &SystemConfig, warmup: u64, rounds: u64) -> u64 {
    let mut sys = System::new(config.clone());
    sys.run(warmup);
    let start = Instant::now();
    sys.run(rounds);
    (start.elapsed().as_nanos() / rounds as u128) as u64
}

/// Runs the whole scenario matrix. `quick` shrinks rounds and repetitions
/// (for CI smoke) while keeping the report shape identical.
///
/// # Panics
///
/// Panics if the engine diverges from the legacy phases on any scenario, or
/// if any timed steady-state engine round allocates.
pub fn run(quick: bool) -> PerfReport {
    let (rounds, reps, warmup) = if quick { (120, 2, 120) } else { (600, 5, 600) };
    let scenarios = GRID_SIZES
        .iter()
        .map(|&n| {
            let config = scenario_config(n);
            let peak_entities = check_semantics(&config, rounds.min(200));
            let legacy = median((0..reps).map(|_| time_legacy(&config, warmup, rounds)).collect());
            let mut alloc_events = 0u64;
            let engine = median(
                (0..reps)
                    .map(|_| {
                        let (ns, allocs) = time_engine(&config, warmup, rounds);
                        alloc_events += allocs;
                        ns
                    })
                    .collect(),
            );
            assert_eq!(
                alloc_events, 0,
                "{n}x{n}: steady-state engine rounds allocated — the zero-clone claim is broken"
            );
            let system = median((0..reps).map(|_| time_system(&config, warmup, rounds)).collect());
            ScenarioResult {
                name: format!("{n}x{n}"),
                n,
                rounds,
                legacy_ns_per_round: legacy,
                engine_ns_per_round: engine,
                system_ns_per_round: system,
                speedup_engine_vs_legacy: legacy as f64 / engine.max(1) as f64,
                peak_entities,
                engine_steady_alloc_events: alloc_events,
            }
        })
        .collect();
    PerfReport {
        schema: "cellflow-bench-v1".to_string(),
        quick,
        reps,
        scenarios,
    }
}

impl PerfReport {
    /// Renders the report as pretty-printed JSON. Hand-rolled (the workspace
    /// builds hermetically, without a JSON dependency); keys are emitted in
    /// a fixed order so equal reports are byte-identical.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"reps\": {},\n", self.reps));
        s.push_str("  \"scenarios\": [\n");
        for (k, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"n\": {},\n", sc.n));
            s.push_str(&format!("      \"rounds\": {},\n", sc.rounds));
            s.push_str(&format!(
                "      \"legacy_ns_per_round\": {},\n",
                sc.legacy_ns_per_round
            ));
            s.push_str(&format!(
                "      \"engine_ns_per_round\": {},\n",
                sc.engine_ns_per_round
            ));
            s.push_str(&format!(
                "      \"system_ns_per_round\": {},\n",
                sc.system_ns_per_round
            ));
            s.push_str(&format!(
                "      \"speedup_engine_vs_legacy\": {:.2},\n",
                sc.speedup_engine_vs_legacy
            ));
            s.push_str(&format!("      \"peak_entities\": {},\n", sc.peak_entities));
            s.push_str(&format!(
                "      \"engine_steady_alloc_events\": {}\n",
                sc.engine_steady_alloc_events
            ));
            s.push_str(if k + 1 < self.scenarios.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_well_formed_report() {
        let report = run(true);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), GRID_SIZES.len());
        for sc in &report.scenarios {
            assert_eq!(sc.engine_steady_alloc_events, 0);
            assert!(sc.peak_entities > 0, "{}: no entities flowed", sc.name);
            assert!(sc.legacy_ns_per_round > 0);
            assert!(sc.engine_ns_per_round > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"cellflow-bench-v1\""));
        assert!(json.contains("\"16x16\""));
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
